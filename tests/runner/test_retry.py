"""Unit tests for the retry policy and its execution semantics."""

from __future__ import annotations

import pytest

from repro.runner import (
    BACKOFF_ENV,
    BUDGET_ENV,
    RETRIES_ENV,
    TIMEOUT_ENV,
    RetryBudget,
    RetryPolicy,
    RunTask,
    TaskFailedError,
    TaskTimeoutError,
    TransientWorkerError,
    execute,
    resolve_retry,
    task_key,
)
from repro.runner.faults import FAULTS_ENV, Fault, plan_fault
from repro.runner import pool as pool_module

from .conftest import SERVICE, SIZES, small_config


class TestRetryPolicyValidation:
    def test_defaults_are_fail_fast(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 1
        assert policy.retry_budget is None
        assert policy.timeout is None

    @pytest.mark.parametrize("bad", [
        dict(max_attempts=0),
        dict(max_attempts=-3),
        dict(backoff_base=-0.1),
        dict(retry_budget=-1),
        dict(timeout=0.0),
        dict(timeout=-5.0),
    ])
    def test_rejects_nonsense(self, bad):
        with pytest.raises(ValueError):
            RetryPolicy(**bad)

    def test_backoff_disabled_by_zero_base(self):
        policy = RetryPolicy(max_attempts=3, backoff_base=0.0)
        assert policy.backoff("ab", 1) == 0.0


class TestResolveRetry:
    def test_explicit_policy_passes_through(self):
        policy = RetryPolicy(max_attempts=4)
        assert resolve_retry(policy) is policy

    def test_env_defaults(self, monkeypatch):
        for var in (RETRIES_ENV, TIMEOUT_ENV, BACKOFF_ENV, BUDGET_ENV):
            monkeypatch.delenv(var, raising=False)
        policy = resolve_retry(None)
        assert policy == RetryPolicy()

    def test_env_retries_and_timeout(self, monkeypatch):
        monkeypatch.setenv(RETRIES_ENV, "2")
        monkeypatch.setenv(TIMEOUT_ENV, "30")
        monkeypatch.setenv(BACKOFF_ENV, "0.5")
        monkeypatch.setenv(BUDGET_ENV, "7")
        policy = resolve_retry(None)
        assert policy.max_attempts == 3  # retries = extra attempts
        assert policy.timeout == 30.0
        assert policy.backoff_base == 0.5
        assert policy.retry_budget == 7

    @pytest.mark.parametrize("var,raw", [
        (RETRIES_ENV, "many"),
        (TIMEOUT_ENV, "soon"),
    ])
    def test_env_garbage_rejected(self, monkeypatch, var, raw):
        monkeypatch.setenv(var, raw)
        with pytest.raises(ValueError):
            resolve_retry(None)


def _plan_transients(root, key, count):
    for seq in range(count):
        plan_fault(root, Fault(key=key, kind="transient", seq=seq))


class TestSerialRetrySemantics:
    @pytest.fixture
    def one_task(self):
        return [RunTask(small_config("GS", measured_jobs=200),
                        SIZES, SERVICE, 0.4)]

    @pytest.fixture
    def fault_plan(self, monkeypatch, tmp_path):
        root = tmp_path / "faults"
        root.mkdir()
        monkeypatch.setenv(FAULTS_ENV, str(root))
        return root

    def test_no_sleep_between_attempts_when_base_zero(
            self, one_task, fault_plan, monkeypatch):
        sleeps = []
        monkeypatch.setattr(pool_module, "_sleep", sleeps.append)
        _plan_transients(fault_plan, task_key(one_task[0]), 2)
        execute(one_task, workers=1, cache=False,
                retry=RetryPolicy(max_attempts=3, backoff_base=0.0))
        assert sleeps == [0.0, 0.0]

    def test_backoff_delays_follow_the_policy(
            self, one_task, fault_plan, monkeypatch):
        sleeps = []
        monkeypatch.setattr(pool_module, "_sleep", sleeps.append)
        key = task_key(one_task[0])
        _plan_transients(fault_plan, key, 2)
        policy = RetryPolicy(max_attempts=3, backoff_base=0.001)
        execute(one_task, workers=1, cache=False, retry=policy)
        assert sleeps == [policy.backoff(key, 1), policy.backoff(key, 2)]

    def test_attempts_exhausted_raises_with_count(
            self, one_task, fault_plan):
        _plan_transients(fault_plan, task_key(one_task[0]), 5)
        with pytest.raises(TaskFailedError, match="after 2 attempts"):
            execute(one_task, workers=1, cache=False,
                    retry=RetryPolicy(max_attempts=2, backoff_base=0.0))

    def test_zero_budget_means_fail_fast_even_with_attempts(
            self, one_task, fault_plan):
        _plan_transients(fault_plan, task_key(one_task[0]), 1)
        with pytest.raises(TaskFailedError, match="budget exhausted"):
            execute(one_task, workers=1, cache=False,
                    retry=RetryPolicy(max_attempts=5, retry_budget=0,
                                      backoff_base=0.0))

    def test_worker_exception_type_preserved_in_message(
            self, one_task, fault_plan):
        _plan_transients(fault_plan, task_key(one_task[0]), 1)
        with pytest.raises(TaskFailedError,
                           match="TransientWorkerError"):
            execute(one_task, workers=1, cache=False)


class TestRetryBudget:
    @pytest.fixture
    def fault_plan(self, monkeypatch, tmp_path):
        root = tmp_path / "faults"
        root.mkdir()
        monkeypatch.setenv(FAULTS_ENV, str(root))
        return root

    def test_unlimited_by_default(self):
        budget = RetryBudget()
        assert all(budget.spend() for _ in range(100))
        assert budget.remaining is None

    def test_counts_down_to_dry(self):
        budget = RetryBudget(2)
        assert budget.spend()
        assert budget.spend()
        assert not budget.spend()
        assert budget.remaining == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            RetryBudget(-1)

    def test_shared_budget_spans_execute_calls(self, fault_plan):
        # The campaign drivers pass one budget into many execute()
        # chunks; a second chunk must see what the first one spent.
        tasks = [RunTask(small_config("GS", measured_jobs=200, seed=s),
                         SIZES, SERVICE, 0.4) for s in (1, 2)]
        for t in tasks:
            _plan_transients(fault_plan, task_key(t), 1)
        policy = RetryPolicy(max_attempts=3, retry_budget=1,
                             backoff_base=0.0)
        budget = RetryBudget(policy.retry_budget)
        execute([tasks[0]], workers=1, cache=False, retry=policy,
                budget=budget)
        with pytest.raises(TaskFailedError, match="budget exhausted"):
            execute([tasks[1]], workers=1, cache=False, retry=policy,
                    budget=budget)


class TestTimeoutErrors:
    def test_timeout_error_is_a_task_failed_error(self):
        err = TaskTimeoutError("ab" * 32, "GS rho=0.4", "timed out",
                               attempts=2)
        assert isinstance(err, TaskFailedError)
        assert "after 2 attempts" in str(err)

    def test_transient_error_importable_in_workers(self):
        # The fault harness raises this class inside forked workers; it
        # must pickle by reference from a stable module path.
        import pickle

        err = TransientWorkerError("flaky")
        assert pickle.loads(pickle.dumps(err)).args == ("flaky",)
