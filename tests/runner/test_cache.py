"""Cache integrity: corruption and schema drift degrade to recompute."""

from __future__ import annotations

import json

import pytest

from repro.analysis.points import SweepPoint
from repro.analysis.sweeps import sweep
from repro.runner import (
    SCHEMA_TAG,
    CacheIntegrityWarning,
    ResultCache,
    RunTask,
    execute,
    task_key,
)

from .conftest import SERVICE, SIZES, small_config

POINT = SweepPoint(offered_gross=0.4, gross_utilization=0.39,
                   net_utilization=0.33, mean_response=250.0,
                   ci_half_width=12.0, saturated=False)


def make_cache(tmp_path) -> ResultCache:
    return ResultCache(tmp_path / "cache")


class TestRoundtrip:
    def test_store_then_load(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.store("ab" * 32, POINT, "GS rho=0.4")
        assert cache.load("ab" * 32) == POINT
        assert (cache.hits, cache.stores) == (1, 1)

    def test_missing_entry_is_silent_miss(self, tmp_path, recwarn):
        cache = make_cache(tmp_path)
        assert cache.load("cd" * 32) is None
        assert cache.misses == 1
        assert not recwarn.list

    def test_sharded_layout(self, tmp_path):
        cache = make_cache(tmp_path)
        key = "ef" * 32
        cache.store(key, POINT)
        assert cache.path_for(key).exists()
        assert cache.path_for(key).parent.name == "ef"


class TestCorruption:
    def corrupt(self, cache: ResultCache, key: str, text: str) -> None:
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")

    def test_garbage_falls_through_with_warning(self, tmp_path):
        cache = make_cache(tmp_path)
        self.corrupt(cache, "aa" * 32, "not json at all {{{")
        with pytest.warns(CacheIntegrityWarning):
            assert cache.load("aa" * 32) is None

    def test_truncated_entry_falls_through(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.store("aa" * 32, POINT)
        path = cache.path_for("aa" * 32)
        path.write_text(path.read_text()[: 40], encoding="utf-8")
        with pytest.warns(CacheIntegrityWarning):
            assert cache.load("aa" * 32) is None

    def test_schema_tag_mismatch_falls_through(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.store("aa" * 32, POINT)
        path = cache.path_for("aa" * 32)
        payload = json.loads(path.read_text())
        assert payload["schema"] == SCHEMA_TAG
        payload["schema"] = "repro.runner/0"
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.warns(CacheIntegrityWarning):
            assert cache.load("aa" * 32) is None

    def test_missing_point_fields_fall_through(self, tmp_path):
        cache = make_cache(tmp_path)
        self.corrupt(
            cache, "aa" * 32,
            json.dumps({"schema": SCHEMA_TAG, "point": {"saturated": True}}),
        )
        with pytest.warns(CacheIntegrityWarning):
            assert cache.load("aa" * 32) is None

    def test_warning_surfaced_once_per_run(self, tmp_path, recwarn):
        cache = make_cache(tmp_path)
        self.corrupt(cache, "aa" * 32, "{broken")
        self.corrupt(cache, "bb" * 32, "{broken")
        assert cache.load("aa" * 32) is None
        assert cache.load("bb" * 32) is None
        warnings = [w for w in recwarn.list
                    if issubclass(w.category, CacheIntegrityWarning)]
        assert len(warnings) == 1

    def test_fresh_run_warns_again(self, tmp_path):
        # "Once per run" = once per cache instance, not once forever.
        first = make_cache(tmp_path)
        self.corrupt(first, "aa" * 32, "{broken")
        with pytest.warns(CacheIntegrityWarning):
            first.load("aa" * 32)
        second = ResultCache(first.root)
        with pytest.warns(CacheIntegrityWarning):
            second.load("aa" * 32)


class TestCorruptionRecompute:
    def test_execute_recomputes_corrupted_entry(self, tmp_path):
        cache = make_cache(tmp_path)
        task = RunTask(small_config("GS"), SIZES, SERVICE, 0.4)
        (clean,) = execute([task], workers=1, cache=cache)
        cache.path_for(task_key(task)).write_text("{boom", encoding="utf-8")
        with pytest.warns(CacheIntegrityWarning):
            (recomputed,) = execute([task], workers=1, cache=cache)
        assert recomputed == clean
        # ... and the rewritten entry is healthy again.
        assert cache.load(task_key(task)) == clean

    def test_sweep_survives_corrupted_cache(self, tmp_path):
        cache = make_cache(tmp_path)
        config = small_config("GS")
        cold = sweep("GS", config, SIZES, SERVICE, (0.35, 0.5),
                     workers=1, cache=cache)
        for entry in cache.root.rglob("*.json"):
            entry.write_text("garbage", encoding="utf-8")
        with pytest.warns(CacheIntegrityWarning):
            recomputed = sweep("GS", config, SIZES, SERVICE, (0.35, 0.5),
                               workers=1, cache=ResultCache(cache.root))
        assert recomputed.points == cold.points
