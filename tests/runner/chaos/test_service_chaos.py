"""Chaos under the sweep service: killed servers and crashed workers.

The service inherits the checkpoint/resume contract of the one-shot
runner — a SIGKILLed server loses nothing that was checkpointed, and a
restarted server over the same cache directory finishes only the
remainder when a client reattaches by campaign key.  Worker-level
fault tolerance (crash retry via ``$REPRO_RETRIES``) applies under the
service unchanged, because the broker executes through the ordinary
:func:`~repro.runner.pool.execute` path.
"""

from __future__ import annotations

import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import suppress
from pathlib import Path

import pytest

from repro.analysis.points import point_to_dict
from repro.analysis.sweeps import sweep
from repro.runner import ResultCache
from repro.runner.faults import FAULTS_ENV, Fault, plan_fault
from repro.service import (
    ServiceClient,
    ServiceError,
    serve_in_thread,
    spec_campaign,
    sweep_spec,
    wait_until_ready,
)

from ..conftest import SERVICE, SIZES, small_config

GRID = (0.3, 0.4, 0.5)

SRC_DIR = Path(__file__).resolve().parents[3] / "src"

#: The server process a chaos test SIGKILLs (the CLI entry point, so
#: the kill lands on exactly what production runs).
SERVE = ("from repro.cli import main; raise SystemExit("
         "main(['serve', '--socket', {socket!r}, "
         "'--cache-dir', {cache!r}, '--fleet', '1']))")


def wait_for(predicate, timeout=60.0, interval=0.05) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


@pytest.fixture
def socket_dir():
    """Unix-socket paths are ~104-byte limited; keep them short."""
    root = Path(tempfile.mkdtemp(prefix="repro-svc-"))
    yield root
    shutil.rmtree(root, ignore_errors=True)


def baseline_raw_points(config) -> "list[dict]":
    result = sweep("GS", config, SIZES, SERVICE, GRID, cache=False)
    return [point_to_dict(p) for p in result.points]


class TestKilledServerReattach:
    def test_sigkill_restart_reattach_runs_only_remainder(
            self, tmp_path, socket_dir, fault_plan, monkeypatch):
        config = small_config("GS")
        spec = sweep_spec("GS", config, GRID)
        campaign, _, keys = spec_campaign(spec)
        cache_dir = tmp_path / "cache"
        cache = ResultCache(cache_dir)
        socket_path = socket_dir / "svc.sock"

        # Arm a hang on the second grid cell: with fleet=1 the server
        # checkpoints cell 1, then wedges — a reproducible "mid-
        # campaign" cut point.  The hang is long enough to hold the
        # wedge but bounded, so the orphaned worker child dies on its
        # own well before any timeout cleanup would have to.
        plan_fault(fault_plan,
                   Fault(key=keys[1], kind="hang", hang_seconds=120.0))
        env = {**os.environ,
               "PYTHONPATH": os.pathsep.join(
                   [str(SRC_DIR)]
                   + [p for p in [os.environ.get("PYTHONPATH")] if p]),
               FAULTS_ENV: str(fault_plan)}
        # Own session: the armed hang routes execution through a
        # worker pool whose forked children inherit the accepted
        # connection fd, so killing only the server would leave the
        # client's read blocked on an orphan.  SIGKILL the whole group
        # — nothing of the server tree survives the cut.
        server = subprocess.Popen(
            [sys.executable, "-c",
             SERVE.format(socket=str(socket_path), cache=str(cache_dir))],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
            start_new_session=True)
        try:
            wait_until_ready(socket_path)
            client = ServiceClient(socket_path)
            with ThreadPoolExecutor(1) as pool:
                pending = pool.submit(client.run, spec)
                assert wait_for(lambda: cache.contains(keys[0])), \
                    "server never checkpointed its first grid cell"
                os.killpg(server.pid, signal.SIGKILL)
                server.wait(timeout=30)
                # The client's stream dies with the server — visibly.
                with pytest.raises(ServiceError,
                                   match="connection lost|stream broke"):
                    pending.result(timeout=60)
        finally:
            if server.poll() is None:
                with suppress(ProcessLookupError):
                    os.killpg(server.pid, signal.SIGKILL)
                server.wait()

        assert cache.contains(keys[0])
        assert not cache.contains(keys[1])
        assert not cache.contains(keys[2])

        # Restart a clean server over the same cache directory and
        # reattach by campaign key: the ledger recorded at submission
        # replays the same plan, and only the lost remainder executes.
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        with serve_in_thread(cache_dir, socket_dir / "svc2.sock",
                             fleet=1) as restarted:
            result = ServiceClient(
                restarted.socket_path).run_attached(campaign)
            executed = restarted.broker.counters["tasks.executed"]

        assert result.campaign == campaign
        assert result.statuses == ["hit", "computed", "computed"]
        assert executed == len(keys) - 1, \
            "reattach must re-execute only the lost remainder"
        # Byte-identical to a never-killed run.
        assert result.raw_points == baseline_raw_points(config)


class TestWorkerCrashUnderService:
    def test_crashed_worker_is_retried_and_curve_is_identical(
            self, tmp_path, socket_dir, fault_plan, fresh_registry,
            monkeypatch):
        config = small_config("GS")
        spec = sweep_spec("GS", config, GRID)
        _, _, keys = spec_campaign(spec)

        # First attempt of the second cell crashes its worker; one
        # retry is allowed.  The broker passes retry=None, so the
        # pool's env-resolved policy applies under the service exactly
        # as it does one-shot.
        plan_fault(fault_plan, Fault(key=keys[1], kind="crash", seq=0))
        monkeypatch.setenv("REPRO_RETRIES", "1")

        with serve_in_thread(tmp_path / "cache",
                             socket_dir / "svc.sock", fleet=1) as server:
            result = ServiceClient(server.socket_path).run(spec)
            executed = server.broker.counters["tasks.executed"]

        assert result.statuses == ["computed"] * len(keys)
        assert executed == len(keys)
        assert fresh_registry.counter("runner.retries").value == 1
        assert result.raw_points == baseline_raw_points(config)
