"""Planned fault schedules against whole sweeps.

The invariant every test here pins: **any fault schedule the runner
survives yields a sweep byte-identical to a fault-free run** — worker
crashes, hangs, transient exceptions and poisoned cache shards are
wall-clock events only, because a re-executed task is the same pure
function of the same task contents.  Schedules the runner must *not*
survive (budget exhausted, attempts exhausted) fail with the typed
error naming the task.
"""

from __future__ import annotations

import io
import warnings

import pytest

from repro.analysis.io import save_sweep
from repro.analysis.sweeps import sweep, sweep_tasks
from repro.obs.registry import REGISTRY
from repro.runner import (
    ResultCache,
    RetryPolicy,
    TaskFailedError,
    task_keys,
)
from repro.runner.cache import CacheIntegrityWarning
from repro.runner.faults import (
    Fault,
    armed_faults,
    fired_faults,
    plan_fault,
    poison_cache_entry,
)

from ..conftest import SERVICE, SIZES, small_config

POLICIES = ("GS", "LS", "LP", "SC")

#: Spans stable and (for the quick configs) near-saturation loads.
GRID = (0.35, 0.55)

#: Fast chaos posture: real backoff sleeping proves nothing here.
FAST = dict(backoff_base=0.001, backoff_cap=0.01)


def payload(result) -> str:
    buf = io.StringIO()
    save_sweep(result, buf)
    return buf.getvalue()


def grid_keys(config) -> list[str]:
    return task_keys(sweep_tasks(config, SIZES, SERVICE, GRID))


@pytest.mark.parametrize("policy", POLICIES)
class TestCrashRecovery:
    """A hard worker kill (``os._exit``) mid-sweep, for every policy."""

    def test_byte_identical_and_counted(self, policy, fault_plan):
        config = small_config(policy)
        keys = grid_keys(config)
        baseline = sweep(policy, config, SIZES, SERVICE, GRID, workers=2)

        REGISTRY.reset()
        plan_fault(fault_plan, Fault(key=keys[0], kind="crash"))
        survived = sweep(policy, config, SIZES, SERVICE, GRID, workers=2,
                         retry=RetryPolicy(max_attempts=2, **FAST))

        assert payload(survived) == payload(baseline)
        assert len(fired_faults(fault_plan)) == 1
        assert not armed_faults(fault_plan)
        assert REGISTRY.counter("runner.retries").value == 1
        assert REGISTRY.counter("runner.workers.replaced").value >= 1
        assert REGISTRY.counter("runner.timeouts").value == 0


class TestTransientStorm:
    def test_every_task_flaky_twice_serial(self, fault_plan):
        config = small_config("GS")
        keys = grid_keys(config)
        baseline = sweep("GS", config, SIZES, SERVICE, GRID, workers=1)

        REGISTRY.reset()
        for key in keys:
            plan_fault(fault_plan, Fault(key=key, kind="transient", seq=0))
            plan_fault(fault_plan, Fault(key=key, kind="transient", seq=1))
        survived = sweep("GS", config, SIZES, SERVICE, GRID, workers=1,
                         retry=RetryPolicy(max_attempts=3, **FAST))

        assert payload(survived) == payload(baseline)
        assert len(fired_faults(fault_plan)) == 2 * len(keys)
        assert REGISTRY.counter("runner.retries").value == 2 * len(keys)

    def test_mixed_crash_and_transient(self, fault_plan):
        config = small_config("LS")
        keys = grid_keys(config)
        baseline = sweep("LS", config, SIZES, SERVICE, GRID, workers=2)

        REGISTRY.reset()
        plan_fault(fault_plan, Fault(key=keys[0], kind="crash"))
        plan_fault(fault_plan, Fault(key=keys[1], kind="transient"))
        survived = sweep("LS", config, SIZES, SERVICE, GRID, workers=2,
                         retry=RetryPolicy(max_attempts=3, **FAST))

        assert payload(survived) == payload(baseline)
        assert len(fired_faults(fault_plan)) == 2
        # Whether the transient's exception outraces the crash breaking
        # the pool is a kernel-level race: it either consumes a retry or
        # the task is rescheduled free with the broken round.  Between
        # them the two faults account for exactly two re-executions.
        retried = REGISTRY.counter("runner.retries").value
        rescheduled = REGISTRY.counter("runner.tasks.rescheduled").value
        assert retried >= 1
        assert retried + rescheduled == 2
        assert REGISTRY.counter("runner.timeouts").value == 0


class TestHangTimeout:
    def test_hung_worker_is_replaced(self, fault_plan):
        config = small_config("GS")
        keys = grid_keys(config)
        baseline = sweep("GS", config, SIZES, SERVICE, GRID, workers=2)

        REGISTRY.reset()
        plan_fault(fault_plan,
                   Fault(key=keys[0], kind="hang", hang_seconds=60.0))
        survived = sweep("GS", config, SIZES, SERVICE, GRID, workers=2,
                         retry=RetryPolicy(max_attempts=2, timeout=5.0,
                                           **FAST))

        assert payload(survived) == payload(baseline)
        assert REGISTRY.counter("runner.timeouts").value == 1
        assert REGISTRY.counter("runner.retries").value == 1
        assert REGISTRY.counter("runner.workers.replaced").value >= 1


class TestSerialWorkerFaults:
    """``workers=1`` — the ``$REPRO_WORKERS``-unset default — must
    still route through a single-worker pool when a timeout or an
    armed fault plan demands preemption or crash isolation, exactly as
    the :class:`RetryPolicy` docstring promises.  A regression to the
    in-process path would ignore ``--task-timeout`` (the hang below
    would block forever) or run a ``crash`` fault's ``os._exit`` in
    *this* process."""

    def test_hang_times_out_at_one_worker(self, fault_plan):
        config = small_config("GS")
        keys = grid_keys(config)
        baseline = sweep("GS", config, SIZES, SERVICE, GRID, workers=1)

        REGISTRY.reset()
        plan_fault(fault_plan,
                   Fault(key=keys[0], kind="hang", hang_seconds=60.0))
        survived = sweep("GS", config, SIZES, SERVICE, GRID, workers=1,
                         retry=RetryPolicy(max_attempts=2, timeout=5.0,
                                           **FAST))

        assert payload(survived) == payload(baseline)
        assert REGISTRY.counter("runner.timeouts").value == 1
        assert REGISTRY.counter("runner.retries").value == 1
        assert REGISTRY.counter("runner.workers.replaced").value >= 1

    def test_crash_kills_a_worker_not_this_process(self, fault_plan):
        config = small_config("LS")
        keys = grid_keys(config)
        baseline = sweep("LS", config, SIZES, SERVICE, GRID, workers=1)

        REGISTRY.reset()
        plan_fault(fault_plan, Fault(key=keys[0], kind="crash"))
        # Surviving at all proves the crash ran in a worker: in-process
        # dispatch would os._exit the test runner here.
        survived = sweep("LS", config, SIZES, SERVICE, GRID, workers=1,
                         retry=RetryPolicy(max_attempts=2, **FAST))

        assert payload(survived) == payload(baseline)
        assert len(fired_faults(fault_plan)) == 1
        assert REGISTRY.counter("runner.retries").value == 1
        assert REGISTRY.counter("runner.workers.replaced").value >= 1


class TestCampaignWideBudget:
    """The retry budget spans every chunk of a sweep.

    ``workers=1`` executes one grid point per ``execute()`` chunk, so a
    per-chunk budget would silently reset between grid points and never
    bind."""

    def test_budget_spans_chunks(self, fault_plan):
        config = small_config("GS")
        for key in grid_keys(config):
            plan_fault(fault_plan, Fault(key=key, kind="transient"))
        # budget=1 grants the first grid point's retry; the second grid
        # point — a later chunk — must find the budget already spent.
        with pytest.raises(TaskFailedError, match="budget exhausted"):
            sweep("GS", config, SIZES, SERVICE, GRID, workers=1,
                  retry=RetryPolicy(max_attempts=3, retry_budget=1,
                                    **FAST))
        assert REGISTRY.counter("runner.retries").value == 1

    def test_sufficient_budget_survives_byte_identical(self, fault_plan):
        config = small_config("GS")
        keys = grid_keys(config)
        baseline = sweep("GS", config, SIZES, SERVICE, GRID, workers=1)

        REGISTRY.reset()
        for key in keys:
            plan_fault(fault_plan, Fault(key=key, kind="transient"))
        survived = sweep("GS", config, SIZES, SERVICE, GRID, workers=1,
                         retry=RetryPolicy(max_attempts=3,
                                           retry_budget=len(keys),
                                           **FAST))

        assert payload(survived) == payload(baseline)
        assert REGISTRY.counter("runner.retries").value == len(keys)


class TestPoisonedCache:
    def test_corrupt_shard_recomputed_not_served(self, tmp_path):
        config = small_config("LP")
        keys = grid_keys(config)
        cache = ResultCache(tmp_path / "cache")
        cold = sweep("LP", config, SIZES, SERVICE, GRID,
                     workers=1, cache=cache)
        poison_cache_entry(cache, keys[0])

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            warm = sweep("LP", config, SIZES, SERVICE, GRID,
                         workers=1, cache=cache)

        assert payload(warm) == payload(cold)
        assert any(issubclass(w.category, CacheIntegrityWarning)
                   for w in caught)
        # The recompute heals the shard: a third run is warning-free.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            healed = sweep("LP", config, SIZES, SERVICE, GRID,
                           workers=1, cache=cache)
        assert payload(healed) == payload(cold)
        assert not any(issubclass(w.category, CacheIntegrityWarning)
                       for w in caught)


class TestUnsurvivableSchedules:
    def test_attempts_exhausted_names_task(self, fault_plan):
        config = small_config("GS")
        keys = grid_keys(config)
        for seq in range(2):
            plan_fault(fault_plan,
                       Fault(key=keys[0], kind="transient", seq=seq))
        with pytest.raises(TaskFailedError, match="after 2 attempts"):
            sweep("GS", config, SIZES, SERVICE, GRID, workers=1,
                  retry=RetryPolicy(max_attempts=2, **FAST))

    def test_retry_budget_exhausted(self, fault_plan):
        config = small_config("GS")
        keys = grid_keys(config)
        for seq in range(3):
            plan_fault(fault_plan,
                       Fault(key=keys[0], kind="transient", seq=seq))
        with pytest.raises(TaskFailedError):
            sweep("GS", config, SIZES, SERVICE, GRID, workers=1,
                  retry=RetryPolicy(max_attempts=5, retry_budget=1,
                                    **FAST))
        # Exactly one retry was granted before the budget ran dry.
        assert REGISTRY.counter("runner.retries").value == 1
