"""Fault tolerance × the batch backend: resume, cache isolation.

The batch backend slots in below the whole fault-tolerance stack —
task keys, caches, campaign manifests, fault plans all operate on
:class:`~repro.runner.RunTask`, which only *carries* the backend.  The
two contracts pinned here:

* an interrupted ``backend="batch"`` sweep resumes from its checkpoint
  and produces bytes identical to an uninterrupted batch run;
* batch task keys live in a disjoint key space from scalar ones, so
  the shared result cache can never serve a scalar entry to a batch
  task or vice versa (the statistics are contractually equal, but the
  cache must not *assume* the contract holds).
"""

from __future__ import annotations

import io
import os
import signal
import subprocess
import sys
import textwrap
import time

from repro.analysis.io import save_sweep
from repro.analysis.sweeps import sweep, sweep_tasks
from repro.runner import (
    ResultCache,
    campaign_key,
    campaign_progress,
    load_campaign,
    task_keys,
)
from repro.runner.faults import FAULTS_ENV, Fault, plan_fault

from ..conftest import SERVICE, SIZES, small_config

GRID = (0.3, 0.4, 0.5)

#: The interrupted batch-backend sweep, run in a child so SIGINT can
#: kill it; the second grid point is armed to hang.
CHILD = textwrap.dedent("""
    import sys
    from repro.analysis.sweeps import sweep
    from repro.runner import ResultCache
    sys.path.insert(0, {test_dir!r})
    from conftest import SERVICE, SIZES, small_config  # tests/runner

    sweep("GS", small_config("GS"), SIZES, SERVICE, {grid!r},
          workers=1, cache=ResultCache({cache_dir!r}), backend="batch")
""")


def payload(result) -> str:
    buf = io.StringIO()
    save_sweep(result, buf)
    return buf.getvalue()


def wait_for(predicate, timeout=60.0, interval=0.05) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestInterruptedBatchSweepResumes:
    def test_sigint_then_resume_is_byte_identical(
            self, tmp_path, fault_plan, batch_calls, monkeypatch):
        config = small_config("GS")
        keys = task_keys(sweep_tasks(config, SIZES, SERVICE, GRID,
                                     backend="batch"))
        cache_dir = tmp_path / "cache"
        cache = ResultCache(cache_dir)

        plan_fault(fault_plan,
                   Fault(key=keys[1], kind="hang", hang_seconds=300.0))
        test_dir = os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))
        child = subprocess.Popen(
            [sys.executable, "-c",
             CHILD.format(test_dir=test_dir, grid=GRID,
                          cache_dir=str(cache_dir))],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env={**os.environ, FAULTS_ENV: str(fault_plan)},
        )
        try:
            assert wait_for(lambda: cache.contains(keys[0])), (
                "child never checkpointed its first grid point")
            child.send_signal(signal.SIGINT)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait()
        assert child.returncode != 0, "interrupted child exited cleanly"

        assert cache.contains(keys[0])
        assert not cache.contains(keys[1])
        assert not cache.contains(keys[2])

        manifest = load_campaign(cache, campaign_key("sweep", "GS", keys))
        assert manifest is not None
        assert manifest.status == "running"
        done, total = campaign_progress(cache, manifest)
        assert (done, total) == (1, len(keys))

        # Resume clean: only the two lost points hit the batch kernel.
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        resumed = sweep("GS", config, SIZES, SERVICE, GRID,
                        workers=1, cache=cache, backend="batch")
        assert batch_calls["count"] == len(keys) - 1

        manifest = load_campaign(cache, campaign_key("sweep", "GS", keys))
        assert manifest.status == "complete"

        baseline = sweep("GS", config, SIZES, SERVICE, GRID, workers=1,
                         cache=False, backend="batch")
        assert payload(resumed) == payload(baseline)


class TestBackendCacheIsolation:
    def test_batch_and_scalar_keys_are_disjoint(self):
        config = small_config("GS")
        scalar = set(task_keys(sweep_tasks(config, SIZES, SERVICE, GRID)))
        batch = set(task_keys(sweep_tasks(config, SIZES, SERVICE, GRID,
                                          backend="batch")))
        assert scalar.isdisjoint(batch)

    def test_scalar_cache_cannot_serve_a_batch_campaign(
            self, tmp_path, batch_calls, engine_calls):
        """A scalar-populated cache gives a batch sweep zero hits."""
        config = small_config("GS", measured_jobs=200)
        cache = ResultCache(tmp_path / "cache")
        grid = (0.3, 0.4)
        scalar_run = sweep("GS", config, SIZES, SERVICE, grid,
                           workers=1, cache=cache)
        assert engine_calls["count"] == len(grid)
        assert batch_calls["count"] == 0

        batch_run = sweep("GS", config, SIZES, SERVICE, grid,
                          workers=1, cache=cache, backend="batch")
        # Every grid point was recomputed by the kernel — no cross-
        # backend cache hit — and no scalar engine run happened.
        assert batch_calls["count"] == len(grid)
        assert engine_calls["count"] == len(grid)
        # Both backends' entries now coexist under distinct keys.
        for key in task_keys(sweep_tasks(config, SIZES, SERVICE, grid)):
            assert cache.contains(key)
        for key in task_keys(sweep_tasks(config, SIZES, SERVICE, grid,
                                         backend="batch")):
            assert cache.contains(key)
        # And the statistics agree, as the oracle contract promises.
        assert payload(scalar_run) == payload(batch_run)

    def test_warm_batch_cache_skips_the_kernel(self, tmp_path,
                                               batch_calls):
        config = small_config("GS", measured_jobs=200)
        cache = ResultCache(tmp_path / "cache")
        grid = (0.3, 0.4)
        first = sweep("GS", config, SIZES, SERVICE, grid,
                      workers=1, cache=cache, backend="batch")
        runs = batch_calls["count"]
        assert runs == len(grid)
        second = sweep("GS", config, SIZES, SERVICE, grid,
                       workers=1, cache=cache, backend="batch")
        assert batch_calls["count"] == runs, "warm cache re-ran the kernel"
        assert payload(first) == payload(second)
