"""Chaos-suite fixtures: fault plans, clean metrics, the chaos log.

Every chaos test runs with a fresh metrics registry (so retry/timeout
counter assertions are exact) and, when ``$REPRO_CHAOS_LOG`` names a
file, appends one JSON line per test recording which faults fired and
what the fault-tolerance counters ended at — the artifact CI uploads
so a red chaos job can be diagnosed from the log alone.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.obs.registry import REGISTRY
from repro.runner.faults import FAULTS_ENV, armed_faults, fired_faults

#: Path of the JSONL chaos log (one record per chaos test); unset
#: disables logging.  Set by the CI chaos job, handy locally too.
CHAOS_LOG_ENV = "REPRO_CHAOS_LOG"

#: The fault-tolerance counters every chaos record snapshots.
COUNTERS = (
    "runner.retries",
    "runner.timeouts",
    "runner.workers.replaced",
    "runner.tasks.rescheduled",
    "runner.tasks.recovered",
)


@pytest.fixture
def fresh_registry():
    """A clean process-wide metrics registry, restored afterwards."""
    REGISTRY.reset()
    yield REGISTRY
    REGISTRY.reset()


@pytest.fixture
def fault_plan(request, monkeypatch, tmp_path):
    """An empty armed fault-plan directory, advertised via the env.

    The environment variable (not a parameter) is what real workers
    inherit, so tests exercise the production wiring.  The path is
    stashed on the test node because the env var is already restored
    by the time ``chaos_log`` writes its record.
    """
    root = tmp_path / "faults"
    root.mkdir()
    monkeypatch.setenv(FAULTS_ENV, str(root))
    request.node.chaos_fault_plan = root
    return root


@pytest.fixture(autouse=True)
def chaos_log(request, fresh_registry):
    """Append one JSONL record per test to ``$REPRO_CHAOS_LOG``.

    Ordered after ``fresh_registry`` so the counters are read before
    the registry is wiped on teardown.
    """
    yield
    log_path = os.environ.get(CHAOS_LOG_ENV, "").strip()
    if not log_path:
        return
    record = {
        "test": request.node.nodeid,
        "outcome": getattr(request.node, "rep_outcome", "unknown"),
        "counters": {
            name: REGISTRY.counter(name).value for name in COUNTERS
        },
    }
    plan = getattr(request.node, "chaos_fault_plan", None)
    if plan is not None and plan.is_dir():
        record["fired"] = [p.name for p in fired_faults(plan)]
        record["unfired"] = [p.name for p in armed_faults(plan)]
    with open(log_path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")


@pytest.hookimpl(hookwrapper=True, tryfirst=True)
def pytest_runtest_makereport(item, call):
    """Stash the call-phase outcome where ``chaos_log`` can see it."""
    outcome = yield
    report = outcome.get_result()
    if report.when == "call":
        item.rep_outcome = report.outcome
