"""Interrupted campaigns resume without recomputing finished work.

The checkpoint/resume contract: every collected grid point is persisted
to the result cache *immediately*, and the campaign manifest records
the full planned task set — so a sweep killed mid-flight (SIGINT here,
standing in for OOM kills and reboots) resumes from the last completed
point when re-invoked, re-executing only the lost remainder, and the
resumed curve is byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import io
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.analysis.io import save_sweep
from repro.analysis.sweeps import sweep, sweep_tasks
from repro.runner import (
    ResultCache,
    campaign_key,
    campaign_progress,
    load_campaign,
    task_keys,
)
from repro.runner.faults import FAULTS_ENV, Fault, plan_fault

from ..conftest import SERVICE, SIZES, small_config

GRID = (0.3, 0.4, 0.5)

#: The interrupted sweep, run in a child so SIGINT can kill it.  The
#: second grid point is armed to hang (serially, in-process), so the
#: child is interrupted with exactly one point completed.
CHILD = textwrap.dedent("""
    import sys
    from repro.analysis.sweeps import sweep
    from repro.runner import ResultCache
    sys.path.insert(0, {test_dir!r})
    from conftest import SERVICE, SIZES, small_config  # tests/runner

    sweep("GS", small_config("GS"), SIZES, SERVICE, {grid!r},
          workers=1, cache=ResultCache({cache_dir!r}))
""")


def payload(result) -> str:
    buf = io.StringIO()
    save_sweep(result, buf)
    return buf.getvalue()


def wait_for(predicate, timeout=60.0, interval=0.05) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestInterruptedSweepResumes:
    def test_sigint_then_resume_reexecutes_only_remainder(
            self, tmp_path, fault_plan, engine_calls, monkeypatch):
        config = small_config("GS")
        keys = task_keys(sweep_tasks(config, SIZES, SERVICE, GRID))
        cache_dir = tmp_path / "cache"
        cache = ResultCache(cache_dir)

        plan_fault(fault_plan,
                   Fault(key=keys[1], kind="hang", hang_seconds=300.0))
        test_dir = os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))
        child = subprocess.Popen(
            [sys.executable, "-c",
             CHILD.format(test_dir=test_dir, grid=GRID,
                          cache_dir=str(cache_dir))],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env={**os.environ, FAULTS_ENV: str(fault_plan)},
        )
        try:
            # The hang on point 2 holds the child exactly here: point 1
            # checkpointed, nothing else.
            assert wait_for(lambda: cache.contains(keys[0])), (
                "child never checkpointed its first grid point")
            child.send_signal(signal.SIGINT)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait()
        assert child.returncode != 0, "interrupted child exited cleanly"

        assert cache.contains(keys[0])
        assert not cache.contains(keys[1])
        assert not cache.contains(keys[2])

        # The campaign manifest survived the interrupt, still open.
        manifest = load_campaign(cache, campaign_key("sweep", "GS", keys))
        assert manifest is not None
        assert manifest.status == "running"
        done, total = campaign_progress(cache, manifest)
        assert (done, total) == (1, len(keys))

        # Resume: the armed hang was already claimed by the child, so
        # the re-run proceeds clean — and must only execute the two
        # lost points (the engine counter is in-process, workers=1).
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        resumed = sweep("GS", config, SIZES, SERVICE, GRID,
                        workers=1, cache=cache)
        assert engine_calls["count"] == len(keys) - 1

        manifest = load_campaign(cache, campaign_key("sweep", "GS", keys))
        assert manifest.status == "complete"

        # Byte-identical to a never-interrupted run.
        baseline = sweep("GS", config, SIZES, SERVICE, GRID, workers=1,
                         cache=False)
        assert payload(resumed) == payload(baseline)


class TestCliResume:
    """``repro-sim sweep --resume`` wiring, exercised in-process."""

    ARGS = ["sweep", "--policy", "GS", "--limit", "16", "--seed", "7",
            "--warmup", "100", "--measured", "400",
            "--grid", "0.3:0.5:0.1"]

    @pytest.fixture
    def cache_env(self, monkeypatch, tmp_path):
        cache_dir = tmp_path / "cli-cache"
        monkeypatch.setenv("REPRO_CACHE", str(cache_dir))
        return cache_dir

    def run_cli(self, argv, capsys):
        from repro.cli import main

        code = main(argv)
        out = capsys.readouterr().out
        return code, out

    def test_resume_fresh_campaign_reports_and_runs(self, cache_env,
                                                    capsys):
        code, out = self.run_cli(self.ARGS + ["--resume"], capsys)
        assert code == 0
        assert "resume: no previous state" in out

    def test_resume_completed_campaign_skips_everything(
            self, cache_env, capsys, tmp_path, engine_calls):
        out1 = tmp_path / "first.json"
        out2 = tmp_path / "second.json"
        code, _ = self.run_cli(self.ARGS + ["--json", str(out1)], capsys)
        assert code == 0
        first_runs = engine_calls["count"]
        assert first_runs > 0

        code, out = self.run_cli(
            self.ARGS + ["--resume", "--json", str(out2)], capsys)
        assert code == 0
        assert "re-executing 0" in out
        assert engine_calls["count"] == first_runs
        assert out2.read_bytes() == out1.read_bytes()

    def test_resume_refuses_no_cache(self, cache_env, capsys):
        with pytest.raises(SystemExit, match="--no-cache"):
            self.run_cli(self.ARGS + ["--resume", "--no-cache"], capsys)
