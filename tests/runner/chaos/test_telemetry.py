"""Acceptance: a faulted campaign round-trips through the telemetry
read side.

One crash-and-retry campaign, then every consumer is pointed at its
artifacts: the dashboard snapshot must show the true progress and
retry counters, the exported Chrome trace must contain a span for
*every* attempt (the failed one included), and every published event
log must validate cleanly against the event schemas.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.sweeps import sweep, sweep_tasks
from repro.obs.dash import collect, render
from repro.obs.gate import OBS_DIR_ENV, OBS_ENV
from repro.obs.spans import (
    SpanRecorder,
    export_chrome_trace,
    spans_from_obs,
    to_chrome_trace,
)
from repro.obs.store import EventStore, validate_log
from repro.runner import ResultCache, RetryPolicy, task_keys
from repro.runner.faults import Fault, plan_fault

from ..conftest import SERVICE, SIZES, small_config

GRID = (0.35, 0.55)
FAST = dict(backoff_base=0.001, backoff_cap=0.01)


@pytest.fixture
def faulted_campaign(fault_plan, monkeypatch, tmp_path):
    """Run one sweep where the first task's worker crashes once.

    Returns ``(obs_root, cache, recorder, keys)`` after the campaign
    survived via retry.
    """
    obs_root = tmp_path / "obs"
    monkeypatch.setenv(OBS_ENV, "1")
    monkeypatch.setenv(OBS_DIR_ENV, str(obs_root))
    config = small_config("LS")
    keys = task_keys(sweep_tasks(config, SIZES, SERVICE, GRID))
    plan_fault(fault_plan, Fault(key=keys[0], kind="crash"))
    cache = ResultCache(tmp_path / "cache")
    recorder = SpanRecorder()
    with recorder:
        sweep("LS", config, SIZES, SERVICE, GRID, workers=2,
              cache=cache, retry=RetryPolicy(max_attempts=2, **FAST))
    return obs_root, cache, recorder, keys


class TestFaultedCampaignRoundTrip:
    def test_dashboard_shows_progress_and_retries(self,
                                                  faulted_campaign):
        obs_root, cache, _, keys = faulted_campaign
        data = collect(obs_root, cache.root)
        assert data.runs == len(keys)
        assert data.cache_counts.get("computed") == len(keys)
        assert data.tasks_retried == 1
        assert data.extra_attempts == 1
        (row,) = data.campaigns
        assert (row.done, row.total) == (len(keys), len(keys))
        assert row.status == "complete"
        frame = render(data)
        assert f"{row.done}/{row.total} (100%)" in frame
        assert "retried 1 (+1 attempts)" in frame

    def test_trace_has_a_span_per_attempt(self, faulted_campaign,
                                          tmp_path):
        _, _, recorder, keys = faulted_campaign
        out = tmp_path / "campaign.trace.json"
        export_chrome_trace(recorder, out)
        payload = json.loads(out.read_text())
        attempts = [e for e in payload["traceEvents"]
                    if e.get("cat") == "attempt"]
        # One retry: len(keys) first attempts plus one re-execution.
        assert len(attempts) == len(keys) + 1
        failed = [e for e in attempts
                  if e["args"]["status"] == "failed"]
        assert len(failed) == 1
        assert failed[0]["args"]["key"] == keys[0]
        assert failed[0]["args"]["cause"]
        campaigns = [e for e in payload["traceEvents"]
                     if e.get("cat") == "campaign"]
        assert len(campaigns) == 1

    def test_posthoc_spans_record_attempt_counts(self,
                                                 faulted_campaign):
        obs_root, cache, _, keys = faulted_campaign
        spans, markers = spans_from_obs(obs_root, cache.root)
        tasks = {s.args["key"]: s for s in spans
                 if s.category == "task"}
        assert tasks[keys[0]].args["attempts"] == 2
        assert tasks[keys[1]].args["attempts"] == 1
        assert any(m.name == "failed attempt 1" for m in markers)
        assert any(s.category == "campaign" for s in spans)
        # The tuple form feeds the exporter directly.
        assert to_chrome_trace((spans, markers))["traceEvents"]

    def test_every_published_log_validates_clean(self,
                                                 faulted_campaign):
        obs_root, _, _, keys = faulted_campaign
        store = EventStore(obs_root)
        streams = store.runs()
        assert len(streams) == len(keys)
        for stream in streams:
            assert stream.log_path is not None
            count, issues = validate_log(stream.log_path)
            assert count > 0
            assert issues == []
