"""Crash recovery for the *fused* batch path.

``test_batch_interop.py`` pins resume for batch campaigns whose child
ran task-at-a-time (fault injection was armed, so fusion was gated
off).  This file kills a process in the middle of a genuinely fused
wave — several lanes in flight inside one
:class:`~repro.sim.batch.BatchLaneKernel` call — and proves the
per-task checkpoint granularity survives fusion:

* points whose lanes retired before the crash are on disk, the
  in-flight lanes are simply lost;
* ``--resume`` (a re-invoked cached sweep) re-executes *only* the
  unfinished grid points, loading that many lanes and no more;
* the resumed curve is byte-identical to a fault-free fused run.

The crash is deterministic: the child SIGKILLs itself from inside the
first :meth:`~repro.runner.cache.ResultCache.store` call, i.e. at the
exact moment the first lane retires while the rest of the wave is
still running.
"""

from __future__ import annotations

import io
import os
import signal
import subprocess
import sys
import textwrap

from repro.analysis.io import save_sweep
from repro.analysis.sweeps import sweep, sweep_tasks
from repro.runner import (
    ResultCache,
    campaign_key,
    campaign_progress,
    load_campaign,
    task_keys,
)

from ..conftest import SERVICE, SIZES, small_config

GRID = (0.3, 0.4, 0.5, 0.6)

#: The fused sweep, run in a child that kills itself (SIGKILL — no
#: cleanup, no atexit) from inside the first cache checkpoint.
CHILD = textwrap.dedent("""
    import os, signal, sys
    sys.path.insert(0, {test_dir!r})
    from conftest import SERVICE, SIZES, small_config  # tests/runner

    from repro.analysis.sweeps import sweep
    from repro.runner.cache import ResultCache

    real_store = ResultCache.store
    stores = [0]

    def crashing_store(self, key, point, *args, **kwargs):
        real_store(self, key, point, *args, **kwargs)
        stores[0] += 1
        if stores[0] == 1:
            os.kill(os.getpid(), signal.SIGKILL)

    ResultCache.store = crashing_store
    sweep("GS", small_config("GS"), SIZES, SERVICE, {grid!r},
          workers=1, cache=ResultCache({cache_dir!r}), backend="batch")
""")


def payload(result) -> str:
    buf = io.StringIO()
    save_sweep(result, buf)
    return buf.getvalue()


class TestCrashMidFusedWave:
    def test_resume_reruns_only_the_lost_lanes(self, tmp_path,
                                               batch_calls):
        config = small_config("GS")
        keys = task_keys(sweep_tasks(config, SIZES, SERVICE, GRID,
                                     backend="batch"))
        cache_dir = tmp_path / "cache"
        cache = ResultCache(cache_dir)

        test_dir = os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))
        child = subprocess.run(
            [sys.executable, "-c",
             CHILD.format(test_dir=test_dir, grid=GRID,
                          cache_dir=str(cache_dir))],
            capture_output=True, timeout=120,
        )
        assert child.returncode == -signal.SIGKILL, (
            f"child should die by its own SIGKILL, got "
            f"{child.returncode}: {child.stderr.decode()[-500:]}"
        )

        # Exactly one lane retired before the crash; the rest of the
        # wave was in flight and is lost.
        done = [key for key in keys if cache.contains(key)]
        assert len(done) == 1

        manifest = load_campaign(cache, campaign_key("sweep", "GS", keys))
        assert manifest is not None
        assert manifest.status == "running"
        assert campaign_progress(cache, manifest) == (1, len(keys))

        # Resume: only the lost points load lanes; the survivor is a
        # cache hit.
        resumed = sweep("GS", config, SIZES, SERVICE, GRID,
                        workers=1, cache=cache, backend="batch")
        assert batch_calls["count"] == len(keys) - 1

        manifest = load_campaign(cache, campaign_key("sweep", "GS", keys))
        assert manifest.status == "complete"
        for key in keys:
            assert cache.contains(key)

        # Byte-identical to a fused run that never crashed.
        clean = sweep("GS", config, SIZES, SERVICE, GRID,
                      workers=1, cache=False, backend="batch")
        assert payload(resumed) == payload(clean)
