"""Golden equivalence: parallel and cached execution change nothing.

The runner's contract is that ``workers=N`` and cache hits are pure
wall-clock optimisations: for every policy the *serialized* payload of
a sweep (and of a replicated sweep) must be byte-identical between
``workers=1`` and ``workers=4`` under the same master seed, and a
cache-warm second run must reproduce it without invoking the engine.
"""

from __future__ import annotations

import io

import pytest

from repro.analysis.io import save_replicated_sweep, save_sweep
from repro.analysis.replications import replicate_sweep
from repro.analysis.sweeps import sweep
from repro.runner import ResultCache

from .conftest import SERVICE, SIZES, small_config

POLICIES = ("GS", "LS", "LP", "SC")

#: Spans stable and (for the quick configs) near-saturation loads.
GRID = (0.35, 0.55)


def sweep_payload(result) -> str:
    buf = io.StringIO()
    save_sweep(result, buf)
    return buf.getvalue()


def replicated_payload(result) -> str:
    buf = io.StringIO()
    save_replicated_sweep(result, buf)
    return buf.getvalue()


@pytest.mark.parametrize("policy", POLICIES)
class TestSweepEquivalence:
    def test_workers4_byte_identical_to_serial(self, policy):
        config = small_config(policy)
        serial = sweep(policy, config, SIZES, SERVICE, GRID, workers=1)
        parallel = sweep(policy, config, SIZES, SERVICE, GRID, workers=4)
        assert sweep_payload(parallel) == sweep_payload(serial)

    def test_replicated_workers4_byte_identical_to_serial(self, policy):
        config = small_config(policy)
        serial = replicate_sweep(policy, config, SIZES, SERVICE, GRID,
                                 replications=3, workers=1)
        parallel = replicate_sweep(policy, config, SIZES, SERVICE, GRID,
                                   replications=3, workers=4)
        assert replicated_payload(parallel) == replicated_payload(serial)


class TestCacheWarmRuns:
    def test_sweep_cache_warm_skips_engine(self, tmp_path, engine_calls):
        config = small_config("GS")
        cache = ResultCache(tmp_path / "cache")
        cold = sweep("GS", config, SIZES, SERVICE, GRID,
                     workers=1, cache=cache)
        assert engine_calls["count"] == len(cold.points)

        warm = sweep("GS", config, SIZES, SERVICE, GRID,
                     workers=1, cache=cache)
        assert engine_calls["count"] == len(cold.points), (
            "cache-warm sweep invoked the engine"
        )
        assert sweep_payload(warm) == sweep_payload(cold)

    def test_replicated_cache_warm_skips_engine(self, tmp_path,
                                                engine_calls):
        config = small_config("GS")
        cache = ResultCache(tmp_path / "cache")
        cold = replicate_sweep("GS", config, SIZES, SERVICE, GRID,
                               replications=2, workers=1, cache=cache)
        cold_runs = engine_calls["count"]
        assert cold_runs > 0

        warm = replicate_sweep("GS", config, SIZES, SERVICE, GRID,
                               replications=2, workers=1, cache=cache)
        assert engine_calls["count"] == cold_runs, (
            "cache-warm replicated sweep invoked the engine"
        )
        assert replicated_payload(warm) == replicated_payload(cold)

    def test_warm_cache_serves_parallel_run(self, tmp_path, engine_calls):
        # A cache filled serially satisfies a workers=4 run before any
        # task reaches the pool: the engine counter stays flat even
        # though monkeypatching cannot cross process boundaries.
        config = small_config("LS")
        cache = ResultCache(tmp_path / "cache")
        cold = sweep("LS", config, SIZES, SERVICE, GRID,
                     workers=1, cache=cache)
        cold_runs = engine_calls["count"]

        warm = sweep("LS", config, SIZES, SERVICE, GRID,
                     workers=4, cache=cache)
        assert engine_calls["count"] == cold_runs
        assert sweep_payload(warm) == sweep_payload(cold)

    def test_seed_change_misses_cache(self, tmp_path, engine_calls):
        cache = ResultCache(tmp_path / "cache")
        sweep("GS", small_config("GS", seed=1), SIZES, SERVICE, (0.4,),
              workers=1, cache=cache)
        sweep("GS", small_config("GS", seed=2), SIZES, SERVICE, (0.4,),
              workers=1, cache=cache)
        assert engine_calls["count"] == 2, (
            "different master seeds must not share cache entries"
        )


class TestEarlyStopPreserved:
    def test_saturation_truncation_matches_serial(self):
        # Push the grid well past saturation: the parallel sweep chunks
        # the grid, computes at most a chunk beyond the knee, and must
        # truncate to exactly the serial curve.
        config = small_config("LP")
        grid = (0.3, 0.45, 0.6, 0.75, 0.9, 0.95)
        serial = sweep("LP", config, SIZES, SERVICE, grid, workers=1)
        parallel = sweep("LP", config, SIZES, SERVICE, grid, workers=4)
        assert sweep_payload(parallel) == sweep_payload(serial)
        assert len(serial.points) <= len(grid)
        if serial.points[-1].saturated:
            assert sum(p.saturated for p in serial.points) == 1
