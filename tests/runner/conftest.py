"""Shared fixtures: tiny configs and an engine-invocation counter."""

from __future__ import annotations

import pytest

from repro.core import SimulationConfig
from repro.workload import das_s_128, das_t_900

SIZES = das_s_128()
SERVICE = das_t_900()


def small_config(policy="GS", **kw) -> SimulationConfig:
    """A fast-but-nontrivial configuration for equivalence tests."""
    base = dict(policy=policy, component_limit=16, warmup_jobs=100,
                measured_jobs=400, seed=7, batch_size=100)
    if policy == "SC":
        base.update(capacities=(128,), component_limit=None)
    base.update(kw)
    return SimulationConfig(**base)


@pytest.fixture
def batch_calls(monkeypatch):
    """Count batch-kernel lane computations — one per point actually
    simulated, whether through ``run_batch_points`` or a fused sweep
    (the batch analogue of ``engine_calls``); cache-warm batch runs
    must leave it at zero."""
    import repro.sim.batch as batch_module

    calls = {"count": 0}
    real = batch_module.BatchLaneKernel.load

    def counting(self, *args, **kwargs):
        calls["count"] += 1
        return real(self, *args, **kwargs)

    monkeypatch.setattr(batch_module.BatchLaneKernel, "load", counting)
    return calls


@pytest.fixture
def engine_calls(monkeypatch):
    """Count engine invocations (in-process runs only, ``workers=1``).

    Wraps :func:`repro.runner.worker.run_open_system`; a cache-warm run
    must leave the counter untouched.
    """
    import repro.runner.worker as worker_module

    calls = {"count": 0}
    real = worker_module.run_open_system

    def counting(*args, **kwargs):
        calls["count"] += 1
        return real(*args, **kwargs)

    monkeypatch.setattr(worker_module, "run_open_system", counting)
    return calls
