"""Unit tests for campaign manifests (checkpoint/resume state)."""

from __future__ import annotations

import json

import pytest

from repro.obs.registry import REGISTRY
from repro.runner import (
    ResultCache,
    RunTask,
    SweepManifest,
    begin_campaign,
    campaign_key,
    campaign_progress,
    execute,
    finish_campaign,
    load_campaign,
    sweep_manifest_path,
    task_keys,
)

from .conftest import SERVICE, SIZES, small_config


def make_tasks(n=3, policy="GS"):
    config = small_config(policy, measured_jobs=200)
    grid = tuple(0.3 + 0.1 * i for i in range(n))
    return [RunTask(config, SIZES, SERVICE, rho) for rho in grid]


@pytest.fixture
def fresh_registry():
    REGISTRY.reset()
    yield REGISTRY
    REGISTRY.reset()


class TestCampaignKey:
    def test_stable_across_calls(self):
        keys = task_keys(make_tasks())
        assert (campaign_key("sweep", "GS", keys)
                == campaign_key("sweep", "GS", keys))

    @pytest.mark.parametrize("mutate", [
        lambda kind, label, keys: (kind + "x", label, keys),
        lambda kind, label, keys: (kind, label + "x", keys),
        lambda kind, label, keys: (kind, label, keys[:-1]),
        lambda kind, label, keys: (kind, label, list(reversed(keys))),
    ])
    def test_any_input_change_changes_identity(self, mutate):
        keys = task_keys(make_tasks())
        base = campaign_key("sweep", "GS", keys)
        assert campaign_key(*mutate("sweep", "GS", keys)) != base


class TestManifestRoundTrip:
    def test_to_from_dict(self):
        manifest = SweepManifest(
            campaign="ab" * 32, kind="sweep", label="GS",
            task_keys=("k1", "k2"), descriptions=("d1", "d2"))
        clone = SweepManifest.from_dict(manifest.to_dict())
        assert clone == manifest

    def test_schema_mismatch_rejected(self):
        payload = SweepManifest(
            campaign="ab" * 32, kind="sweep", label="GS",
            task_keys=(), descriptions=()).to_dict()
        payload["schema"] = "something/else"
        with pytest.raises(ValueError):
            SweepManifest.from_dict(payload)


class TestBeginFinish:
    def test_no_store_no_manifest(self):
        assert begin_campaign("sweep", "GS", make_tasks(), None) is None
        assert finish_campaign(None, None, points=0) is None

    def test_begin_writes_manifest_next_to_cache(self, tmp_path):
        store = ResultCache(tmp_path / "cache")
        tasks = make_tasks()
        manifest = begin_campaign("sweep", "GS", tasks, store)
        assert manifest.status == "running"
        assert manifest.task_keys == tuple(task_keys(tasks))
        path = sweep_manifest_path(store.root, manifest.campaign)
        assert path.is_file()
        assert load_campaign(store, manifest.campaign) == manifest

    def test_finish_marks_complete_with_point_count(self, tmp_path):
        store = ResultCache(tmp_path / "cache")
        manifest = begin_campaign("sweep", "GS", make_tasks(), store)
        done = finish_campaign(manifest, store, points=2)
        assert done.status == "complete"
        assert done.completed_points == 2
        assert load_campaign(store, manifest.campaign) == done

    def test_malformed_manifest_reads_as_absent(self, tmp_path):
        store = ResultCache(tmp_path / "cache")
        manifest = begin_campaign("sweep", "GS", make_tasks(), store)
        path = sweep_manifest_path(store.root, manifest.campaign)
        path.write_text("{ torn", encoding="utf-8")
        assert load_campaign(store, manifest.campaign) is None

    def test_unknown_campaign_is_none(self, tmp_path):
        store = ResultCache(tmp_path / "cache")
        assert load_campaign(store, "ff" * 32) is None


class TestProgressAndResumeCounters:
    def test_progress_counts_cache_presence(self, tmp_path):
        store = ResultCache(tmp_path / "cache")
        tasks = make_tasks(n=3)
        manifest = begin_campaign("sweep", "GS", tasks, store)
        assert campaign_progress(store, manifest) == (0, 3)

        execute(tasks[:1], workers=1, cache=store)
        assert campaign_progress(store, manifest) == (1, 3)

        execute(tasks, workers=1, cache=store)
        assert campaign_progress(store, manifest) == (3, 3)

    def test_second_begin_is_a_resumption(self, tmp_path,
                                          fresh_registry):
        store = ResultCache(tmp_path / "cache")
        tasks = make_tasks(n=2)
        begin_campaign("sweep", "GS", tasks, store)
        assert REGISTRY.counter("runner.resume.campaigns").value == 0

        execute(tasks[:1], workers=1, cache=store)
        begin_campaign("sweep", "GS", tasks, store)
        assert REGISTRY.counter("runner.resume.campaigns").value == 1
        assert REGISTRY.gauge("runner.resume.completed").value == 1
        assert REGISTRY.gauge("runner.resume.remaining").value == 1

    def test_different_labels_do_not_collide(self, tmp_path):
        store = ResultCache(tmp_path / "cache")
        tasks = make_tasks(n=2)
        a = begin_campaign("sweep", "A", tasks, store)
        b = begin_campaign("sweep", "B", tasks, store)
        assert a.campaign != b.campaign
        assert load_campaign(store, a.campaign).label == "A"
        assert load_campaign(store, b.campaign).label == "B"


class TestManifestOnDiskShape:
    def test_json_is_sorted_and_schema_tagged(self, tmp_path):
        store = ResultCache(tmp_path / "cache")
        manifest = begin_campaign("sweep", "GS", make_tasks(n=1), store)
        path = sweep_manifest_path(store.root, manifest.campaign)
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["schema"] == "repro.runner/sweep-manifest/1"
        assert list(payload) == sorted(payload)
