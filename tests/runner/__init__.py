"""Tests for the deterministic parallel execution backend."""
