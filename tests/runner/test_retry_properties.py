"""Property-based tests (hypothesis) for the fault-tolerance layer.

Two families of invariants:

* :func:`backoff_delay` is a *pure function* of ``(task key, attempt)``
  — no RNG, no clock — bounded by the cap and never negative, so retry
  schedules are reproducible and a retrying campaign is as
  deterministic as a clean one;
* a task that fails transiently any number of times (within its
  attempt allowance) produces exactly the result — and byte-exactly
  the cache entry — of a task that succeeds first try, at any worker
  count.  Retries are invisible in every output channel except the
  metrics.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner import (
    ResultCache,
    RetryPolicy,
    RunTask,
    backoff_delay,
    execute,
    task_key,
)
from repro.runner.faults import FAULTS_ENV, Fault, plan_fault

from .conftest import SERVICE, SIZES, small_config

hex_keys = st.text(alphabet="0123456789abcdef", min_size=8, max_size=64)
attempts = st.integers(min_value=1, max_value=50)


@given(key=hex_keys, attempt=attempts)
def test_backoff_is_deterministic_in_key_and_attempt(key, attempt):
    assert backoff_delay(key, attempt) == backoff_delay(key, attempt)


@given(key=hex_keys, attempt=attempts,
       base=st.floats(min_value=0.0, max_value=10.0),
       cap=st.floats(min_value=0.0, max_value=60.0))
def test_backoff_bounded_by_cap_and_nonnegative(key, attempt, base, cap):
    delay = backoff_delay(key, attempt, base=base, cap=cap)
    assert 0.0 <= delay <= cap
    if base == 0.0:
        assert delay == 0.0


@given(key=hex_keys, attempt=st.integers(min_value=1, max_value=20))
def test_backoff_jitter_stays_within_exponential_envelope(key, attempt):
    # The deterministic jitter scales the exponential term by a factor
    # in [0.5, 1.5); an uncapped call must land inside that envelope.
    base = 0.01
    delay = backoff_delay(key, attempt, base=base, cap=1e12)
    exponential = base * 2.0 ** (attempt - 1)
    assert 0.5 * exponential <= delay < 1.5 * exponential


@given(keys=st.lists(hex_keys, min_size=2, max_size=2, unique=True))
def test_backoff_depends_on_the_key(keys):
    # Equal delays on every attempt would mean the key is ignored —
    # the thundering-herd failure mode the jitter exists to break.
    a, b = keys
    assert any(
        backoff_delay(a, n) != backoff_delay(b, n) for n in range(1, 6)
    )


@given(attempt=st.integers(max_value=0))
def test_backoff_rejects_nonpositive_attempts(attempt):
    with pytest.raises(ValueError):
        backoff_delay("abcdef", attempt)


# One simulated run costs real wall clock, so the equivalence property
# samples a handful of fault schedules rather than hundreds.
@settings(max_examples=4, deadline=None)
@given(failures=st.tuples(st.integers(min_value=0, max_value=2),
                          st.integers(min_value=0, max_value=2)),
       workers=st.sampled_from([1, 2]))
def test_retried_results_cache_equivalent_to_first_try(
        tmp_path_factory, failures, workers):
    """N transient failures then success == immediate success.

    Byte-compares the *cache entries* (the durable output channel) of a
    faulted run against a clean run of the same tasks.
    """
    tmp = tmp_path_factory.mktemp("retry-prop")
    config = small_config("GS", measured_jobs=200)
    tasks = [RunTask(config, SIZES, SERVICE, rho)
             for rho in (0.35, 0.55)]
    keys = [task_key(t) for t in tasks]

    clean_cache = ResultCache(tmp / "clean")
    clean = execute(tasks, workers=workers, cache=clean_cache)

    with pytest.MonkeyPatch.context() as mp:
        plan = tmp / "faults"
        mp.setenv(FAULTS_ENV, str(plan))
        for key, count in zip(keys, failures):
            for seq in range(count):
                plan_fault(plan, Fault(key=key, kind="transient",
                                       seq=seq))
        faulted_cache = ResultCache(tmp / "faulted")
        faulted = execute(
            tasks, workers=workers, cache=faulted_cache,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0))

    assert faulted == clean
    for key in keys:
        assert (faulted_cache.path_for(key).read_bytes()
                == clean_cache.path_for(key).read_bytes())
