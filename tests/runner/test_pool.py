"""Execution backend: ordering, typed failures, env resolution."""

from __future__ import annotations

import pytest

from repro.core import SimulationConfig
from repro.runner import (
    CACHE_ENV,
    WORKERS_ENV,
    ResultCache,
    RunTask,
    TaskFailedError,
    execute,
    resolve_cache,
    resolve_workers,
    task_key,
)

from .conftest import SERVICE, SIZES, small_config


def broken_task(rho=0.4) -> RunTask:
    # Zero-capacity cluster: Multicluster construction raises inside the
    # worker, in-process or in a pool process alike.
    config = SimulationConfig(policy="GS", capacities=(0,),
                              warmup_jobs=10, measured_jobs=10)
    return RunTask(config, SIZES, SERVICE, rho)


class TestOrdering:
    def test_results_in_input_order_despite_uneven_runtimes(self):
        # First task is ~20x longer than the rest: it is submitted first
        # and completes last, so any completion-order collection would
        # misalign the output.
        configs = [small_config("GS", measured_jobs=2_000),
                   small_config("GS", measured_jobs=100),
                   small_config("GS", measured_jobs=100),
                   small_config("GS", measured_jobs=100)]
        rhos = (0.30, 0.35, 0.40, 0.45)
        tasks = [RunTask(c, SIZES, SERVICE, rho)
                 for c, rho in zip(configs, rhos)]
        serial = execute(tasks, workers=1)
        parallel = execute(tasks, workers=4)
        assert [p.offered_gross for p in parallel] == list(rhos)
        assert parallel == serial


class TestTypedFailures:
    def test_serial_failure_is_typed_and_named(self):
        task = broken_task()
        with pytest.raises(TaskFailedError) as err:
            execute([task], workers=1)
        assert err.value.key == task_key(task)
        assert "GS" in err.value.description
        assert "rho=0.4" in err.value.description

    def test_pool_failure_is_typed_and_named(self):
        good = RunTask(small_config("GS", measured_jobs=100),
                       SIZES, SERVICE, 0.3)
        bad = broken_task(0.5)
        with pytest.raises(TaskFailedError) as err:
            execute([good, bad], workers=2)
        assert err.value.key == task_key(bad)
        assert "rho=0.5" in str(err.value)

    def test_failure_does_not_hang_large_queue(self):
        # A failing first task must not force the pool to drain the
        # whole queue before surfacing (cancel_futures path).
        tasks = [broken_task(0.3)] + [
            RunTask(small_config("GS", measured_jobs=400, seed=s),
                    SIZES, SERVICE, 0.4)
            for s in range(1, 9)
        ]
        with pytest.raises(TaskFailedError):
            execute(tasks, workers=2)

    def test_nothing_stored_for_failed_batch_member(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        task = broken_task()
        with pytest.raises(TaskFailedError):
            execute([task], workers=1, cache=cache)
        assert cache.load(task_key(task)) is None
        assert cache.stores == 0


class TestResolution:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == 1

    def test_env_sets_default(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "4")
        assert resolve_workers(None) == 4
        assert resolve_workers(2) == 2  # explicit beats env

    def test_bad_env_value_raises(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(ValueError):
            resolve_workers(None)

    def test_nonpositive_workers_raise(self):
        with pytest.raises(ValueError):
            resolve_workers(0)

    def test_cache_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENV, raising=False)
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None

    def test_cache_env_switch(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_ENV, "1")
        assert resolve_cache(None) is not None
        monkeypatch.setenv(CACHE_ENV, "off")
        assert resolve_cache(None) is None
        monkeypatch.setenv(CACHE_ENV, str(tmp_path / "elsewhere"))
        cache = resolve_cache(None)
        assert cache is not None
        assert cache.root == tmp_path / "elsewhere"

    def test_explicit_instance_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_ENV, "0")
        cache = ResultCache(tmp_path)
        assert resolve_cache(cache) is cache
