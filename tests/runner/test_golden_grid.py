"""Committed golden grid campaigns, regressed through THREE paths.

``tests/data/golden/grid_<policy>.json`` freeze one small campaign
grid per policy — multiple component limits × multiple offered loads
for the multicluster policies (GS/LS/LP), loads only for SC —
generated once by the *scalar* engine and committed.  Every test run
reproduces each file byte for byte three times:

* the scalar engine, one run per grid cell (determinism: the model
  still produces the committed numbers);
* the homogeneous batch path, a width-1 lockstep kernel per cell
  (backend equivalence, as in ``test_golden_replicated.py``);
* the *fused* path, the whole heterogeneous grid through one
  :func:`~repro.runner.fused.execute_fused` call with fewer lanes
  than cells, so finished lanes retire and refill mid-campaign
  (fusion equivalence: lane packing, slot reuse and per-lane
  parameter columns change nothing).

A diff from the scalar path means the model changed (regenerate in
the same commit and say why); a diff from either batch path alone
means the backends diverged — always a bug.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.points import SweepPoint, point_to_dict
from repro.runner import RunTask, execute_fused, task_key
from repro.runner.worker import run_task_result
from repro.sim.batch import run_batch_task

from .conftest import SERVICE, SIZES, small_config

GOLDEN_DIR = Path(__file__).parent.parent / "data" / "golden"

POLICIES = ("GS", "LS", "LP", "SC")
LIMITS = (16, 24)
RHOS = (0.35, 0.55)

#: Fewer lanes than the 4-cell multicluster grids: the fused run must
#: retire a lane and refill its slot to finish, exercising the
#: heterogeneous-refill machinery rather than a single static wave.
FUSED_WIDTH = 3


def grid_tasks(policy: str) -> list[RunTask]:
    """The policy's campaign, in (limit, rho) grid order."""
    if policy == "SC":
        configs = [small_config("SC")]
    else:
        configs = [small_config(policy, component_limit=limit)
                   for limit in LIMITS]
    return [RunTask(config, SIZES, SERVICE, rho, backend="batch")
            for config in configs for rho in RHOS]


def grid_payload(tasks: list[RunTask],
                 points: list[SweepPoint]) -> str:
    """Deterministic JSON for one campaign's cells, grid order."""
    cells = [
        {
            "component_limit": task.config.component_limit,
            "offered_gross": task.offered_gross,
            "point": point_to_dict(point),
        }
        for task, point in zip(tasks, points)
    ]
    payload = {"format": "repro.grid", "version": 1, "cells": cells}
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def scalar_points(tasks: list[RunTask]) -> list[SweepPoint]:
    return [SweepPoint.from_result(run_task_result(t)) for t in tasks]


def homogeneous_batch_points(tasks: list[RunTask]) -> list[SweepPoint]:
    return [run_batch_task(t) for t in tasks]


def fused_points(tasks: list[RunTask]) -> list[SweepPoint]:
    by_key = execute_fused(tasks, cache=False, width=FUSED_WIDTH)
    return [by_key[task_key(t)] for t in tasks]


@pytest.mark.parametrize("policy", POLICIES)
class TestGoldenGrids:
    def golden(self, policy: str) -> str:
        return (GOLDEN_DIR / f"grid_{policy}.json").read_text(
            encoding="utf-8")

    def test_scalar_engine_matches_committed_fixture(self, policy):
        tasks = grid_tasks(policy)
        assert grid_payload(tasks, scalar_points(tasks)) == \
            self.golden(policy)

    def test_homogeneous_batch_matches_committed_fixture(self, policy):
        tasks = grid_tasks(policy)
        assert grid_payload(tasks, homogeneous_batch_points(tasks)) == \
            self.golden(policy)

    def test_fused_grid_matches_committed_fixture(self, policy):
        tasks = grid_tasks(policy)
        assert grid_payload(tasks, fused_points(tasks)) == \
            self.golden(policy)


def test_one_fused_call_spanning_every_policy():
    """All four campaigns fused at once: groups split per kernel shape
    internally, and each policy's cells still match its fixture."""
    per_policy = {p: grid_tasks(p) for p in POLICIES}
    everything = [t for tasks in per_policy.values() for t in tasks]
    by_key = execute_fused(everything, cache=False, width=FUSED_WIDTH)
    for policy, tasks in per_policy.items():
        points = [by_key[task_key(t)] for t in tasks]
        golden = (GOLDEN_DIR / f"grid_{policy}.json").read_text(
            encoding="utf-8")
        assert grid_payload(tasks, points) == golden


def test_grid_fixtures_differ_across_policies():
    payloads = {p: (GOLDEN_DIR / f"grid_{p}.json").read_text("utf-8")
                for p in POLICIES}
    assert len(set(payloads.values())) == len(POLICIES)
