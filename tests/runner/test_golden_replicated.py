"""Committed golden replicated sweeps, regressed through BOTH backends.

``tests/data/golden/repl_<policy>.json`` freeze the aggregated
replicated sweep (3 seeds, grid 0.35/0.55) of each policy, generated
once by the *scalar* engine and committed.  Every test run reproduces
each file byte for byte twice — once per backend — so the fixtures pin
two contracts at once:

* determinism: the scalar engine still produces the exact numbers it
  produced when the fixture was committed;
* backend equivalence: the lockstep batch kernel produces the *same
  bytes* as the scalar engine, seed for seed, through aggregation and
  serialization.

A diff from the scalar backend means the model changed (regenerate in
the same commit and say why); a diff from the batch backend alone
means the backends diverged — always a bug.
"""

from __future__ import annotations

import io
from pathlib import Path

import pytest

from repro.analysis.io import save_replicated_sweep
from repro.analysis.replications import replicate_sweep

from .conftest import SERVICE, SIZES, small_config

GOLDEN_DIR = Path(__file__).parent.parent / "data" / "golden"

POLICIES = ("GS", "LS", "LP", "SC")
GRID = (0.35, 0.55)
REPLICATIONS = 3


def fresh_payload(policy: str, backend: str) -> str:
    result = replicate_sweep(policy, small_config(policy), SIZES, SERVICE,
                             GRID, replications=REPLICATIONS,
                             cache=False, backend=backend)
    buf = io.StringIO()
    save_replicated_sweep(result, buf)
    return buf.getvalue()


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("backend", ["scalar", "batch"])
def test_replicated_fixture_reproduced_byte_exactly(policy, backend):
    golden = (GOLDEN_DIR / f"repl_{policy}.json").read_text(
        encoding="utf-8")
    assert fresh_payload(policy, backend) == golden


def test_replicated_fixtures_differ_across_policies():
    payloads = {p: (GOLDEN_DIR / f"repl_{p}.json").read_text("utf-8")
                for p in POLICIES}
    assert len(set(payloads.values())) == len(POLICIES)
