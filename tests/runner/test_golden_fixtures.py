"""Committed golden traces: the simulator's output is frozen in git.

``tests/data/golden/sweep_<policy>.json`` hold the serialized sweep of
each co-allocation policy for the small reference configuration (seed
7, component limit 16, grid 0.35/0.55), generated once with
``save_sweep`` and committed.  A fresh run must reproduce each file
**byte for byte** — across interpreter sessions, machines, worker
counts and any amount of fault-tolerance machinery in between.

A diff here means the simulation's numerical behaviour changed: either
an intended model change (regenerate the fixtures in the same commit
and say why) or an accidental determinism break (fix it).
"""

from __future__ import annotations

import io
from pathlib import Path

import pytest

from repro.analysis.io import save_sweep
from repro.analysis.sweeps import sweep

from .conftest import SERVICE, SIZES, small_config

GOLDEN_DIR = Path(__file__).parent.parent / "data" / "golden"

POLICIES = ("GS", "LS", "LP", "SC")
GRID = (0.35, 0.55)


def fresh_payload(policy: str, **sweep_kw) -> str:
    result = sweep(policy, small_config(policy), SIZES, SERVICE, GRID,
                   cache=False, **sweep_kw)
    buf = io.StringIO()
    save_sweep(result, buf)
    return buf.getvalue()


@pytest.mark.parametrize("policy", POLICIES)
class TestGoldenSweeps:
    def test_serial_run_matches_committed_fixture(self, policy):
        golden = (GOLDEN_DIR / f"sweep_{policy}.json").read_text(
            encoding="utf-8")
        assert fresh_payload(policy, workers=1) == golden

    def test_parallel_run_matches_committed_fixture(self, policy):
        golden = (GOLDEN_DIR / f"sweep_{policy}.json").read_text(
            encoding="utf-8")
        assert fresh_payload(policy, workers=2) == golden


def test_fixtures_differ_across_policies():
    # Four policies, four distinct curves: a copy-paste mishap in the
    # fixture directory would make two of them byte-equal.
    payloads = {p: (GOLDEN_DIR / f"sweep_{p}.json").read_text("utf-8")
                for p in POLICIES}
    assert len(set(payloads.values())) == len(POLICIES)
