"""The fused executor's runner contracts, pinned in isolation.

``execute_fused`` must behave exactly like :func:`repro.runner.execute`
as far as the rest of the harness can observe: same results per task
key, same per-task cache granularity (hits served, fresh points
checkpointed at lane retirement), same progress heartbeats, and a
``follow_up`` hook that reproduces dependent chains.  The bit-identity
of the *numbers* lives in the oracle/golden suites; this file pins the
*plumbing*.
"""

from __future__ import annotations

import pytest

pytest.importorskip("numpy")

from repro.runner import (  # noqa: E402
    ResultCache,
    RunTask,
    execute_fused,
    fused_eligible,
    task_key,
)
from repro.runner.faults import FAULTS_ENV  # noqa: E402
from repro.runner.worker import run_task  # noqa: E402
from repro.sim.batch import BatchBackendError  # noqa: E402

from .conftest import SERVICE, SIZES, small_config  # noqa: E402


def tasks_for(policy="GS", rhos=(0.4, 0.55, 0.7), **config_kw):
    config = small_config(policy, **config_kw)
    return [RunTask(config, SIZES, SERVICE, rho, backend="batch")
            for rho in rhos]


class TestResultsAndKeys:
    def test_every_task_is_keyed_and_matches_the_per_task_path(self):
        tasks = tasks_for()
        fused = execute_fused(tasks, cache=False)
        assert set(fused) == set(task_key(t) for t in tasks)
        for task in tasks:
            assert fused[task_key(task)] == run_task(task)

    def test_width_one_still_completes_every_task(self):
        tasks = tasks_for()
        fused = execute_fused(tasks, cache=False, width=1)
        assert len(fused) == len(tasks)

    def test_mixed_policies_fuse_in_one_call(self):
        tasks = tasks_for("GS") + tasks_for("SC") + tasks_for("LS")
        fused = execute_fused(tasks, cache=False, width=2)
        for task in tasks:
            assert fused[task_key(task)] == run_task(task)

    def test_duplicate_task_is_rejected(self):
        tasks = tasks_for()
        with pytest.raises(ValueError, match="duplicate task"):
            execute_fused(tasks + tasks[:1], cache=False)

    def test_invalid_width_is_rejected(self):
        with pytest.raises(ValueError, match="width"):
            execute_fused(tasks_for(), cache=False, width=0)

    def test_unsupported_model_raises_instead_of_degrading(self):
        config = small_config("GS", placement="first-fit")
        task = RunTask(config, SIZES, SERVICE, 0.5, backend="batch")
        with pytest.raises(BatchBackendError):
            execute_fused([task], cache=False)


class TestCacheGranularity:
    def test_every_point_is_checkpointed_under_its_own_key(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        tasks = tasks_for()
        fused = execute_fused(tasks, cache=cache)
        for task in tasks:
            assert cache.load(task_key(task)) == fused[task_key(task)]

    def test_hits_are_served_without_touching_the_kernel(
            self, tmp_path, batch_calls):
        cache = ResultCache(tmp_path / "cache")
        tasks = tasks_for()
        first = execute_fused(tasks, cache=cache)
        computed = batch_calls["count"]
        assert computed == len(tasks)
        again = execute_fused(tasks, cache=cache)
        assert batch_calls["count"] == computed
        assert again == first

    def test_partial_cache_computes_only_the_misses(
            self, tmp_path, batch_calls):
        cache = ResultCache(tmp_path / "cache")
        tasks = tasks_for()
        execute_fused(tasks[:1], cache=cache)
        assert batch_calls["count"] == 1
        fused = execute_fused(tasks, cache=cache)
        assert batch_calls["count"] == len(tasks)
        assert len(fused) == len(tasks)


class TestFollowUps:
    def test_follow_up_chains_join_the_pending_list(self):
        """A three-link chain scheduled one task at a time."""
        rhos = (0.4, 0.55, 0.7)
        chain = tasks_for(rhos=rhos)
        seen = []

        def advance(task, key, point):
            seen.append(task.offered_gross)
            nxt = len(seen)
            return [chain[nxt]] if nxt < len(chain) else None

        fused = execute_fused(chain[:1], cache=False, follow_up=advance)
        assert seen == list(rhos)
        assert set(fused) == set(task_key(t) for t in chain)

    def test_follow_up_fires_for_cache_hits_too(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        tasks = tasks_for()
        execute_fused(tasks, cache=cache)
        fired = []

        def note(task, key, point):
            fired.append(key)
            return None

        execute_fused(tasks, cache=cache, follow_up=note)
        assert sorted(fired) == sorted(task_key(t) for t in tasks)

    def test_follow_up_may_reopen_an_earlier_group(self):
        """An SC completion schedules more GS work: the GS group's
        kernel must pick it up after its pending list first drained."""
        gs = tasks_for("GS", rhos=(0.4,))
        sc = tasks_for("SC", rhos=(0.5,))
        extra_gs = tasks_for("GS", rhos=(0.6,))

        def reopen(task, key, point):
            if task.config.policy == "SC":
                return extra_gs
            return None

        fused = execute_fused(gs + sc, cache=False, follow_up=reopen)
        assert task_key(extra_gs[0]) in fused


class TestEligibility:
    def test_clean_environment_is_eligible(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        monkeypatch.delenv("REPRO_OBS", raising=False)
        assert fused_eligible()

    def test_armed_faults_disable_fusion(self, monkeypatch, tmp_path):
        monkeypatch.setenv(FAULTS_ENV, str(tmp_path))
        assert not fused_eligible()

    def test_observability_disables_fusion(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        monkeypatch.setenv("REPRO_OBS", "1")
        assert not fused_eligible()
