"""Task-key derivation: stable, collision-averse content hashes."""

from __future__ import annotations

from repro.runner import RunTask, task_key
from repro.workload import das_s_128, das_s_64, das_t_900

from .conftest import SERVICE, SIZES, small_config


def make_task(policy="GS", rho=0.4, sizes=SIZES, service=SERVICE, **kw):
    return RunTask(small_config(policy, **kw), sizes, service, rho)


class TestStability:
    def test_same_inputs_same_key(self):
        assert task_key(make_task()) == task_key(make_task())

    def test_key_is_sha256_hex(self):
        key = task_key(make_task())
        assert len(key) == 64
        assert set(key) <= set("0123456789abcdef")

    def test_fresh_distribution_instances_share_key(self):
        # The fingerprint hashes distribution *content*, not identity.
        a = RunTask(small_config(), das_s_128(), das_t_900(), 0.4)
        b = RunTask(small_config(), das_s_128(), das_t_900(), 0.4)
        assert task_key(a) == task_key(b)


class TestSensitivity:
    def test_differs_by_seed(self):
        assert task_key(make_task(seed=1)) != task_key(make_task(seed=2))

    def test_differs_by_utilization(self):
        assert task_key(make_task(rho=0.4)) != task_key(make_task(rho=0.5))

    def test_differs_by_policy(self):
        assert task_key(make_task("GS")) != task_key(make_task("LS"))

    def test_differs_by_run_length(self):
        assert (task_key(make_task(measured_jobs=400))
                != task_key(make_task(measured_jobs=800)))

    def test_differs_by_workload(self):
        assert (task_key(make_task(sizes=das_s_128()))
                != task_key(make_task(sizes=das_s_64())))

    def test_distinct_across_grid_and_seeds(self):
        # A realistic sweep's task keys are pairwise distinct.
        keys = {
            task_key(make_task(rho=rho, seed=seed))
            for rho in (0.2, 0.3, 0.4, 0.5)
            for seed in (1, 1001, 2001)
        }
        assert len(keys) == 12

    def test_describe_names_the_run(self):
        text = make_task("LS", rho=0.45, seed=9).describe()
        assert "LS" in text
        assert "seed=9" in text
        assert "0.45" in text
