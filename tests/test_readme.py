"""The README's code block and CLI claims must actually work."""

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parent.parent / "README.md"


def code_blocks(language: str) -> list[str]:
    text = README.read_text(encoding="utf-8")
    return re.findall(rf"```{language}\n(.*?)```", text, flags=re.S)


@pytest.mark.slow
def test_quickstart_block_executes():
    blocks = code_blocks("python")
    assert blocks, "README lost its quickstart block"
    namespace: dict = {}
    exec(compile(blocks[0], "<README quickstart>", "exec"), namespace)
    result = namespace["result"]
    assert result.mean_response > 0
    assert 0 < result.gross_utilization < 1


def test_cli_lines_parse():
    from repro.cli import build_parser

    parser = build_parser()
    bash = "\n".join(code_blocks("bash"))
    for line in bash.splitlines():
        line = line.strip()
        if not line.startswith("repro-sim "):
            continue
        args = line.split()[1:]
        # Parsing must succeed for every README invocation.
        parsed = parser.parse_args(args)
        assert parsed.command


def test_example_table_matches_directory():
    text = README.read_text(encoding="utf-8")
    examples = Path(__file__).resolve().parent.parent / "examples"
    for path in examples.glob("*.py"):
        assert f"`{path.name}`" in text, (
            f"README example table is missing {path.name}"
        )
