"""Service-suite fixtures: an in-thread server over a short socket.

Unix-domain socket paths are limited to ~104 bytes, so the service
fixtures live under a short ``mkdtemp`` directory instead of pytest's
(potentially deep) ``tmp_path``.
"""

from __future__ import annotations

import shutil
import tempfile
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.core import SimulationConfig
from repro.service import ServiceClient, serve_in_thread
from repro.workload import das_s_128, das_t_900

SIZES = das_s_128()
SERVICE = das_t_900()


def small_config(policy="GS", **kw) -> SimulationConfig:
    """A fast-but-nontrivial configuration (mirrors tests/runner)."""
    base = dict(policy=policy, component_limit=16, warmup_jobs=100,
                measured_jobs=400, seed=7, batch_size=100)
    if policy == "SC":
        base.update(capacities=(128,), component_limit=None)
    base.update(kw)
    return SimulationConfig(**base)


@contextmanager
def count_engine_calls():
    """Count in-process scalar engine invocations (non-fixture form,
    usable inside hypothesis examples)."""
    import repro.runner.worker as worker_module

    calls = {"count": 0}
    real = worker_module.run_open_system

    def counting(*args, **kwargs):
        calls["count"] += 1
        return real(*args, **kwargs)

    worker_module.run_open_system = counting
    try:
        yield calls
    finally:
        worker_module.run_open_system = real


@pytest.fixture
def engine_calls():
    """Count engine invocations; cache-warm service requests must not
    move it.  Works across the server's fleet threads because the
    broker executes in-process at ``workers=1``."""
    with count_engine_calls() as calls:
        yield calls


@pytest.fixture
def service_root():
    root = Path(tempfile.mkdtemp(prefix="repro-svc-"))
    yield root
    shutil.rmtree(root, ignore_errors=True)


@pytest.fixture
def service(service_root):
    """A live in-thread server bound to ``service_root``."""
    with serve_in_thread(service_root / "cache",
                         service_root / "svc.sock", fleet=4) as server:
        yield server


@pytest.fixture
def client(service):
    return ServiceClient(service.socket_path)
