"""Property: N concurrent clients see the one-shot curve, exactly once.

Hypothesis draws a fleet of 1–4 clients, each submitting an arbitrary
(overlapping) subset of a shared cell universe to a fresh server.  For
every drawn schedule:

* each client's streamed points are byte-identical to what the scalar
  engine produces for those cells directly (the one-shot path);
* across the whole fleet, each unique task key reaches the engine **at
  most once** — overlap is served by single-flight dedup or the
  read-through cache, never recomputed.

Examples are deliberately few (each boots a real server and runs real
simulations); the drawn structure — who overlaps with whom, in what
order — is where the value is.
"""

from __future__ import annotations

import shutil
import tempfile
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.points import point_to_dict
from repro.runner.worker import run_task_result
from repro.service import (
    ServiceClient,
    config_to_dict,
    normalize_spec,
    serve_in_thread,
    spec_tasks,
)

from .conftest import count_engine_calls, small_config

#: The shared cell universe all drawn clients pick subsets from.
RHOS = (0.3, 0.35, 0.4, 0.45)
CONFIG = small_config("GS")

_expected_cache: "dict[int, dict]" = {}


def universe_spec(indices: "tuple[int, ...]") -> dict:
    return normalize_spec({
        "label": "prop",
        "cells": [{"config": config_to_dict(CONFIG),
                   "offered_gross": RHOS[i]} for i in indices],
    })


def expected_point(index: int) -> dict:
    """The scalar engine's point for one universe cell (memoized)."""
    if index not in _expected_cache:
        [task] = spec_tasks(universe_spec((index,)))
        from repro.analysis.points import SweepPoint
        point = SweepPoint.from_result(run_task_result(task))
        _expected_cache[index] = point_to_dict(point)
    return _expected_cache[index]


#: One client = an ordered, duplicate-free, non-empty subset of cells.
client_cells = st.lists(
    st.integers(min_value=0, max_value=len(RHOS) - 1),
    min_size=1, max_size=len(RHOS), unique=True,
)

schedule = st.lists(client_cells, min_size=1, max_size=4)


@given(schedule)
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_concurrent_clients_get_one_shot_payloads_exactly_once(schedule):
    root = Path(tempfile.mkdtemp(prefix="repro-svc-"))
    try:
        with count_engine_calls() as calls, \
                serve_in_thread(root / "cache", root / "svc.sock",
                                fleet=4) as server:
            client = ServiceClient(server.socket_path)
            with ThreadPoolExecutor(len(schedule)) as pool:
                futures = [
                    pool.submit(client.run, universe_spec(tuple(cells)))
                    for cells in schedule
                ]
                results = [f.result(timeout=300) for f in futures]

        for cells, result in zip(schedule, results):
            assert result.statuses and all(
                s in ("hit", "computed", "deduped")
                for s in result.statuses)
            assert result.raw_points == [expected_point(i)
                                         for i in cells], cells

        unique = {i for cells in schedule for i in cells}
        assert calls["count"] == len(unique), \
            "each unique task key must reach the engine at most once"
        executed = server.broker.counters["tasks.executed"]
        assert executed == len(unique)
    finally:
        shutil.rmtree(root, ignore_errors=True)
