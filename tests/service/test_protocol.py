"""Wire-protocol units: spec validation, codecs, stream events.

The load-bearing invariant is *campaign identity*: a service spec must
derive exactly the tasks, task keys and campaign key the one-shot
``sweep()`` path derives from the same inputs, or the service would
address a parallel universe of cache entries and ``attach`` could
never resume a one-shot campaign.
"""

from __future__ import annotations

import itertools

import pytest

from repro.analysis.sweeps import sweep_tasks
from repro.runner import campaign_key, task_keys
from repro.service import protocol
from repro.service.protocol import (
    SPEC_SCHEMA,
    ProtocolError,
    config_from_dict,
    config_to_dict,
    decode_line,
    encode_line,
    normalize_spec,
    spec_campaign,
    spec_tasks,
    stream_event,
    stream_header,
    sweep_spec,
)

from .conftest import SERVICE, SIZES, small_config

GRID = (0.3, 0.4, 0.5)


class TestConfigCodec:
    @pytest.mark.parametrize("policy", ["GS", "LS", "LP", "SC"])
    def test_round_trip(self, policy):
        config = small_config(policy)
        assert config_from_dict(config_to_dict(config)) == config

    def test_tuple_fields_restored(self):
        payload = config_to_dict(small_config("GS"))
        # JSON transport turns tuples into lists.
        payload["capacities"] = list(payload["capacities"])
        payload["routing_weights"] = list(payload["routing_weights"])
        restored = config_from_dict(payload)
        assert isinstance(restored.capacities, tuple)
        assert restored == small_config("GS")

    def test_unknown_field_rejected(self):
        payload = config_to_dict(small_config())
        payload["frobnication"] = 3
        with pytest.raises(ProtocolError, match="unknown config field"):
            config_from_dict(payload)

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="must be an object"):
            config_from_dict([1, 2, 3])


class TestNormalizeSpec:
    def test_canonical_form_carries_defaults(self):
        spec = normalize_spec({
            "label": "x",
            "cells": [{"config": config_to_dict(small_config()),
                       "offered_gross": 0.4}],
        })
        assert spec["schema"] == SPEC_SCHEMA
        assert spec["kind"] == "sweep"
        assert spec["workload"] == "das-s-128"
        assert spec["backend"] == "scalar"
        assert spec["stop_after_saturation"] is None

    def test_normalization_is_idempotent(self):
        spec = sweep_spec("x", small_config(), GRID)
        assert normalize_spec(spec) == spec

    @pytest.mark.parametrize("mutation, message", [
        (dict(schema="repro.service/spec/999"), "schema"),
        (dict(label=""), "label"),
        (dict(kind=7), "kind"),
        (dict(workload="das-s-1024"), "unknown workload"),
        (dict(backend="gpu"), "unknown backend"),
        (dict(stop_after_saturation=0), "stop_after_saturation"),
        (dict(stop_after_saturation=True), "stop_after_saturation"),
        (dict(cells=[]), "cells"),
    ])
    def test_malformed_specs_rejected(self, mutation, message):
        spec = dict(sweep_spec("x", small_config(), GRID))
        spec.update(mutation)
        with pytest.raises(ProtocolError, match=message):
            normalize_spec(spec)

    def test_duplicate_cells_rejected(self):
        with pytest.raises(ProtocolError, match="duplicates"):
            sweep_spec("x", small_config(), (0.4, 0.4))


class TestCampaignIdentity:
    def test_spec_tasks_match_one_shot_sweep_tasks(self):
        config = small_config("LS")
        spec = sweep_spec("LS", config, GRID)
        built = spec_tasks(spec)
        expected = sweep_tasks(config, SIZES, SERVICE, GRID, "scalar")
        assert [(t.config, t.offered_gross, t.backend) for t in built] \
            == [(t.config, t.offered_gross, t.backend) for t in expected]
        # Content-hash identity covers the distributions too.
        assert task_keys(built) == task_keys(expected)

    def test_campaign_key_matches_one_shot_campaign(self):
        config = small_config("GS")
        spec = sweep_spec("GS", config, GRID)
        campaign, tasks, keys = spec_campaign(spec)
        expected_keys = task_keys(
            sweep_tasks(config, SIZES, SERVICE, GRID, "scalar"))
        assert keys == expected_keys
        assert campaign == campaign_key("sweep", "GS", expected_keys)

    def test_backend_resolves_before_keys(self):
        pytest.importorskip("numpy")
        config = small_config("GS")
        wide = (0.3, 0.4, 0.5, 0.6)
        auto = sweep_spec("GS", config, wide, backend="auto")
        batch = sweep_spec("GS", config, wide, backend="batch")
        # "auto" over a batch-eligible 4-wide grid resolves to the
        # batch kernel, so both specs address identical cache entries.
        assert spec_campaign(auto)[2] == spec_campaign(batch)[2]


class TestWireFraming:
    def test_line_round_trip(self):
        payload = {"op": "submit", "spec": {"a": [1, 2.5, None]}}
        raw = encode_line(payload)
        assert raw.endswith(b"\n") and b"\n" not in raw[:-1]
        assert decode_line(raw) == payload

    def test_garbage_line_rejected(self):
        with pytest.raises(ProtocolError, match="bad protocol line"):
            decode_line(b"{nope\n")

    def test_non_object_line_rejected(self):
        with pytest.raises(ProtocolError, match="must be an object"):
            decode_line(b"[1, 2]\n")


class TestStreamEvents:
    def test_header_shape(self):
        header = stream_header("deadbeef")
        assert header["schema"] == protocol.EVENT_SCHEMA
        assert header["stream"] == protocol.STREAM_SCHEMA
        assert header["campaign"] == "deadbeef"

    def test_sequence_numbers_are_per_stream_monotone(self):
        seq = itertools.count()
        first = stream_event(seq, "error", message="a")
        second = stream_event(seq, "error", message="b")
        assert (first["t"], second["t"]) == (0.0, 1.0)

    def test_unregistered_kind_rejected(self):
        with pytest.raises(ProtocolError, match="unregistered"):
            stream_event(itertools.count(), "departure", job=1)

    def test_payload_keys_checked_against_registry(self):
        with pytest.raises(ProtocolError, match="payload keys"):
            stream_event(itertools.count(), "point", key="k")
