"""Service-level integration: the acceptance harness of the sweep
service.

The contracts proven here, against a live in-thread server:

* **correctness** — points streamed by the service are byte-identical
  to the one-shot ``sweep()`` path and to the committed golden grid
  fixtures (``tests/data/golden/grid_*.json``);
* **single-flight** — two clients submitting the same grid
  concurrently trigger exactly one engine execution per unique task
  key, and a repeat submission is served entirely from the cache with
  zero engine calls;
* **persistence** — ``attach`` replays a ledgered campaign by key
  prefix, from the cache;
* **failure shape** — a malformed spec or unknown campaign yields a
  typed error, and a client without a server gets an actionable
  :class:`~repro.service.ServiceConnectionError` (CLI exit code 2).
"""

from __future__ import annotations

import io
import json
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.analysis.io import save_sweep
from repro.analysis.points import point_to_dict
from repro.analysis.sweeps import SweepResult, sweep
from repro.service import (
    ServiceClient,
    ServiceConnectionError,
    ServiceError,
    config_to_dict,
    normalize_spec,
    spec_campaign,
    sweep_spec,
)

from .conftest import SERVICE, SIZES, small_config

GOLDEN_DIR = Path(__file__).parent.parent / "data" / "golden"

#: Non-saturating grid for exact one-shot comparisons.
GRID = (0.3, 0.4, 0.5)

#: The golden grid campaigns (mirrors tests/runner/test_golden_grid.py).
POLICIES = ("GS", "LS", "LP", "SC")
LIMITS = (16, 24)
RHOS = (0.35, 0.55)


def grid_spec(policy: str, backend: str = "scalar") -> dict:
    """The golden grid campaign of one policy, as a service spec."""
    if policy == "SC":
        configs = [small_config("SC")]
    else:
        configs = [small_config(policy, component_limit=limit)
                   for limit in LIMITS]
    return normalize_spec({
        "label": f"grid-{policy}",
        "backend": backend,
        "cells": [{"config": config_to_dict(config),
                   "offered_gross": rho}
                  for config in configs for rho in RHOS],
    })


def grid_golden_cells(policy: str) -> list:
    """The committed fixture's cells, in grid order."""
    payload = json.loads(
        (GOLDEN_DIR / f"grid_{policy}.json").read_text("utf-8"))
    return payload["cells"]


class TestSingleLineOps:
    def test_ping(self, client):
        assert client.ping()["ok"] is True

    def test_status_reports_counters_and_cache(self, client):
        status = client.status()
        assert status["campaigns_served"] == 0
        assert status["counters"]["tasks.executed"] == 0
        assert set(status["cache"]) == {"hits", "misses", "stores"}

    def test_unknown_op_is_a_typed_error(self, client):
        with pytest.raises(ServiceError, match="unknown op"):
            client.request("frobnicate")


class TestSubmit:
    def test_points_byte_identical_to_one_shot_sweep(self, client,
                                                     engine_calls):
        config = small_config("GS")
        result = client.run(sweep_spec("GS", config, GRID))
        one_shot = sweep("GS", config, SIZES, SERVICE, GRID,
                         cache=False)
        assert result.raw_points == [point_to_dict(p)
                                     for p in one_shot.points]
        # Same SweepResult payload end to end (the CLI render path).
        buf_service = io.StringIO()
        save_sweep(SweepResult(label="GS", config=config,
                               points=tuple(result.points)),
                   buf_service)
        buf_oneshot = io.StringIO()
        save_sweep(one_shot, buf_oneshot)
        assert buf_service.getvalue() == buf_oneshot.getvalue()

    def test_repeat_submission_is_all_cache_hits(self, client,
                                                 engine_calls):
        spec = sweep_spec("GS", small_config("GS"), GRID)
        first = client.run(spec)
        executed = engine_calls["count"]
        assert executed == len(GRID)
        assert first.statuses == ["computed"] * len(GRID)

        second = client.run(spec)
        assert engine_calls["count"] == executed, \
            "repeat submission must trigger zero engine executions"
        assert second.statuses == ["hit"] * len(GRID)
        assert second.raw_points == first.raw_points

    def test_heartbeats_stream_for_executed_tasks(self, client):
        spec = sweep_spec("LP", small_config("LP"), GRID[:2])
        result = client.run(spec)
        phases = {phase for phase, _ in result.heartbeats}
        assert "start" in phases and "finish" in phases

    def test_early_stop_matches_one_shot_truncation(self, client):
        config = small_config("GS")
        # rho 2.0 saturates this config, so the streamed curve must cut
        # before the 2.5 tail cell.
        grid = (0.3, 2.0, 2.5)
        spec = sweep_spec("GS", config, grid, stop_after_saturation=1)
        result = client.run(spec)
        one_shot = sweep("GS", config, SIZES, SERVICE, grid,
                         stop_after_saturation=1, cache=False)
        assert len(one_shot.points) < len(grid), \
            "grid must actually saturate for this test to bite"
        assert result.raw_points == [point_to_dict(p)
                                     for p in one_shot.points]

    def test_malformed_spec_is_a_typed_error(self, client):
        with pytest.raises(ServiceError, match="cells"):
            collect_error = client.submit({"label": "x", "cells": []})
            list(collect_error)  # pragma: no cover - raise is in submit


class TestAttach:
    def test_attach_replays_from_cache_by_prefix(self, client,
                                                 engine_calls):
        spec = sweep_spec("LS", small_config("LS"), GRID)
        campaign, _, _ = spec_campaign(spec)
        submitted = client.run(spec)
        executed = engine_calls["count"]

        attached = client.run_attached(campaign[:12])
        assert engine_calls["count"] == executed
        assert attached.campaign == campaign
        assert attached.statuses == ["hit"] * len(GRID)
        assert attached.raw_points == submitted.raw_points

    def test_attach_unknown_campaign(self, client):
        with pytest.raises(ServiceError, match="unknown campaign"):
            client.run_attached("feedfacefeedface")


class TestSingleFlight:
    """The acceptance criterion: N concurrent clients, one execution
    per unique task key, output byte-identical to the golden grids."""

    @pytest.mark.parametrize("backend", ["scalar", "batch"])
    def test_two_clients_golden_grids(self, service, engine_calls,
                                      backend):
        if backend == "batch":
            pytest.importorskip("numpy")
        client_a = ServiceClient(service.socket_path)
        client_b = ServiceClient(service.socket_path)
        unique_cells = 0
        for policy in POLICIES:
            spec = grid_spec(policy, backend=backend)
            unique_cells += len(spec["cells"])
            with ThreadPoolExecutor(2) as pool:
                futures = [pool.submit(client_a.run, spec),
                           pool.submit(client_b.run, spec)]
                result_a, result_b = [f.result(timeout=300)
                                      for f in futures]
            assert result_a.raw_points == result_b.raw_points
            golden = grid_golden_cells(policy)
            assert result_a.raw_points == [cell["point"]
                                           for cell in golden], policy

        counters = service.broker.counters
        assert counters["tasks.executed"] == unique_cells, \
            "each unique task key must execute exactly once"
        if backend == "scalar":
            assert engine_calls["count"] == unique_cells
        else:
            # Fused lane-kernel execution: no scalar engine calls at
            # all.  Each client launches at most one kernel driver per
            # campaign for the cells it claimed first (the two may
            # split a grid between them), never more.
            assert engine_calls["count"] == 0
            assert 0 < counters["fused.calls"] <= 2 * len(POLICIES)

        # The whole fleet's work is now cached: resubmitting every
        # campaign is free.
        for policy in POLICIES:
            rerun = client_a.run(grid_spec(policy, backend=backend))
            assert set(rerun.statuses) == {"hit"}
        assert counters["tasks.executed"] == unique_cells


class TestNoServer:
    def test_client_raises_actionable_connection_error(self,
                                                       service_root):
        missing = service_root / "nobody-home.sock"
        client = ServiceClient(missing)
        with pytest.raises(ServiceConnectionError,
                           match="no sweep service"):
            client.ping()
        with pytest.raises(ServiceConnectionError,
                           match="repro-sim serve"):
            client.run(sweep_spec("GS", small_config(), GRID))

    def test_cli_submit_fails_fast_with_exit_code_2(self, service_root,
                                                    capsys):
        from repro.cli import main

        code = main(["submit", "--policy", "GS",
                     "--grid", "0.3:0.4:0.1",
                     "--warmup", "100", "--measured", "400",
                     "--socket",
                     str(service_root / "nobody-home.sock")])
        err = capsys.readouterr().err
        assert code == 2
        assert "no sweep service" in err
        assert "repro-sim serve" in err
