"""The public API surface: importability, __all__ hygiene, version."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.workload",
    "repro.core",
    "repro.metrics",
    "repro.analysis",
    "repro.obs",
    "repro.lint",
    "repro.cli",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_package_imports(package):
    importlib.import_module(package)


@pytest.mark.parametrize("package", PACKAGES[:-1])
def test_all_entries_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__")
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} missing"


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_top_level_quickstart_names():
    # The names used in the README quickstart must exist at top level.
    import repro

    for name in ("SimulationConfig", "run_open_system",
                 "run_constant_backlog", "MulticlusterSimulation"):
        assert hasattr(repro, name)


def test_docstrings_on_public_classes():
    # Every public class/function in the top-level namespaces carries a
    # docstring — the documentation contract.
    import repro
    import repro.analysis
    import repro.metrics
    import repro.sim
    import repro.workload

    for module in (repro, repro.sim, repro.workload, repro.metrics,
                   repro.analysis):
        for name in module.__all__:
            obj = getattr(module, name)
            if callable(obj) or isinstance(obj, type):
                assert obj.__doc__, f"{module.__name__}.{name} lacks a docstring"


def test_policy_registry_is_papers_set():
    from repro.core import POLICIES

    assert set(POLICIES) == {"GS", "LS", "LP", "SC"}, (
        "extension policies must not leak into the core registry"
    )
