"""The typed-API promise survives packaging (PEP 561).

``mypy --strict`` passing on ``repro.core``/``repro.sim`` is worthless
to downstream consumers unless the installed distribution carries the
``py.typed`` marker — without it, type checkers treat the package as
untyped and silently discard every annotation we ship.  These tests
pin the three places the marker must appear: the source tree, the
``package-data`` declaration, and the setuptools file manifest.
"""

from __future__ import annotations

import pathlib

ROOT = pathlib.Path(__file__).resolve().parents[1]


def test_py_typed_marker_exists_and_is_empty() -> None:
    marker = ROOT / "src" / "repro" / "py.typed"
    assert marker.is_file(), "PEP 561 marker missing from src/repro"
    # An empty marker means "fully typed"; content would make it a
    # partial\n stub marker with different semantics.
    assert marker.read_text() == ""


def test_pyproject_ships_marker_as_package_data() -> None:
    pyproject = (ROOT / "pyproject.toml").read_text()
    assert "[tool.setuptools.package-data]" in pyproject
    assert 'repro = ["py.typed"]' in pyproject


def test_egg_info_manifest_includes_marker() -> None:
    # The build manifest is what actually decides wheel/sdist contents;
    # a stale one quietly drops the marker even when pyproject is
    # right (this regressed once).
    sources = ROOT / "src" / "repro.egg-info" / "SOURCES.txt"
    assert sources.is_file(), "egg-info manifest missing"
    listed = sources.read_text().splitlines()
    assert "src/repro/py.typed" in listed
