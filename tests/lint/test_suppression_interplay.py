"""Interplay of the three silencing layers.

A finding can be silenced by (1) an inline ``# simlint: disable=``
comment, (2) the scope table's ``!``-negation globs (e.g. SIM006 and
SIM012 exempt ``repro.obs*``), or (3) the committed baseline.  The
layers apply in that order — comments and scope act *before* the
baseline sees anything — and these tests pin the composition down:
a comment-silenced finding never consumes baseline budget, a
scope-exempt module needs neither comments nor baseline, and fresh
violations surface no matter how much accepted debt surrounds them.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.lint import Baseline, lint_paths, write_baseline

CLOCK_READ = textwrap.dedent("""\
    import time

    def stamp():
        return time.perf_counter()
    """)

TRANSITIVE_CLOCK = textwrap.dedent("""\
    import time

    def stamp():
        return time.perf_counter()

    def run_task(task):
        return (task, stamp())
    """)


def _write(root: Path, rel: str, source: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


class TestCommentVsScope:
    def test_sim006_negation_glob_exempts_obs(self, tmp_path):
        # Identical clock reads: repro.core is in scope, repro.obs is
        # carved out by the "!repro.obs*" negation — no comment needed.
        _write(tmp_path, "repro/core/a.py", CLOCK_READ)
        _write(tmp_path, "repro/obs/b.py", CLOCK_READ)
        result = lint_paths([tmp_path / "repro"], select=["SIM006"])
        assert len(result.violations) == 1
        assert "/core/" in result.violations[0].path

    def test_sim012_negation_glob_exempts_obs(self, tmp_path):
        _write(tmp_path, "repro/core/a.py", TRANSITIVE_CLOCK)
        _write(tmp_path, "repro/obs/b.py", TRANSITIVE_CLOCK)
        result = lint_paths([tmp_path / "repro"], select=["SIM012"])
        assert result.violations
        assert all("/core/" in v.path for v in result.violations)

    def test_comment_silences_inside_scope(self, tmp_path):
        _write(tmp_path, "repro/core/a.py", CLOCK_READ.replace(
            "time.perf_counter()",
            "time.perf_counter()  # simlint: disable=SIM006 -- test fixture"))
        result = lint_paths([tmp_path / "repro"], select=["SIM006"])
        assert result.violations == []

    def test_comment_for_other_rule_does_not_silence(self, tmp_path):
        _write(tmp_path, "repro/core/a.py", CLOCK_READ.replace(
            "time.perf_counter()",
            "time.perf_counter()  # simlint: disable=SIM001 -- wrong id"))
        result = lint_paths([tmp_path / "repro"], select=["SIM006"])
        assert len(result.violations) == 1

    def test_comment_silences_project_rule_violation_line(self, tmp_path):
        # SIM012 anchors on the hot-path call site; the comment goes
        # there, not at the sink.
        source = TRANSITIVE_CLOCK.replace(
            "return (task, stamp())",
            "return (task, stamp())  # simlint: disable=SIM012 -- fixture")
        _write(tmp_path, "repro/core/a.py", source)
        result = lint_paths([tmp_path / "repro"], select=["SIM012"])
        assert result.violations == []


class TestBaselineComposition:
    def test_comment_suppressed_never_consumes_baseline(self, tmp_path):
        # One commented + one raw clock read.  The baseline write sees
        # only the raw one; removing the comment later surfaces the
        # first as *fresh* even though the file was baselined.
        source = CLOCK_READ + textwrap.dedent("""\

            def stamp2():
                return time.monotonic()  # simlint: disable=SIM006 -- fixture
            """)
        target = _write(tmp_path, "repro/core/a.py", source)
        baseline_path = tmp_path / ".simlint-baseline.json"
        first = lint_paths([tmp_path / "repro"], select=["SIM006"])
        assert len(first.violations) == 1
        write_baseline(baseline_path, first.violations)

        # Drop the comment: the monotonic read is new debt, reported.
        target.write_text(source.replace(
            "  # simlint: disable=SIM006 -- fixture", ""))
        result = lint_paths([tmp_path / "repro"], select=["SIM006"],
                            baseline=Baseline.load(baseline_path))
        assert len(result.violations) == 1
        assert "time.monotonic" in result.violations[0].message
        assert result.baselined == 1

    def test_scope_exempt_module_never_enters_baseline(self, tmp_path):
        _write(tmp_path, "repro/obs/b.py", CLOCK_READ)
        baseline_path = tmp_path / ".simlint-baseline.json"
        found = lint_paths([tmp_path / "repro"], select=["SIM006"])
        assert found.violations == []
        write_baseline(baseline_path, found.violations)
        assert Baseline.load(baseline_path).counts == {}

    def test_baselined_debt_plus_fresh_violation(self, tmp_path):
        # The adoption story end-to-end: accept existing debt, then a
        # new violation in another module must still fail the gate.
        _write(tmp_path, "repro/core/legacy.py", CLOCK_READ)
        baseline_path = tmp_path / ".simlint-baseline.json"
        write_baseline(
            baseline_path,
            lint_paths([tmp_path / "repro"], select=["SIM006"]).violations)

        _write(tmp_path, "repro/runner/fresh.py", CLOCK_READ)
        result = lint_paths([tmp_path / "repro"], select=["SIM006"],
                            baseline=Baseline.load(baseline_path))
        assert result.exit_code() == 1
        assert len(result.violations) == 1
        assert result.violations[0].path.endswith("fresh.py")
        assert result.baselined == 1

    def test_paying_down_debt_keeps_gate_green(self, tmp_path):
        # Fixing a baselined violation without refreshing the baseline
        # must not break anything: absorbed count just drops.
        target = _write(tmp_path, "repro/core/legacy.py", CLOCK_READ)
        baseline_path = tmp_path / ".simlint-baseline.json"
        write_baseline(
            baseline_path,
            lint_paths([tmp_path / "repro"], select=["SIM006"]).violations)

        target.write_text("def stamp():\n    return 0.0\n")
        result = lint_paths([tmp_path / "repro"], select=["SIM006"],
                            baseline=Baseline.load(baseline_path))
        assert result.exit_code() == 0
        assert result.baselined == 0
