"""Exit codes and report formats of the simlint CLI layers."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.lint.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def _env_with_src() -> dict[str, str]:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    return env


def write(tmp_path: Path, name: str, code: str) -> Path:
    path = tmp_path / name
    path.write_text(code)
    return path


class TestMainFunction:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = write(tmp_path, "ok.py", "def f(x: int) -> int:\n    return x\n")
        assert main([str(path)]) == 0
        assert "no violations" in capsys.readouterr().out

    def test_violation_exits_one_with_rule_and_location(self, tmp_path, capsys):
        path = write(tmp_path, "bad.py", "import random\n")
        assert main([str(path)]) == 1
        out = capsys.readouterr().out
        assert "SIM001" in out
        assert f"{path}:1:" in out

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        path = write(tmp_path, "broken.py", "def f(:\n")
        assert main([str(path)]) == 2
        assert "error" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        path = write(tmp_path, "bad.py", "import random\n")
        assert main([str(path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert payload["counts_by_rule"] == {"SIM001": 1}
        (violation,) = payload["violations"]
        assert violation["rule"] == "SIM001"
        assert violation["line"] == 1

    def test_select_is_case_insensitive(self, tmp_path, capsys):
        path = write(tmp_path, "bad.py", "import random\n\ndef f(x):\n    return x\n")
        assert main([str(path), "--select", "sim004"]) == 1
        out = capsys.readouterr().out
        assert "SIM004" in out and "SIM001" not in out

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        path = write(tmp_path, "ok.py", "x = 1\n")
        assert main([str(path), "--select", "SIM999"]) == 2
        assert "unknown rule" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("SIM001", "SIM002", "SIM003", "SIM004", "SIM005"):
            assert rule_id in out


class TestModuleEntryPoint:
    def test_python_dash_m_on_shipped_tree(self):
        # The acceptance gate: `python -m repro.lint src/repro` exits 0.
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "src/repro"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            env=_env_with_src(),
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "no violations" in proc.stdout

    def test_python_dash_m_flags_fixture(self, tmp_path):
        bad = write(tmp_path, "bad.py", "import random\n")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(bad)],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            env=_env_with_src(),
        )
        assert proc.returncode == 1
        assert "SIM001" in proc.stdout


class TestReproSimSubcommand:
    def test_lint_subcommand_clean(self, tmp_path, capsys):
        from repro.cli import main as repro_main

        path = write(tmp_path, "ok.py", "def f(x: int) -> int:\n    return x\n")
        assert repro_main(["lint", str(path)]) == 0

    def test_lint_subcommand_violation(self, tmp_path, capsys):
        from repro.cli import main as repro_main

        path = write(tmp_path, "bad.py", "import random\n")
        assert repro_main(["lint", str(path)]) == 1
        assert "SIM001" in capsys.readouterr().out

    def test_lint_subcommand_list_rules(self, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["lint", "--list-rules"]) == 0
        assert "SIM003" in capsys.readouterr().out
