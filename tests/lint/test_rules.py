"""Positive/negative/suppression fixtures for every simlint rule.

Each rule gets three kinds of fixture: a violating snippet (reported
with the right rule id), a clean snippet (silent), and the violating
snippet carrying a ``# simlint: disable=RULE`` comment (silenced).
Fixture files live in ``tmp_path``, outside any package root, so every
rule applies regardless of the scope table.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lint import lint_file


def lint_snippet(tmp_path: Path, code: str, *, select: list[str] | None = None):
    path = tmp_path / "fixture.py"
    path.write_text(textwrap.dedent(code))
    return lint_file(path, select=select)


def rule_ids(violations) -> set[str]:
    return {v.rule for v in violations}


# ---------------------------------------------------------------------------
# SIM001 — ambient nondeterminism
# ---------------------------------------------------------------------------


class TestSIM001:
    @pytest.mark.parametrize("snippet", [
        "import random\n",
        "from random import choice\n",
        "import time\nt0 = time.time()\n",
        "import time\nt0 = time.perf_counter()\n",
        "from datetime import datetime\nstamp = datetime.now()\n",
        "import datetime\nstamp = datetime.datetime.utcnow()\n",
        "import os\nnoise = os.urandom(8)\n",
        "import numpy as np\nrng = np.random.default_rng()\n",
        "import numpy as np\nx = np.random.rand(3)\n",
        "import numpy as np\nnp.random.seed(7)\n",
        "import numpy as np\nrng = np.random.RandomState()\n",
        # Passing the entropy source by reference is just as bad.
        "import time\nkey_fn = time.time\n",
    ])
    def test_flags_ambient_entropy(self, tmp_path, snippet):
        violations = lint_snippet(tmp_path, snippet, select=["SIM001"])
        assert rule_ids(violations) == {"SIM001"}

    @pytest.mark.parametrize("snippet", [
        # The blessed path: named StreamFactory substreams.
        "from repro.sim.rng import StreamFactory\n"
        "rng = StreamFactory(42).get('arrivals')\n",
        # Seeded generators are reproducible.
        "import numpy as np\nrng = np.random.default_rng(42)\n",
        "import numpy as np\nrng = np.random.default_rng(seed)\n",
        "import numpy as np\nss = np.random.SeedSequence(1)\n",
        # Annotations mentioning np.random types are not draws.
        "import numpy as np\n"
        "def f(rng: np.random.Generator) -> float:\n"
        "    return float(rng.random())\n",
        # `time` the module is fine when no wall-clock access is made.
        "import time\nkind = time.struct_time\n",
    ])
    def test_clean_snippets(self, tmp_path, snippet):
        assert lint_snippet(tmp_path, snippet, select=["SIM001"]) == []

    def test_suppression_silences(self, tmp_path):
        code = (
            "import random  # simlint: disable=SIM001 -- fixture generator\n"
        )
        assert lint_snippet(tmp_path, code, select=["SIM001"]) == []

    def test_violation_location(self, tmp_path):
        code = "x = 1\nimport random\n"
        (violation,) = lint_snippet(tmp_path, code, select=["SIM001"])
        assert violation.line == 2
        assert "random" in violation.message


# ---------------------------------------------------------------------------
# SIM002 — float equality on simulation-time expressions
# ---------------------------------------------------------------------------


class TestSIM002:
    @pytest.mark.parametrize("snippet", [
        "def f(sim, horizon):\n    return sim.now == horizon\n",
        "def f(arrival_time, start):\n    return arrival_time == start\n",
        "def f(t_start, t_end):\n    return t_start != t_end\n",
        "def f(job, deadline):\n    return job.deadline == 0.0\n",
        "def f(a, b):\n    return a.finish_time != b.finish_time\n",
        # Chained comparison: the middle operand is time-like.
        "def f(a, now, b):\n    return a == now == b\n",
    ])
    def test_flags_time_equality(self, tmp_path, snippet):
        violations = lint_snippet(tmp_path, snippet, select=["SIM002"])
        assert rule_ids(violations) == {"SIM002"}

    @pytest.mark.parametrize("snippet", [
        # Ordering comparisons are the prescribed alternative.
        "def f(sim, horizon):\n    return sim.now >= horizon\n",
        "def f(t_start, t_end):\n    return t_start < t_end\n",
        # isclose is the prescribed equality.
        "import math\n"
        "def f(sim, horizon):\n    return math.isclose(sim.now, horizon)\n",
        # Non-time names may use ==.
        "def f(count, total):\n    return count == total\n",
        # 'timeout'/'times' do not match the time-name pattern.
        "def f(timeout):\n    return timeout == 5\n",
    ])
    def test_clean_snippets(self, tmp_path, snippet):
        assert lint_snippet(tmp_path, snippet, select=["SIM002"]) == []

    def test_suppression_silences(self, tmp_path):
        code = (
            "def f(sim, horizon):\n"
            "    return sim.now == horizon  "
            "# simlint: disable=SIM002 -- exact sentinel comparison\n"
        )
        assert lint_snippet(tmp_path, code, select=["SIM002"]) == []


# ---------------------------------------------------------------------------
# SIM003 — re-entrant Simulator.run in process generators
# ---------------------------------------------------------------------------


class TestSIM003:
    @pytest.mark.parametrize("snippet", [
        "def source(sim):\n"
        "    yield sim.timeout(1.0)\n"
        "    sim.run(until=10.0)\n",
        "def source(self):\n"
        "    yield self.sim.timeout(1.0)\n"
        "    self.sim.run()\n",
        "def source(env):\n"
        "    env.run()\n"
        "    yield env.timeout(1.0)\n",
    ])
    def test_flags_reentrant_run(self, tmp_path, snippet):
        violations = lint_snippet(tmp_path, snippet, select=["SIM003"])
        assert rule_ids(violations) == {"SIM003"}

    @pytest.mark.parametrize("snippet", [
        # Driving the engine outside any generator is the normal API.
        "def main(sim):\n    sim.run(until=10.0)\n",
        # Generators may yield events freely.
        "def source(sim):\n"
        "    while True:\n"
        "        yield sim.timeout(1.0)\n",
        # .run on a non-engine receiver is unrelated.
        "def source(sim, pool):\n"
        "    yield sim.timeout(1.0)\n"
        "    pool.run()\n",
        # A nested non-generator helper may drive a fresh engine.
        "def source(sim):\n"
        "    yield sim.timeout(1.0)\n"
        "    def helper(other):\n"
        "        other.step()\n",
    ])
    def test_clean_snippets(self, tmp_path, snippet):
        assert lint_snippet(tmp_path, snippet, select=["SIM003"]) == []

    def test_suppression_silences(self, tmp_path):
        code = (
            "def source(sim):\n"
            "    yield sim.timeout(1.0)\n"
            "    sim.run(until=2.0)  "
            "# simlint: disable=SIM003 -- fixture exercises the crash\n"
        )
        assert lint_snippet(tmp_path, code, select=["SIM003"]) == []


# ---------------------------------------------------------------------------
# SIM004 — complete public annotations
# ---------------------------------------------------------------------------


class TestSIM004:
    @pytest.mark.parametrize("snippet", [
        "def f(x):\n    return x\n",
        "def f(x: int):\n    return x\n",
        "def f(x: int, *args) -> int:\n    return x\n",
        "def f(x: int, **kw) -> int:\n    return x\n",
        "class C:\n    def method(self, x) -> None:\n        pass\n",
        "class C:\n    def __init__(self, x: int):\n        self.x = x\n",
        "class C:\n"
        "    @staticmethod\n"
        "    def helper(x: int) -> int:\n        return x\n"
        "    def bad(self, y) -> None:\n        pass\n",
    ])
    def test_flags_missing_annotations(self, tmp_path, snippet):
        violations = lint_snippet(tmp_path, snippet, select=["SIM004"])
        assert rule_ids(violations) == {"SIM004"}

    @pytest.mark.parametrize("snippet", [
        "def f(x: int) -> int:\n    return x\n",
        "def f(x: int, *args: int, **kw: str) -> None:\n    pass\n",
        "class C:\n    def __init__(self, x: int) -> None:\n        self.x = x\n",
        # Private helpers make no typed-API promise.
        "def _helper(x):\n    return x\n",
        "class C:\n    def _internal(self, x):\n        return x\n",
        "class _Private:\n    def method(self, x):\n        return x\n",
        # Nested functions are implementation detail.
        "def f(x: int) -> int:\n"
        "    def inner(y):\n        return y\n"
        "    return inner(x)\n",
    ])
    def test_clean_snippets(self, tmp_path, snippet):
        assert lint_snippet(tmp_path, snippet, select=["SIM004"]) == []

    def test_message_names_the_missing_parts(self, tmp_path):
        (violation,) = lint_snippet(
            tmp_path, "def f(x, y: int):\n    return x\n", select=["SIM004"]
        )
        assert "x" in violation.message
        assert "return" in violation.message

    def test_suppression_silences(self, tmp_path):
        code = (
            "def f(x):  # simlint: disable=SIM004 -- dynamic shim\n"
            "    return x\n"
        )
        assert lint_snippet(tmp_path, code, select=["SIM004"]) == []


# ---------------------------------------------------------------------------
# SIM005 — __all__ resolves
# ---------------------------------------------------------------------------


class TestSIM005:
    def test_flags_phantom_entry(self, tmp_path):
        code = "__all__ = ['real', 'phantom']\n\ndef real() -> None:\n    pass\n"
        (violation,) = lint_snippet(tmp_path, code, select=["SIM005"])
        assert violation.rule == "SIM005"
        assert "phantom" in violation.message

    def test_flags_augmented_assignment(self, tmp_path):
        code = "__all__ = []\n__all__ += ['ghost']\n"
        (violation,) = lint_snippet(tmp_path, code, select=["SIM005"])
        assert "ghost" in violation.message

    @pytest.mark.parametrize("snippet", [
        "__all__ = ['f', 'C', 'CONST', 'np']\n"
        "import numpy as np\n"
        "CONST = 1\n"
        "def f() -> None:\n    pass\n"
        "class C:\n    pass\n",
        # Conditionally-bound names still count.
        "__all__ = ['impl']\n"
        "try:\n    import fastimpl as impl\n"
        "except ImportError:\n    impl = None\n",
        # A star import makes resolution undecidable: stay silent.
        "from os.path import *\n__all__ = ['join']\n",
    ])
    def test_clean_snippets(self, tmp_path, snippet):
        assert lint_snippet(tmp_path, snippet, select=["SIM005"]) == []

    def test_suppression_silences(self, tmp_path):
        code = (
            "__all__ = [\n"
            "    'lazy',  # simlint: disable=SIM005 -- bound in __getattr__\n"
            "]\n"
        )
        assert lint_snippet(tmp_path, code, select=["SIM005"]) == []


# ---------------------------------------------------------------------------
# SIM006 — wall-clock reads confined to repro.obs
# ---------------------------------------------------------------------------


class TestSIM006:
    @pytest.mark.parametrize("snippet", [
        "import time\nt0 = time.time()\n",
        "import time\nt0 = time.perf_counter()\n",
        "import time\nt0 = time.monotonic_ns()\n",
        "import time\ncpu = time.process_time()\n",
        "from time import perf_counter\n",
        "from time import process_time as clock\n",
        "from datetime import datetime\nstamp = datetime.now()\n",
        "import datetime\nstamp = datetime.datetime.utcnow()\n",
        "from datetime import date\ntoday = date.today()\n",
        # Passing the clock by reference leaks wall time the same way.
        "import time\nclock = time.perf_counter\n",
    ])
    def test_flags_wall_clock_reads(self, tmp_path, snippet):
        violations = lint_snippet(tmp_path, snippet, select=["SIM006"])
        assert rule_ids(violations) == {"SIM006"}

    @pytest.mark.parametrize("snippet", [
        # The blessed path: timing flows through repro.obs.
        "from repro.obs.timing import wall_clock\nt0 = wall_clock()\n",
        # `time` the module without a clock read is fine.
        "import time\nkind = time.struct_time\n",
        "from time import struct_time\n",
        # Simulation time is not wall time.
        "def advance(sim):\n    return sim.now + 1.0\n",
        # datetime *types* (annotations, parsing) are fine.
        "from datetime import datetime\n"
        "stamp = datetime.fromisoformat('2003-06-01')\n",
    ])
    def test_clean_snippets(self, tmp_path, snippet):
        assert lint_snippet(tmp_path, snippet, select=["SIM006"]) == []

    def test_suppression_silences(self, tmp_path):
        code = (
            "import time\n"
            "t0 = time.perf_counter()  "
            "# simlint: disable=SIM006 -- benchmark harness\n"
        )
        assert lint_snippet(tmp_path, code, select=["SIM006"]) == []

    def test_violation_location(self, tmp_path):
        code = "x = 1\nimport time\nt0 = time.time()\n"
        (violation,) = lint_snippet(tmp_path, code, select=["SIM006"])
        assert violation.line == 3
        assert "repro.obs" in violation.message

    def test_obs_package_is_out_of_scope(self, tmp_path):
        # The observability layer is the one sanctioned clock reader.
        pkg = tmp_path / "repro" / "obs"
        pkg.mkdir(parents=True)
        path = pkg / "timing.py"
        path.write_text("import time\nt0 = time.perf_counter()\n")
        assert [v for v in lint_file(path) if v.rule == "SIM006"] == []

    def test_runner_package_is_in_scope(self, tmp_path):
        pkg = tmp_path / "repro" / "runner"
        pkg.mkdir(parents=True)
        path = pkg / "mod.py"
        path.write_text("import time\nt0 = time.perf_counter()\n")
        assert "SIM006" in rule_ids(lint_file(path))


# ---------------------------------------------------------------------------
# cross-cutting machinery
# ---------------------------------------------------------------------------


class TestMachinery:
    def test_select_restricts_rules(self, tmp_path):
        code = "import random\n\ndef f(x):\n    return x\n"
        only_sim004 = lint_snippet(tmp_path, code, select=["SIM004"])
        assert rule_ids(only_sim004) == {"SIM004"}
        everything = lint_snippet(tmp_path, code)
        assert rule_ids(everything) == {"SIM001", "SIM004"}

    def test_unknown_rule_id_raises(self, tmp_path):
        with pytest.raises(KeyError):
            lint_snippet(tmp_path, "x = 1\n", select=["SIM999"])

    def test_suppression_is_per_rule(self, tmp_path):
        # Disabling SIM001 must not hide the SIM004 finding on that line.
        code = "def f(x): return __import__('x')  # simlint: disable=SIM001\n"
        violations = lint_snippet(tmp_path, code)
        assert rule_ids(violations) == {"SIM004"}

    def test_violations_sorted_and_stable(self, tmp_path):
        code = "import random\nimport random\n"
        violations = lint_snippet(tmp_path, code, select=["SIM001"])
        assert [v.line for v in violations] == sorted(v.line for v in violations)

    def test_scope_negation_semantics(self):
        from repro.lint.config import rule_applies

        scope = {"SIMX": ("repro*", "!repro.obs*")}
        assert rule_applies("SIMX", "repro.runner.pool", scope)
        assert not rule_applies("SIMX", "repro.obs.timing", scope)
        assert not rule_applies("SIMX", "repro.obs", scope)
        assert not rule_applies("SIMX", "other.module", scope)
        # Exclusion-only scopes cover everything not excluded.
        only_neg = {"SIMX": ("!repro.obs*",)}
        assert rule_applies("SIMX", "anything.else", only_neg)
        assert not rule_applies("SIMX", "repro.obs.timing", only_neg)

    def test_scope_table_limits_rules_by_package(self, tmp_path):
        # Under a `repro.analysis` module path, SIM001 (scoped to
        # sim/core/workload) must not fire, while SIM005 (repro*) must.
        pkg = tmp_path / "repro" / "analysis"
        pkg.mkdir(parents=True)
        path = pkg / "mod.py"
        path.write_text("import random\n__all__ = ['ghost']\n")
        violations = lint_file(path)
        assert rule_ids(violations) == {"SIM005"}
