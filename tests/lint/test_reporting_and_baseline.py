"""SARIF output, baseline workflow, and autofix application.

The SARIF report is validated against a vendored structural subset of
the SARIF 2.1.0 schema (``tests/lint/data/sarif-2.1.0-schema.json``)
— the CI environment has no network, so the official schema cannot be
fetched at test time.  The subset is faithful for every object shape
simlint emits; ``additionalProperties`` stays open exactly as in the
full schema.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    Baseline,
    apply_fixes,
    lint_paths,
    render_sarif,
    suppression_fixes,
    write_baseline,
)

SCHEMA_PATH = Path(__file__).parent / "data" / "sarif-2.1.0-schema.json"

VIOLATING = textwrap.dedent("""\
    import time

    t0 = time.time()
    """)


def _violating_tree(tmp_path: Path) -> Path:
    target = tmp_path / "tree"
    target.mkdir()
    (target / "bad.py").write_text(VIOLATING)
    return target


def _cli(args: list[str], cwd: Path) -> subprocess.CompletedProcess:
    root = Path(__file__).resolve().parents[2]
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        cwd=cwd, capture_output=True, text=True,
        env={"PYTHONPATH": str(root / "src"), "PATH": "/usr/bin:/bin"},
    )


# ---------------------------------------------------------------------------
# SARIF
# ---------------------------------------------------------------------------


class TestSarif:
    def test_validates_against_sarif_schema(self, tmp_path):
        jsonschema = pytest.importorskip("jsonschema")
        result = lint_paths([_violating_tree(tmp_path)])
        document = json.loads(render_sarif(result, root=tmp_path))
        schema = json.loads(SCHEMA_PATH.read_text())
        jsonschema.validate(document, schema)

    def test_clean_run_also_validates(self, tmp_path):
        jsonschema = pytest.importorskip("jsonschema")
        clean = tmp_path / "clean"
        clean.mkdir()
        (clean / "ok.py").write_text("X = 1\n")
        document = json.loads(
            render_sarif(lint_paths([clean]), root=tmp_path))
        jsonschema.validate(document, json.loads(SCHEMA_PATH.read_text()))
        assert document["runs"][0]["results"] == []

    def test_parse_errors_become_notifications(self, tmp_path):
        jsonschema = pytest.importorskip("jsonschema")
        broken = tmp_path / "broken"
        broken.mkdir()
        (broken / "bad.py").write_text("def broken(:\n")
        document = json.loads(
            render_sarif(lint_paths([broken]), root=tmp_path))
        jsonschema.validate(document, json.loads(SCHEMA_PATH.read_text()))
        invocation = document["runs"][0]["invocations"][0]
        assert invocation["executionSuccessful"] is False
        assert invocation["toolExecutionNotifications"]

    def test_results_carry_location_and_rule(self, tmp_path):
        result = lint_paths([_violating_tree(tmp_path)],
                            select=["SIM001"])
        document = json.loads(render_sarif(result, root=tmp_path))
        entry = document["runs"][0]["results"][0]
        assert entry["ruleId"] == "SIM001"
        location = entry["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "tree/bad.py"
        assert location["region"]["startLine"] == 3
        # Every registered rule is described in the driver.
        ids = {r["id"] for r in
               document["runs"][0]["tool"]["driver"]["rules"]}
        assert {"SIM001", "SIM007", "SIM012"} <= ids

    def test_cli_format_sarif(self, tmp_path):
        tree = _violating_tree(tmp_path)
        proc = _cli(["tree", "--format", "sarif", "--no-baseline"],
                    cwd=tmp_path)
        assert proc.returncode == 1
        document = json.loads(proc.stdout)
        assert document["version"] == "2.1.0"
        assert tree is not None


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------


class TestBaseline:
    def test_baselined_findings_are_absorbed(self, tmp_path):
        tree = _violating_tree(tmp_path)
        first = lint_paths([tree])
        assert first.violations
        baseline_path = tmp_path / ".simlint-baseline.json"
        write_baseline(baseline_path, first.violations)

        second = lint_paths([tree], baseline=Baseline.load(baseline_path))
        assert second.violations == []
        assert second.baselined == len(first.violations)
        assert second.exit_code() == 0

    def test_fresh_violations_still_reported(self, tmp_path):
        tree = _violating_tree(tmp_path)
        baseline_path = tmp_path / ".simlint-baseline.json"
        write_baseline(baseline_path, lint_paths([tree]).violations)

        (tree / "worse.py").write_text("import random\n")
        result = lint_paths([tree], baseline=Baseline.load(baseline_path))
        assert [v.rule for v in result.violations] == ["SIM001"]
        assert result.violations[0].path.endswith("worse.py")
        assert result.exit_code() == 1

    def test_fingerprints_survive_line_shifts(self, tmp_path):
        tree = _violating_tree(tmp_path)
        baseline_path = tmp_path / ".simlint-baseline.json"
        write_baseline(baseline_path, lint_paths([tree]).violations)

        # Prepend lines: the finding moves but stays baselined.
        bad = tree / "bad.py"
        bad.write_text('"""Docstring growing the file."""\n\n'
                       + bad.read_text())
        result = lint_paths([tree], baseline=Baseline.load(baseline_path))
        assert result.violations == []

    def test_duplicate_findings_counted_not_collapsed(self, tmp_path):
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "dup.py").write_text(
            "import time\n\nt0 = time.time()\nt1 = time.time()\n")
        baseline_path = tmp_path / ".simlint-baseline.json"
        write_baseline(
            baseline_path,
            lint_paths([tree], select=["SIM001"]).violations)

        # A *third* identical call exceeds the baselined count of two.
        (tree / "dup.py").write_text(
            "import time\n\nt0 = time.time()\nt1 = time.time()\n"
            "t2 = time.time()\n")
        result = lint_paths([tree], select=["SIM001"],
                            baseline=Baseline.load(baseline_path))
        assert len(result.violations) == 1
        assert result.baselined == 2

    def test_missing_baseline_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert baseline.counts == {}

    def test_cli_update_then_gate(self, tmp_path):
        _violating_tree(tmp_path)
        update = _cli(["tree", "--update-baseline"], cwd=tmp_path)
        assert update.returncode == 0
        assert (tmp_path / ".simlint-baseline.json").exists()

        # Default baseline is picked up from the cwd: now clean.
        gated = _cli(["tree"], cwd=tmp_path)
        assert gated.returncode == 0, gated.stdout
        assert "baselined" in gated.stdout

        # --no-baseline reports the debt again.
        raw = _cli(["tree", "--no-baseline"], cwd=tmp_path)
        assert raw.returncode == 1

    def test_shipped_baseline_is_empty(self):
        # The acceptance gate: the committed baseline carries no debt.
        root = Path(__file__).resolve().parents[2]
        document = json.loads(
            (root / ".simlint-baseline.json").read_text())
        assert document["findings"] == []


# ---------------------------------------------------------------------------
# Autofixes
# ---------------------------------------------------------------------------


class TestFixes:
    def test_sorted_wrap_fix_applies_and_resolves(self, tmp_path):
        target = tmp_path / "fixme.py"
        target.write_text("for name in {'b', 'a'}:\n    print(name)\n")
        violations = lint_paths([target], select=["SIM009"]).violations
        applied = apply_fixes(violations)
        assert applied == {str(target): 1}
        assert "sorted({'b', 'a'})" in target.read_text()
        assert lint_paths([target], select=["SIM009"]).violations == []

    def test_suppression_fix_inserts_comment(self, tmp_path):
        target = tmp_path / "fixme.py"
        target.write_text("import time\n\nt0 = time.time()\n")
        violations = lint_paths([target], select=["SIM001"]).violations
        applied = apply_fixes(suppression_fixes(violations, ["SIM001"]))
        assert applied
        line = target.read_text().splitlines()[2]
        assert line.endswith("# simlint: disable=SIM001 -- TODO(justify)")
        assert lint_paths([target], select=["SIM001"]).violations == []

    def test_existing_suppression_comment_left_alone(self, tmp_path):
        target = tmp_path / "fixme.py"
        source = "import time\n\nt0 = time.time()  # simlint: disable=SIM006 -- other rule\n"
        target.write_text(source)
        violations = lint_paths([target], select=["SIM001"]).violations
        apply_fixes(suppression_fixes(violations, ["SIM001"]))
        # The fixer refuses to edit a line that already carries a
        # simlint comment rather than risk corrupting it.
        assert target.read_text() == source

    def test_cli_fix_roundtrip(self, tmp_path):
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "loop.py").write_text(
            "for name in {'b', 'a'}:\n    print(name)\n")
        proc = _cli(["tree", "--fix", "--select", "SIM009",
                     "--no-baseline"], cwd=tmp_path)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "applied 1 fix(es)" in proc.stdout
        assert "sorted" in (tree / "loop.py").read_text()

    def test_fix_preserves_behaviour(self, tmp_path):
        # The golden-fixture analogue in miniature: the sorted() wrap
        # must not change what the program computes (here: the set of
        # printed names), only its order stability.
        target = tmp_path / "prog.py"
        target.write_text(textwrap.dedent("""\
            out = []
            for name in {'b', 'a', 'c'}:
                out.append(name)
            print(''.join(sorted(out)))
            """))
        before = subprocess.run([sys.executable, str(target)],
                                capture_output=True, text=True)
        apply_fixes(lint_paths([target], select=["SIM009"]).violations)
        after = subprocess.run([sys.executable, str(target)],
                               capture_output=True, text=True)
        assert before.stdout == after.stdout == "abc\n"
