"""Positive/negative fixtures for the whole-program rules SIM007–SIM012.

Fixture files live in ``tmp_path`` (no package root), so every rule
applies regardless of the scope table and :func:`repro.lint.lint_file`
builds a single-file project around each snippet.  Entry points are
matched by *shape* (``run_task``, ``Simulator.run``, placement-module
public functions), so a fixture that defines ``run_task`` genuinely
exercises the reachability analysis.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lint import lint_file, lint_paths


def lint_snippet(tmp_path: Path, code: str, *, select: list[str] | None = None):
    path = tmp_path / "fixture.py"
    path.write_text(textwrap.dedent(code))
    return lint_file(path, select=select)


def rule_ids(violations) -> set[str]:
    return {v.rule for v in violations}


# ---------------------------------------------------------------------------
# SIM007 — non-picklable callables shipped to the pool
# ---------------------------------------------------------------------------


class TestSIM007:
    @pytest.mark.parametrize("snippet", [
        # A bare lambda.
        """\
        from repro.runner.pool import execute

        def sweep(tasks):
            return execute(tasks, worker=lambda t: t)
        """,
        # A nested function (closure).
        """\
        from repro.runner.pool import execute

        def sweep(tasks, bonus):
            def scaled(task):
                return task + bonus
            return execute(tasks, worker=scaled)
        """,
        # A module-level name bound to a lambda.
        """\
        from repro.runner.pool import execute

        handler = lambda t: t

        def sweep(tasks):
            return execute(tasks, worker=handler)
        """,
        # functools.partial over a lambda.
        """\
        from functools import partial
        from repro.runner.pool import execute

        def sweep(tasks):
            return execute(tasks, worker=partial(lambda t, s: t, 2))
        """,
        # The façade import resolves to the same target.
        """\
        from repro.runner import execute

        def sweep(tasks):
            return execute(tasks, worker=lambda t: t)
        """,
    ])
    def test_flags_unpicklable_worker(self, tmp_path, snippet):
        violations = lint_snippet(tmp_path, snippet, select=["SIM007"])
        assert rule_ids(violations) == {"SIM007"}

    @pytest.mark.parametrize("snippet", [
        # Module-level def: picklable by qualified name.
        """\
        from repro.runner.pool import execute

        def work(task):
            return task

        def sweep(tasks):
            return execute(tasks, worker=work)
        """,
        # Default worker (no worker= at all).
        """\
        from repro.runner.pool import execute

        def sweep(tasks):
            return execute(tasks)
        """,
        # A lambda handed to some *other* function is not pool traffic.
        """\
        def sweep(items):
            return sorted(items, key=lambda t: t)
        """,
    ])
    def test_clean_workers_pass(self, tmp_path, snippet):
        assert lint_snippet(tmp_path, snippet, select=["SIM007"]) == []

    def test_suppression_comment_silences(self, tmp_path):
        violations = lint_snippet(tmp_path, """\
            from repro.runner.pool import execute

            def sweep(tasks):
                return execute(tasks, worker=lambda t: t)  # simlint: disable=SIM007 -- serial-only helper
            """, select=["SIM007"])
        assert violations == []


# ---------------------------------------------------------------------------
# SIM008 — module-state mutation reachable from worker code
# ---------------------------------------------------------------------------


class TestSIM008:
    @pytest.mark.parametrize("snippet", [
        # Direct subscript write through a helper on the worker path.
        """\
        _CACHE = {}

        def remember(task):
            _CACHE[task] = True
            return task

        def run_task(task):
            return remember(task)
        """,
        # `global` rebind inside the entry point itself.
        """\
        COUNT = 0

        def run_task(task):
            global COUNT
            COUNT += 1
            return task
        """,
        # Mutation through a local alias of module state.
        """\
        _BUFFER = []

        def run_task(task):
            buf = _BUFFER
            buf.append(task)
            return task
        """,
        # Reachable through the engine drive loop.
        """\
        _SEEN = []

        class Simulator:
            def step(self):
                _SEEN.append(1)
        """,
    ])
    def test_flags_worker_reachable_mutation(self, tmp_path, snippet):
        violations = lint_snippet(tmp_path, snippet, select=["SIM008"])
        assert rule_ids(violations) == {"SIM008"}

    def test_message_names_the_call_chain(self, tmp_path):
        violations = lint_snippet(tmp_path, """\
            _CACHE = {}

            def remember(task):
                _CACHE[task] = True

            def run_task(task):
                return remember(task)
            """, select=["SIM008"])
        assert len(violations) == 1
        assert "run_task" in violations[0].message
        assert "remember" in violations[0].message

    @pytest.mark.parametrize("snippet", [
        # Same mutation, but nothing reaches it from an entry point.
        """\
        _CACHE = {}

        def remember(task):
            _CACHE[task] = True
            return task

        def offline_tool(task):
            return remember(task)
        """,
        # Function-local state is fine anywhere.
        """\
        def run_task(task):
            acc = []
            acc.append(task)
            return acc
        """,
        # Reading module state without mutating it is fine.
        """\
        LIMITS = {"cap": 4}

        def run_task(task):
            return LIMITS["cap"]
        """,
    ])
    def test_clean_patterns_pass(self, tmp_path, snippet):
        assert lint_snippet(tmp_path, snippet, select=["SIM008"]) == []


# ---------------------------------------------------------------------------
# SIM009 — unordered-set iteration
# ---------------------------------------------------------------------------


class TestSIM009:
    @pytest.mark.parametrize("snippet", [
        "for name in {'b', 'a'}:\n    print(name)\n",
        """\
        def keys(jobs):
            pending = {j for j in jobs}
            return [p for p in pending]
        """,
        """\
        def keys(jobs):
            pending = set(jobs)
            return list(pending)
        """,
        # Set algebra is still a set.
        """\
        def keys(a, b):
            left = set(a)
            right = set(b)
            return [x for x in left - right]
        """,
        "names = frozenset({'a'})\nout = list(names)\n",
    ])
    def test_flags_set_iteration(self, tmp_path, snippet):
        violations = lint_snippet(tmp_path, textwrap.dedent(snippet),
                                  select=["SIM009"])
        assert rule_ids(violations) == {"SIM009"}

    @pytest.mark.parametrize("snippet", [
        # The blessed form.
        "for name in sorted({'b', 'a'}):\n    print(name)\n",
        # Dict iteration is insertion-ordered: not flagged.
        "for key in {'b': 1, 'a': 2}:\n    print(key)\n",
        # Lists/tuples are ordered.
        "for item in ['b', 'a']:\n    print(item)\n",
        # Membership tests don't iterate.
        """\
        def has(jobs, j):
            pending = set(jobs)
            return j in pending
        """,
    ])
    def test_ordered_iteration_passes(self, tmp_path, snippet):
        assert lint_snippet(tmp_path, textwrap.dedent(snippet),
                            select=["SIM009"]) == []

    def test_violation_carries_sorted_autofix(self, tmp_path):
        violations = lint_snippet(
            tmp_path, "for name in {'b', 'a'}:\n    print(name)\n",
            select=["SIM009"])
        assert len(violations) == 1
        fix = violations[0].fix
        assert fix is not None and fix.kind == "replace"
        assert fix.replacement == "sorted({'b', 'a'})"


# ---------------------------------------------------------------------------
# SIM010 — cache-key soundness
# ---------------------------------------------------------------------------

_CONFIG_PREAMBLE = """\
import hashlib
from dataclasses import asdict, dataclass


@dataclass(frozen=True)
class Config:
    alpha: float
    beta: float
"""


class TestSIM010:
    def test_flags_unread_field(self, tmp_path):
        violations = lint_snippet(tmp_path, _CONFIG_PREAMBLE + """\

def config_key(cfg: Config) -> str:
    return hashlib.sha256(str(cfg.alpha).encode()).hexdigest()
""", select=["SIM010"])
        assert rule_ids(violations) == {"SIM010"}
        assert len(violations) == 1
        assert "'beta'" in violations[0].message

    def test_every_missing_field_reported(self, tmp_path):
        violations = lint_snippet(tmp_path, _CONFIG_PREAMBLE + """\

def config_key(cfg: Config) -> str:
    return hashlib.sha256(b"constant").hexdigest()
""", select=["SIM010"])
        assert len(violations) == 2

    @pytest.mark.parametrize("body", [
        # All fields read explicitly.
        """\

def config_key(cfg: Config) -> str:
    raw = f"{cfg.alpha}|{cfg.beta}"
    return hashlib.sha256(raw.encode()).hexdigest()
""",
        # The parameter escapes whole: every field flows into the hash.
        """\

def config_key(cfg: Config) -> str:
    raw = repr(asdict(cfg))
    return hashlib.sha256(raw.encode()).hexdigest()
""",
        # Not a key builder: no hash call, free to read a subset.
        """\

def describe(cfg: Config) -> str:
    return f"alpha={cfg.alpha}"
""",
    ])
    def test_sound_keys_pass(self, tmp_path, body):
        assert lint_snippet(tmp_path, _CONFIG_PREAMBLE + body,
                            select=["SIM010"]) == []

    def test_class_var_not_required(self, tmp_path):
        violations = lint_snippet(tmp_path, """\
            import hashlib
            from dataclasses import dataclass
            from typing import ClassVar


            @dataclass(frozen=True)
            class Config:
                alpha: float
                KIND: ClassVar[str] = "config"


            def config_key(cfg: Config) -> str:
                return hashlib.sha256(str(cfg.alpha).encode()).hexdigest()
            """, select=["SIM010"])
        assert violations == []


# ---------------------------------------------------------------------------
# SIM011 — emit_row schema conformance
# ---------------------------------------------------------------------------

_SCHEMA_PREAMBLE = """\
EVENT_SCHEMAS = {
    "arrival": frozenset({"job", "queue"}),
    "departure": frozenset({"job"}),
}
"""


class TestSIM011:
    def test_flags_extra_key(self, tmp_path):
        violations = lint_snippet(tmp_path, _SCHEMA_PREAMBLE + """\

def note(tracer, now, job):
    tracer.emit_row({"t": now, "kind": "arrival", "job": job,
                     "queue": 0, "color": "red"})
""", select=["SIM011"])
        assert rule_ids(violations) == {"SIM011"}
        assert "color" in violations[0].message

    def test_flags_missing_key(self, tmp_path):
        violations = lint_snippet(tmp_path, _SCHEMA_PREAMBLE + """\

def note(tracer, now, job):
    tracer.emit_row({"t": now, "kind": "arrival", "job": job})
""", select=["SIM011"])
        assert len(violations) == 1
        assert "queue" in violations[0].message

    def test_flags_unregistered_kind(self, tmp_path):
        violations = lint_snippet(tmp_path, _SCHEMA_PREAMBLE + """\

def note(tracer, now, job):
    tracer.emit_row({"t": now, "kind": "vanish", "job": job})
""", select=["SIM011"])
        assert "not registered" in violations[0].message

    def test_flags_missing_protocol_keys(self, tmp_path):
        violations = lint_snippet(tmp_path, _SCHEMA_PREAMBLE + """\

def note(tracer, job):
    tracer.emit_row({"kind": "departure", "job": job})
""", select=["SIM011"])
        assert "lacks required key" in violations[0].message

    def test_kind_through_dispatch_table(self, tmp_path):
        # The policies.py idiom: kind comes from a module-level dict,
        # so every candidate kind is checked.
        violations = lint_snippet(tmp_path, _SCHEMA_PREAMBLE + """\

_KINDS = {"in": "arrival", "out": "departure"}


def note(tracer, now, job, action):
    tracer.emit_row({"t": now, "kind": _KINDS[action], "job": job})
""", select=["SIM011"])
        # Payload {job} matches "departure" but misses "queue" of
        # "arrival" — exactly one of the two candidates fails.
        assert len(violations) == 1
        assert "'arrival'" in violations[0].message

    @pytest.mark.parametrize("body", [
        # Conforming literal row.
        """\

def note(tracer, now, job):
    tracer.emit_row({"t": now, "kind": "departure", "job": job})
""",
        # Non-literal rows are out of static reach: skipped, not guessed.
        """\

def note(tracer, row):
    tracer.emit_row(row)
""",
    ])
    def test_conforming_and_dynamic_rows_pass(self, tmp_path, body):
        assert lint_snippet(tmp_path, _SCHEMA_PREAMBLE + body,
                            select=["SIM011"]) == []

    def test_silent_without_registry(self, tmp_path):
        # No EVENT_SCHEMAS in the project: the rule cannot know the
        # contract and must not guess.
        assert lint_snippet(tmp_path, """\
            def note(tracer, now):
                tracer.emit_row({"t": now, "kind": "anything", "x": 1})
            """, select=["SIM011"]) == []


# ---------------------------------------------------------------------------
# SIM012 — transitive ambient reads on the hot path
# ---------------------------------------------------------------------------


class TestSIM012:
    @pytest.mark.parametrize("snippet", [
        # One hop to a wall-clock read.
        """\
        import time

        def stamp():
            return time.perf_counter()

        def run_task(task):
            return (task, stamp())
        """,
        # Two hops.
        """\
        import time

        def now():
            return time.time()

        def decorate(task):
            return (task, now())

        def run_task(task):
            return decorate(task)
        """,
        # Environment reads count too.
        """\
        import os

        def knob():
            return os.environ.get("REPRO_FAST", "")

        def run_task(task):
            return (task, knob())
        """,
    ])
    def test_flags_transitive_ambient_read(self, tmp_path, snippet):
        violations = lint_snippet(tmp_path, snippet, select=["SIM012"])
        assert rule_ids(violations) == {"SIM012"}

    def test_message_names_the_sink_chain(self, tmp_path):
        violations = lint_snippet(tmp_path, """\
            import time

            def now():
                return time.time()

            def decorate(task):
                return (task, now())

            def run_task(task):
                return decorate(task)
            """, select=["SIM012"])
        chains = {v.message for v in violations}
        assert any("time.time" in m for m in chains)
        assert any("decorate" in m and "now" in m for m in chains)

    @pytest.mark.parametrize("snippet", [
        # The helper reads a clock but nothing on the hot path calls it.
        """\
        import time

        def profiler():
            return time.perf_counter()

        def run_task(task):
            return task
        """,
        # Pure chains stay silent.
        """\
        def double(task):
            return 2 * task

        def run_task(task):
            return double(task)
        """,
    ])
    def test_unreachable_or_pure_passes(self, tmp_path, snippet):
        assert lint_snippet(tmp_path, snippet, select=["SIM012"]) == []


# ---------------------------------------------------------------------------
# Cross-file resolution: the whole point of the project pass
# ---------------------------------------------------------------------------


class TestCrossModule:
    def test_sim008_across_files(self, tmp_path):
        # Mutation helper and worker entry live in different modules
        # under a shared `repro` package root; per-file analysis sees
        # nothing, the project pass connects them.
        pkg = tmp_path / "repro"
        (pkg / "core").mkdir(parents=True)
        (pkg / "runner").mkdir()
        (pkg / "core" / "state.py").write_text(textwrap.dedent("""\
            _REGISTRY = {}

            def register(key):
                _REGISTRY[key] = True
                return key
            """))
        (pkg / "runner" / "worker.py").write_text(textwrap.dedent("""\
            from repro.core.state import register

            def run_task(task):
                return register(task)
            """))
        result = lint_paths([pkg], select=["SIM008"])
        assert [v.rule for v in result.violations] == ["SIM008"]
        assert result.violations[0].path.endswith("state.py")

    def test_sim012_scope_exempts_obs(self, tmp_path):
        # The same ambient chain is a violation in repro.core but
        # exempt under repro.obs (the "!repro.obs*" scope negation).
        snippet = textwrap.dedent("""\
            import time

            def stamp():
                return time.perf_counter()

            def run_task(task):
                return (task, stamp())
            """)
        for where in ("core", "obs"):
            sub = tmp_path / "repro" / where
            sub.mkdir(parents=True)
            (sub / "helper.py").write_text(snippet)
        result = lint_paths([tmp_path / "repro"], select=["SIM012"])
        assert result.violations, "core finding expected"
        assert all("/core/" in v.path for v in result.violations)
