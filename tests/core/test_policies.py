"""Behavioural tests for the GS / LS / LP / SC scheduling policies.

Each test drives a :class:`MulticlusterSimulation` with hand-crafted job
specs at chosen times and asserts starts, blockings and queue states —
pinning down the §2.5 protocol decisions one by one.
"""

import pytest

from repro.core import MulticlusterSimulation
from repro.workload import JobSpec
from repro.workload.splitting import split_size


class Harness:
    """Submits hand-crafted jobs into a simulation at chosen times."""

    def __init__(self, policy, capacities=(32, 32, 32, 32), **kwargs):
        self.system = MulticlusterSimulation(policy, capacities, **kwargs)
        self.sim = self.system.sim
        self._index = 0
        self.jobs = {}

    def submit_at(self, time, size, *, components=None, service=100.0,
                  queue=0, label=None):
        if components is None:
            components = (size,)
        spec = JobSpec(index=self._index, size=size,
                       components=tuple(components), service_time=service,
                       queue=queue)
        label = label if label is not None else self._index
        self._index += 1

        def do_submit():
            self.jobs[label] = self.system.submit(spec)

        self.sim.call_at(time, do_submit)
        return label

    def run(self, until=None):
        self.sim.run(until=until)

    def started(self, label):
        return self.jobs[label].start_time

    def placement(self, label):
        return dict(self.jobs[label].placement or ())


class TestGS:
    def test_fcfs_no_backfilling(self):
        h = Harness("GS")
        big = h.submit_at(0.0, 120, components=(30, 30, 30, 30),
                          service=50.0)
        blocker = h.submit_at(1.0, 64, components=(16, 16, 16, 16),
                              service=50.0)
        small = h.submit_at(2.0, 1, service=10.0)
        h.run()
        # The small job fits at t=2 (2 processors free per cluster) but
        # must wait behind the blocked 64-job (FCFS, no backfilling).
        # The 120-job is multi-component: gross service 50 * 1.25 = 62.5.
        assert h.started(big) == 0.0
        assert h.started(blocker) == pytest.approx(62.5)
        assert h.started(small) == pytest.approx(62.5)

    def test_single_component_worst_fit_cluster_choice(self):
        h = Harness("GS")
        a = h.submit_at(0.0, 20, service=1000.0)   # -> cluster 0 (tie)
        b = h.submit_at(1.0, 20, service=1000.0)   # -> cluster 1 (emptiest)
        h.run(until=10.0)
        assert h.placement(a) == {0: 20}
        assert h.placement(b) == {1: 20}

    def test_multi_component_distinct_clusters(self):
        h = Harness("GS")
        job = h.submit_at(0.0, 64, components=(16, 16, 16, 16),
                          service=10.0)
        h.run()
        assert sorted(h.placement(job)) == [0, 1, 2, 3]

    def test_departure_unblocks_head(self):
        h = Harness("GS")
        filler = h.submit_at(0.0, 120, components=(30, 30, 30, 30),
                             service=100.0)
        waiter = h.submit_at(1.0, 64, components=(16, 16, 16, 16),
                             service=10.0)
        h.run()
        assert h.started(filler) == 0.0
        # Multi-component job: gross service = 100 * 1.25 = 125.
        assert h.started(waiter) == pytest.approx(125.0)

    def test_extension_factor_applied_to_multi_only(self):
        h = Harness("GS")
        multi = h.submit_at(0.0, 32, components=(16, 16), service=100.0)
        single = h.submit_at(0.0, 16, service=100.0)
        h.run()
        assert h.jobs[multi].response_time == pytest.approx(125.0)
        assert h.jobs[single].response_time == pytest.approx(100.0)


class TestSC:
    def test_total_request_single_cluster(self):
        h = Harness("SC", capacities=(128,))
        job = h.submit_at(0.0, 100, service=10.0)
        h.run()
        assert h.placement(job) == {0: 100}

    def test_full_system_job_forces_drain(self):
        h = Harness("SC", capacities=(128,))
        a = h.submit_at(0.0, 60, service=100.0)
        b = h.submit_at(1.0, 60, service=200.0)
        monster = h.submit_at(2.0, 128, service=10.0)
        late = h.submit_at(3.0, 1, service=1.0)
        h.run()
        # The 128-job waits for the entire system to empty (t=201) even
        # though 8 processors idle meanwhile; the trailing size-1 job
        # waits behind it (§3.2).
        assert h.started(a) == 0.0
        assert h.started(b) == 1.0
        assert h.started(monster) == pytest.approx(201.0)
        assert h.started(late) == pytest.approx(211.0)

    def test_never_extended(self):
        h = Harness("SC", capacities=(128,))
        job = h.submit_at(0.0, 64, service=100.0)
        h.run()
        assert h.jobs[job].response_time == pytest.approx(100.0)


class TestLS:
    def test_single_component_restricted_to_local_cluster(self):
        h = Harness("LS")
        filler = h.submit_at(0.0, 30, queue=1, service=100.0)
        local = h.submit_at(1.0, 10, queue=1, service=10.0)
        h.run()
        # Cluster 1 has only 2 free; clusters 0,2,3 are empty, but the
        # single-component job may only use its local cluster 1.
        assert h.started(filler) == 0.0
        assert h.started(local) == pytest.approx(100.0)
        assert h.placement(local) == {1: 10}

    def test_multi_component_spread_from_any_queue(self):
        h = Harness("LS")
        job = h.submit_at(0.0, 64, components=(16, 16, 16, 16), queue=2,
                          service=10.0)
        h.run()
        assert sorted(h.placement(job)) == [0, 1, 2, 3]

    def test_blocked_queue_does_not_block_other_queues(self):
        # The multi-queue structure acts as a backfilling window (§3.1.1).
        h = Harness("LS")
        filler = h.submit_at(0.0, 30, queue=0, service=100.0)
        blocked = h.submit_at(1.0, 10, queue=0, service=10.0)
        other = h.submit_at(2.0, 10, queue=1, service=10.0)
        h.run()
        assert h.started(blocked) == pytest.approx(100.0)
        assert h.started(other) == 2.0  # queue 1 unaffected

    def test_fcfs_within_queue(self):
        h = Harness("LS")
        filler = h.submit_at(0.0, 30, queue=0, service=100.0)
        first = h.submit_at(1.0, 10, queue=0, service=10.0)
        second = h.submit_at(2.0, 1, queue=0, service=1.0)
        h.run()
        # The size-1 job fits cluster 0 at t=2 but is behind the blocked
        # head of its own queue.
        assert h.started(first) == pytest.approx(100.0)
        assert h.started(second) == pytest.approx(100.0)

    def test_disabled_queue_ignores_arrivals_until_departure(self):
        h = Harness("LS")
        filler = h.submit_at(0.0, 32, queue=0, service=50.0)
        blocked = h.submit_at(1.0, 5, queue=0, service=10.0)  # disables q0
        # At t=2 cluster 0 is still full; the arrival must not start
        # anything, and at t=50 the departure re-enables the queue —
        # then both waiting jobs start in the same visiting rounds.
        also_blocked = h.submit_at(2.0, 1, queue=0, service=10.0)
        h.run()
        assert h.started(filler) == 0.0
        assert h.started(blocked) == pytest.approx(50.0)
        assert h.started(also_blocked) == pytest.approx(50.0)

    def test_starvation_of_whole_system_job(self):
        # A (32,32,32,32) job at one queue's head starves while other
        # queues keep their clusters busy (§3.2's large-job effect).
        h = Harness("LS")
        monster = h.submit_at(0.0, 128, components=(32, 32, 32, 32),
                              queue=0, service=10.0)
        h.run(until=0.5)
        assert h.started(monster) == 0.0  # empty system: starts at once

        h2 = Harness("LS")
        filler = h2.submit_at(0.0, 30, queue=1, service=100.0)
        monster2 = h2.submit_at(1.0, 128, components=(32, 32, 32, 32),
                                queue=0, service=10.0)
        stream = h2.submit_at(2.0, 10, queue=2, service=30.0)
        h2.run()
        # The monster needs all four clusters empty: waits for the
        # filler (t=100) and the queue-2 job (t=32) to finish.
        assert h2.started(stream) == 2.0
        assert h2.started(monster2) == pytest.approx(100.0)


class TestLP:
    def test_routing_single_local_multi_global(self):
        h = Harness("LP")
        single = h.submit_at(0.0, 10, queue=3, service=1000.0)
        multi = h.submit_at(0.0, 32, components=(16, 16), service=1000.0)
        h.run(until=1.0)
        policy = h.system.policy
        assert policy.local_queues[3].total_enqueued == 1
        assert policy.global_queue.total_enqueued == 1
        assert h.placement(single) == {3: 10}

    def test_global_queue_needs_an_empty_local_queue(self):
        h = Harness("LP")
        # Each cluster runs a size-30 filler (2 processors spare) and
        # each local queue holds a blocked size-30 waiter, so no local
        # queue is empty.  The (2,2) multi-component job *fits* in the
        # spare processors at t=2, but the global queue is ineligible
        # while every local queue is nonempty (§2.5 LP).
        for i in range(4):
            h.submit_at(0.0, 30, queue=i, service=100.0)
        waiters = [h.submit_at(1.0, 30, queue=i, service=10.0)
                   for i in range(4)]
        multi = h.submit_at(2.0, 4, components=(2, 2), service=10.0)
        h.run()
        # At t=100 the fillers depart, the waiters start (emptying the
        # local queues) and the global job finally starts.
        assert all(h.started(w) == pytest.approx(100.0) for w in waiters)
        assert h.started(multi) == pytest.approx(100.0)

    def test_global_blocked_while_locals_nonempty(self):
        h = Harness("LP")
        # Keep cluster 0 busy and queue 0 nonempty; clusters 1..3 idle.
        filler = h.submit_at(0.0, 32, queue=0, service=100.0)
        waiter = h.submit_at(1.0, 32, queue=0, service=5.0)
        # Give the other locals a job to occupy their queues briefly:
        # they start immediately (clusters empty), so their queues
        # empty and the global queue is eligible.
        multi = h.submit_at(2.0, 8, components=(4, 4), service=10.0)
        h.run()
        # Locals 1..3 are empty at t=2 -> global starts immediately.
        assert h.started(multi) == 2.0

    def test_eligibility_is_queue_emptiness_not_cluster_idleness(self):
        h = Harness("LP")
        # Only queue 0 is nonempty (blocked waiter); queues 1-3 are
        # empty, so the global queue IS eligible even though cluster 0
        # is saturated.
        h.submit_at(0.0, 32, queue=0, service=100.0)
        h.submit_at(1.0, 32, queue=0, service=10.0)  # blocked waiter
        multi = h.submit_at(2.0, 8, components=(4, 4), service=10.0)
        h.run()
        # Clusters 1-3 are idle and some local queue is empty: the
        # global job starts immediately on two of them.
        assert h.started(multi) == 2.0
        assert 0 not in dict(h.jobs[multi].placement)

    def test_global_fifo_order(self):
        h = Harness("LP")
        first = h.submit_at(0.0, 64, components=(32, 32), service=50.0)
        second = h.submit_at(1.0, 64, components=(32, 32), service=50.0)
        third = h.submit_at(2.0, 64, components=(32, 32), service=50.0)
        h.run()
        assert h.started(first) == 0.0
        assert h.started(second) == 1.0  # two clusters still free
        # The third waits for the first departure (t = 0 + 50 * 1.25).
        assert h.started(third) == pytest.approx(62.5)

    def test_from_global_queue_tagging(self):
        h = Harness("LP")
        single = h.submit_at(0.0, 10, queue=0, service=10.0)
        multi = h.submit_at(0.0, 8, components=(4, 4), service=10.0)
        h.run()
        assert h.jobs[single].from_global_queue is False
        assert h.jobs[multi].from_global_queue is True


class TestInvariants:
    @pytest.mark.parametrize("policy,caps", [
        ("GS", (32, 32, 32, 32)),
        ("LS", (32, 32, 32, 32)),
        ("LP", (32, 32, 32, 32)),
        ("SC", (128,)),
    ])
    def test_all_jobs_complete_and_processors_return(self, policy, caps):
        h = Harness(policy, capacities=caps)
        sizes = [1, 16, 24, 64, 128, 32, 8, 5, 64, 2]
        for i, size in enumerate(sizes):
            comps = (split_size(size, 16, 4) if policy != "SC"
                     else (size,))
            h.submit_at(float(i), size, components=comps,
                        service=20.0 + i, queue=i % 4)
        h.run()
        assert h.system.jobs_finished == len(sizes)
        assert h.system.multicluster.total_free == sum(caps)
        assert h.system.invariants_ok()
        for job in h.jobs.values():
            assert job.response_time >= job.gross_service_time - 1e-9
