"""Tests for the request-type taxonomy (unordered/ordered/flexible/total)."""

import pytest

from repro.core import RequestType, try_place


class TestUnordered:
    def test_scheduler_chooses_clusters(self):
        asg = try_place(RequestType.UNORDERED, (16, 8), [10, 32, 20, 5])
        assert dict(asg) == {1: 16, 2: 8}

    def test_no_fit(self):
        assert try_place(RequestType.UNORDERED, (16, 16),
                         [15, 15, 15, 15]) is None


class TestOrdered:
    def test_component_i_to_cluster_i(self):
        asg = try_place(RequestType.ORDERED, (10, 20), [10, 32, 5, 5])
        assert asg == ((0, 10), (1, 20))

    def test_fails_if_any_position_lacks_space(self):
        # Unordered would fit this by swapping; ordered must not.
        assert try_place(RequestType.ORDERED, (20, 10), [10, 32]) is None
        assert try_place(RequestType.UNORDERED, (20, 10),
                         [10, 32]) is not None

    def test_zero_components_skipped(self):
        asg = try_place(RequestType.ORDERED, (0, 12, 0, 4), [0, 32, 0, 8])
        assert asg == ((1, 12), (3, 4))

    def test_too_many_components(self):
        assert try_place(RequestType.ORDERED, (1, 1, 1), [4, 4]) is None


class TestFlexible:
    def test_splits_arbitrarily(self):
        asg = try_place(RequestType.FLEXIBLE, (50,), [32, 20, 10, 5])
        assert sum(p for _, p in asg) == 50
        placed = dict(asg)
        for idx, procs in placed.items():
            assert procs <= [32, 20, 10, 5][idx]

    def test_uses_emptiest_first(self):
        asg = try_place(RequestType.FLEXIBLE, (30,), [10, 32, 20, 5])
        assert asg[0] == (1, 30)

    def test_fits_anything_up_to_total_free(self):
        assert try_place(RequestType.FLEXIBLE, (67,),
                         [32, 20, 10, 5]) is not None
        assert try_place(RequestType.FLEXIBLE, (68,),
                         [32, 20, 10, 5]) is None

    def test_distinct_clusters_in_assignment(self):
        asg = try_place(RequestType.FLEXIBLE, (60,), [32, 32, 32, 32])
        clusters = [i for i, _ in asg]
        assert len(set(clusters)) == len(clusters)


class TestTotal:
    def test_single_cluster_only(self):
        asg = try_place(RequestType.TOTAL, (40,), [32, 64])
        assert asg == ((1, 40),)

    def test_total_exceeding_every_cluster_fails(self):
        # 50 free in total but no single cluster holds 40.
        assert try_place(RequestType.TOTAL, (40,), [30, 20]) is None

    def test_worst_fit_among_clusters(self):
        asg = try_place(RequestType.TOTAL, (10,), [20, 30, 25])
        assert asg == ((1, 10),)

    def test_multi_component_tuple_uses_sum(self):
        asg = try_place(RequestType.TOTAL, (10, 10), [32])
        assert asg == ((0, 20),)


def test_request_type_hierarchy():
    # Flexible fits whenever unordered does; unordered whenever total
    # does (on the same free vector) — the taxonomy's dominance order.
    cases = [
        ((16, 16), [20, 20, 5, 5]),
        ((32,), [31, 31, 31, 31]),
        ((22, 21, 21), [32, 32, 11, 10]),
    ]
    for comps, free in cases:
        total = try_place(RequestType.TOTAL, comps, free)
        unordered = try_place(RequestType.UNORDERED, comps, free)
        flexible = try_place(RequestType.FLEXIBLE, comps, free)
        if total is not None:
            assert unordered is not None or len(comps) > len(free)
        if unordered is not None:
            assert flexible is not None
