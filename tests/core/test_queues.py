"""Tests for FCFS queues and the enable/disable visiting protocol."""

import pytest

from repro.core import JobQueue, QueueRing


def q(name, **kw):
    return JobQueue(name, **kw)


class TestJobQueue:
    def test_fifo(self):
        queue = q("local-0")
        queue.push("a")
        queue.push("b")
        assert queue.head == "a"
        assert queue.pop() == "a"
        assert queue.head == "b"

    def test_empty_head_none(self):
        assert q("x").head is None

    def test_truthiness_and_len(self):
        queue = q("x")
        assert not queue
        queue.push(1)
        assert queue
        assert len(queue) == 1

    def test_total_enqueued_counter(self):
        queue = q("x")
        for i in range(5):
            queue.push(i)
        queue.pop()
        assert queue.total_enqueued == 5

    def test_global_flag(self):
        assert q("global", is_global=True).is_global
        assert not q("local-0").is_global


class TestQueueRing:
    def setup_method(self):
        self.locals = [q(f"local-{i}") for i in range(3)]
        self.glob = q("global", is_global=True)

    def test_needs_queues(self):
        with pytest.raises(ValueError):
            QueueRing([])

    def test_initial_visit_order(self):
        ring = QueueRing(self.locals)
        assert ring.visit() == tuple(self.locals)

    def test_disable_removes_from_rotation(self):
        ring = QueueRing(self.locals)
        ring.disable(self.locals[1])
        assert not self.locals[1].enabled
        assert ring.visit() == (self.locals[0], self.locals[2])
        assert ring.disabled_queues == (self.locals[1],)

    def test_disable_idempotent(self):
        ring = QueueRing(self.locals)
        ring.disable(self.locals[0])
        ring.disable(self.locals[0])
        assert ring.disabled_queues == (self.locals[0],)

    def test_reenable_in_disablement_order(self):
        # §2.5: "At each job departure the queues are enabled in the
        # same order in which they were disabled."
        ring = QueueRing(self.locals)
        ring.disable(self.locals[2])
        ring.disable(self.locals[0])
        ring.enable_all()
        assert ring.visit() == (
            self.locals[1], self.locals[2], self.locals[0]
        )
        assert all(queue.enabled for queue in self.locals)

    def test_enable_all_global_first(self):
        # LP rule: "they are always enabled starting with the global
        # queue."
        ring = QueueRing([self.glob] + self.locals)
        ring.disable(self.locals[1])
        ring.disable(self.glob)
        ring.disable(self.locals[0])
        ring.enable_all(global_first=True)
        assert ring.visit() == (
            self.locals[2], self.glob, self.locals[1], self.locals[0]
        )

    def test_enable_all_skip_global(self):
        # LP rule: with no empty local queue, only locals re-enable.
        ring = QueueRing([self.glob] + self.locals)
        ring.disable(self.glob)
        ring.disable(self.locals[1])
        ring.enable_all(skip_global=True)
        assert self.locals[1].enabled
        assert not self.glob.enabled
        assert ring.disabled_queues == (self.glob,)
        # The skipped global queue re-enables at the next opportunity.
        ring.enable_all(global_first=True)
        assert self.glob.enabled

    def test_reenable_single_queue(self):
        ring = QueueRing([self.glob] + self.locals)
        ring.disable(self.glob)
        ring.reenable(self.glob)
        assert self.glob.enabled
        assert ring.visit()[-1] is self.glob

    def test_reenable_enabled_queue_noop(self):
        ring = QueueRing(self.locals)
        ring.reenable(self.locals[0])
        assert ring.visit() == tuple(self.locals)

    def test_total_jobs(self):
        ring = QueueRing(self.locals)
        self.locals[0].push("a")
        self.locals[2].push("b")
        self.locals[2].push("c")
        assert ring.total_jobs() == 3
