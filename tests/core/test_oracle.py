"""Cross-verification against an independent reference implementation.

The engine-based GS policy is re-simulated by a from-scratch
chronological replay (no event engine, no callbacks, no shared code
beyond the placement rule) and the two must produce identical start
and finish times for every job.  Any bug in the engine's event
ordering, the policy's drain loop or the departure plumbing breaks
this equivalence.
"""

import heapq

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MulticlusterSimulation
from repro.core.placement import worst_fit
from repro.workload import JobSpec
from repro.workload.splitting import split_size

CAPS = (32, 32, 32, 32)
EXTENSION = 1.25


def reference_gs(jobs):
    """Chronological replay of GS: FCFS, WF over distinct clusters.

    ``jobs``: list of (arrival, components, gross_service).
    Returns [(start, finish)] per job, same order.
    """
    free = list(CAPS)
    queue = []                   # indices, FCFS
    arrivals = sorted(range(len(jobs)), key=lambda i: jobs[i][0])
    departures = []              # heap of (finish, seq, job index)
    results = {}
    seq = 0
    next_arrival = 0
    now = 0.0

    def try_drain():
        nonlocal seq
        while queue:
            idx = queue[0]
            _, components, gross = jobs[idx]
            assignment = worst_fit(components, free)
            if assignment is None:
                return
            queue.pop(0)
            for cluster, procs in assignment:
                free[cluster] -= procs
            finish = now + gross
            results[idx] = [now, finish]
            seq += 1
            heapq.heappush(departures, (finish, seq, idx, assignment))

    while next_arrival < len(arrivals) or departures:
        # Pick the next chronological event; engine semantics: at equal
        # times, earlier-scheduled departures precede later arrivals
        # only if their event entered the calendar first.  Departures
        # are scheduled at start time, arrivals at submission — an
        # arrival at exactly a departure's time was scheduled earlier
        # (call_at at t=0 vs timeout mid-run) in the harness; keep the
        # engine's effective order: departures first at ties, matching
        # heapq eid order because the departure's timeout was created
        # before the later arrival's... to stay exact we use the same
        # rule the engine exhibits with this harness: process
        # departures before arrivals at equal times.
        t_arr = (jobs[arrivals[next_arrival]][0]
                 if next_arrival < len(arrivals) else None)
        t_dep = departures[0][0] if departures else None
        if t_dep is not None and (t_arr is None or t_dep <= t_arr):
            now = t_dep
            _, _, _, assignment = heapq.heappop(departures)
            for cluster, procs in assignment:
                free[cluster] += procs
            try_drain()
        else:
            now = t_arr
            queue.append(arrivals[next_arrival])
            next_arrival += 1
            try_drain()
    return [tuple(results[i]) for i in range(len(jobs))]


def engine_gs(jobs):
    """The same workload through the real engine + GS policy."""
    system = MulticlusterSimulation("GS", CAPS,
                                    extension_factor=EXTENSION)
    tracked = {}
    for i, (arrival, components, gross) in enumerate(jobs):
        # gross = service * ext for multi; invert to the base service.
        multi = len(components) > 1
        service = gross / (EXTENSION if multi else 1.0)
        spec = JobSpec(index=i, size=sum(components),
                       components=components, service_time=service,
                       queue=0)

        def submit(spec=spec, i=i):
            tracked[i] = system.submit(spec)

        system.sim.call_at(arrival, submit)
    system.sim.run()
    return [
        (tracked[i].start_time, tracked[i].finish_time)
        for i in range(len(jobs))
    ]


job_stream = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=300.0, allow_nan=False),
        st.integers(min_value=1, max_value=128),
        st.floats(min_value=0.5, max_value=80.0, allow_nan=False),
    ),
    min_size=1, max_size=30,
)


def build_jobs(raw):
    jobs = []
    used = set()
    for arrival, size, service in raw:
        # Distinct arrival times keep the tie-order question out of the
        # oracle (tie-breaking inside the engine is tested separately).
        while arrival in used:
            arrival += 1e-3
        used.add(arrival)
        components = split_size(size, 16, 4)
        gross = service * (EXTENSION if len(components) > 1 else 1.0)
        jobs.append((arrival, components, gross))
    return jobs


@given(job_stream)
@settings(max_examples=60, deadline=None)
def test_engine_gs_matches_reference(raw):
    jobs = build_jobs(raw)
    expected = reference_gs(jobs)
    actual = engine_gs(jobs)
    for i, ((es, ef), (as_, af)) in enumerate(zip(expected, actual)):
        assert as_ == pytest.approx(es, abs=1e-6), (i, jobs[i])
        assert af == pytest.approx(ef, abs=1e-6), (i, jobs[i])


def test_oracle_on_fixed_scenario():
    rng = np.random.default_rng(5)
    raw = [
        (float(t), int(s), float(sv))
        for t, s, sv in zip(
            np.cumsum(rng.exponential(20.0, 60)),
            rng.choice([1, 8, 16, 24, 64, 128], 60),
            rng.exponential(40.0, 60) + 1.0,
        )
    ]
    jobs = build_jobs(raw)
    assert engine_gs(jobs) == pytest.approx(reference_gs(jobs))
