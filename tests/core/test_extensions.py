"""Tests for the extension policies (ordered/flexible GS, backfilling)."""

import pytest

from repro.core import MulticlusterSimulation
from repro.core.extensions import (
    BackfillGSPolicy,
    FlexibleGSPolicy,
    OrderedGSPolicy,
    make_backfill_policy,
)
from repro.workload import JobSpec


class Harness:
    def __init__(self, policy, capacities=(32, 32, 32, 32)):
        self.system = MulticlusterSimulation(policy, capacities)
        self.sim = self.system.sim
        self._index = 0
        self.jobs = {}

    def submit_at(self, time, size, *, components=None, service=100.0,
                  queue=0):
        if components is None:
            components = (size,)
        spec = JobSpec(index=self._index, size=size,
                       components=tuple(components),
                       service_time=service, queue=queue)
        label = self._index
        self._index += 1
        self.sim.call_at(
            time, lambda: self.jobs.__setitem__(
                label, self.system.submit(spec)
            )
        )
        return label

    def run(self, until=None):
        self.sim.run(until=until)

    def started(self, label):
        return self.jobs[label].start_time


class TestOrderedGS:
    def test_component_i_pinned_to_cluster_i(self):
        h = Harness(lambda s: OrderedGSPolicy(s))
        filler = h.submit_at(0.0, 30, components=(30,), service=50.0)
        # Ordered (20, 10): 20 must go to cluster 0, which is busy.
        pinned = h.submit_at(1.0, 30, components=(20, 10), service=10.0)
        h.run()
        assert h.started(filler) == 0.0
        # Unordered would fit at t=1 on clusters 1 and 2; ordered waits
        # for cluster 0.
        assert h.started(pinned) == pytest.approx(50.0)
        assert dict(h.jobs[pinned].placement) == {0: 20, 1: 10}


class TestFlexibleGS:
    def test_splits_across_all_free_processors(self):
        h = Harness(lambda s: FlexibleGSPolicy(s))
        h.submit_at(0.0, 30, components=(30,), service=100.0)
        h.submit_at(0.0, 30, components=(30,), service=100.0)
        h.submit_at(0.0, 30, components=(30,), service=100.0)
        # 38 free processors spread as 2/2/2/32; a flexible request of
        # 35 fits although no 2 clusters could hold (18,17).
        flexible = h.submit_at(1.0, 35, components=(18, 17),
                               service=10.0)
        h.run()
        assert h.started(flexible) == 1.0

    def test_still_blocks_when_total_free_insufficient(self):
        h = Harness(lambda s: FlexibleGSPolicy(s))
        filler = h.submit_at(0.0, 120, components=(30, 30, 30, 30),
                             service=50.0)
        big = h.submit_at(1.0, 10, components=(10,), service=1.0)
        h.run()
        assert h.started(big) == pytest.approx(
            h.jobs[filler].finish_time
        )


class TestBackfillGS:
    def test_backfills_past_blocked_head(self):
        h = Harness(lambda s: BackfillGSPolicy(s, window=4))
        filler = h.submit_at(0.0, 120, components=(30, 30, 30, 30),
                             service=50.0)
        blocked = h.submit_at(1.0, 64, components=(16, 16, 16, 16),
                              service=10.0)
        small = h.submit_at(2.0, 4, components=(2, 2), service=5.0)
        h.run()
        assert h.started(filler) == 0.0
        # Plain GS would hold the size-4 job behind the blocked head;
        # backfilling starts it immediately.
        assert h.started(small) == 2.0
        assert h.started(blocked) == pytest.approx(62.5)

    @pytest.mark.parametrize("window,expected_start", [(2, 75.0),
                                                       (4, 3.0)])
    def test_window_limits_lookahead(self, window, expected_start):
        h = Harness(lambda s: BackfillGSPolicy(s, window=window))
        # Queue: filler running; two blocked 64-jobs; a small job that
        # fits immediately but sits at position 3 — beyond a window of
        # 2, inside a window of 4.
        h.submit_at(0.0, 120, components=(30, 30, 30, 30), service=50.0)
        h.submit_at(1.0, 64, components=(16, 16, 16, 16), service=10.0)
        h.submit_at(2.0, 64, components=(16, 16, 16, 16), service=10.0)
        small = h.submit_at(3.0, 4, components=(2, 2), service=5.0)
        h.run()
        # window=2: the small job waits for the filler (62.5) and then
        # for the two 64s to fill the machine; it starts when the first
        # 64 departs (62.5 + 12.5 = 75).  window=4: backfills at t=3.
        assert h.started(small) == pytest.approx(expected_start)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            Harness(lambda s: BackfillGSPolicy(s, window=0))

    def test_default_window_is_cluster_count(self):
        h = Harness(lambda s: BackfillGSPolicy(s))
        assert h.system.policy.window == 4

    def test_factory_helper(self):
        h = Harness(make_backfill_policy(3))
        assert h.system.policy.window == 3

    def test_backfill_at_least_as_good_as_gs_for_throughput(self):
        # Same deterministic job pattern under GS and GS-BF: the
        # backfiller must not finish later overall.
        from repro.core import GSPolicy

        def drive(policy_factory):
            h = Harness(policy_factory)
            pattern = [
                (0.0, 120, (30, 30, 30, 30)),
                (1.0, 64, (16, 16, 16, 16)),
                (2.0, 4, (2, 2)),
                (3.0, 8, (4, 4)),
                (4.0, 16, (16,)),
            ]
            for t, size, comps in pattern:
                h.submit_at(t, size, components=comps, service=20.0)
            h.run()
            return h.sim.now

        assert drive(lambda s: BackfillGSPolicy(s, 4)) <= drive(
            lambda s: GSPolicy(s)
        )


class TestRegistry:
    def test_register_extension_policies(self):
        from repro.core.extensions import (
            EXTENSION_POLICIES,
            register_extension_policies,
        )
        from repro.core.policies import POLICIES

        register_extension_policies()
        try:
            assert "GS-BF" in POLICIES
            system = MulticlusterSimulation("GS-BF")
            assert system.policy.name == "GS-BF"
        finally:
            for name in EXTENSION_POLICIES:
                POLICIES.pop(name, None)
