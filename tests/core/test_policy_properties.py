"""Property-based tests: every policy preserves the model invariants
under arbitrary job streams."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MulticlusterSimulation
from repro.workload import JobSpec
from repro.workload.splitting import split_size

job_streams = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
        st.integers(min_value=1, max_value=128),   # size
        st.floats(min_value=0.1, max_value=200.0,  # service
                  allow_nan=False),
        st.integers(min_value=0, max_value=3),      # queue
        st.sampled_from([16, 24, 32]),              # split limit
    ),
    min_size=1,
    max_size=25,
)


def drive(policy, caps, jobs, split):
    system = MulticlusterSimulation(policy, caps)
    submitted = []
    for index, (delay, size, service, queue, limit) in enumerate(jobs):
        components = split_size(size, limit, 4) if split else (size,)
        spec = JobSpec(index=index, size=size,
                       components=components, service_time=service,
                       queue=queue)

        def do_submit(spec=spec):
            job = system.submit(spec)
            submitted.append(job)
            assert system.invariants_ok()

        system.sim.call_at(delay, do_submit)
    system.sim.run()
    return system, submitted


@given(job_streams)
@settings(max_examples=40, deadline=None)
def test_gs_invariants(jobs):
    system, submitted = drive("GS", (32, 32, 32, 32), jobs, split=True)
    check_final_state(system, submitted)


@given(job_streams)
@settings(max_examples=40, deadline=None)
def test_ls_invariants(jobs):
    system, submitted = drive("LS", (32, 32, 32, 32), jobs, split=True)
    check_final_state(system, submitted)


@given(job_streams)
@settings(max_examples=40, deadline=None)
def test_lp_invariants(jobs):
    system, submitted = drive("LP", (32, 32, 32, 32), jobs, split=True)
    check_final_state(system, submitted)


@given(job_streams)
@settings(max_examples=40, deadline=None)
def test_sc_invariants(jobs):
    system, submitted = drive("SC", (128,), jobs, split=False)
    check_final_state(system, submitted)


def check_final_state(system, submitted):
    # Every submitted job completed (a finite stream must drain: no
    # deadlock, no lost jobs).
    assert system.jobs_finished == len(submitted)
    # All processors returned.
    assert system.multicluster.total_free == (
        system.multicluster.total_capacity
    )
    # Per-job sanity: response >= gross service, start >= arrival, and
    # the placement used distinct clusters covering the full size.
    for job in submitted:
        assert job.finish_time is not None
        assert job.start_time >= job.arrival_time - 1e-9
        assert job.response_time >= job.gross_service_time - 1e-9
        clusters = [c for c, _ in job.placement]
        assert len(set(clusters)) == len(clusters)
        assert sum(p for _, p in job.placement) == job.size
    # FCFS per origin stream: under GS/SC all jobs share one queue, so
    # start times follow arrival order among jobs... only guaranteed
    # per-queue; global ordering is checked in the behavioural tests.


@given(job_streams)
@settings(max_examples=20, deadline=None)
def test_ls_single_component_jobs_stay_local(jobs):
    system, submitted = drive("LS", (32, 32, 32, 32), jobs, split=True)
    for job in submitted:
        if not job.is_multi_component:
            assert job.placement == (
                (job.origin_queue % 4, job.size),
            )


@given(job_streams)
@settings(max_examples=20, deadline=None)
def test_lp_routing_by_component_count(jobs):
    system, submitted = drive("LP", (32, 32, 32, 32), jobs, split=True)
    for job in submitted:
        assert job.from_global_queue == job.is_multi_component


@given(job_streams)
@settings(max_examples=15, deadline=None)
def test_gross_utilization_never_exceeds_one(jobs):
    system, submitted = drive("GS", (32, 32, 32, 32), jobs, split=True)
    if system.sim.now > 0:
        util = system.metrics.gross_utilization(system.sim.now)
        if not math.isnan(util):
            assert -1e-9 <= util <= 1.0 + 1e-9
