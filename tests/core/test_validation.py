"""Failure-injection tests: the invariant monitor must catch corruption."""

import pytest

from repro.core import MulticlusterSimulation
from repro.core.validation import InvariantMonitor, InvariantViolation
from repro.sim import Deterministic, StreamFactory
from repro.workload import JobFactory, das_s_128


def build(policy="LS"):
    system = MulticlusterSimulation(policy)
    monitor = InvariantMonitor(system)
    factory = JobFactory(das_s_128(), Deterministic(50.0), 16,
                         streams=StreamFactory(6))
    return system, monitor, factory


class TestCleanRunsPass:
    @pytest.mark.parametrize("policy", ["GS", "LS", "LP"])
    def test_monitor_silent_on_healthy_run(self, policy):
        system, monitor, factory = build(policy)
        for _ in range(200):
            system.submit(factory.next_job())
        system.sim.run()
        monitor.check()
        assert monitor.checks >= 200
        assert len(monitor.running) == 0


class TestFailureInjection:
    def test_detects_leaked_allocation(self):
        system, monitor, factory = build()
        for _ in range(10):
            system.submit(factory.next_job())
        # Steal processors behind the scheduler's back.
        system.multicluster[0].allocate(1)
        with pytest.raises(InvariantViolation, match="busy=.*hold"):
            monitor.check()

    def test_detects_double_release(self):
        system, monitor, factory = build()
        for _ in range(10):
            system.submit(factory.next_job())
        cluster = system.multicluster[1]
        if cluster.busy == 0:
            system.multicluster[0].release(1)  # corrupt another way
            with pytest.raises(Exception):
                monitor.check()
            return
        cluster.release(1)
        with pytest.raises(InvariantViolation):
            monitor.check()

    def test_detects_counter_drift(self):
        system, monitor, factory = build()
        for _ in range(5):
            system.submit(factory.next_job())
        system.jobs_started += 1  # phantom job
        with pytest.raises(InvariantViolation, match="ledger"):
            monitor.check()

    def test_detects_state_corruption_in_queue(self):
        system, monitor, factory = build("GS")
        # Fill the machine so subsequent jobs queue.
        from repro.workload import JobSpec

        big = JobSpec(index=0, size=128, components=(32, 32, 32, 32),
                      service_time=1000.0, queue=0)
        waiting = JobSpec(index=1, size=128,
                          components=(32, 32, 32, 32),
                          service_time=10.0, queue=0)
        system.submit(big)
        queued_job = system.submit(waiting)
        # Corrupt the queued job's state.
        from repro.core.jobs import JobState

        queued_job.state = JobState.FINISHED
        with pytest.raises(InvariantViolation, match="queued"):
            monitor.check()

    def test_detects_fcfs_violation(self):
        system, monitor, factory = build("GS")
        from repro.workload import JobSpec

        big = JobSpec(index=0, size=128, components=(32, 32, 32, 32),
                      service_time=1000.0, queue=0)
        system.submit(big)
        a = system.submit(JobSpec(index=1, size=128,
                                  components=(32, 32, 32, 32),
                                  service_time=10.0, queue=0))
        b = system.submit(JobSpec(index=2, size=128,
                                  components=(32, 32, 32, 32),
                                  service_time=10.0, queue=0))
        # Swap arrival stamps to fake an out-of-order queue.
        a.arrival_time, b.arrival_time = 5.0, 1.0
        with pytest.raises(InvariantViolation, match="FCFS"):
            monitor.check()

    def test_monitor_preserves_existing_hook(self):
        system = MulticlusterSimulation("GS")
        calls = []
        system.on_departure_hook = lambda job: calls.append(job)
        InvariantMonitor(system)
        factory = JobFactory(das_s_128(), Deterministic(5.0), 16,
                             streams=StreamFactory(1))
        for _ in range(5):
            system.submit(factory.next_job())
        system.sim.run()
        assert len(calls) == 5
