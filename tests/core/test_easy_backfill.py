"""Tests for EASY (reservation-based) backfilling."""

import pytest

from repro.core import MulticlusterSimulation
from repro.core.extensions import EasyBackfillGSPolicy
from repro.workload import JobSpec


class Harness:
    def __init__(self, capacities=(32, 32, 32, 32)):
        self.system = MulticlusterSimulation(
            lambda s: EasyBackfillGSPolicy(s), capacities)
        self.sim = self.system.sim
        self._index = 0
        self.jobs = {}

    def submit_at(self, time, size, *, components=None, service=100.0):
        if components is None:
            components = (size,)
        spec = JobSpec(index=self._index, size=size,
                       components=tuple(components),
                       service_time=service, queue=0)
        label = self._index
        self._index += 1
        self.sim.call_at(
            time,
            lambda: self.jobs.__setitem__(label,
                                          self.system.submit(spec)),
        )
        return label

    def run(self, until=None):
        self.sim.run(until=until)

    def started(self, label):
        return self.jobs[label].start_time


class TestEasyBackfill:
    def test_backfills_jobs_that_fit_before_reservation(self):
        h = Harness()
        # Filler holds 120 procs until t=50 (single-component pieces on
        # each cluster won't happen; use one 4-comp job: gross 62.5).
        filler = h.submit_at(0.0, 120, components=(30, 30, 30, 30),
                             service=50.0)
        blocked = h.submit_at(1.0, 64, components=(16, 16, 16, 16),
                              service=10.0)
        # Fits now (2 free per cluster) and finishes (t=2+5*1.25=8.25)
        # before the reservation at 62.5: must backfill.
        quick = h.submit_at(2.0, 4, components=(2, 2), service=5.0)
        h.run()
        assert h.started(quick) == 2.0
        assert h.started(blocked) == pytest.approx(62.5)
        assert h.system.policy.backfills == 1

    def test_refuses_backfill_that_would_delay_head(self):
        h = Harness()
        filler = h.submit_at(0.0, 120, components=(30, 30, 30, 30),
                             service=50.0)
        blocked = h.submit_at(1.0, 64, components=(16, 16, 16, 16),
                              service=10.0)
        # Fits now but would run past the reservation (service 100 *
        # 1.25 = 125 > 62.5): aggressive backfilling would start it and
        # starve the head; EASY must refuse.
        long_small = h.submit_at(2.0, 4, components=(2, 2),
                                 service=100.0)
        h.run()
        assert h.started(blocked) == pytest.approx(62.5)
        # The small job starts only after the head (FCFS resumes).
        assert h.started(long_small) >= 62.5
        assert h.system.policy.backfills == 0

    def test_head_never_starved_under_stream_of_small_jobs(self):
        h = Harness()
        h.submit_at(0.0, 120, components=(30, 30, 30, 30), service=50.0)
        head = h.submit_at(1.0, 128, components=(32, 32, 32, 32),
                           service=10.0)
        # A stream of small long jobs that always fit the idle 8 procs;
        # aggressive backfilling would starve the 128-job forever.
        for k in range(20):
            h.submit_at(2.0 + k, 4, components=(2, 2), service=100.0)
        h.run()
        # Head starts exactly when the filler leaves.
        assert h.started(head) == pytest.approx(62.5)

    def test_plain_fcfs_behaviour_when_everything_fits(self):
        h = Harness()
        a = h.submit_at(0.0, 16, components=(16,), service=10.0)
        b = h.submit_at(1.0, 16, components=(16,), service=10.0)
        h.run()
        assert h.started(a) == 0.0
        assert h.started(b) == 1.0
        assert h.system.policy.backfills == 0

    def test_registry_name(self):
        from repro.core.extensions import (
            EXTENSION_POLICIES,
            register_extension_policies,
        )
        from repro.core.policies import POLICIES

        assert "GS-EASY" in EXTENSION_POLICIES
        register_extension_policies()
        try:
            system = MulticlusterSimulation("GS-EASY")
            assert system.policy.name == "GS-EASY"
        finally:
            for name in EXTENSION_POLICIES:
                POLICIES.pop(name, None)

    def test_overestimates_suppress_backfilling(self):
        # With 10x overestimates, the quick job's estimated finish
        # exceeds the reservation, so EASY refuses a backfill that
        # perfect estimates would allow.
        h = Harness()
        h.system.policy.estimator = (
            lambda job: 10.0 * job.gross_service_time
        )
        h.submit_at(0.0, 120, components=(30, 30, 30, 30), service=50.0)
        blocked = h.submit_at(1.0, 64, components=(16, 16, 16, 16),
                              service=10.0)
        quick = h.submit_at(2.0, 4, components=(2, 2), service=30.0)
        h.run()
        # Perfect estimates: quick (gross 37.5 * 1.25? multi ->
        # 30*1.25=37.5) finishes at 2+37.5=39.5 < 625 reservation?
        # With 10x estimates the filler's estimated departure is 625,
        # and quick's estimated run is 375 -> 2+375 < 625 would still
        # backfill; so check the other direction: head reservation is
        # *estimated* 625, quick estimated end 377 < 625: backfills.
        # What must NOT happen is the head starting late.
        assert h.started(blocked) == pytest.approx(62.5)

    def test_bad_estimate_rejected(self):
        h = Harness()
        h.system.policy.estimator = lambda job: 0.0
        with pytest.raises(ValueError):
            h.submit_at(0.0, 16, components=(16,), service=10.0)
            h.run()

    def test_estimator_changes_backfill_decisions(self):
        def scenario(estimator):
            h = Harness()
            h.system.policy.estimator = estimator
            h.submit_at(0.0, 120, components=(30, 30, 30, 30),
                        service=50.0)
            h.submit_at(1.0, 64, components=(16, 16, 16, 16),
                        service=10.0)
            # True gross 25; fits before the true reservation (62.5)
            # but not before an underestimated one.
            candidate = h.submit_at(2.0, 4, components=(2, 2),
                                    service=20.0)
            h.run(until=40.0)
            return h.jobs[candidate].start_time

        exact = scenario(None)
        # Underestimating only the big filler (size 120) shrinks the
        # reservation to ~6.25 while the candidate's own estimate stays
        # truthful (25 s): it no longer fits under the reservation and
        # must wait.
        shrunk = scenario(
            lambda job: job.gross_service_time * (0.1 if job.size > 100
                                                  else 1.0)
        )
        assert exact == 2.0
        assert shrunk is None  # still waiting at t=40

    def test_all_jobs_complete(self):
        h = Harness()
        from repro.workload.splitting import split_size

        for i, size in enumerate([64, 5, 128, 24, 16, 64, 1, 32]):
            h.submit_at(float(i), size,
                        components=split_size(size, 16, 4),
                        service=15.0 + i)
        h.run()
        assert h.system.jobs_finished == 8
        assert h.system.multicluster.total_free == 128
