"""The allocation-free placement kernels vs the reference greedy.

The hot-path kernels in :mod:`repro.core.placement` (single linear scan
over a reused scratch array, folded feasibility tests, single-component
fast path) must make *exactly* the decisions of the original allocating
implementation — assignments feed the obs event stream and the extras
counters, so any divergence breaks byte-identity of runs.  Hypothesis
drives both implementations through the same inputs, including unsorted
component lists (the kernels skip re-sorting pre-sorted input),
infeasible requests and degenerate shapes.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.placement import PLACEMENT_RULES, REFERENCE_RULES

RULES = sorted(PLACEMENT_RULES)


def test_reference_registry_mirrors_rules() -> None:
    assert sorted(REFERENCE_RULES) == RULES


@given(
    components=st.lists(st.integers(min_value=1, max_value=40),
                        min_size=0, max_size=6),
    free=st.lists(st.integers(min_value=0, max_value=40),
                  min_size=1, max_size=6),
    rule=st.sampled_from(RULES),
    presorted=st.booleans(),
)
@settings(max_examples=400, deadline=None)
def test_fast_kernels_match_reference(components, free, rule, presorted):
    if presorted:
        components = sorted(components, reverse=True)
    fast = PLACEMENT_RULES[rule](components, free)
    reference = REFERENCE_RULES[rule](components, free)
    assert fast == reference


@given(
    free=st.lists(st.integers(min_value=0, max_value=40),
                  min_size=1, max_size=6),
    rule=st.sampled_from(RULES),
)
@settings(max_examples=100, deadline=None)
def test_kernels_do_not_mutate_free(free, rule):
    # The kernels read the policy's *live* free array; writing to it
    # would corrupt cluster state.
    snapshot = list(free)
    PLACEMENT_RULES[rule]([3, 2], free)
    PLACEMENT_RULES[rule]([1], free)
    assert free == snapshot


@given(
    a=st.lists(st.integers(min_value=1, max_value=40),
               min_size=1, max_size=6),
    b=st.lists(st.integers(min_value=1, max_value=40),
               min_size=1, max_size=6),
    free=st.lists(st.integers(min_value=0, max_value=40),
                  min_size=1, max_size=6),
    rule=st.sampled_from(RULES),
)
@settings(max_examples=100, deadline=None)
def test_scratch_reuse_is_stateless_across_calls(a, b, free, rule):
    # Back-to-back calls share one module-level scratch buffer; the
    # second call must see none of the first call's markings.
    fn = PLACEMENT_RULES[rule]
    expected_b = REFERENCE_RULES[rule](b, free)
    fn(a, free)
    assert fn(b, free) == expected_b
