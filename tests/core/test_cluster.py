"""Unit tests for cluster and multicluster state."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import AllocationError, Cluster, Multicluster


class TestCluster:
    def test_initial_state(self):
        c = Cluster(0, 32)
        assert c.free == 32
        assert c.busy == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Cluster(0, 0)

    def test_allocate_release(self):
        c = Cluster(0, 32)
        c.allocate(10)
        assert c.free == 22
        assert c.busy == 10
        c.release(10)
        assert c.free == 32

    def test_fits(self):
        c = Cluster(0, 8)
        c.allocate(5)
        assert c.fits(3)
        assert not c.fits(4)

    def test_over_allocation_rejected(self):
        c = Cluster(0, 8)
        with pytest.raises(AllocationError):
            c.allocate(9)
        c.allocate(8)
        with pytest.raises(AllocationError):
            c.allocate(1)

    def test_over_release_rejected(self):
        c = Cluster(0, 8)
        c.allocate(3)
        with pytest.raises(AllocationError):
            c.release(4)

    def test_nonpositive_amounts_rejected(self):
        c = Cluster(0, 8)
        with pytest.raises(AllocationError):
            c.allocate(0)
        c.allocate(2)
        with pytest.raises(AllocationError):
            c.release(0)


class TestMulticluster:
    def test_paper_system_shape(self):
        mc = Multicluster.homogeneous(4, 32)
        assert len(mc) == 4
        assert mc.total_capacity == 128
        assert mc.total_free == 128
        assert mc.free_list() == [32, 32, 32, 32]

    def test_heterogeneous_sizes(self):
        mc = Multicluster([72, 32, 32, 32, 32])  # the real DAS2 shape
        assert mc.total_capacity == 200
        assert mc[0].capacity == 72

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Multicluster([])

    def test_atomic_assignment(self):
        mc = Multicluster.homogeneous(4, 32)
        mc.allocate([(0, 16), (2, 16)])
        assert mc.free_list() == [16, 32, 16, 32]
        assert mc.total_busy == 32
        mc.release([(0, 16), (2, 16)])
        assert mc.total_free == 128

    def test_atomicity_on_failure(self):
        mc = Multicluster.homogeneous(4, 32)
        mc.allocate([(1, 30)])
        with pytest.raises(AllocationError):
            mc.allocate([(0, 10), (1, 10)])  # cluster 1 can't hold 10
        # Nothing from the failed assignment may have been applied.
        assert mc.free_list() == [32, 2, 32, 32]

    def test_distinct_cluster_constraint(self):
        mc = Multicluster.homogeneous(4, 32)
        with pytest.raises(AllocationError):
            mc.allocate([(0, 10), (0, 10)])

    def test_iteration_order(self):
        mc = Multicluster([8, 16, 24])
        assert [c.capacity for c in mc] == [8, 16, 24]
        assert [c.index for c in mc] == [0, 1, 2]

    @given(st.lists(
        st.tuples(st.integers(0, 3), st.integers(1, 32)),
        min_size=0, max_size=20,
    ))
    def test_conservation_property(self, ops):
        mc = Multicluster.homogeneous(4, 32)
        held = []
        for idx, procs in ops:
            try:
                mc.allocate([(idx, procs)])
                held.append((idx, procs))
            except AllocationError:
                pass
            assert mc.total_busy + mc.total_free == 128
            assert all(0 <= c.free <= c.capacity for c in mc)
        for idx, procs in held:
            mc.release([(idx, procs)])
        assert mc.total_free == 128
