"""Unit and property tests for placement rules."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    best_fit,
    first_fit,
    place_components,
    worst_fit,
)
from repro.core.placement import PLACEMENT_RULES


class TestWorstFit:
    def test_single_component_emptiest_cluster(self):
        assert worst_fit([10], [5, 20, 15, 20]) == ((1, 10),)

    def test_tie_breaks_to_lowest_index(self):
        assert worst_fit([10], [20, 20, 20, 20]) == ((0, 10),)

    def test_components_decreasing_on_distinct_clusters(self):
        asg = worst_fit([16, 16, 16, 16], [32, 32, 32, 32])
        assert sorted(asg) == [(0, 16), (1, 16), (2, 16), (3, 16)]

    def test_largest_component_gets_emptiest(self):
        asg = dict(worst_fit([20, 5], [32, 25, 10, 10]))
        assert asg == {0: 20, 1: 5}

    def test_no_fit_returns_none(self):
        assert worst_fit([16, 16], [15, 15, 15, 15]) is None

    def test_more_components_than_clusters(self):
        assert worst_fit([1, 1, 1], [10, 10]) is None

    def test_the_l24_packing_disaster(self):
        # §3.3: after (22,21,21) is placed in an empty 4x32 system, a
        # second job of size 64 = (22,21,21) does not fit...
        free = [32, 32, 32, 32]
        first = worst_fit([22, 21, 21], free)
        for idx, procs in first:
            free[idx] -= procs
        assert sorted(free) == [10, 11, 11, 32]
        assert worst_fit([22, 21, 21], free) is None

    def test_l16_and_l32_splits_pack(self):
        # ...whereas under L=16 and L=32 a second size-64 job fits.
        for comps in [(16, 16, 16, 16), (32, 32)]:
            free = [32, 32, 32, 32]
            for idx, procs in worst_fit(comps, free):
                free[idx] -= procs
            assert worst_fit(comps, free) is not None

    def test_greedy_wf_can_fail_where_matching_exists(self):
        # The paper's greedy rule, faithfully: components (20, 10) on
        # free (20, 30).  WF puts 20 on the 30-free cluster, leaving 10
        # needing 10 <= 20: fits.  Harder: (30, 20) on (30, 20): WF puts
        # 30 on cluster 0 (30 free), 20 on cluster 1 (20 free): fits.
        # Failure case: (20, 19) on free (19, 25): WF places 20 -> c1
        # (25 free), then 19 -> c0 (19 free): fits!  True failure needs
        # the big component to "steal" the only cluster the second one
        # fits in: (10, 9) on (9, 10): 10 -> c1, 9 -> c0: fits.  Greedy
        # WF with decreasing sizes on two clusters always succeeds when
        # a matching exists; with three clusters it can fail:
        # components (10, 10, 3) on free (10, 10, 4): 10->c0, 10->c1,
        # 3->c2: fits.  (4, 3, 3) on (3, 3, 4): 4->c2, 3->c0, 3->c1 ok.
        # Genuinely adversarial: (6, 5) on (5, 10): 6->c1, 5->c0: ok.
        # Decreasing-order greedy WF is in fact optimal for fitting on
        # distinct clusters (a Hall-type argument); assert that on a
        # brute-force sweep instead of a single counterexample.
        import itertools

        for free in itertools.product(range(0, 9), repeat=3):
            for comps in itertools.combinations_with_replacement(
                    range(1, 9), 2):
                comps = tuple(sorted(comps, reverse=True))
                greedy = worst_fit(comps, free)
                feasible = any(
                    free[i] >= comps[0] and free[j] >= comps[1]
                    for i in range(3) for j in range(3) if i != j
                )
                assert (greedy is not None) == feasible


class TestFirstAndBestFit:
    def test_first_fit_lowest_index(self):
        assert first_fit([10], [15, 32, 32]) == ((0, 10),)

    def test_best_fit_snuggest_cluster(self):
        assert best_fit([10], [32, 11, 15]) == ((1, 10),)

    def test_best_fit_tie_lowest_index(self):
        assert best_fit([10], [12, 12]) == ((0, 10),)

    def test_all_rules_agree_on_feasibility_two_components(self):
        # Different placements, same fit/no-fit answer for these cases.
        cases = [
            ([16, 16], [32, 32, 32, 32]),
            ([32, 32], [31, 32, 32, 31]),
            ([22, 21, 21], [32, 32, 32, 32]),
        ]
        for comps, free in cases:
            answers = {
                name: rule(comps, free) is not None
                for name, rule in PLACEMENT_RULES.items()
            }
            assert len(set(answers.values())) == 1, (comps, free, answers)


class TestPlaceComponents:
    def test_rule_by_name(self):
        assert place_components([5], [10, 20], "worst-fit") == ((1, 5),)
        assert place_components([5], [10, 20], "first-fit") == ((0, 5),)

    def test_rule_by_callable(self):
        assert place_components([5], [10, 20], best_fit) == ((0, 5),)

    def test_unknown_rule_rejected(self):
        with pytest.raises(KeyError):
            place_components([5], [10], "magic-fit")


@given(
    st.lists(st.integers(1, 32), min_size=1, max_size=4),
    st.lists(st.integers(0, 32), min_size=4, max_size=4),
)
def test_placement_properties(components, free):
    for rule in PLACEMENT_RULES.values():
        asg = rule(components, free)
        if asg is None:
            continue
        # Distinct clusters.
        clusters = [idx for idx, _ in asg]
        assert len(set(clusters)) == len(clusters)
        # Every component placed exactly once with enough space.
        assert sorted(p for _, p in asg) == sorted(components)
        for idx, procs in asg:
            assert free[idx] >= procs
