"""Independent reference implementation of the LS protocol.

A from-scratch chronological replay of LS — local queues, the §2.5
enable/disable discipline, visiting rounds, cluster-local single-
component jobs — compared against the engine-based policy on random
workloads.  This pins the *entire* LS protocol, not just individual
rules.
"""

import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MulticlusterSimulation
from repro.core.placement import worst_fit
from repro.workload import JobSpec
from repro.workload.splitting import split_size

CAPS = (32, 32, 32, 32)
EXTENSION = 1.25


class ReferenceLS:
    """Chronological LS replay (no event engine, no shared queue code)."""

    def __init__(self, jobs):
        # jobs: list of (arrival, components, gross, queue_index)
        self.jobs = jobs
        self.free = list(CAPS)
        self.queues = [[] for _ in CAPS]          # job indices
        self.enabled = [True] * len(CAPS)
        self.visit = list(range(len(CAPS)))       # visit order
        self.disabled_order = []
        self.results = {}
        self.departures = []                      # (finish, seq, idx, asg)
        self.seq = 0
        self.now = 0.0

    def _fit(self, queue_index, job_index):
        _, components, _, _ = self.jobs[job_index]
        if len(components) > 1:
            return worst_fit(components, self.free)
        size = components[0]
        if self.free[queue_index] >= size:
            return ((queue_index, size),)
        return None

    def _start(self, job_index, assignment):
        for cluster, procs in assignment:
            self.free[cluster] -= procs
        _, _, gross, _ = self.jobs[job_index]
        finish = self.now + gross
        self.results[job_index] = (self.now, finish)
        self.seq += 1
        heapq.heappush(self.departures,
                       (finish, self.seq, job_index, assignment))

    def _disable(self, queue_index):
        if self.enabled[queue_index]:
            self.enabled[queue_index] = False
            self.visit.remove(queue_index)
            self.disabled_order.append(queue_index)

    def _enable_all(self):
        for queue_index in self.disabled_order:
            self.enabled[queue_index] = True
            self.visit.append(queue_index)
        self.disabled_order = []

    def _rounds(self):
        progress = True
        while progress:
            progress = False
            for queue_index in list(self.visit):
                if (not self.enabled[queue_index]
                        or not self.queues[queue_index]):
                    continue
                head = self.queues[queue_index][0]
                assignment = self._fit(queue_index, head)
                if assignment is None:
                    self._disable(queue_index)
                else:
                    self.queues[queue_index].pop(0)
                    self._start(head, assignment)
                    progress = True

    def run(self):
        order = sorted(range(len(self.jobs)),
                       key=lambda i: self.jobs[i][0])
        next_arrival = 0
        while next_arrival < len(order) or self.departures:
            t_arr = (self.jobs[order[next_arrival]][0]
                     if next_arrival < len(order) else None)
            t_dep = self.departures[0][0] if self.departures else None
            if t_dep is not None and (t_arr is None or t_dep <= t_arr):
                self.now = t_dep
                _, _, _, assignment = heapq.heappop(self.departures)
                for cluster, procs in assignment:
                    self.free[cluster] += procs
                self._enable_all()
                self._rounds()
            else:
                self.now = t_arr
                idx = order[next_arrival]
                next_arrival += 1
                queue_index = self.jobs[idx][3]
                self.queues[queue_index].append(idx)
                if self.enabled[queue_index]:
                    self._rounds()
        return [self.results[i] for i in range(len(self.jobs))]


def engine_ls(jobs):
    system = MulticlusterSimulation("LS", CAPS,
                                    extension_factor=EXTENSION)
    tracked = {}
    for i, (arrival, components, gross, queue) in enumerate(jobs):
        multi = len(components) > 1
        service = gross / (EXTENSION if multi else 1.0)
        spec = JobSpec(index=i, size=sum(components),
                       components=components, service_time=service,
                       queue=queue)

        def submit(spec=spec, i=i):
            tracked[i] = system.submit(spec)

        system.sim.call_at(arrival, submit)
    system.sim.run()
    return [
        (tracked[i].start_time, tracked[i].finish_time)
        for i in range(len(jobs))
    ]


job_stream = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=250.0, allow_nan=False),
        st.integers(min_value=1, max_value=128),
        st.floats(min_value=0.5, max_value=70.0, allow_nan=False),
        st.integers(min_value=0, max_value=3),
    ),
    min_size=1, max_size=25,
)


def build_jobs(raw):
    jobs, used = [], set()
    for arrival, size, service, queue in raw:
        while arrival in used:
            arrival += 1e-3
        used.add(arrival)
        components = split_size(size, 16, 4)
        gross = service * (EXTENSION if len(components) > 1 else 1.0)
        jobs.append((arrival, components, gross, queue))
    return jobs


@given(job_stream)
@settings(max_examples=60, deadline=None)
def test_engine_ls_matches_reference(raw):
    jobs = build_jobs(raw)
    expected = ReferenceLS(jobs).run()
    actual = engine_ls(jobs)
    for i, ((es, ef), (as_, af)) in enumerate(zip(expected, actual)):
        assert as_ == pytest.approx(es, abs=1e-6), (i, jobs[i])
        assert af == pytest.approx(ef, abs=1e-6), (i, jobs[i])


@pytest.mark.xfail(
    strict=True,
    reason="known LS divergence (ROADMAP item 6): when a departure at "
           "t=1.0 frees capacity while a multi-component job is queued "
           "behind another whose departure lands at t=1.251, the "
           "reference replay starts the queued job at the first "
           "departure but the engine only starts it at the second, "
           "leaving queue 1's single-component job to overtake it; "
           "which replay matches §2.5 is unresolved",
)
def test_ls_divergence_departure_round_ordering():
    """Minimal pinned trace where the engine and the oracle disagree.

    Kept as a strict xfail: if a future scheduler change makes the two
    agree, this starts passing and the xfail fails the suite — forcing
    the divergence note in ROADMAP item 6 to be resolved rather than
    silently going stale.
    """
    raw = [(0.0, 9, 1.0, 0), (0.0, 49, 1.0, 0), (0.0, 49, 1.0, 0),
           (1.0, 8, 1.0, 1)]
    jobs = build_jobs(raw)
    expected = ReferenceLS(jobs).run()
    actual = engine_ls(jobs)
    for i, ((es, ef), (as_, af)) in enumerate(zip(expected, actual)):
        assert as_ == pytest.approx(es, abs=1e-6), (i, jobs[i])
        assert af == pytest.approx(ef, abs=1e-6), (i, jobs[i])
