"""Tests for the Job lifecycle object."""

import math

import pytest

from repro.core import Job, JobState
from repro.workload import JobSpec


def spec(size=16, components=(16,), service=100.0, queue=0, index=0):
    return JobSpec(index=index, size=size, components=components,
                   service_time=service, queue=queue)


class TestExtension:
    def test_single_component_not_extended(self):
        job = Job(spec(), arrival_time=0.0, extension_factor=1.25)
        assert job.extension_factor == 1.0
        assert job.gross_service_time == 100.0
        assert job.net_service_time == 100.0

    def test_multi_component_extended(self):
        job = Job(spec(size=32, components=(16, 16)), 0.0, 1.25)
        assert job.extension_factor == 1.25
        assert job.gross_service_time == pytest.approx(125.0)
        assert job.net_service_time == 100.0

    def test_work_accounting(self):
        job = Job(spec(size=32, components=(16, 16)), 0.0, 1.25)
        assert job.net_work == pytest.approx(3200.0)
        assert job.gross_work == pytest.approx(4000.0)


class TestLifecycle:
    def test_initial_state(self):
        job = Job(spec(), 5.0)
        assert job.state is JobState.QUEUED
        assert math.isnan(job.wait_time)
        assert math.isnan(job.response_time)

    def test_start_finish_times(self):
        job = Job(spec(size=32, components=(16, 16)), 10.0, 1.25)
        job.start(25.0, [(0, 16), (2, 16)])
        assert job.state is JobState.RUNNING
        assert job.wait_time == 15.0
        job.finish(150.0)
        assert job.state is JobState.FINISHED
        assert job.response_time == 140.0

    def test_placement_must_conserve_size(self):
        job = Job(spec(size=32, components=(16, 16)), 0.0)
        with pytest.raises(ValueError):
            job.start(0.0, [(0, 16), (1, 15)])  # loses a processor
        with pytest.raises(ValueError):
            job.start(0.0, [(0, 16), (0, 16)])  # reuses a cluster

    def test_flexible_placement_may_differ_from_components(self):
        # Flexible requests split at the scheduler's discretion.
        job = Job(spec(size=32, components=(16, 16)), 0.0)
        job.start(0.0, [(2, 30), (3, 2)])
        assert job.placement == ((2, 30), (3, 2))

    def test_placement_order_free(self):
        job = Job(spec(size=30, components=(20, 10)), 0.0)
        job.start(0.0, [(3, 10), (1, 20)])
        assert job.placement == ((3, 10), (1, 20))

    def test_cannot_start_twice(self):
        job = Job(spec(), 0.0)
        job.start(1.0, [(0, 16)])
        with pytest.raises(RuntimeError):
            job.start(2.0, [(0, 16)])

    def test_cannot_finish_before_start(self):
        job = Job(spec(), 0.0)
        with pytest.raises(RuntimeError):
            job.finish(10.0)

    def test_from_global_queue_default_false(self):
        assert Job(spec(), 0.0).from_global_queue is False


def test_spec_properties_passthrough():
    job = Job(spec(size=64, components=(22, 21, 21), queue=2, index=7), 0.0)
    assert job.size == 64
    assert job.components == (22, 21, 21)
    assert job.is_multi_component
    assert job.origin_queue == 2
    assert "#7" in repr(job)
