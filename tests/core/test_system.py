"""Integration tests: full simulation runs with realistic workloads."""

import math

import pytest

from repro.core import (
    MulticlusterSimulation,
    SimulationConfig,
    run_constant_backlog,
    run_open_system,
)
from repro.sim import Deterministic, StreamFactory, Tracer
from repro.workload import JobFactory, das_s_128, das_t_900

SIZES = das_s_128()
SERVICE = das_t_900()


def quick_config(policy="GS", **overrides):
    defaults = dict(
        policy=policy,
        warmup_jobs=300,
        measured_jobs=1500,
        seed=42,
        batch_size=100,
    )
    if policy == "SC":
        defaults.update(capacities=(128,), component_limit=None)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def rate_for(util, limit, capacity=128, weights=(0.25,) * 4):
    factory = JobFactory(SIZES, SERVICE, limit,
                         routing_weights=weights,
                         streams=StreamFactory(0))
    return factory.arrival_rate_for_gross_utilization(util, capacity)


class TestRunOpenSystem:
    @pytest.mark.parametrize("policy", ["GS", "LS", "LP", "SC"])
    def test_low_load_matches_offered_utilization(self, policy):
        cfg = quick_config(policy)
        limit = cfg.component_limit
        result = run_open_system(cfg, SIZES, SERVICE,
                                 rate_for(0.3, limit))
        assert result.gross_utilization == pytest.approx(0.3, abs=0.05)
        assert not result.saturated
        assert result.report.completed_jobs == cfg.measured_jobs

    def test_response_time_at_least_service_time(self):
        cfg = quick_config("GS")
        result = run_open_system(cfg, SIZES, SERVICE, rate_for(0.3, 16))
        # Mean response >= mean gross service (queueing only adds).
        assert result.mean_response >= SERVICE.mean

    def test_net_below_gross_for_multicluster(self):
        result = run_open_system(quick_config("GS"), SIZES, SERVICE,
                                 rate_for(0.4, 16))
        assert result.net_utilization < result.gross_utilization

    def test_net_equals_gross_for_single_cluster(self):
        result = run_open_system(quick_config("SC"), SIZES, SERVICE,
                                 rate_for(0.4, None))
        assert result.net_utilization == pytest.approx(
            result.gross_utilization, rel=1e-9
        )

    def test_determinism_same_seed(self):
        a = run_open_system(quick_config("LS"), SIZES, SERVICE,
                            rate_for(0.4, 16))
        b = run_open_system(quick_config("LS"), SIZES, SERVICE,
                            rate_for(0.4, 16))
        assert a.mean_response == b.mean_response
        assert a.gross_utilization == b.gross_utilization

    def test_different_seed_differs(self):
        a = run_open_system(quick_config("LS"), SIZES, SERVICE,
                            rate_for(0.4, 16))
        b = run_open_system(quick_config("LS", seed=43), SIZES, SERVICE,
                            rate_for(0.4, 16))
        assert a.mean_response != b.mean_response

    def test_saturation_flag_at_overload(self):
        cfg = quick_config("LP", measured_jobs=2500)
        result = run_open_system(cfg, SIZES, SERVICE, rate_for(0.9, 16))
        assert result.saturated

    def test_higher_load_higher_response(self):
        lo = run_open_system(quick_config("GS"), SIZES, SERVICE,
                             rate_for(0.2, 16))
        hi = run_open_system(quick_config("GS"), SIZES, SERVICE,
                             rate_for(0.55, 16))
        assert hi.mean_response > lo.mean_response

    def test_offered_utilizations_recorded(self):
        result = run_open_system(quick_config("GS"), SIZES, SERVICE,
                                 rate_for(0.4, 16))
        assert result.offered_gross_utilization == pytest.approx(0.4)
        assert result.offered_net_utilization < 0.4


class TestRunConstantBacklog:
    def test_gs_maximal_utilization_plausible(self):
        report = run_constant_backlog(
            quick_config("GS"), SIZES, SERVICE,
            backlog=40, warmup_jobs=300, measured_jobs=2000,
        )
        assert 0.5 < report.gross_utilization < 0.95
        assert report.net_utilization < report.gross_utilization

    def test_l24_packs_worse_than_l16_and_l32(self):
        # The paper's central size-limit finding (§3.3).
        utils = {}
        for limit in (16, 24, 32):
            report = run_constant_backlog(
                quick_config("GS", component_limit=limit), SIZES, SERVICE,
                backlog=40, warmup_jobs=300, measured_jobs=2000,
            )
            utils[limit] = report.gross_utilization
        assert utils[24] < utils[16]
        assert utils[24] < utils[32]

    def test_deterministic_saturation(self):
        kw = dict(backlog=30, warmup_jobs=200, measured_jobs=1000)
        a = run_constant_backlog(quick_config("GS"), SIZES, SERVICE, **kw)
        b = run_constant_backlog(quick_config("GS"), SIZES, SERVICE, **kw)
        assert a.gross_utilization == b.gross_utilization


class TestSystemDirect:
    def test_tracer_records_lifecycle(self):
        tracer = Tracer()
        system = MulticlusterSimulation("GS", tracer=tracer)
        factory = JobFactory(SIZES, Deterministic(10.0), 16,
                             streams=StreamFactory(0))
        for _ in range(20):
            system.submit(factory.next_job())
        system.sim.run()
        kinds = tracer.kinds_seen()
        assert kinds == {"arrival", "start", "departure",
                         "placement_fit", "placement_no_fit"}
        assert len(tracer.of_kind("departure")) == 20

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            MulticlusterSimulation("XYZ")

    def test_policy_name_lookup_case_insensitive(self):
        system = MulticlusterSimulation("ls")
        assert system.policy.name == "LS"

    def test_default_capacities_are_paper_system(self):
        system = MulticlusterSimulation("GS")
        assert [c.capacity for c in system.multicluster] == [32] * 4

    def test_config_single_cluster_helper(self):
        cfg = SimulationConfig.single_cluster(seed=9)
        assert cfg.policy == "SC"
        assert cfg.capacities == (128,)
        assert cfg.component_limit is None
        assert cfg.seed == 9
        assert cfg.capacity == 128


class TestMeanValueSanity:
    def test_mm1_like_sanity_check(self):
        # Cross-validate engine + policy + metrics against M/M/1 theory:
        # one cluster of 1 processor, size-1 jobs, exponential service.
        from repro.sim import DiscreteEmpirical, Exponential

        ones = DiscreteEmpirical([1], [1.0])
        service = Exponential(mean=1.0)
        cfg = SimulationConfig(
            policy="SC", capacities=(1,), component_limit=None,
            warmup_jobs=2_000, measured_jobs=30_000, seed=7,
        )
        rho = 0.6
        result = run_open_system(cfg, ones, service, rho)
        # M/M/1: E[T] = 1 / (1 - rho) = 2.5.
        expected = 1.0 / (1.0 - rho)
        assert result.mean_response == pytest.approx(expected, rel=0.08)
        assert result.gross_utilization == pytest.approx(rho, abs=0.02)
