"""Span assembly (live and post-hoc) and Chrome trace export."""

from __future__ import annotations

import json

from repro.obs import progress
from repro.obs.spans import (
    SpanRecorder,
    export_chrome_trace,
    spans_from_obs,
    to_chrome_trace,
)

from .test_store import seed_run

KEY_A = "aa" * 32
KEY_B = "bb" * 32


def drive(recorder, heartbeats):
    for kind, key, description in heartbeats:
        recorder.on_event(kind, key, description)


class TestSpanRecorder:
    def test_clean_task_lifecycle(self):
        recorder = SpanRecorder()
        drive(recorder, [
            ("campaign-begin", "c1", "sweep LS (2 tasks)"),
            ("start", KEY_A, "LS util=0.35"),
            ("finish", KEY_A, "LS util=0.35"),
            ("start", KEY_B, "LS util=0.55"),
            ("finish", KEY_B, "LS util=0.55"),
            ("campaign-finish", "c1", "sweep LS (2 points)"),
        ])
        by_cat = {}
        for span in recorder.spans:
            by_cat.setdefault(span.category, []).append(span)
        assert len(by_cat["campaign"]) == 1
        assert len(by_cat["task"]) == 2
        assert len(by_cat["attempt"]) == 2
        assert all(s.end is not None for s in recorder.spans)
        assert all(s.status == "ok" for s in recorder.spans)
        # Tasks get distinct lanes; the campaign has its own.
        assert len({s.track for s in recorder.spans}) == 3

    def test_retry_produces_one_span_per_attempt(self):
        recorder = SpanRecorder()
        drive(recorder, [
            ("start", KEY_A, "LS util=0.35"),
            ("attempt-failed", KEY_A, "worker crashed (exit -9)"),
            ("retry", KEY_A, "LS util=0.35"),
            ("attempt-failed", KEY_A, "timeout: exceeded 5s"),
            ("retry", KEY_A, "LS util=0.35"),
            ("finish", KEY_A, "LS util=0.35"),
        ])
        attempts = [s for s in recorder.spans
                    if s.category == "attempt"]
        assert [s.name for s in attempts] == \
            ["attempt 1", "attempt 2", "attempt 3"]
        assert [s.status for s in attempts] == \
            ["failed", "failed", "ok"]
        assert attempts[0].args["cause"] == "worker crashed (exit -9)"
        assert attempts[1].args["cause"] == "timeout: exceeded 5s"
        (task,) = [s for s in recorder.spans if s.category == "task"]
        assert task.status == "ok"
        assert task.args["attempts"] == 3

    def test_task_exhausting_retries_fails(self):
        recorder = SpanRecorder()
        drive(recorder, [
            ("start", KEY_A, "LS util=0.35"),
            ("attempt-failed", KEY_A, "boom"),
            ("fail", KEY_A, "LS util=0.35"),
        ])
        (task,) = [s for s in recorder.spans if s.category == "task"]
        assert task.status == "failed"
        (attempt,) = [s for s in recorder.spans
                      if s.category == "attempt"]
        assert attempt.status == "failed"

    def test_cache_hit_becomes_marker(self):
        recorder = SpanRecorder()
        drive(recorder, [("hit", KEY_A, "LS util=0.35")])
        assert recorder.spans == []
        (marker,) = recorder.markers
        assert marker.name == "cache hit"

    def test_detach_closes_open_spans_as_open(self):
        recorder = SpanRecorder()
        recorder.attach()
        try:
            progress.notify("start", KEY_A, "LS util=0.35")
        finally:
            recorder.detach()
        assert all(s.end is not None for s in recorder.spans)
        assert {s.status for s in recorder.spans} == {"open"}
        # Detached: further heartbeats are not recorded.
        before = len(recorder.spans)
        progress.notify("start", KEY_B, "LS util=0.55")
        assert len(recorder.spans) == before

    def test_context_manager_subscribes(self):
        with SpanRecorder() as recorder:
            progress.notify("start", KEY_A, "t")
            progress.notify("finish", KEY_A, "t")
        assert len(recorder.spans) == 2


class TestSpansFromObs:
    def test_task_spans_with_attempts_and_hits(self, tmp_path):
        root = tmp_path / "obs"
        seed_run(root, 0.35, attempts=3)
        seed_run(root, 0.55, cache_status="hit")
        spans, markers = spans_from_obs(root)
        assert len(spans) == 2
        assert all(s.category == "task" for s in spans)
        assert all(s.duration == 0.25 for s in spans)
        names = sorted(m.name for m in markers)
        assert names == ["cache hit", "failed attempt 1",
                         "failed attempt 2"]

    def test_campaign_span_from_sweep_manifest(self, tmp_path):
        from repro.runner import ResultCache
        from repro.runner.campaign import begin_campaign
        from repro.runner.task import RunTask

        from .conftest import SERVICE, SIZES, tiny_config

        root = tmp_path / "obs"
        seed_run(root, 0.35)
        seed_run(root, 0.55)
        cache = ResultCache(tmp_path / "cache")
        config = tiny_config()
        tasks = [RunTask(config, SIZES, SERVICE, u)
                 for u in (0.35, 0.55)]
        begin_campaign("sweep", "LS", tasks, cache)
        spans, _ = spans_from_obs(root, cache.root)
        campaigns = [s for s in spans if s.category == "campaign"]
        assert len(campaigns) == 1
        assert campaigns[0].name == "sweep LS"
        tasks_spans = [s for s in spans if s.category == "task"]
        assert campaigns[0].start <= min(s.start for s in tasks_spans)
        assert campaigns[0].end >= max(s.end for s in tasks_spans)

    def test_empty_root(self, tmp_path):
        spans, markers = spans_from_obs(tmp_path / "missing")
        assert spans == [] and markers == []


class TestChromeTrace:
    def recorded(self):
        recorder = SpanRecorder()
        drive(recorder, [
            ("campaign-begin", "c1", "sweep LS (1 tasks)"),
            ("start", KEY_A, "LS util=0.35"),
            ("attempt-failed", KEY_A, "crash"),
            ("retry", KEY_A, "LS util=0.35"),
            ("finish", KEY_A, "LS util=0.35"),
            ("campaign-finish", "c1", "sweep LS (1 points)"),
        ])
        return recorder

    def test_structure(self):
        payload = to_chrome_trace(self.recorded())
        assert set(payload) == {"traceEvents", "displayTimeUnit"}
        events = payload["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X"}
        complete = [e for e in events if e["ph"] == "X"]
        # campaign + task + 2 attempts
        assert len(complete) == 4
        assert all(e["dur"] >= 1.0 for e in complete)
        assert all(e["ts"] >= 0.0 for e in complete)

    def test_campaign_pinned_to_lane_zero(self):
        payload = to_chrome_trace(self.recorded())
        (campaign,) = [e for e in payload["traceEvents"]
                       if e.get("cat") == "campaign"]
        assert campaign["tid"] == 0
        thread_names = {e["tid"]: e["args"]["name"]
                        for e in payload["traceEvents"]
                        if e["ph"] == "M"
                        and e["name"] == "thread_name"}
        assert thread_names[0] == "campaign"

    def test_failed_attempt_carries_status_and_cause(self):
        payload = to_chrome_trace(self.recorded())
        failed = [e for e in payload["traceEvents"]
                  if e.get("args", {}).get("status") == "failed"]
        assert len(failed) == 1
        assert failed[0]["args"]["cause"] == "crash"

    def test_export_round_trips_as_json(self, tmp_path):
        out = tmp_path / "trace.json"
        export_chrome_trace(self.recorded(), out)
        payload = json.loads(out.read_text())
        assert payload["traceEvents"]

    def test_plain_tuple_source(self, tmp_path):
        root = tmp_path / "obs"
        seed_run(root)
        source = spans_from_obs(root)
        payload = to_chrome_trace(source)
        assert any(e["ph"] == "X" for e in payload["traceEvents"])
