"""Unit tests for the progress hook and display."""

from __future__ import annotations

import io

from repro.obs import progress
from repro.obs.progress import ProgressDisplay


class TestHook:
    def test_notify_reaches_active_hook(self):
        seen = []
        progress.activate(lambda *a: seen.append(a))
        try:
            progress.notify("start", "k1", "task one")
        finally:
            progress.deactivate()
        assert seen == [("start", "k1", "task one")]

    def test_notify_without_hook_is_noop(self):
        assert progress.active_hook() is None
        progress.notify("start", "k", "d")  # must not raise

    def test_deactivate_clears(self):
        progress.activate(lambda *a: None)
        progress.deactivate()
        assert progress.active_hook() is None


class TestProgressDisplay:
    def test_counters_through_lifecycle(self):
        d = ProgressDisplay(total=3, stream=io.StringIO())
        d.on_task_event("hit", "a", "cached task")
        d.on_task_event("start", "b", "task b")
        assert d.running == 1
        d.on_task_event("finish", "b", "task b")
        d.on_task_event("start", "c", "task c")
        d.on_task_event("fail", "c", "task c")
        assert d.hits == 1
        assert d.computed == 1
        assert d.failed == 1
        assert d.running == 0
        assert d.done == 3

    def test_render_line_content(self):
        stream = io.StringIO()
        d = ProgressDisplay(total=2, stream=stream, label="sweep")
        d.on_task_event("start", "a", "GS rho=0.4")
        d.on_task_event("finish", "a", "GS rho=0.4")
        out = stream.getvalue()
        assert "\r" in out
        assert "sweep" in out
        assert "[1/2]" in out
        assert "computed 1" in out
        assert "GS rho=0.4" in out

    def test_close_terminates_line_once(self):
        stream = io.StringIO()
        d = ProgressDisplay(stream=stream)
        d.render()
        d.close()
        d.close()
        assert stream.getvalue().count("\n") == 1

    def test_close_without_render_writes_nothing(self):
        stream = io.StringIO()
        ProgressDisplay(stream=stream).close()
        assert stream.getvalue() == ""

    def test_total_unknown_renders_bare_count(self):
        stream = io.StringIO()
        d = ProgressDisplay(stream=stream)
        d.on_task_event("hit", "a", "")
        assert "[1]" in stream.getvalue()
