"""The terminal dashboard: data collection, rendering, refresh loop."""

from __future__ import annotations

import io

from repro.obs.dash import collect, render, run_dashboard
from repro.obs.registry import MetricsRegistry

from .test_store import seed_run


class TestCollect:
    def test_empty_root(self, tmp_path):
        data = collect(tmp_path / "missing")
        assert data.runs == 0
        assert data.policies == {}
        assert data.campaigns == []

    def test_counts_and_policies(self, tmp_path):
        root = tmp_path / "obs"
        seed_run(root, 0.35, "LS")
        seed_run(root, 0.55, "LS")
        seed_run(root, 0.35, "GS", cache_status="hit")
        data = collect(root)
        assert data.runs == 3
        assert data.cache_counts == {"computed": 2, "hit": 1}
        assert data.policies["LS"]["tasks"] == 2
        # Each seeded run reports 0.25s wall-clock.
        assert data.policies["LS"]["throughput"] == \
            2 / data.policies["LS"]["wall_clock_s"]
        assert len(data.latencies) == 3

    def test_retry_counters_from_manifests(self, tmp_path):
        root = tmp_path / "obs"
        seed_run(root, 0.35, attempts=3)
        seed_run(root, 0.55)
        data = collect(root)
        assert data.tasks_retried == 1
        assert data.extra_attempts == 2

    def test_campaign_progress_judged_by_manifests(self, tmp_path):
        from repro.runner import ResultCache, RunTask
        from repro.runner.campaign import begin_campaign

        from .conftest import SERVICE, SIZES, tiny_config

        root = tmp_path / "obs"
        seed_run(root, 0.35)  # only the first grid point has run
        cache = ResultCache(tmp_path / "cache")
        config = tiny_config()
        tasks = [RunTask(config, SIZES, SERVICE, u)
                 for u in (0.35, 0.55)]
        begin_campaign("sweep", "LS", tasks, cache)
        data = collect(root, cache.root)
        (row,) = data.campaigns
        assert (row.done, row.total) == (1, 2)
        assert row.kind == "sweep"
        assert row.status == "running"

    def test_torn_sweep_manifest_skipped(self, tmp_path):
        root = tmp_path / "obs"
        seed_run(root)
        sweeps = tmp_path / "cache" / "sweeps"
        sweeps.mkdir(parents=True)
        (sweeps / "torn.json").write_text('{"task_keys": [')
        data = collect(root, tmp_path / "cache")
        assert data.campaigns == []

    def test_registry_counters_surfaced(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("runner.retries").inc(4)
        registry.counter("runner.timeouts").inc(1)
        registry.counter("unrelated.counter").inc(9)
        data = collect(tmp_path / "missing", registry=registry)
        assert data.counters == {"runner.retries": 4,
                                 "runner.timeouts": 1}


class TestRender:
    def test_empty_frame_mentions_obs_gate(self, tmp_path):
        text = render(collect(tmp_path / "missing"))
        assert "REPRO_OBS" in text

    def test_full_frame_sections(self, tmp_path):
        root = tmp_path / "obs"
        seed_run(root, 0.35, "LS", attempts=2)
        seed_run(root, 0.55, "GS")
        data = collect(root)
        text = render(data)
        assert "runs 2" in text
        assert "retried 1 (+1 attempts)" in text
        assert "per-policy throughput" in text
        assert "task wall-clock" in text

    def test_ascii_only_sparkline(self, tmp_path):
        root = tmp_path / "obs"
        seed_run(root)
        text = render(collect(root), ascii_only=True)
        assert "▁" not in text and "█" not in text

    def test_truncated_log_does_not_break_rendering(self, tmp_path):
        root = tmp_path / "obs"
        key = seed_run(root)
        log = root / "events" / key[:2] / f"{key}.jsonl"
        log.write_bytes(log.read_bytes()[:-15])
        assert "runs 1" in render(collect(root))


class TestRunDashboard:
    def test_non_tty_renders_exactly_one_frame(self, tmp_path):
        root = tmp_path / "obs"
        seed_run(root)
        out = io.StringIO()
        frames = run_dashboard(root, stream=out,
                               _sleep=lambda s: None)
        assert frames == 1
        assert "\x1b[2J" not in out.getvalue()
        assert "runs 1" in out.getvalue()

    def test_tty_refreshes_until_iterations(self, tmp_path):
        root = tmp_path / "obs"
        seed_run(root)

        class Tty(io.StringIO):
            def isatty(self):
                return True

        out = Tty()
        sleeps: list[float] = []
        frames = run_dashboard(root, interval=0.5, iterations=3,
                               stream=out, _sleep=sleeps.append)
        assert frames == 3
        assert sleeps == [0.5, 0.5]
        assert out.getvalue().count("\x1b[2J\x1b[H") == 3

    def test_keyboard_interrupt_returns_frame_count(self, tmp_path):
        root = tmp_path / "obs"
        seed_run(root)

        class Tty(io.StringIO):
            def isatty(self):
                return True

        def boom(seconds):
            raise KeyboardInterrupt

        frames = run_dashboard(root, stream=Tty(), _sleep=boom)
        assert frames == 1

    def test_dashboard_sees_new_runs_between_frames(self, tmp_path):
        """The poll loop re-collects: manifests written by another
        process appear on the next frame."""
        root = tmp_path / "obs"
        seed_run(root, 0.35)

        class Tty(io.StringIO):
            def isatty(self):
                return True

        def add_run(seconds):
            seed_run(root, 0.55)

        out = Tty()
        run_dashboard(root, iterations=2, stream=out, _sleep=add_run)
        text = out.getvalue()
        assert "runs 1" in text
        assert "runs 2" in text
