"""Shared fixtures for the observability tests."""

from __future__ import annotations

import pytest

from repro.core import SimulationConfig
from repro.obs.gate import OBS_DIR_ENV, OBS_ENV
from repro.obs.registry import REGISTRY
from repro.workload import das_s_128, das_t_900

SIZES = das_s_128()
SERVICE = das_t_900()


def tiny_config(policy="LS", **kw) -> SimulationConfig:
    """A very small configuration: obs tests exercise plumbing, not
    statistics."""
    base = dict(policy=policy, component_limit=16, warmup_jobs=50,
                measured_jobs=100, seed=7, batch_size=25)
    if policy == "SC":
        base.update(capacities=(128,), component_limit=None)
    base.update(kw)
    return SimulationConfig(**base)


@pytest.fixture
def obs_env(monkeypatch, tmp_path):
    """Enable observability with an isolated artifact root.

    Returns the artifact root path.  The env-var form is used (not
    ``set_enabled``) so the gate propagates to forked pool workers.
    """
    root = tmp_path / "obs"
    monkeypatch.setenv(OBS_ENV, "1")
    monkeypatch.setenv(OBS_DIR_ENV, str(root))
    return root


@pytest.fixture
def fresh_registry():
    """A clean process-wide registry, restored empty afterwards."""
    REGISTRY.reset()
    yield REGISTRY
    REGISTRY.reset()
