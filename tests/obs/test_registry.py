"""Unit tests for the metrics registry."""

from __future__ import annotations

import pytest

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter(self):
        c = Counter("n")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge(self):
        g = Gauge("level")
        g.set(3.5)
        g.add(-1.0)
        assert g.value == 2.5

    def test_histogram_aggregates(self):
        h = Histogram("wall")
        for v in (2.0, 1.0, 4.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 7.0
        assert h.minimum == 1.0
        assert h.maximum == 4.0
        assert h.mean == pytest.approx(7.0 / 3)

    def test_empty_histogram_summary_is_null(self):
        s = Histogram("wall").summary()
        assert s == {"count": 0, "sum": 0.0, "min": None, "max": None,
                     "mean": None}


class TestRegistry:
    def test_create_on_first_use_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_snapshot_shape_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z").inc(2)
        reg.counter("a").inc(1)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(2.0)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        assert snap["counters"] == {"a": 1, "z": 2}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_merge_counts_with_prefix(self):
        reg = MetricsRegistry()
        reg.merge_counts({"local-0": 3, "local-1": 1},
                         prefix="queue.disables.")
        reg.merge_counts({"local-0": 2}, prefix="queue.disables.")
        assert reg.counter("queue.disables.local-0").value == 5
        assert reg.counter("queue.disables.local-1").value == 1

    def test_merge_counts_skips_non_numeric_and_negative(self):
        reg = MetricsRegistry()
        reg.merge_counts({"ok": 1, "bad": "x", "neg": -2, "none": None})
        assert reg.snapshot()["counters"] == {"ok": 1}
        reg.merge_counts(None)  # no-op

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {},
                                  "histograms": {}}
