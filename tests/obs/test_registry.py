"""Unit tests for the metrics registry."""

from __future__ import annotations

import pytest

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter(self):
        c = Counter("n")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge(self):
        g = Gauge("level")
        g.set(3.5)
        g.add(-1.0)
        assert g.value == 2.5

    def test_histogram_aggregates(self):
        h = Histogram("wall")
        for v in (2.0, 1.0, 4.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 7.0
        assert h.minimum == 1.0
        assert h.maximum == 4.0
        assert h.mean == pytest.approx(7.0 / 3)

    def test_empty_histogram_summary_is_null(self):
        s = Histogram("wall").summary()
        assert s == {"count": 0, "sum": 0.0, "min": None, "max": None,
                     "mean": None, "p50": None, "p90": None,
                     "p99": None}


class TestHistogramQuantiles:
    def test_single_observation_all_quantiles_collapse(self):
        h = Histogram("wall")
        h.observe(3.0)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(3.0, rel=0.05)

    def test_estimates_within_bucket_tolerance(self):
        h = Histogram("wall")
        for v in range(1, 1001):
            h.observe(float(v))
        # Geometric buckets grow by 10%, so estimates land within
        # ±5% of the true sample quantile.
        assert h.quantile(0.5) == pytest.approx(500.0, rel=0.06)
        assert h.quantile(0.9) == pytest.approx(900.0, rel=0.06)
        assert h.quantile(0.99) == pytest.approx(990.0, rel=0.06)

    def test_estimates_clamped_into_observed_range(self):
        h = Histogram("wall")
        h.observe(1.0)
        h.observe(100.0)
        assert h.quantile(0.0) >= 1.0
        assert h.quantile(1.0) <= 100.0

    def test_non_positive_values_use_underflow_bucket(self):
        h = Histogram("delta")
        h.observe(0.0)
        h.observe(-5.0)
        h.observe(10.0)
        assert h.quantile(0.5) == -5.0  # the observed minimum
        assert h.quantile(1.0) == pytest.approx(10.0, rel=0.06)

    def test_summary_carries_quantiles(self):
        h = Histogram("wall")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        s = h.summary()
        assert s["p50"] <= s["p90"] <= s["p99"]
        assert 1.0 <= s["p50"] <= 4.0

    def test_out_of_range_q_rejected(self):
        h = Histogram("wall")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            h.quantile(-0.1)

    def test_empty_quantile_is_none(self):
        assert Histogram("wall").quantile(0.5) is None

    def test_bounded_memory(self):
        h = Histogram("wall")
        for v in range(1, 100_001):
            h.observe(v / 100.0)
        # 1e-2 .. 1e3 spans ~12 decades of factor-1.1 buckets.
        assert len(h._buckets) < 200


class TestRegistry:
    def test_create_on_first_use_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_snapshot_shape_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z").inc(2)
        reg.counter("a").inc(1)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(2.0)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        assert snap["counters"] == {"a": 1, "z": 2}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_merge_counts_with_prefix(self):
        reg = MetricsRegistry()
        reg.merge_counts({"local-0": 3, "local-1": 1},
                         prefix="queue.disables.")
        reg.merge_counts({"local-0": 2}, prefix="queue.disables.")
        assert reg.counter("queue.disables.local-0").value == 5
        assert reg.counter("queue.disables.local-1").value == 1

    def test_merge_counts_skips_non_numeric_and_negative(self):
        reg = MetricsRegistry()
        reg.merge_counts({"ok": 1, "bad": "x", "neg": -2, "none": None})
        assert reg.snapshot()["counters"] == {"ok": 1}
        reg.merge_counts(None)  # no-op

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {},
                                  "histograms": {}}
