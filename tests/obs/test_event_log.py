"""Unit tests for the JSONL event log and the export tracer."""

from __future__ import annotations

import json

import pytest

from repro.obs.events import (
    EVENT_SCHEMA,
    EventLog,
    ExportTracer,
    read_events,
    read_header,
    tail_events,
)


class TestEventLog:
    def test_header_and_events_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with EventLog(path, meta={"key": "abc"}) as log:
            log.emit(1.0, "arrival", job=0)
            log.emit(2.5, "departure", job=0)
        header = read_header(path)
        assert header["schema"] == EVENT_SCHEMA
        assert header["key"] == "abc"
        events = list(read_events(path))
        assert events == [
            {"t": 1.0, "kind": "arrival", "job": 0},
            {"t": 2.5, "kind": "departure", "job": 0},
        ]

    def test_atomic_finalization(self, tmp_path):
        path = tmp_path / "run.jsonl"
        log = EventLog(path)
        log.emit(1.0, "x")
        assert not path.exists(), "log visible before close"
        assert path.with_name("run.jsonl.tmp").exists()
        log.close()
        assert path.exists()
        assert not path.with_name("run.jsonl.tmp").exists()

    def test_exception_abandons_staging(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with pytest.raises(RuntimeError):
            with EventLog(path) as log:
                log.emit(1.0, "x")
                raise RuntimeError("boom")
        assert not path.exists()
        assert not path.with_name("run.jsonl.tmp").exists()

    def test_batched_writes(self, tmp_path):
        path = tmp_path / "run.jsonl"
        log = EventLog(path, batch_size=3)
        for t in range(2):
            log.emit(float(t), "x")
        staged = path.with_name("run.jsonl.tmp").read_text()
        assert staged.count("\n") == 1, "events flushed before batch"
        log.emit(2.0, "x")
        staged = path.with_name("run.jsonl.tmp").read_text()
        assert staged.count("\n") == 2, "full batch not flushed as one line"
        batch = json.loads(staged.splitlines()[1])
        assert [e["t"] for e in batch] == [0.0, 1.0, 2.0]
        log.close()
        assert len(list(read_events(path))) == 3
        assert log.events_written == 3

    def test_emit_after_close_rejected(self, tmp_path):
        log = EventLog(tmp_path / "run.jsonl")
        log.close()
        with pytest.raises(ValueError, match="closed"):
            log.emit(1.0, "x")

    def test_bad_batch_size_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="batch_size"):
            EventLog(tmp_path / "run.jsonl", batch_size=0)

    def test_nonscalar_payloads_serialized(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with EventLog(path) as log:
            log.emit(1.0, "fit", assignment=((0, 4), (1, 2)),
                     clusters={2, 0, 1})
        (event,) = read_events(path)
        assert event["assignment"] == [[0, 4], [1, 2]]
        assert event["clusters"] == [0, 1, 2]

    def test_reader_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text(json.dumps({"schema": "other/1"}) + "\n")
        with pytest.raises(ValueError, match="schema"):
            list(read_events(path))
        with pytest.raises(ValueError):
            read_header(path)

    def test_reader_rejects_non_json(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(ValueError):
            list(read_events(path))

    def test_tail_events(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with EventLog(path) as log:
            for t in range(20):
                log.emit(float(t), "x", n=t)
        assert [e["n"] for e in tail_events(path, 3)] == [17, 18, 19]
        assert tail_events(path, 0) == []


class TestExportTracer:
    def test_streams_without_storing(self, tmp_path):
        path = tmp_path / "run.jsonl"
        log = EventLog(path)
        tracer = ExportTracer(log)
        for t in range(100):
            tracer.emit(float(t), "x", n=t)
        assert len(tracer) == 0, "export tracer must not store records"
        log.close()
        assert len(list(read_events(path))) == 100

    def test_kind_filter_counts_filtered(self, tmp_path):
        log = EventLog(tmp_path / "run.jsonl")
        tracer = ExportTracer(log, kinds={"keep"})
        tracer.emit(1.0, "skip")
        tracer.emit(2.0, "keep")
        assert tracer.filtered == 1
        assert log.events_written == 1
        log.close()

    def test_is_enabled_tracer(self, tmp_path):
        log = EventLog(tmp_path / "run.jsonl")
        assert ExportTracer(log).enabled
        log.abandon()
