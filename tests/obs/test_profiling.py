"""Unit tests for the cProfile hooks and phase timers."""

from __future__ import annotations

from repro.obs.profiling import profile_call
from repro.obs.timing import PhaseTimer, process_clock, wall_clock


def _work(n):
    return sum(range(n))


class TestProfileCall:
    def test_returns_result_unchanged(self):
        result, table = profile_call(_work, 100)
        assert result == sum(range(100))

    def test_table_names_hot_function(self):
        _, table = profile_call(_work, 1000, top=5)
        assert "_work" in table
        assert "cumulative" in table

    def test_kwargs_pass_through(self):
        result, _ = profile_call(lambda *, n: n * 2, n=21)
        assert result == 42


class TestTiming:
    def test_clocks_advance(self):
        t0 = wall_clock()
        _work(10_000)
        assert wall_clock() >= t0
        assert process_clock() >= 0.0

    def test_phase_timer_accumulates(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            pass
        with timer.phase("a"):
            pass
        with timer.phase("b"):
            pass
        assert set(dict(timer.items())) == {"a", "b"}
        assert timer.total >= 0.0

    def test_render_lists_phases(self):
        timer = PhaseTimer()
        with timer.phase("simulate"):
            pass
        text = timer.render()
        assert "simulate" in text
        assert "total" in text

    def test_render_empty(self):
        assert "no phases" in PhaseTimer().render()
