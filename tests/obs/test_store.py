"""The event store: tolerant log reading, validation, live
following, directory resolution and streaming reducers."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.events import EVENT_SCHEMA, EventLog
from repro.obs.manifest import for_task, manifest_path, write_manifest
from repro.obs.store import (
    BusyProcessorsReducer,
    EventStore,
    LogIssue,
    follow_events,
    iter_log,
    placement_series,
    queue_depth_series,
    reduce_series,
    render_series,
    throughput_series,
    validate_log,
)
from repro.runner import RunTask, task_key

from .conftest import SERVICE, SIZES, tiny_config


def write_log(path, events, meta=None):
    with EventLog(path, meta=meta) as log:
        for t, kind, payload in events:
            log.emit(t, kind, **payload)
    return path


ARRIVALS = [
    (0.0, "arrival", {"job": 0, "size": 4, "queue": 0}),
    (1.0, "start", {"job": 0, "assignment": [[0, 4]]}),
    (5.0, "arrival", {"job": 1, "size": 8, "queue": 1}),
    (6.0, "start", {"job": 1, "assignment": [[1, 8]]}),
    (9.0, "departure", {"job": 0}),
    (12.0, "departure", {"job": 1}),
]


class TestIterLog:
    def test_yields_all_events(self, tmp_path):
        path = write_log(tmp_path / "a.jsonl", ARRIVALS)
        events = list(iter_log(path))
        assert len(events) == len(ARRIVALS)
        assert events[0] == {"t": 0.0, "kind": "arrival", "job": 0,
                             "size": 4, "queue": 0}

    def test_kind_filter(self, tmp_path):
        path = write_log(tmp_path / "a.jsonl", ARRIVALS)
        kinds = [e["kind"] for e in iter_log(path, kinds=["arrival"])]
        assert kinds == ["arrival", "arrival"]

    def test_time_range_filter(self, tmp_path):
        path = write_log(tmp_path / "a.jsonl", ARRIVALS)
        times = [e["t"] for e in iter_log(path, since=1.0, until=9.0)]
        assert times == [1.0, 5.0, 6.0, 9.0]

    def test_strict_raises_on_missing_file(self, tmp_path):
        with pytest.raises(OSError):
            list(iter_log(tmp_path / "nope.jsonl"))

    def test_strict_raises_on_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            list(iter_log(path))

    def test_tolerant_empty_file_reports_and_yields_nothing(
            self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        issues: list[LogIssue] = []
        events = list(iter_log(path, strict=False,
                               on_issue=issues.append))
        assert events == []
        assert len(issues) == 1
        assert issues[0].line == 0

    def test_tolerant_truncated_final_batch(self, tmp_path):
        path = write_log(tmp_path / "a.jsonl", ARRIVALS)
        # Simulate a worker killed mid-flush: chop the final line.
        raw = path.read_bytes()
        path.write_bytes(raw[:-20])
        issues: list[LogIssue] = []
        events = list(iter_log(path, strict=False,
                               on_issue=issues.append))
        # The parseable prefix (possibly empty) comes back, the rest
        # is one reported issue — never an exception.
        assert len(events) < len(ARRIVALS)
        assert len(issues) == 1
        assert "truncated" in issues[0].reason

    def test_tolerant_bad_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": "other/1"}\n')
        issues: list[LogIssue] = []
        assert list(iter_log(path, strict=False,
                             on_issue=issues.append)) == []
        assert issues[0].line == 1


class TestValidateLog:
    def test_clean_log(self, tmp_path):
        path = write_log(tmp_path / "a.jsonl", ARRIVALS)
        count, issues = validate_log(path)
        assert count == len(ARRIVALS)
        assert issues == []

    def test_unknown_kind_flagged_with_line(self, tmp_path):
        path = tmp_path / "a.jsonl"
        path.write_text(
            json.dumps({"schema": EVENT_SCHEMA}) + "\n"
            + json.dumps([{"t": 1.0, "kind": "teleport", "job": 0}])
            + "\n")
        count, issues = validate_log(path)
        assert count == 1
        assert len(issues) == 1
        assert issues[0].line == 2
        assert "teleport" in issues[0].reason

    def test_missing_and_unknown_payload_keys(self, tmp_path):
        path = tmp_path / "a.jsonl"
        path.write_text(
            json.dumps({"schema": EVENT_SCHEMA}) + "\n"
            + json.dumps([{"t": 1.0, "kind": "arrival", "job": 0,
                           "color": "red"}]) + "\n")
        _, issues = validate_log(path)
        reasons = " ".join(i.reason for i in issues)
        assert "missing payload keys" in reasons
        assert "unregistered keys" in reasons

    def test_missing_t_flagged(self, tmp_path):
        path = tmp_path / "a.jsonl"
        path.write_text(
            json.dumps({"schema": EVENT_SCHEMA}) + "\n"
            + json.dumps([{"kind": "departure", "job": 0}]) + "\n")
        _, issues = validate_log(path)
        assert any("missing 't'" in i.reason for i in issues)

    def test_missing_file(self, tmp_path):
        count, issues = validate_log(tmp_path / "nope.jsonl")
        assert count == 0
        assert issues and issues[0].line == 0

    def test_real_worker_log_is_clean(self, tmp_path, obs_env):
        from repro.analysis.sweeps import sweep

        sweep("LS", tiny_config(), SIZES, SERVICE, (0.35,))
        logs = sorted(obs_env.glob("events/*/*.jsonl"))
        assert logs
        count, issues = validate_log(logs[0])
        assert count > 0
        assert issues == []


class TestFollowEvents:
    def test_follow_live_log_across_finalize(self, tmp_path):
        """Events flushed while following arrive; the generator stops
        once the log is finalized and fully drained."""
        path = tmp_path / "live.jsonl"
        log = EventLog(path, batch_size=1)
        seen: list[dict] = []
        done = threading.Event()

        def consume():
            for event in follow_events(path, poll=0.005, timeout=10.0):
                seen.append(event)
            done.set()

        thread = threading.Thread(target=consume)
        thread.start()
        try:
            for t, kind, payload in ARRIVALS:
                log.emit(t, kind, **payload)
        finally:
            log.close()
        assert done.wait(10.0), "follower never finished"
        thread.join(5.0)
        assert [e["kind"] for e in seen] == [k for _, k, _ in ARRIVALS]

    def test_follow_timeout_on_abandoned_log(self, tmp_path):
        path = tmp_path / "never.jsonl"
        log = EventLog(path, batch_size=1)
        log.emit(1.0, "departure", job=0)
        log.flush()
        issues: list[LogIssue] = []
        clock = iter(range(100))

        events = list(follow_events(
            path, poll=0.0, timeout=0.0, on_issue=issues.append,
            _sleep=lambda s: next(clock)))
        log.abandon()
        assert [e["kind"] for e in events] == ["departure"]
        assert any("timed out" in i.reason for i in issues)

    def test_follow_finalized_log(self, tmp_path):
        path = write_log(tmp_path / "a.jsonl", ARRIVALS)
        events = list(follow_events(path, timeout=1.0))
        assert len(events) == len(ARRIVALS)

    def test_follow_kind_filter(self, tmp_path):
        path = write_log(tmp_path / "a.jsonl", ARRIVALS)
        events = list(follow_events(path, kinds=["departure"],
                                    timeout=1.0))
        assert [e["kind"] for e in events] == ["departure", "departure"]


def seed_run(root, util=0.35, policy="LS", attempts=1,
             cache_status="computed", events=ARRIVALS):
    """Write one synthetic manifest (+ log) the way a worker would."""
    config = tiny_config(policy)
    task = RunTask(config, SIZES, SERVICE, util)
    key = task_key(task)
    log_path = root / "events" / key[:2] / f"{key}.jsonl"
    if events is not None:
        log_path.parent.mkdir(parents=True, exist_ok=True)
        write_log(log_path, events)
    manifest = for_task(task, key, cache_status=cache_status,
                        wall_clock_s=0.25,
                        event_log=str(log_path) if events is not None
                        else None)
    if attempts > 1:
        from dataclasses import replace

        manifest = replace(manifest, attempts=attempts)
    write_manifest(manifest, manifest_path(root, key))
    return key


class TestEventStore:
    def test_runs_and_filters(self, tmp_path):
        root = tmp_path / "obs"
        a = seed_run(root, 0.35, "LS")
        b = seed_run(root, 0.55, "GS")
        store = EventStore(root)
        assert {s.key for s in store.runs()} == {a, b}
        assert [s.key for s in store.runs(policy="GS")] == [b]
        assert store.runs(cache_status="hit") == []

    def test_run_by_prefix(self, tmp_path):
        root = tmp_path / "obs"
        key = seed_run(root)
        store = EventStore(root)
        assert store.run(key[:12]).key == key
        assert store.run("ffff") is None

    def test_torn_manifest_skipped_and_reported(self, tmp_path):
        root = tmp_path / "obs"
        seed_run(root)
        torn = root / "manifests" / "zz" / "zz123.json"
        torn.parent.mkdir(parents=True, exist_ok=True)
        torn.write_text('{"schema": "repro.obs/manifest/1", "key"')
        store = EventStore(root)
        assert len(store.runs()) == 1
        assert len(store.issues) == 1

    def test_events_across_runs(self, tmp_path):
        root = tmp_path / "obs"
        seed_run(root, 0.35)
        seed_run(root, 0.55)
        store = EventStore(root)
        events = list(store.events(kinds=["departure"]))
        assert len(events) == 4

    def test_missing_log_yields_empty_stream(self, tmp_path):
        root = tmp_path / "obs"
        key = seed_run(root, events=None)
        store = EventStore(root)
        (stream,) = store.runs()
        assert stream.key == key
        assert list(stream.events()) == []

    def test_relocated_root_falls_back_to_layout(self, tmp_path):
        """A downloaded/rsynced obs root has stale absolute log paths
        in its manifests; the store finds the logs anyway."""
        import shutil

        original = tmp_path / "obs"
        seed_run(original)
        moved = tmp_path / "elsewhere"
        shutil.move(str(original), str(moved))
        store = EventStore(moved)
        (stream,) = store.runs()
        assert stream.log_path is not None
        assert list(stream.events())


class TestReducers:
    def test_queue_depth(self):
        events = [
            {"t": 0.0, "kind": "arrival", "job": 0, "size": 2,
             "queue": 0},
            {"t": 2.0, "kind": "arrival", "job": 1, "size": 2,
             "queue": 0},
            {"t": 3.0, "kind": "start", "job": 0, "assignment": []},
            {"t": 7.0, "kind": "arrival", "job": 2, "size": 2,
             "queue": 1},
            {"t": 12.0, "kind": "start", "job": 1, "assignment": []},
            {"t": 13.0, "kind": "start", "job": 2, "assignment": []},
        ]
        series = queue_depth_series(iter(events), width=5.0)
        assert [p.values["waiting"] for p in series.points] == \
            [1.0, 2.0, 0.0]

    def test_busy_processors_normalized(self):
        reducer = BusyProcessorsReducer(capacities=(8, 8))
        series = reduce_series(iter(ARRIVALS_AS_DICTS), reducer, 5.0)
        totals = [p.values["total"] for p in series.points]
        # Window [0,5): job 0 holds 4 procs on cluster 0.  Window
        # [5,10): job 0 departed (t=9), job 1 holds 8 on cluster 1.
        assert totals[0] == pytest.approx(4 / 16)
        assert totals[1] == pytest.approx(8 / 16)
        assert series.points[1].values["cluster1"] == \
            pytest.approx(1.0)

    def test_placement_rate_resets_per_window(self):
        events = [
            {"t": 0.0, "kind": "placement_fit", "job": 0, "queue": 0,
             "assignment": []},
            {"t": 1.0, "kind": "placement_no_fit", "job": 1,
             "queue": 0},
            {"t": 11.0, "kind": "placement_fit", "job": 1, "queue": 0,
             "assignment": []},
        ]
        series = placement_series(iter(events), width=10.0)
        assert series.points[0].values["fit_rate"] == 0.5
        assert series.points[1].values == {
            "fit": 1.0, "no_fit": 0.0, "fit_rate": 1.0}

    def test_throughput_counts_departures_per_window(self):
        series = throughput_series(iter(ARRIVALS_AS_DICTS), width=10.0)
        assert [p.values["departures"] for p in series.points] == \
            [1.0, 1.0]

    def test_empty_windows_materialized(self):
        events = [{"t": 0.0, "kind": "departure", "job": 0},
                  {"t": 35.0, "kind": "departure", "job": 1}]
        series = throughput_series(iter(events), width=10.0)
        assert [p.start for p in series.points] == \
            [0.0, 10.0, 20.0, 30.0]

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            reduce_series(iter(()), BusyProcessorsReducer(), 0.0)

    def test_series_columns_and_render(self):
        series = queue_depth_series(iter(ARRIVALS_AS_DICTS), width=5.0)
        assert series.columns() == ["waiting"]
        text = render_series(series)
        assert "queue_depth" in text
        assert "sim time" in text


ARRIVALS_AS_DICTS = [
    {"t": t, "kind": kind, **payload} for t, kind, payload in ARRIVALS
]
