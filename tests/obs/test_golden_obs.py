"""Acceptance tests: observability is strictly side-band.

The contract this PR ships: with ``REPRO_OBS=1`` the runner emits a
schema-versioned JSONL event log, a populated metrics snapshot and a
:class:`RunManifest` for every task — while the sweep payloads, task
keys and cached entries stay **byte-identical** to an unobserved run,
at any worker count.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.analysis.io import save_sweep
from repro.analysis.sweeps import sweep
from repro.obs.events import EVENT_SCHEMA, read_events, read_header
from repro.obs.gate import OBS_DIR_ENV, OBS_ENV
from repro.obs.manifest import cache_manifest_path, load_manifest
from repro.runner import ResultCache, RunTask, task_key

from .conftest import SERVICE, SIZES, tiny_config

GRID = (0.35, 0.55)


def sweep_payload(result) -> str:
    buf = io.StringIO()
    save_sweep(result, buf)
    return buf.getvalue()


def run_sweep(policy="LS", workers=1, cache=False):
    return sweep(policy, tiny_config(policy), SIZES, SERVICE, GRID,
                 workers=workers, cache=cache)


def grid_keys(policy="LS") -> list[str]:
    config = tiny_config(policy)
    return [task_key(RunTask(config, SIZES, SERVICE, g)) for g in GRID]


@pytest.mark.parametrize("workers", [1, 4])
class TestByteIdentical:
    def test_payloads_identical_obs_on_vs_off(self, workers,
                                              monkeypatch, tmp_path):
        monkeypatch.delenv(OBS_ENV, raising=False)
        off = sweep_payload(run_sweep(workers=workers))
        monkeypatch.setenv(OBS_ENV, "1")
        monkeypatch.setenv(OBS_DIR_ENV, str(tmp_path / "obs"))
        on = sweep_payload(run_sweep(workers=workers))
        assert on == off

    def test_task_keys_unaffected_by_gate(self, workers, monkeypatch,
                                          tmp_path):
        monkeypatch.delenv(OBS_ENV, raising=False)
        off = grid_keys()
        monkeypatch.setenv(OBS_ENV, "1")
        monkeypatch.setenv(OBS_DIR_ENV, str(tmp_path / "obs"))
        assert grid_keys() == off

    def test_cache_entries_identical_obs_on_vs_off(self, workers,
                                                   monkeypatch,
                                                   tmp_path):
        monkeypatch.delenv(OBS_ENV, raising=False)
        cache_off = ResultCache(tmp_path / "off")
        run_sweep(workers=workers, cache=cache_off)
        monkeypatch.setenv(OBS_ENV, "1")
        monkeypatch.setenv(OBS_DIR_ENV, str(tmp_path / "obs"))
        cache_on = ResultCache(tmp_path / "on")
        run_sweep(workers=workers, cache=cache_on)
        for key in grid_keys():
            off_entry = cache_off.path_for(key).read_text()
            on_entry = cache_on.path_for(key).read_text()
            assert on_entry == off_entry


@pytest.mark.parametrize("workers", [1, 4])
class TestArtifactsEmitted:
    def test_manifest_and_event_log_per_task(self, workers, obs_env):
        run_sweep(workers=workers)
        for key in grid_keys():
            manifest = load_manifest(
                obs_env / "manifests" / key[:2] / f"{key}.json")
            assert manifest.key == key
            assert manifest.cache_status == "computed"
            assert manifest.policy == "LS"
            assert manifest.seed == 7
            assert manifest.wall_clock_s > 0
            metrics = manifest.metrics
            assert metrics["events_processed"] > 0
            assert metrics["placement_attempts"] > 0
            assert metrics["jobs_finished"] > 0
            assert metrics["queue_disables"], "per-queue counts missing"
            assert metrics["events_exported"] > 0

            log_path = obs_env / "events" / key[:2] / f"{key}.jsonl"
            assert str(log_path) == manifest.event_log
            assert read_header(log_path)["schema"] == EVENT_SCHEMA
            events = list(read_events(log_path))
            assert len(events) == metrics["events_exported"]
            kinds = {e["kind"] for e in events}
            assert {"arrival", "start", "departure",
                    "queue_disable", "queue_enable",
                    "placement_fit"} <= kinds

    def test_cache_side_band_manifest(self, workers, obs_env,
                                      tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_sweep(workers=workers, cache=cache)
        for key in grid_keys():
            side = cache_manifest_path(cache.path_for(key))
            manifest = load_manifest(side)
            assert manifest.key == key
            assert manifest.cache_status == "stored"
            # The side-band never leaks into the entry itself.
            entry = json.loads(cache.path_for(key).read_text())
            assert "manifest" not in entry


@pytest.mark.parametrize("workers", [1, 4])
class TestReadSideStaysSideBand:
    """The read-side consumers (span recorder, dashboard) observe a
    campaign without perturbing a single result byte."""

    def test_payloads_identical_with_span_recorder(self, workers,
                                                   monkeypatch,
                                                   tmp_path):
        from repro.obs.spans import SpanRecorder

        monkeypatch.delenv(OBS_ENV, raising=False)
        plain = sweep_payload(run_sweep(workers=workers))
        monkeypatch.setenv(OBS_ENV, "1")
        monkeypatch.setenv(OBS_DIR_ENV, str(tmp_path / "obs"))
        with SpanRecorder() as recorder:
            observed = sweep_payload(run_sweep(workers=workers))
        assert observed == plain
        assert recorder.spans, "recorder saw no heartbeats"

    def test_payloads_identical_with_dashboard_collecting(
            self, workers, monkeypatch, tmp_path):
        """A dashboard polling the artifact root mid-campaign (here:
        on every heartbeat, far more often than any real refresh
        loop) changes nothing."""
        from repro.obs import progress
        from repro.obs.dash import collect, render

        monkeypatch.delenv(OBS_ENV, raising=False)
        plain = sweep_payload(run_sweep(workers=workers))
        root = tmp_path / "obs"
        monkeypatch.setenv(OBS_ENV, "1")
        monkeypatch.setenv(OBS_DIR_ENV, str(root))
        frames: list[str] = []

        def refresh(kind, key, description):
            frames.append(render(collect(root)))

        hook = progress.subscribe(refresh)
        try:
            observed = sweep_payload(run_sweep(workers=workers))
        finally:
            progress.unsubscribe(hook)
        assert observed == plain
        assert frames, "dashboard never refreshed"

    def test_task_keys_unaffected_by_subscribers(self, workers,
                                                 monkeypatch):
        from repro.obs import progress
        from repro.obs.spans import SpanRecorder

        monkeypatch.delenv(OBS_ENV, raising=False)
        before = grid_keys()
        with SpanRecorder():
            assert grid_keys() == before
        assert progress._subscribers == []


class TestRegistryAndHits:
    def test_registry_snapshot_populated(self, obs_env,
                                         fresh_registry):
        run_sweep(workers=1)
        snap = fresh_registry.snapshot()
        counters = snap["counters"]
        assert counters["runner.tasks.total"] == len(GRID)
        assert counters["runner.tasks.computed"] == len(GRID)
        assert counters["runner.cache.misses"] == len(GRID)
        assert counters["sim.events.processed"] > 0
        assert counters["sim.placement.attempts"] > 0
        assert any(name.startswith("sim.queue.disables.")
                   for name in counters)
        wall = snap["histograms"]["runner.task.wall_clock_s"]
        assert wall["count"] == len(GRID)
        assert wall["sum"] > 0

    def test_cache_hits_counted_and_backfilled(self, obs_env,
                                               fresh_registry,
                                               tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        # Warm the cache with obs off: no manifests exist yet.
        monkeypatch.setenv(OBS_ENV, "0")
        run_sweep(workers=1, cache=cache)
        monkeypatch.setenv(OBS_ENV, "1")
        run_sweep(workers=1, cache=cache)
        counters = fresh_registry.snapshot()["counters"]
        assert counters["runner.cache.hits"] == len(GRID)
        assert counters.get("runner.tasks.computed", 0) == 0
        for key in grid_keys():
            manifest = load_manifest(
                obs_env / "manifests" / key[:2] / f"{key}.json")
            assert manifest.cache_status == "hit"

    def test_hit_manifest_does_not_clobber_computed(self, obs_env,
                                                    fresh_registry,
                                                    tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_sweep(workers=1, cache=cache)  # computes, writes manifests
        run_sweep(workers=1, cache=cache)  # all hits
        for key in grid_keys():
            manifest = load_manifest(
                obs_env / "manifests" / key[:2] / f"{key}.json")
            assert manifest.cache_status == "computed", (
                "hit backfill overwrote the richer computed manifest"
            )


class TestSweepManifest:
    def test_save_sweep_writes_manifest_when_enabled(self, obs_env,
                                                     tmp_path):
        result = run_sweep(workers=1)
        target = tmp_path / "curve.json"
        save_sweep(result, target)
        manifest = load_manifest(
            target.with_name("curve.json.manifest.json"))
        assert manifest.kind == "sweep"
        assert manifest.metrics == {"points": len(result.points)}

    def test_save_sweep_silent_when_disabled(self, monkeypatch,
                                             tmp_path):
        monkeypatch.delenv(OBS_ENV, raising=False)
        result = run_sweep(workers=1)
        target = tmp_path / "curve.json"
        save_sweep(result, target)
        assert not target.with_name(
            "curve.json.manifest.json").exists()
