"""Unit tests for run manifests."""

from __future__ import annotations

import json

import pytest

from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    cache_manifest_path,
    config_hash,
    for_sweep,
    for_task,
    load_manifest,
    manifest_path,
    write_manifest,
)
from repro.runner import RunTask, task_key

from .conftest import SERVICE, SIZES, tiny_config


def _task(policy="LS", **kw):
    return RunTask(tiny_config(policy, **kw), SIZES, SERVICE, 0.4)


class TestConfigHash:
    def test_stable_and_sensitive(self):
        a = config_hash(tiny_config())
        assert a == config_hash(tiny_config())
        assert a != config_hash(tiny_config(seed=8))
        assert len(a) == 16


class TestRunManifest:
    def test_for_task_fields(self):
        task = _task()
        key = task_key(task)
        m = for_task(task, key, cache_status="computed",
                     wall_clock_s=1.5, metrics={"events": 10},
                     event_log="x.jsonl")
        assert m.key == key
        assert m.policy == "LS"
        assert m.seed == 7
        assert m.offered_gross == 0.4
        assert m.cache_status == "computed"
        assert m.kind == "task"
        assert m.schema == MANIFEST_SCHEMA
        assert m.metrics == {"events": 10}
        assert m.repro_version
        assert m.python_version
        assert m.platform

    def test_round_trip(self, tmp_path):
        task = _task()
        m = for_task(task, task_key(task), cache_status="hit")
        path = write_manifest(m, tmp_path / "m.json")
        assert load_manifest(path) == m

    def test_from_dict_rejects_wrong_schema(self):
        payload = dict(for_task(_task(), "k",
                                cache_status="hit").to_dict())
        payload["schema"] = "other/9"
        with pytest.raises(ValueError, match="schema"):
            RunManifest.from_dict(payload)

    def test_from_dict_ignores_unknown_fields(self):
        payload = dict(for_task(_task(), "k",
                                cache_status="hit").to_dict())
        payload["future_field"] = 42
        assert RunManifest.from_dict(payload).key == "k"

    def test_for_sweep(self):
        config = tiny_config("GS")
        m = for_sweep("GS L=16", config, points=5, wall_clock_s=2.0)
        assert m.kind == "sweep"
        assert m.key == config_hash(config)
        assert m.metrics == {"points": 5}
        assert "GS L=16" in m.description

    def test_atomic_write(self, tmp_path):
        m = for_task(_task(), "k", cache_status="hit")
        path = write_manifest(m, tmp_path / "deep" / "m.json")
        assert path.exists()
        assert not path.with_name("m.json.tmp").exists()
        assert json.loads(path.read_text())["schema"] == MANIFEST_SCHEMA


class TestPaths:
    def test_manifest_path_sharded(self, tmp_path):
        p = manifest_path(tmp_path, "abcdef")
        assert p == tmp_path / "manifests" / "ab" / "abcdef.json"

    def test_cache_manifest_path(self, tmp_path):
        entry = tmp_path / "ab" / "abcdef.json"
        assert cache_manifest_path(entry) == (
            tmp_path / "ab" / "abcdef.manifest.json")
