"""Golden test: the exported event log pins the paper's §2.5 queue
semantics for LS.

From the JSONL log alone — no access to internal state — we replay the
queue lifecycle and assert the disable/re-enable protocol: a queue is
disabled when its head does not fit (with its position in the disabled
list), and at each departure the disabled queues are re-enabled *in the
order in which they were disabled*.
"""

from __future__ import annotations

import pytest

from repro.obs.events import EventLog, ExportTracer, read_events
from repro.runner import RunTask
from repro.runner.worker import run_task_result

from .conftest import SERVICE, SIZES, tiny_config


@pytest.fixture(scope="module")
def ls_events(tmp_path_factory):
    """Events of one small near-saturation LS run (lots of disabling)."""
    path = tmp_path_factory.mktemp("ls") / "run.jsonl"
    task = RunTask(tiny_config("LS"), SIZES, SERVICE, 0.6)
    with EventLog(path) as log:
        run_task_result(task, tracer=ExportTracer(log))
    return list(read_events(path))


def test_run_produced_queue_events(ls_events):
    kinds = {e["kind"] for e in ls_events}
    assert "queue_disable" in kinds
    assert "queue_enable" in kinds


def test_disable_orders_index_the_disabled_list(ls_events):
    """Each disable carries its position in the disabled list."""
    disabled: list[str] = []
    checked = 0
    for event in ls_events:
        if event["kind"] == "queue_disable":
            assert event["queue"] not in disabled, (
                "queue disabled twice without re-enable"
            )
            assert event["order"] == len(disabled)
            disabled.append(event["queue"])
            checked += 1
        elif event["kind"] == "queue_enable":
            disabled.remove(event["queue"])
    assert checked > 10, "run too quiet to pin the protocol"


def test_reenable_bursts_follow_disablement_order(ls_events):
    """Every enable burst replays the disabled list front-to-back.

    LS has no global queue, so ``enable_all`` always flushes the whole
    disabled list: the contiguous burst of ``queue_enable`` events must
    name exactly the currently-disabled queues, in disablement order,
    with orders 0..k-1.
    """
    disabled: list[str] = []
    burst: list[dict] = []
    bursts_checked = 0

    def check_burst():
        nonlocal disabled, burst, bursts_checked
        if not burst:
            return
        assert [e["order"] for e in burst] == list(range(len(burst)))
        assert [e["queue"] for e in burst] == disabled, (
            "re-enable order differs from disablement order"
        )
        disabled = []
        burst = []
        bursts_checked += 1

    for event in ls_events:
        if event["kind"] == "queue_enable":
            burst.append(event)
            continue
        check_burst()
        if event["kind"] == "queue_disable":
            disabled.append(event["queue"])
    check_burst()
    assert bursts_checked > 10


def test_job_lifecycle_ordering(ls_events):
    """arrival <= start <= departure for every finished job."""
    arrivals: dict[int, float] = {}
    starts: dict[int, float] = {}
    departed = 0
    for event in ls_events:
        job = event.get("job")
        if event["kind"] == "arrival":
            arrivals[job] = event["t"]
        elif event["kind"] == "start":
            assert job in arrivals
            assert event["t"] >= arrivals[job]
            starts[job] = event["t"]
        elif event["kind"] == "departure":
            assert job in starts
            assert event["t"] >= starts[job]
            departed += 1
    assert departed > 0


def test_every_start_was_placed(ls_events):
    """A job only starts after a placement_fit names its assignment."""
    placed: set[int] = set()
    for event in ls_events:
        if event["kind"] == "placement_fit":
            placed.add(event["job"])
        elif event["kind"] == "start":
            assert event["job"] in placed
