"""Unit and property tests for the component-splitting rule."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workload import (
    component_fractions,
    das_s_128,
    multi_component_fraction,
    num_components,
    split_size,
)
from repro.workload.stats_model import (
    COMPONENT_FRACTION_TARGETS,
    MULTI_COMPONENT_FRACTIONS,
)


class TestNumComponents:
    @pytest.mark.parametrize("size,limit,expected", [
        (1, 16, 1), (16, 16, 1), (17, 16, 2), (32, 16, 2),
        (33, 16, 3), (48, 16, 3), (49, 16, 4), (64, 16, 4),
        (24, 24, 1), (25, 24, 2), (48, 24, 2), (49, 24, 3),
        (64, 24, 3), (72, 24, 3), (73, 24, 4),
        (32, 32, 1), (33, 32, 2), (64, 32, 2), (65, 32, 3),
        (96, 32, 3), (97, 32, 4), (128, 32, 4),
    ])
    def test_paper_rule(self, size, limit, expected):
        assert num_components(size, limit, 4) == expected

    def test_clamped_to_cluster_count(self):
        # ceil(128/16) = 8 but only 4 clusters exist.
        assert num_components(128, 16, 4) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            num_components(0, 16, 4)
        with pytest.raises(ValueError):
            num_components(1, 0, 4)
        with pytest.raises(ValueError):
            num_components(1, 16, 0)


class TestSplitSize:
    def test_size_64_the_packing_critical_case(self):
        # §3.3: the splits of the most popular size decide which limit
        # packs well into 32-processor clusters.
        assert split_size(64, 16, 4) == (16, 16, 16, 16)
        assert split_size(64, 24, 4) == (22, 21, 21)
        assert split_size(64, 32, 4) == (32, 32)

    def test_size_128_exceeds_limit_when_clamped(self):
        assert split_size(128, 16, 4) == (32, 32, 32, 32)

    @pytest.mark.parametrize("size", [1, 5, 24, 31, 33, 63, 100, 127])
    def test_components_sum_to_size(self, size):
        for limit in (16, 24, 32):
            assert sum(split_size(size, limit, 4)) == size

    def test_single_component_below_limit(self):
        assert split_size(10, 16, 4) == (10,)

    def test_nonincreasing_order(self):
        for size in range(1, 129):
            comps = split_size(size, 24, 4)
            assert all(a >= b for a, b in zip(comps, comps[1:]))

    @given(
        st.integers(min_value=1, max_value=1024),
        st.integers(min_value=1, max_value=256),
        st.integers(min_value=1, max_value=16),
    )
    def test_properties(self, size, limit, clusters):
        comps = split_size(size, limit, clusters)
        # Conservation.
        assert sum(comps) == size
        # Count matches the rule and the cluster bound.
        assert len(comps) == min(math.ceil(size / limit), clusters)
        # As-equal-as-possible: spread at most 1.
        assert max(comps) - min(comps) <= 1
        # Components exceed the limit only when the cluster clamp bound.
        if math.ceil(size / limit) <= clusters:
            assert max(comps) <= limit


class TestComponentFractions:
    @pytest.mark.parametrize("limit", [16, 24, 32])
    def test_table2_reproduced_exactly(self, limit):
        got = component_fractions(das_s_128(), limit, 4)
        expected = COMPONENT_FRACTION_TARGETS[limit]
        assert got == pytest.approx(expected, abs=1e-9)

    @pytest.mark.parametrize("limit", [16, 24, 32])
    def test_multi_component_fractions_match_paper(self, limit):
        # §3.1.1 quotes 48.7% / 26.2% / 22.0% multi-component jobs.
        got = multi_component_fraction(das_s_128(), limit, 4)
        assert got == pytest.approx(MULTI_COMPONENT_FRACTIONS[limit],
                                    abs=1e-9)

    def test_fractions_sum_to_one(self):
        for limit in (16, 24, 32):
            assert sum(component_fractions(das_s_128(), limit, 4)) == (
                pytest.approx(1.0)
            )
