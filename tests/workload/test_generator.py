"""Tests for the job factory and arrival process."""

import numpy as np
import pytest

from repro.sim import Deterministic, Simulator, StreamFactory
from repro.sim.distributions import DiscreteEmpirical
from repro.workload import (
    ArrivalProcess,
    JobFactory,
    QueueRouter,
    das_s_128,
    das_t_900,
)
from repro.workload.stats_model import (
    BALANCED_WEIGHTS,
    EXTENSION_FACTOR,
    UNBALANCED_WEIGHTS,
)


def make_factory(limit=16, seed=1, sizes=None, service=None,
                 weights=BALANCED_WEIGHTS):
    return JobFactory(
        size_distribution=sizes or das_s_128(),
        service_distribution=service or Deterministic(100.0),
        component_limit=limit,
        routing_weights=weights,
        streams=StreamFactory(seed),
    )


class TestQueueRouter:
    def test_balanced_frequencies(self):
        router = QueueRouter(BALANCED_WEIGHTS, np.random.default_rng(0))
        picks = [router.route() for _ in range(20_000)]
        for q in range(4):
            assert np.mean(np.array(picks) == q) == pytest.approx(0.25,
                                                                  abs=0.02)

    def test_unbalanced_frequencies(self):
        router = QueueRouter(UNBALANCED_WEIGHTS, np.random.default_rng(0))
        picks = np.array([router.route() for _ in range(20_000)])
        assert np.mean(picks == 0) == pytest.approx(0.40, abs=0.02)
        assert np.mean(picks == 1) == pytest.approx(0.20, abs=0.02)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            QueueRouter([], rng)
        with pytest.raises(ValueError):
            QueueRouter([-1.0, 2.0], rng)
        with pytest.raises(ValueError):
            QueueRouter([0.0, 0.0], rng)


class TestJobFactory:
    def test_specs_have_consistent_components(self):
        f = make_factory(limit=16)
        for spec in f.jobs(500):
            assert sum(spec.components) == spec.size
            assert max(spec.components) <= 32  # worst clamped case
            assert 0 <= spec.queue < 4
            assert spec.service_time == 100.0

    def test_indices_sequential(self):
        f = make_factory()
        specs = f.jobs(10)
        assert [s.index for s in specs] == list(range(10))

    def test_no_splitting_for_total_requests(self):
        f = make_factory(limit=None)
        for spec in f.jobs(200):
            assert spec.components == (spec.size,)
            assert not spec.is_multi_component

    def test_multi_component_flag(self):
        f = make_factory(limit=16)
        specs = f.jobs(5000)
        frac = np.mean([s.is_multi_component for s in specs])
        assert frac == pytest.approx(0.487, abs=0.03)

    def test_common_random_numbers(self):
        # Same master seed → same job stream, regardless of limit.
        a = make_factory(limit=16, seed=9).jobs(100)
        b = make_factory(limit=32, seed=9).jobs(100)
        assert [s.size for s in a] == [s.size for s in b]
        assert [s.service_time for s in a] == [s.service_time for s in b]

    def test_extension_factor_validation(self):
        with pytest.raises(ValueError):
            JobFactory(das_s_128(), Deterministic(1.0), 16,
                       extension_factor=0.5)


class TestLoadAccounting:
    def test_gross_net_ratio_formula(self):
        # For a two-point size distribution the ratio is computable by
        # hand: sizes 10 (single) and 40 (multi under L=16) equally
        # likely; E[s·ext] = .5·10 + .5·40·1.25 = 30; E[s] = 25.
        sizes = DiscreteEmpirical([10, 40], [0.5, 0.5])
        f = JobFactory(sizes, Deterministic(100.0), 16,
                       streams=StreamFactory(0))
        assert f.gross_net_ratio() == pytest.approx(30.0 / 25.0)

    def test_ratio_one_without_splitting(self):
        f = make_factory(limit=None)
        assert f.gross_net_ratio() == pytest.approx(1.0)

    def test_paper_ratios_order(self):
        # §4: the gross/net gap grows as the limit shrinks (more
        # multi-component jobs).
        ratios = {L: make_factory(limit=L).gross_net_ratio()
                  for L in (16, 24, 32)}
        assert ratios[16] > ratios[24] > ratios[32] > 1.0

    def test_rate_and_utilization_inverse(self):
        f = make_factory(limit=16)
        rate = f.arrival_rate_for_gross_utilization(0.6, capacity=128)
        assert f.offered_gross_utilization(rate, 128) == pytest.approx(0.6)

    def test_net_below_gross(self):
        f = make_factory(limit=16)
        rate = 0.01
        assert (f.offered_net_utilization(rate, 128)
                < f.offered_gross_utilization(rate, 128))

    def test_expected_work_with_real_service(self):
        f = JobFactory(das_s_128(), das_t_900(), 16,
                       streams=StreamFactory(0))
        assert f.expected_net_work() == pytest.approx(
            das_s_128().mean * das_t_900().mean
        )

    def test_invalid_utilization(self):
        with pytest.raises(ValueError):
            make_factory().arrival_rate_for_gross_utilization(0.0, 128)


class TestArrivalProcess:
    def test_generates_at_requested_rate(self):
        sim = Simulator()
        f = make_factory()
        seen = []
        ArrivalProcess(sim, f, rate=0.5, submit=seen.append,
                       rng=np.random.default_rng(4))
        sim.run(until=10_000.0)
        # Poisson with λ=0.5 over 10000 s → ~5000 arrivals.
        assert len(seen) == pytest.approx(5000, rel=0.1)

    def test_limit_stops_generation(self):
        sim = Simulator()
        f = make_factory()
        seen = []
        ap = ArrivalProcess(sim, f, rate=1.0, submit=seen.append, limit=25,
                            rng=np.random.default_rng(4))
        sim.run()
        assert len(seen) == 25
        assert ap.generated == 25

    def test_arrival_times_strictly_increase(self):
        sim = Simulator()
        f = make_factory()
        times = []
        ArrivalProcess(sim, f, rate=2.0,
                       submit=lambda s: times.append(sim.now), limit=100,
                       rng=np.random.default_rng(4))
        sim.run()
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_invalid_rate(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ArrivalProcess(sim, make_factory(), rate=0.0,
                           submit=lambda s: None)


def test_extension_factor_constant_is_125():
    assert EXTENSION_FACTOR == 1.25
