"""The reconstructed size table must satisfy every published constraint."""

import pytest

from repro.workload import stats_model


def test_validate_size_table_passes():
    stats_model.validate_size_table()


def test_weights_sum_to_one():
    assert sum(stats_model.SIZE_TABLE.values()) == 10_000


def test_58_distinct_sizes_as_in_the_log():
    assert len(stats_model.SIZE_TABLE) == 58


def test_sizes_within_cluster_bounds():
    assert min(stats_model.SIZE_TABLE) >= 1
    assert max(stats_model.SIZE_TABLE) == 128


@pytest.mark.parametrize("size,frac", sorted(
    stats_model.POWER_OF_TWO_FRACTIONS.items()
))
def test_table1_power_of_two_fractions_exact(size, frac):
    assert stats_model.SIZE_TABLE[size] / 10_000 == pytest.approx(frac)


@pytest.mark.parametrize("point,frac", sorted(
    stats_model.CUMULATIVE_TARGETS.items()
))
def test_cumulative_targets_exact(point, frac):
    got = sum(w for s, w in stats_model.SIZE_TABLE.items() if s <= point)
    assert got / 10_000 == pytest.approx(frac)


def test_interval_16_24_mass():
    # The cumulative constraints put 22.5% of the jobs in (16, 24].
    mass = sum(w for s, w in stats_model.SIZE_TABLE.items()
               if 16 < s <= 24)
    assert mass / 10_000 == pytest.approx(0.225)


def test_size_64_is_most_popular():
    # §3.3: 19% of the jobs have size 64 — more than any other single
    # size except the size-24 spike.
    assert stats_model.SIZE_TABLE[64] == 1900


def test_jobs_above_64_are_two_percent():
    above = sum(w for s, w in stats_model.SIZE_TABLE.items() if s > 64)
    assert above / 10_000 == pytest.approx(0.020)


def test_system_constants_match_paper():
    assert stats_model.NUM_CLUSTERS == 4
    assert stats_model.CLUSTER_SIZE == 32
    assert stats_model.SINGLE_CLUSTER_SIZE == 128
    assert stats_model.SIZE_LIMITS == (16, 24, 32)
    assert stats_model.EXTENSION_FACTOR == 1.25
    assert stats_model.SERVICE_CUTOFF == 900.0


def test_routing_weights_are_distributions():
    assert sum(stats_model.BALANCED_WEIGHTS) == pytest.approx(1.0)
    assert sum(stats_model.UNBALANCED_WEIGHTS) == pytest.approx(1.0)
    assert len(stats_model.BALANCED_WEIGHTS) == stats_model.NUM_CLUSTERS
    assert max(stats_model.UNBALANCED_WEIGHTS) == 0.40
