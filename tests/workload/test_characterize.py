"""Tests for workload characterisation."""

import numpy as np
import pytest

from repro.workload import JobRecord, generate_das_log
from repro.workload.characterize import (
    bootstrap_mean_ci,
    characterize,
    gini_coefficient,
    hourly_profile,
    peak_offpeak_ratio,
    size_runtime_correlation,
    user_shares,
)


@pytest.fixture(scope="module")
def log():
    return generate_das_log(seed=21, num_jobs=12_000)


class TestHourlyProfile:
    def test_sums_to_one(self, log):
        profile = hourly_profile(log)
        assert profile.shape == (24,)
        assert profile.sum() == pytest.approx(1.0)

    def test_working_hours_dominate(self, log):
        # The generator puts 75% of arrivals in 9-18h.
        profile = hourly_profile(log)
        assert profile[9:18].sum() == pytest.approx(0.75, abs=0.03)

    def test_peak_offpeak_ratio(self, log):
        ratio = peak_offpeak_ratio(log)
        assert ratio > 2.0  # strongly diurnal

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            hourly_profile([])


class TestUserConcentration:
    def test_shares_sorted_and_normalised(self, log):
        shares = user_shares(log)
        assert shares.sum() == pytest.approx(1.0)
        assert all(a >= b for a, b in zip(shares, shares[1:]))

    def test_zipf_mix_concentrated(self, log):
        shares = user_shares(log)
        # Zipf over 20 users: the top user holds ~1/H(20) ≈ 28%.
        assert shares[0] > 0.2

    def test_gini_bounds(self):
        assert gini_coefficient([1, 1, 1, 1]) == pytest.approx(0.0)
        concentrated = gini_coefficient([0.97, 0.01, 0.01, 0.01])
        assert 0.6 < concentrated < 1.0

    def test_gini_validation(self):
        with pytest.raises(ValueError):
            gini_coefficient([])
        with pytest.raises(ValueError):
            gini_coefficient([0.0, 0.0])


class TestSizeRuntimeCorrelation:
    def test_synthetic_log_near_independent(self, log):
        # Sizes and runtimes are sampled independently except for the
        # working-hours kill: correlation must be near zero.
        rho = size_runtime_correlation(log)
        assert abs(rho) < 0.05

    def test_detects_strong_dependence(self):
        records = [
            JobRecord(i + 1, 0, float(i), size=s, runtime=10.0 * s)
            for i, s in enumerate(range(1, 101))
        ]
        assert size_runtime_correlation(records) == pytest.approx(1.0)

    def test_detects_negative_dependence(self):
        records = [
            JobRecord(i + 1, 0, float(i), size=s,
                      runtime=1000.0 / s)
            for i, s in enumerate(range(1, 101))
        ]
        assert size_runtime_correlation(records) == pytest.approx(-1.0)

    def test_needs_three_records(self):
        with pytest.raises(ValueError):
            size_runtime_correlation([
                JobRecord(1, 0, 0.0, 1, 1.0),
            ])


class TestBootstrap:
    def test_ci_contains_true_mean(self):
        data = np.random.default_rng(4).exponential(50.0, 2_000)
        mean, lo, hi = bootstrap_mean_ci(data, resamples=400)
        assert lo < 50.0 < hi or abs(mean - 50.0) < 5.0
        assert lo <= mean <= hi

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([])


class TestCharacterize:
    def test_full_battery(self, log):
        c = characterize(log, bootstrap_resamples=100)
        assert c.num_jobs == 12_000
        assert c.size_ci[0] <= c.mean_size <= c.size_ci[1]
        assert c.runtime_ci[0] <= c.mean_runtime <= c.runtime_ci[1]
        assert abs(c.size_runtime_spearman) < 0.05
        assert c.peak_offpeak > 2.0
        assert 0.0 < c.user_gini < 1.0
        text = c.summary()
        assert "Spearman" in text and "Gini" in text
