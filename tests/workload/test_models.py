"""Tests for the parametric workload models."""

import numpy as np
import pytest

from repro.workload.models import (
    HarmonicSizes,
    LogUniformSizes,
    hypergamma_service,
    powers_of_two_up_to,
)


class TestPowersHelper:
    def test_basic(self):
        assert powers_of_two_up_to(128) == [1, 2, 4, 8, 16, 32, 64, 128]
        assert powers_of_two_up_to(100) == [1, 2, 4, 8, 16, 32, 64]
        assert powers_of_two_up_to(1) == [1]

    def test_validation(self):
        with pytest.raises(ValueError):
            powers_of_two_up_to(0)


class TestLogUniformSizes:
    def test_probabilities_normalised(self):
        d = LogUniformSizes(128, 0.75)
        assert d.probabilities.sum() == pytest.approx(1.0)
        assert 1 <= min(d.support) and max(d.support) <= 128

    def test_power_preference(self):
        d = LogUniformSizes(128, 0.75)
        powers_mass = sum(
            d.prob(p) for p in powers_of_two_up_to(128)
        )
        assert powers_mass > 0.70

    def test_zero_power_fraction_is_pure_loguniform(self):
        d = LogUniformSizes(64, 0.0)
        # Log-uniform: mass of size s is log(1 + 1/s)/log(65);
        # monotone decreasing in s.
        probs = [d.prob(s) for s in (1, 2, 10, 50)]
        assert probs == sorted(probs, reverse=True)

    def test_full_power_fraction_only_powers(self):
        d = LogUniformSizes(64, 1.0)
        non_power_mass = 1.0 - sum(
            d.prob(p) for p in powers_of_two_up_to(64)
        )
        assert non_power_mass == pytest.approx(0.0, abs=1e-12)

    def test_small_jobs_dominate(self):
        d = LogUniformSizes(128, 0.75)
        assert d.cdf(16) > 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            LogUniformSizes(1)
        with pytest.raises(ValueError):
            LogUniformSizes(64, power_fraction=1.5)

    def test_sampling(self):
        d = LogUniformSizes(128, 0.5)
        draws = d.sample_array(np.random.default_rng(0), 5000)
        assert draws.min() >= 1 and draws.max() <= 128


class TestHarmonicSizes:
    def test_support_structure(self):
        d = HarmonicSizes(128, step=4)
        assert 1 in d.support and 2 in d.support
        assert 124 in d.support and 128 in d.support
        assert 3 not in d.support

    def test_harmonic_weights(self):
        d = HarmonicSizes(128, exponent=1.0)
        assert d.prob(1) / d.prob(2) == pytest.approx(2.0)
        assert d.prob(4) / d.prob(8) == pytest.approx(2.0)

    def test_steeper_exponent_shrinks_mean(self):
        assert HarmonicSizes(128, 2.0).mean < HarmonicSizes(128, 1.0).mean

    def test_validation(self):
        with pytest.raises(ValueError):
            HarmonicSizes(1)
        with pytest.raises(ValueError):
            HarmonicSizes(64, step=0)


class TestHypergammaService:
    def test_mean_between_modes(self):
        d = hypergamma_service(60.0, 600.0, 0.7)
        assert 60.0 < d.mean < 600.0
        assert d.mean == pytest.approx(0.7 * 60 + 0.3 * 600)

    def test_cutoff_bounds_support(self):
        d = hypergamma_service(60.0, 600.0, 0.7, cutoff=900.0)
        draws = d.sample_array(np.random.default_rng(1), 3000)
        assert np.all((draws >= 0) & (draws <= 900.0))
        assert d.mean < 900.0

    def test_validation(self):
        with pytest.raises(ValueError):
            hypergamma_service(short_fraction=0.0)
        with pytest.raises(ValueError):
            hypergamma_service(cutoff=-1.0)


class TestModelsDriveSimulations:
    def test_end_to_end_with_parametric_workload(self):
        from repro.core import SimulationConfig, run_open_system
        from repro.sim import StreamFactory
        from repro.workload import JobFactory

        sizes = LogUniformSizes(128, 0.75)
        service = hypergamma_service(cutoff=900.0)
        cfg = SimulationConfig(policy="LS", component_limit=16,
                               warmup_jobs=150, measured_jobs=900,
                               seed=4, batch_size=100)
        factory = JobFactory(sizes, service, 16,
                             streams=StreamFactory(4))
        rate = factory.arrival_rate_for_gross_utilization(0.4, 128)
        result = run_open_system(cfg, sizes, service, rate)
        assert result.report.completed_jobs == 900
        assert 0.2 < result.gross_utilization < 0.6
