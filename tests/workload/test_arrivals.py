"""Tests for the non-homogeneous (diurnal) arrival process."""

import numpy as np
import pytest

from repro.sim import Deterministic, Simulator, StreamFactory
from repro.workload import JobFactory, das_s_128
from repro.workload.arrivals import DiurnalRate, NHPPArrivalProcess

DAY = 86_400.0


def make_factory(seed=1):
    return JobFactory(das_s_128(), Deterministic(10.0), 16,
                      streams=StreamFactory(seed))


class TestDiurnalRate:
    def test_daily_average_matches_mean_rate(self):
        rate = DiurnalRate(mean_rate=0.01)
        hourly = [rate(h * 3600.0) for h in range(24)]
        assert np.mean(hourly) == pytest.approx(0.01)

    def test_working_hours_peak(self):
        rate = DiurnalRate(0.01)
        assert rate(12 * 3600.0) > rate(3 * 3600.0)
        assert rate.peak_rate == rate(12 * 3600.0)

    def test_wraps_across_days(self):
        rate = DiurnalRate(0.01)
        assert rate(12 * 3600.0) == rate(DAY + 12 * 3600.0)

    def test_custom_profile(self):
        weights = [1.0] * 24
        rate = DiurnalRate(0.02, weights)
        assert rate(0.0) == pytest.approx(0.02)
        assert rate.peak_rate == pytest.approx(0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalRate(0.0)
        with pytest.raises(ValueError):
            DiurnalRate(0.01, [1.0] * 23)
        with pytest.raises(ValueError):
            DiurnalRate(0.01, [0.0] * 24)


class TestNHPP:
    def test_mean_rate_preserved(self):
        sim = Simulator()
        rate = DiurnalRate(0.01)
        seen = []
        NHPPArrivalProcess(sim, make_factory(), rate, seen.append,
                           rng=np.random.default_rng(0))
        days = 30
        sim.run(until=days * DAY)
        expected = 0.01 * days * DAY
        assert len(seen) == pytest.approx(expected, rel=0.05)

    def test_diurnal_concentration(self):
        sim = Simulator()
        rate = DiurnalRate(0.01)
        times = []
        NHPPArrivalProcess(sim, make_factory(), rate,
                           lambda s: times.append(sim.now),
                           rng=np.random.default_rng(1))
        sim.run(until=20 * DAY)
        hours = np.array([int((t % DAY) / 3600.0) for t in times])
        work_share = np.mean((hours >= 9) & (hours < 18))
        assert work_share == pytest.approx(0.75, abs=0.03)

    def test_limit(self):
        sim = Simulator()
        seen = []
        ap = NHPPArrivalProcess(sim, make_factory(), DiurnalRate(0.01),
                                seen.append, limit=37,
                                rng=np.random.default_rng(2))
        sim.run()
        assert len(seen) == 37
        assert ap.generated == 37

    def test_acceptance_rate_below_one(self):
        sim = Simulator()
        ap = NHPPArrivalProcess(sim, make_factory(), DiurnalRate(0.01),
                                lambda s: None,
                                rng=np.random.default_rng(3))
        sim.run(until=5 * DAY)
        assert 0.1 < ap.acceptance_rate < 1.0

    def test_flat_profile_matches_homogeneous(self):
        sim = Simulator()
        rate = DiurnalRate(0.005, [1.0] * 24)
        seen = []
        NHPPArrivalProcess(sim, make_factory(), rate, seen.append,
                           rng=np.random.default_rng(4))
        sim.run(until=30 * DAY)
        assert len(seen) == pytest.approx(0.005 * 30 * DAY, rel=0.05)

    def test_rejects_bad_rate_object(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            NHPPArrivalProcess(sim, make_factory(), object(),  # type: ignore
                               lambda s: None)

    def test_drives_full_simulation(self):
        from repro.core import MulticlusterSimulation

        system = MulticlusterSimulation("GS")
        factory = make_factory(9)
        rate = DiurnalRate(0.003)
        NHPPArrivalProcess(system.sim, factory, rate, system.submit,
                           limit=300, rng=np.random.default_rng(5))
        system.sim.run()
        assert system.jobs_finished == 300
        assert system.multicluster.total_free == 128
