"""Tests for job reshaping under a total-size cap."""

import pytest

from repro.sim import Deterministic, StreamFactory
from repro.workload import JobFactory, JobSpec, das_s_128
from repro.workload.reshaping import ReshapingJobFactory, reshape_spec


def spec(size, service=100.0, components=None):
    return JobSpec(index=0, size=size,
                   components=components or (size,),
                   service_time=service, queue=0, user=3)


class TestReshapeSpec:
    def test_small_jobs_unchanged(self):
        s = spec(32)
        assert reshape_spec(s, 64) is s

    def test_large_job_capped_work_conserving(self):
        out = reshape_spec(spec(128, service=100.0), 64)
        assert out.size == 64
        assert out.service_time == pytest.approx(200.0)
        # Work conserved: 128*100 == 64*200.
        assert out.size * out.service_time == pytest.approx(12_800.0)

    def test_inefficiency_inflates_work(self):
        out = reshape_spec(spec(128, service=100.0), 64, efficiency=0.8)
        assert out.service_time == pytest.approx(250.0)
        assert out.size * out.service_time > 12_800.0

    def test_resplit_under_limit(self):
        out = reshape_spec(spec(128, service=100.0), 64,
                           component_limit=16, clusters=4)
        assert out.components == (16, 16, 16, 16)
        out2 = reshape_spec(spec(128, service=100.0), 64,
                            component_limit=None)
        assert out2.components == (64,)

    def test_metadata_preserved(self):
        out = reshape_spec(spec(100), 64)
        assert out.user == 3
        assert out.queue == 0
        assert out.index == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            reshape_spec(spec(10), 0)
        with pytest.raises(ValueError):
            reshape_spec(spec(10), 8, efficiency=0.0)
        with pytest.raises(ValueError):
            reshape_spec(spec(10), 8, efficiency=1.5)


class TestReshapingFactory:
    def make(self, efficiency=1.0, cap=64):
        inner = JobFactory(das_s_128(), Deterministic(100.0), 16,
                           streams=StreamFactory(7))
        return ReshapingJobFactory(inner, cap, efficiency=efficiency)

    def test_no_job_exceeds_cap(self):
        f = self.make()
        for job in f.jobs(3_000):
            assert job.size <= 64
            assert sum(job.components) == job.size
        # ~2% of jobs are above 64 in DAS-s-128.
        assert f.reshaped_jobs == pytest.approx(60, abs=35)

    def test_reshaped_jobs_run_longer(self):
        f = self.make()
        long_jobs = [j for j in f.jobs(3_000) if j.service_time > 100.0]
        assert long_jobs
        assert all(j.size == 64 for j in long_jobs)

    def test_expected_work_exceeds_plain_cut(self):
        # Reshaping keeps the big jobs' work; cutting drops it.  At the
        # same arrival rate the reshaped stream carries more work than
        # the das-s-64 stream (and with efficiency < 1, even more).
        perfect = self.make(efficiency=1.0)
        lossy = self.make(efficiency=0.7)
        assert lossy.expected_net_work() > perfect.expected_net_work()

    def test_work_conservation_at_perfect_efficiency(self):
        # E[net work] is identical to the uncapped stream when
        # efficiency is 1 (reshaping conserves processor-seconds).
        f = self.make(efficiency=1.0)
        assert f.expected_net_work() == pytest.approx(
            f.inner.expected_net_work()
        )

    def test_rate_inversion(self):
        f = self.make()
        rate = f.arrival_rate_for_gross_utilization(0.5, 128)
        assert rate * f.expected_gross_work() / 128 == pytest.approx(0.5)

    def test_validation(self):
        inner = JobFactory(das_s_128(), Deterministic(1.0), 16,
                           streams=StreamFactory(1))
        with pytest.raises(ValueError):
            ReshapingJobFactory(inner, 0)
        with pytest.raises(ValueError):
            ReshapingJobFactory(inner, 64, efficiency=2.0)
        f = ReshapingJobFactory(inner, 64)
        with pytest.raises(ValueError):
            f.arrival_rate_for_gross_utilization(0.0, 128)


class TestEndToEnd:
    def test_reshaped_stream_drives_simulation(self):
        from repro.core import MulticlusterSimulation
        from repro.workload import ArrivalProcess, das_t_900
        import numpy as np

        system = MulticlusterSimulation("LS")
        inner = JobFactory(das_s_128(), das_t_900(), 16,
                           streams=StreamFactory(3))
        f = ReshapingJobFactory(inner, 64, efficiency=0.9)
        rate = f.arrival_rate_for_gross_utilization(0.45, 128)

        class Adapter:
            def __init__(self, wrapped):
                self.wrapped = wrapped

            def next_job(self):
                return self.wrapped.next_job()

        ArrivalProcess(system.sim, Adapter(f), rate, system.submit,
                       limit=2_000, rng=np.random.default_rng(4))
        system.sim.run()
        assert system.jobs_finished == 2_000
        util = system.metrics.gross_utilization(system.sim.now)
        assert 0.3 < util < 0.6
