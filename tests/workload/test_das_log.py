"""Tests for the synthetic DAS1 log generator."""

import numpy as np
import pytest

from repro.workload import (
    DASLogGenerator,
    JobRecord,
    filter_log,
    generate_das_log,
    runtime_histogram,
    size_histogram,
    summarize_log,
)
from repro.workload.stats_model import SERVICE_CUTOFF


@pytest.fixture(scope="module")
def log():
    return generate_das_log(seed=7, num_jobs=30_000)


class TestJobRecord:
    def test_validation(self):
        with pytest.raises(ValueError):
            JobRecord(1, 0, 0.0, 0, 10.0)
        with pytest.raises(ValueError):
            JobRecord(1, 0, 0.0, 4, -1.0)
        with pytest.raises(ValueError):
            JobRecord(1, 0, -5.0, 4, 10.0)

    def test_frozen(self):
        r = JobRecord(1, 0, 0.0, 4, 10.0)
        with pytest.raises(Exception):
            r.size = 8


class TestGeneration:
    def test_deterministic_for_seed(self):
        a = generate_das_log(seed=3, num_jobs=500)
        b = generate_das_log(seed=3, num_jobs=500)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_das_log(seed=3, num_jobs=500)
        b = generate_das_log(seed=4, num_jobs=500)
        assert a != b

    def test_sorted_by_submit_time(self, log):
        times = [r.submit_time for r in log]
        assert times == sorted(times)

    def test_job_ids_sequential(self, log):
        assert [r.job_id for r in log] == list(range(1, len(log) + 1))

    def test_invalid_num_jobs(self):
        with pytest.raises(ValueError):
            DASLogGenerator(num_jobs=0)


class TestMarginals:
    def test_summary_matches_paper_scale(self, log):
        s = summarize_log(log)
        assert s.num_jobs == 30_000
        assert s.num_users == 20
        # All 58 sizes appear in a log this large.
        assert s.num_distinct_sizes == 58
        # Mean size ~ canonical 24.04, CV ~ 1.07.
        assert s.mean_size == pytest.approx(24.04, rel=0.03)
        assert s.cv_size == pytest.approx(1.07, rel=0.05)
        # "A large majority of recorded jobs ran below the kill limit."
        assert s.fraction_below_cutoff > 0.85
        # Table 1 totals: 70.5% of jobs at power-of-two sizes.
        assert s.power_of_two_fraction == pytest.approx(0.705, abs=0.01)

    def test_size_frequencies_match_table(self, log):
        sizes = np.array([r.size for r in log])
        assert np.mean(sizes == 64) == pytest.approx(0.190, abs=0.01)
        assert np.mean(sizes == 24) == pytest.approx(0.080, abs=0.01)
        assert np.mean(sizes == 128) == pytest.approx(0.012, abs=0.005)

    def test_working_hours_jobs_killed_at_limit(self, log):
        for r in log:
            hour = (r.submit_time % 86_400.0) / 3600.0
            if 9.0 <= hour < 18.0:
                assert r.runtime <= SERVICE_CUTOFF

    def test_some_offhours_jobs_exceed_cutoff(self, log):
        # The full (uncut) log must have mass above 900 s, otherwise
        # "cutting at 900" would be vacuous.
        assert any(r.runtime > SERVICE_CUTOFF for r in log)


class TestLogTools:
    def test_filter_by_size(self, log):
        cut = filter_log(log, max_size=64)
        assert all(r.size <= 64 for r in cut)
        # ~2% of jobs are above 64.
        assert len(cut) / len(log) == pytest.approx(0.98, abs=0.01)

    def test_filter_by_runtime(self, log):
        cut = filter_log(log, max_runtime=900.0)
        assert all(r.runtime <= 900.0 for r in cut)

    def test_size_histogram_counts(self, log):
        hist = size_histogram(log)
        assert sum(hist.values()) == len(log)
        assert list(hist) == sorted(hist)
        assert hist[64] > hist[32]

    def test_runtime_histogram_respects_cutoff(self, log):
        hist = runtime_histogram(log, bin_width=50.0)
        assert all(b < SERVICE_CUTOFF for b in hist)
        assert sum(hist.values()) == sum(
            1 for r in log if r.runtime <= SERVICE_CUTOFF
        )

    def test_runtime_histogram_kill_limit_pileup(self, log):
        # Jobs killed at exactly 900 s pile into the last bin — the
        # right-edge spike of the paper's Figure 2.
        hist = runtime_histogram(log, bin_width=60.0)
        assert hist[840.0] > hist[780.0]

    def test_runtime_histogram_validation(self, log):
        with pytest.raises(ValueError):
            runtime_histogram(log, bin_width=0.0)

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_log([])
