"""Tests for Standard Workload Format I/O."""

import io

import pytest

from repro.workload import (
    JobRecord,
    SWFFormatError,
    generate_das_log,
    read_swf,
    swf_header,
    write_swf,
)


@pytest.fixture
def records():
    return [
        JobRecord(1, 0, 0.0, 16, 120.0),
        JobRecord(2, 3, 60.5, 64, 899.6),
        JobRecord(3, 1, 61.0, 1, 5.0),
    ]


def test_roundtrip_stream(records):
    buf = io.StringIO()
    n = write_swf(records, buf)
    assert n == 3
    buf.seek(0)
    back = read_swf(buf)
    assert len(back) == 3
    for orig, rt in zip(records, back):
        assert rt.job_id == orig.job_id
        assert rt.user == orig.user
        assert rt.size == orig.size
        assert rt.submit_time == pytest.approx(orig.submit_time, abs=1.0)
        assert rt.runtime == pytest.approx(orig.runtime, abs=1.0)


def test_roundtrip_file(tmp_path, records):
    path = tmp_path / "log.swf"
    write_swf(records, path)
    back = read_swf(path)
    assert [r.size for r in back] == [16, 64, 1]


def test_header_lines(records):
    buf = io.StringIO()
    write_swf(records, buf, computer="TestBox", max_nodes=256)
    text = buf.getvalue()
    assert "; Computer: TestBox" in text
    assert "; MaxNodes: 256" in text
    assert text.count("\n") == len(swf_header()) + 3


def test_comments_and_blanks_skipped():
    swf = "; a comment\n\n" + " ".join(["1", "0", "-1", "10", "4"] +
                                       ["-1"] * 2 + ["4"] + ["-1"] * 2 +
                                       ["1", "2"] + ["-1"] * 6) + "\n"
    back = read_swf(io.StringIO(swf))
    assert len(back) == 1
    assert back[0].size == 4
    assert back[0].user == 1


def test_requested_processors_fallback():
    # Allocated processors field may be -1 in archive logs.
    fields = ["7", "100", "-1", "50", "-1", "-1", "-1", "8", "-1", "-1",
              "1", "1", "-1", "-1", "-1", "-1", "-1", "-1"]
    back = read_swf(io.StringIO(" ".join(fields) + "\n"))
    assert back[0].size == 8


def test_wrong_field_count_rejected():
    with pytest.raises(SWFFormatError, match="18 fields"):
        read_swf(io.StringIO("1 2 3\n"))


def test_non_numeric_rejected():
    bad = " ".join(["x"] * 18)
    with pytest.raises(SWFFormatError):
        read_swf(io.StringIO(bad + "\n"))


def test_no_processor_count_rejected():
    fields = ["7", "100", "-1", "50", "-1", "-1", "-1", "-1", "-1", "-1",
              "1", "1", "-1", "-1", "-1", "-1", "-1", "-1"]
    with pytest.raises(SWFFormatError, match="processor"):
        read_swf(io.StringIO(" ".join(fields) + "\n"))


def test_windows_line_endings_and_padding():
    fields = ["1", "0", "-1", "10", "4", "-1", "-1", "4", "-1", "-1",
              "1", "2", "-1", "-1", "-1", "-1", "-1", "-1"]
    swf = "  " + "  ".join(fields) + "  \r\n"
    back = read_swf(io.StringIO(swf))
    assert len(back) == 1
    assert back[0].size == 4


def test_negative_runtime_clamped_to_zero():
    # Cancelled jobs in archive logs carry runtime -1.
    fields = ["9", "50", "-1", "-1", "4", "-1", "-1", "4", "-1", "-1",
              "0", "1", "-1", "-1", "-1", "-1", "-1", "-1"]
    back = read_swf(io.StringIO(" ".join(fields) + "\n"))
    assert back[0].runtime == 0.0


def test_synthetic_log_roundtrip(tmp_path):
    log = generate_das_log(seed=2, num_jobs=200)
    path = tmp_path / "das.swf"
    write_swf(log, path)
    back = read_swf(path)
    assert len(back) == 200
    assert [r.size for r in back] == [r.size for r in log]
    assert [r.user for r in back] == [r.user for r in log]
