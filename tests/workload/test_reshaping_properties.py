"""Property-based tests for job reshaping invariants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workload import JobSpec
from repro.workload.reshaping import reshape_spec


def spec(size, service):
    return JobSpec(index=0, size=size, components=(size,),
                   service_time=service, queue=1, user=2)


@given(
    st.integers(min_value=1, max_value=1024),
    st.integers(min_value=1, max_value=256),
    st.floats(min_value=0.01, max_value=1e4, allow_nan=False),
    st.floats(min_value=0.05, max_value=1.0, exclude_min=False,
              allow_nan=False),
)
def test_reshaping_invariants(size, cap, service, efficiency):
    original = spec(size, service)
    out = reshape_spec(original, cap, efficiency=efficiency,
                       component_limit=16, clusters=4)
    # Cap respected.
    assert out.size <= max(cap, size if size <= cap else cap)
    if size <= cap:
        assert out is original
    else:
        assert out.size == cap
        # Work never shrinks; conserved exactly at efficiency 1.
        original_work = size * service
        new_work = out.size * out.service_time
        assert new_work >= original_work - 1e-6
        assert new_work == pytest.approx(original_work / efficiency)
        # Components conserve the reshaped size.
        assert sum(out.components) == out.size
        # Metadata preserved.
        assert out.queue == original.queue
        assert out.user == original.user
        assert out.index == original.index


@given(st.integers(min_value=1, max_value=128))
def test_identity_below_cap_regardless_of_size(size):
    s = spec(size, 100.0)
    assert reshape_spec(s, 128) is s
