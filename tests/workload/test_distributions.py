"""Tests for the canonical and trace-derived workload distributions."""

import numpy as np
import pytest

from repro.workload import (
    WORKLOADS,
    das_s_128,
    das_s_64,
    das_t_900,
    generate_das_log,
    service_distribution_from_log,
    size_distribution_from_log,
)
from repro.workload.stats_model import SERVICE_CUTOFF


class TestDasS128:
    def test_support_and_mass(self):
        d = das_s_128()
        assert len(d.support) == 58
        assert d.probabilities.sum() == pytest.approx(1.0)
        assert d.prob(64) == pytest.approx(0.190)

    def test_moments(self):
        d = das_s_128()
        # Reconstruction: mean ≈ 24.0, CV ≈ 1.07 (paper's illegible
        # digits are consistent with "average twenty-something, CV ~1").
        assert d.mean == pytest.approx(24.041, abs=0.01)
        assert d.cv == pytest.approx(1.075, abs=0.01)


class TestDasS64:
    def test_cut_and_renormalised(self):
        d = das_s_64()
        assert max(d.support) == 64
        assert d.probabilities.sum() == pytest.approx(1.0)

    def test_excludes_two_percent(self):
        full, cut = das_s_128(), das_s_64()
        kept = sum(full.prob(int(v)) for v in cut.support)
        assert kept == pytest.approx(0.980, abs=1e-9)

    def test_mean_reduced(self):
        assert das_s_64().mean < das_s_128().mean

    def test_conditional_probabilities(self):
        full, cut = das_s_128(), das_s_64()
        assert cut.prob(64) == pytest.approx(full.prob(64) / 0.980)


class TestDasT900:
    @pytest.fixture(scope="class")
    def dist(self):
        return das_t_900()

    def test_support_bounded_by_cutoff(self, dist):
        draws = dist.sample_array(np.random.default_rng(0), 5000)
        assert np.all(draws > 0)
        assert np.all(draws <= SERVICE_CUTOFF)

    def test_mean_scale(self, dist):
        # A few hundred seconds — consistent with the response-time
        # magnitudes in the paper's figures.
        assert 200.0 <= dist.mean <= 450.0

    def test_cv_near_one(self, dist):
        assert 0.7 <= dist.cv <= 1.3

    def test_kill_limit_spike_visible(self, dist):
        draws = dist.sample_array(np.random.default_rng(1), 50_000)
        near_limit = np.mean(draws >= 860.0)
        assert near_limit == pytest.approx(0.12, abs=0.02)


class TestTraceDerived:
    @pytest.fixture(scope="class")
    def log(self):
        return generate_das_log(seed=11, num_jobs=40_000)

    def test_size_distribution_matches_canonical(self, log):
        derived = size_distribution_from_log(log)
        canonical = das_s_128()
        assert derived.mean == pytest.approx(canonical.mean, rel=0.02)
        for v in (24, 64, 128):
            assert derived.prob(v) == pytest.approx(canonical.prob(v),
                                                    abs=0.01)

    def test_size_distribution_with_cut(self, log):
        derived = size_distribution_from_log(log, max_size=64)
        assert max(derived.support) <= 64

    def test_size_cut_removing_everything_rejected(self, log):
        with pytest.raises(ValueError):
            size_distribution_from_log(log, max_size=0)

    def test_service_distribution_bounded(self, log):
        d = service_distribution_from_log(log)
        draws = d.sample_array(np.random.default_rng(2), 2000)
        assert np.all((draws >= 0) & (draws <= SERVICE_CUTOFF))

    def test_service_distribution_mean_plausible(self, log):
        d = service_distribution_from_log(log)
        below = [r.runtime for r in log if r.runtime <= SERVICE_CUTOFF]
        assert d.mean == pytest.approx(np.mean(below), rel=0.05)

    def test_cutoff_with_no_jobs_rejected(self, log):
        with pytest.raises(ValueError):
            service_distribution_from_log(log, cutoff=0.0)


def test_workload_registry():
    assert set(WORKLOADS) == {"das-s-128", "das-s-64"}
    assert WORKLOADS["das-s-128"]().mean > WORKLOADS["das-s-64"]().mean
