"""Tests for the repro-sim command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.policy == "GS"
        assert args.limit == 16
        assert args.utilization == 0.5

    def test_invalid_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--policy", "XYZ"])

    def test_invalid_limit(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--limit", "20"])


class TestRunCommand:
    def test_run_prints_report(self, capsys):
        rc = main([
            "run", "--policy", "GS", "--utilization", "0.3",
            "--warmup", "100", "--measured", "500", "--seed", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mean response time" in out
        assert "measured gross util" in out

    def test_run_sc_forces_single_cluster(self, capsys):
        rc = main([
            "run", "--policy", "SC", "--utilization", "0.3",
            "--warmup", "100", "--measured", "500",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "component-size limit  None" in out


class TestSweepCommand:
    def test_sweep_prints_curve(self, capsys):
        rc = main([
            "sweep", "--policy", "LS", "--grid", "0.3:0.5:0.2",
            "--warmup", "100", "--measured", "400", "--plot",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "performance ranking" in out
        assert "legend:" in out  # the ASCII plot

    def test_bad_grid_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--grid", "nonsense"])

    def test_sweep_json_export(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        rc = main([
            "sweep", "--policy", "GS", "--grid", "0.3:0.3:0.1",
            "--warmup", "100", "--measured", "400",
            "--json", str(out),
        ])
        assert rc == 0
        assert "saved sweep" in capsys.readouterr().out
        from repro.analysis.io import load_sweep

        back = load_sweep(out)
        assert back.label == "GS"
        assert len(back.points) == 1


class TestSweepBackendFlag:
    def test_parser_accepts_auto(self):
        args = build_parser().parse_args(["sweep", "--backend", "auto"])
        assert args.backend == "auto"

    def test_auto_on_a_narrow_grid_runs_scalar(self, capsys):
        # One grid point is below AUTO_MIN_WIDTH, so auto must resolve
        # to the scalar engine and behave exactly like the default.
        rc = main([
            "sweep", "--policy", "GS", "--grid", "0.3:0.3:0.1",
            "--warmup", "100", "--measured", "400",
            "--backend", "auto",
        ])
        assert rc == 0
        assert "performance ranking" in capsys.readouterr().out

    def test_auto_on_a_wide_grid_fuses_the_kernel(self, capsys,
                                                  monkeypatch):
        pytest.importorskip("numpy")
        import repro.sim.batch as batch_module

        calls = {"count": 0}
        real = batch_module.BatchLaneKernel.load

        def counting(self, *args, **kwargs):
            calls["count"] += 1
            return real(self, *args, **kwargs)

        monkeypatch.setattr(batch_module.BatchLaneKernel, "load",
                            counting)
        rc = main([
            "sweep", "--policy", "GS", "--grid", "0.3:0.6:0.1",
            "--warmup", "100", "--measured", "400",
            "--backend", "auto", "--no-cache",
        ])
        assert rc == 0
        assert calls["count"] > 0

    def test_batch_without_numpy_degrades_cleanly(self, monkeypatch,
                                                  capsys):
        import repro.sim.backend as backend_module

        monkeypatch.setattr(backend_module, "numpy_available",
                            lambda: False)
        with pytest.warns(backend_module.BackendFallbackWarning):
            rc = main([
                "sweep", "--policy", "GS", "--grid", "0.3:0.3:0.1",
                "--warmup", "100", "--measured", "400",
                "--backend", "batch",
            ])
        assert rc == 0
        assert "performance ranking" in capsys.readouterr().out


class TestMaxUtilCommand:
    def test_maxutil_prints_values(self, capsys):
        rc = main([
            "maxutil", "--policy", "GS", "--backlog", "30",
            "--warmup", "100", "--measured", "600",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "maximal gross util" in out
        assert "gross/net ratio" in out


class TestTraceCommands:
    def test_trace_roundtrip(self, tmp_path, capsys):
        swf = tmp_path / "log.swf"
        rc = main(["trace", "--jobs", "400", "--seed", "3",
                   "--out", str(swf)])
        assert rc == 0
        assert swf.exists()
        rc = main(["trace-info", str(swf)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "400" in out
        assert "power-of-two sizes" in out


class TestCharacterizeCommand:
    def test_characterize_swf(self, tmp_path, capsys):
        swf = tmp_path / "log.swf"
        main(["trace", "--jobs", "600", "--seed", "4",
              "--out", str(swf)])
        capsys.readouterr()
        rc = main(["characterize", str(swf)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Spearman" in out
        assert "Gini" in out


class TestReportCommand:
    def test_report_sections(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "quick")
        out_md = tmp_path / "r.md"
        # Workload section only: fast (no simulations beyond the log).
        rc = main(["report", "--out", str(out_md),
                   "--sections", "workload"])
        assert rc == 0
        assert "Table 1" in out_md.read_text()
        assert "wrote 1 sections" in capsys.readouterr().out


class TestExperimentCommand:
    def test_table2_exact(self, capsys):
        rc = main(["experiment", "table2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "0.513/0.267/0.009/0.211" in out

    def test_table1_smoke_scale(self, capsys):
        rc = main(["experiment", "table1", "--scale", "smoke"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "0.190" in out

    def test_fig1_smoke_scale(self, capsys):
        rc = main(["experiment", "fig1", "--scale", "smoke"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "#" in out  # bar chart

    def test_fig2_smoke_scale(self, capsys):
        rc = main(["experiment", "fig2", "--scale", "smoke"])
        assert rc == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_table3_smoke_scale(self, capsys):
        rc = main(["experiment", "table3", "--scale", "smoke"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "maximal gross" in out
        assert "gross/net ratios (analytic)" in out

    def test_sensitivity_smoke_scale(self, capsys):
        rc = main(["sensitivity", "--scale", "smoke",
                   "--net-load", "0.3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Sensitivity scan" in out
        assert "extension_factor" in out

    @pytest.mark.slow
    def test_fig4_smoke_scale(self, capsys):
        rc = main(["experiment", "fig4", "--scale", "smoke"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "global" in out

    @pytest.mark.slow
    def test_fig7_smoke_scale(self, capsys):
        rc = main(["experiment", "fig7", "--scale", "smoke"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "gross/net ratio" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestObsFlags:
    def test_obs_flag_bridges_environment(self, tmp_path, monkeypatch,
                                          capsys):
        import os

        from repro.obs.gate import OBS_DIR_ENV, OBS_ENV

        root = tmp_path / "obs"
        monkeypatch.setenv(OBS_DIR_ENV, str(root))
        monkeypatch.delenv(OBS_ENV, raising=False)
        rc = main([
            "sweep", "--policy", "LS", "--grid", "0.4:0.4:0.1",
            "--warmup", "50", "--measured", "100", "--obs",
        ])
        assert rc == 0
        assert OBS_ENV not in os.environ, "flag leaked past the command"
        manifests = list((root / "manifests").glob("*/*.json"))
        assert len(manifests) == 1

    def test_progress_renders_status_line(self, capsys):
        rc = main([
            "sweep", "--policy", "GS", "--grid", "0.3:0.4:0.1",
            "--warmup", "50", "--measured", "100", "--progress",
        ])
        assert rc == 0
        err = capsys.readouterr().err
        assert "sweep GS" in err
        assert "computed" in err
        assert "phase timers:" in err
        assert "simulate" in err

    def test_profile_prints_hotspots(self, capsys):
        rc = main([
            "sweep", "--policy", "GS", "--grid", "0.3:0.3:0.1",
            "--warmup", "50", "--measured", "100", "--profile",
        ])
        assert rc == 0
        assert "cumulative time" in capsys.readouterr().out


class TestObsCommands:
    def _sweep_with_obs(self, monkeypatch, root):
        from repro.obs.gate import OBS_DIR_ENV

        monkeypatch.setenv(OBS_DIR_ENV, str(root))
        rc = main([
            "sweep", "--policy", "LS", "--grid", "0.4:0.4:0.1",
            "--warmup", "50", "--measured", "100", "--obs",
        ])
        assert rc == 0

    def test_summary_aggregates_manifests(self, tmp_path, monkeypatch,
                                          capsys):
        root = tmp_path / "obs"
        self._sweep_with_obs(monkeypatch, root)
        capsys.readouterr()
        rc = main(["obs", "summary", "--dir", str(root)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "manifests          1" in out
        assert "computed=1" in out
        assert "placement_attempts" in out

    def test_summary_empty_root_fails(self, tmp_path, capsys):
        rc = main(["obs", "summary", "--dir", str(tmp_path / "none")])
        assert rc == 1
        assert "no manifests" in capsys.readouterr().out

    def test_summary_of_event_log(self, tmp_path, monkeypatch, capsys):
        root = tmp_path / "obs"
        self._sweep_with_obs(monkeypatch, root)
        capsys.readouterr()
        (log,) = (root / "events").glob("*/*.jsonl")
        rc = main(["obs", "summary", "--log", str(log)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "repro.obs/events/1" in out
        assert "queue_disable" in out

    def test_tail_prints_last_events(self, tmp_path, monkeypatch,
                                     capsys):
        import json

        root = tmp_path / "obs"
        self._sweep_with_obs(monkeypatch, root)
        capsys.readouterr()
        (log,) = (root / "events").glob("*/*.jsonl")
        rc = main(["obs", "tail", str(log), "-n", "3"])
        assert rc == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        assert all("kind" in json.loads(line) for line in lines)

    def test_tail_missing_log_fails(self, tmp_path, capsys):
        rc = main(["obs", "tail", str(tmp_path / "nope.jsonl")])
        assert rc == 1
        assert "error" in capsys.readouterr().out

    def test_manifest_by_key_prefix(self, tmp_path, monkeypatch,
                                    capsys):
        import json

        root = tmp_path / "obs"
        self._sweep_with_obs(monkeypatch, root)
        capsys.readouterr()
        (path,) = (root / "manifests").glob("*/*.json")
        key = path.stem
        rc = main(["obs", "manifest", key[:10], "--dir", str(root)])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["key"] == key
        assert payload["cache_status"] == "computed"

    def test_manifest_unknown_key_fails(self, tmp_path, capsys):
        rc = main(["obs", "manifest", "deadbeef",
                   "--dir", str(tmp_path)])
        assert rc == 1

    def test_profile_command(self, capsys):
        rc = main([
            "obs", "profile", "--policy", "GS", "--warmup", "20",
            "--measured", "50", "--utilization", "0.3", "--top", "5",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "profiled GS" in out
        assert "cumulative time" in out

    def test_tail_kind_filter(self, tmp_path, monkeypatch, capsys):
        import json

        root = tmp_path / "obs"
        self._sweep_with_obs(monkeypatch, root)
        capsys.readouterr()
        (log,) = (root / "events").glob("*/*.jsonl")
        rc = main(["obs", "tail", str(log), "-n", "5",
                   "--kind", "departure"])
        assert rc == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        assert all(json.loads(line)["kind"] == "departure"
                   for line in lines)

    def test_tail_truncated_log_warns_but_succeeds(self, tmp_path,
                                                   monkeypatch,
                                                   capsys):
        root = tmp_path / "obs"
        self._sweep_with_obs(monkeypatch, root)
        capsys.readouterr()
        (log,) = (root / "events").glob("*/*.jsonl")
        log.write_bytes(log.read_bytes()[:-25])
        rc = main(["obs", "tail", str(log), "-n", "3"])
        assert rc == 0
        assert "warning:" in capsys.readouterr().out

    def test_summary_truncated_log_warns_but_succeeds(self, tmp_path,
                                                      monkeypatch,
                                                      capsys):
        root = tmp_path / "obs"
        self._sweep_with_obs(monkeypatch, root)
        capsys.readouterr()
        (log,) = (root / "events").glob("*/*.jsonl")
        log.write_bytes(log.read_bytes()[:-25])
        rc = main(["obs", "summary", "--log", str(log)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "events" in out
        assert "warning:" in out

    def test_validate_clean_root(self, tmp_path, monkeypatch, capsys):
        root = tmp_path / "obs"
        self._sweep_with_obs(monkeypatch, root)
        capsys.readouterr()
        rc = main(["obs", "validate", str(root)])
        assert rc == 0
        assert "clean" in capsys.readouterr().out

    def test_validate_flags_bad_log_nonzero(self, tmp_path, capsys):
        import json as _json

        from repro.obs.events import EVENT_SCHEMA

        log = tmp_path / "bad.jsonl"
        log.write_text(
            _json.dumps({"schema": EVENT_SCHEMA}) + "\n"
            + _json.dumps([{"t": 1.0, "kind": "wormhole"}]) + "\n")
        rc = main(["obs", "validate", str(log)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "bad.jsonl:2" in out
        assert "wormhole" in out

    def test_validate_empty_root_fails(self, tmp_path, capsys):
        rc = main(["obs", "validate", str(tmp_path)])
        assert rc == 1
        assert "no event logs" in capsys.readouterr().out

    def test_dash_snapshot(self, tmp_path, monkeypatch, capsys):
        root = tmp_path / "obs"
        self._sweep_with_obs(monkeypatch, root)
        capsys.readouterr()
        rc = main(["obs", "dash", "--dir", str(root)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "runs 1" in out
        assert "per-policy throughput" in out

    def test_trace_export(self, tmp_path, monkeypatch, capsys):
        import json

        root = tmp_path / "obs"
        self._sweep_with_obs(monkeypatch, root)
        capsys.readouterr()
        out_path = tmp_path / "trace.json"
        rc = main(["obs", "trace", "--dir", str(root),
                   "--out", str(out_path)])
        assert rc == 0
        payload = json.loads(out_path.read_text())
        assert any(e["ph"] == "X" for e in payload["traceEvents"])

    def test_trace_empty_root_fails(self, tmp_path, capsys):
        rc = main(["obs", "trace", "--dir", str(tmp_path / "none"),
                   "--out", str(tmp_path / "trace.json")])
        assert rc == 1
        assert not (tmp_path / "trace.json").exists()
