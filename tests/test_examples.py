"""Smoke tests: the example scripts run and print what they promise.

Only the fast examples run in the test suite; the longer studies
(`policy_comparison`, `viability_threshold`, ...) are exercised by the
benchmark harness paths they share code with.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_directory_complete():
    present = {p.stem for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart", "policy_comparison", "size_limit_study",
        "trace_tools", "viability_threshold", "saturation_diagnosis",
        "fairness_study", "engine_demo",
    } <= present


def test_quickstart_runs(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "gross utilization" in out
    assert "mean response time" in out
    assert "saturated           : no" in out


def test_trace_tools_runs(capsys):
    load_example("trace_tools").main()
    out = capsys.readouterr().out
    assert "generated 30000 jobs" in out
    assert "most frequent job sizes" in out
    assert "trace-derived" in out


@pytest.mark.slow
def test_engine_demo_runs(capsys):
    load_example("engine_demo").main()
    out = capsys.readouterr().out
    assert "Erlang-C reference" in out
    assert "OK:" in out


def test_every_example_has_docstring_and_main():
    for path in EXAMPLES.glob("*.py"):
        text = path.read_text(encoding="utf-8")
        assert text.lstrip().startswith(('"""', "#!")), path.name
        assert "def main()" in text, path.name
        assert '__name__ == "__main__"' in text, path.name
