"""Determinism regression: one master seed => byte-identical runs.

The engine promises fully deterministic event ordering — events are
processed in (time, priority, insertion order) — and all stochastic
draws flow through named StreamFactory substreams.  Together these mean
that two simulations built from the same ``SimulationConfig`` must
produce *identical* traces and metrics, which is exactly what the
common-random-numbers policy comparisons rely on.  This test replays a
GS run twice and compares the full event trace and the report
byte-for-byte, guarding both contracts at once.
"""

from __future__ import annotations

import json

from repro.core import SimulationConfig, run_open_system
from repro.sim.trace import Tracer
from repro.workload import WORKLOADS, das_t_900


def _one_run(seed: int) -> tuple[bytes, bytes]:
    """(trace bytes, report bytes) of one small GS open-system run."""
    config = SimulationConfig(
        policy="GS",
        component_limit=16,
        seed=seed,
        warmup_jobs=50,
        measured_jobs=300,
        batch_size=25,
    )
    tracer = Tracer()
    result = run_open_system(
        config,
        WORKLOADS["das-s-128"](),
        das_t_900(),
        arrival_rate=0.02,
        tracer=tracer,
    )
    trace_bytes = "\n".join(
        repr((record.time, record.kind, sorted(record.payload.items())))
        for record in tracer
    ).encode()
    report = result.report.as_dict()
    report_bytes = json.dumps(
        {
            "report": {key: repr(value) for key, value in sorted(report.items())},
            "offered_gross": repr(result.offered_gross_utilization),
            "saturated": result.saturated,
            "end_time": repr(result.end_time),
        },
        sort_keys=True,
    ).encode()
    return trace_bytes, report_bytes


def test_same_seed_gives_byte_identical_traces_and_metrics() -> None:
    trace_a, report_a = _one_run(seed=7)
    trace_b, report_b = _one_run(seed=7)
    assert trace_a, "tracer recorded nothing; the run did not execute"
    assert trace_a == trace_b
    assert report_a == report_b


def test_different_seeds_actually_diverge() -> None:
    # Guards the guard: if the workload ignored the seed, the identity
    # assertion above would pass vacuously.
    trace_a, _ = _one_run(seed=7)
    trace_b, _ = _one_run(seed=8)
    assert trace_a != trace_b
