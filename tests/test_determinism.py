"""Determinism regression: one master seed => byte-identical runs.

The engine promises fully deterministic event ordering — events are
processed in (time, priority, insertion order) — and all stochastic
draws flow through named StreamFactory substreams.  Together these mean
that two simulations built from the same ``SimulationConfig`` must
produce *identical* traces and metrics, which is exactly what the
common-random-numbers policy comparisons rely on.  This test replays a
GS run twice and compares the full event trace and the report
byte-for-byte, guarding both contracts at once.
"""

from __future__ import annotations

import json

from repro.core import SimulationConfig, run_open_system
from repro.core.system import MulticlusterSimulation
from repro.sim.rng import StreamFactory
from repro.sim.trace import Tracer
from repro.workload import WORKLOADS, das_t_900
from repro.workload import generator as generator_module
from repro.workload.generator import ArrivalProcess, JobFactory


def _one_run(seed: int) -> tuple[bytes, bytes]:
    """(trace bytes, report bytes) of one small GS open-system run."""
    config = SimulationConfig(
        policy="GS",
        component_limit=16,
        seed=seed,
        warmup_jobs=50,
        measured_jobs=300,
        batch_size=25,
    )
    tracer = Tracer()
    result = run_open_system(
        config,
        WORKLOADS["das-s-128"](),
        das_t_900(),
        arrival_rate=0.02,
        tracer=tracer,
    )
    trace_bytes = "\n".join(
        repr((record.time, record.kind, sorted(record.payload.items())))
        for record in tracer
    ).encode()
    report = result.report.as_dict()
    report_bytes = json.dumps(
        {
            "report": {key: repr(value) for key, value in sorted(report.items())},
            "offered_gross": repr(result.offered_gross_utilization),
            "saturated": result.saturated,
            "end_time": repr(result.end_time),
        },
        sort_keys=True,
    ).encode()
    return trace_bytes, report_bytes


def test_same_seed_gives_byte_identical_traces_and_metrics() -> None:
    trace_a, report_a = _one_run(seed=7)
    trace_b, report_b = _one_run(seed=7)
    assert trace_a, "tracer recorded nothing; the run did not execute"
    assert trace_a == trace_b
    assert report_a == report_b


def test_different_seeds_actually_diverge() -> None:
    # Guards the guard: if the workload ignored the seed, the identity
    # assertion above would pass vacuously.
    trace_a, _ = _one_run(seed=7)
    trace_b, _ = _one_run(seed=8)
    assert trace_a != trace_b


def _policy_run(policy: str) -> tuple[bytes, str, bytes]:
    """(trace, extras, report) bytes of one small run of ``policy``."""
    if policy == "SC":
        config = SimulationConfig.single_cluster(
            seed=5, warmup_jobs=50, measured_jobs=250, batch_size=25,
        )
    else:
        config = SimulationConfig(
            policy=policy, component_limit=16, seed=5,
            warmup_jobs=50, measured_jobs=250, batch_size=25,
        )
    tracer = Tracer()
    result = run_open_system(
        config,
        WORKLOADS["das-s-128"](),
        das_t_900(),
        arrival_rate=0.02,
        tracer=tracer,
    )
    trace_bytes = "\n".join(
        repr((record.time, record.kind, sorted(record.payload.items())))
        for record in tracer
    ).encode()
    extras = repr(sorted(result.extras.items()))
    report_bytes = json.dumps(
        {key: repr(value) for key, value in sorted(result.report.as_dict().items())},
        sort_keys=True,
    ).encode()
    return trace_bytes, extras, report_bytes


def test_batched_rng_byte_identical_to_scalar_draws(monkeypatch) -> None:
    """Block-drawn workloads == the scalar draw path, all four policies.

    The workload layer prefetches interarrival, size and routing draws
    in blocks (see ``DEFAULT_DRAW_BATCH``); batch size 1 is the seed
    scalar-draw sequence.  Block draws from the same per-stream
    generator must consume the bit stream identically, so traces,
    extras counters and reports must match byte for byte — for every
    policy and for a batch size chosen to not divide the job count
    evenly (exercising block-boundary refills).
    """

    def all_runs(batch: int) -> dict[str, tuple[bytes, str, bytes]]:
        monkeypatch.setattr(generator_module, "DEFAULT_DRAW_BATCH", batch)
        return {policy: _policy_run(policy)
                for policy in ("GS", "LS", "LP", "SC")}

    scalar = all_runs(1)
    batched = all_runs(257)
    assert scalar["GS"][0], "tracer recorded nothing; the runs did not execute"
    assert scalar == batched


def test_direct_departures_byte_identical_to_timeout_events() -> None:
    """defer()-scheduled departures == the Timeout/callback-list path.

    ``MulticlusterSimulation(direct_departures=...)`` switches between
    the lightweight deferred departure and the original per-job Timeout
    event; both must produce the same event sequence, counters and
    trace bytes.
    """

    def run(direct: bool) -> tuple[bytes, int, int]:
        tracer = Tracer()
        system = MulticlusterSimulation(
            "LS", tracer=tracer, direct_departures=direct,
        )
        factory = JobFactory(
            WORKLOADS["das-s-128"](), das_t_900(), 16,
            streams=StreamFactory(3),
        )
        ArrivalProcess(
            system.sim, factory, 0.02, system.submit, limit=400,
            rng=StreamFactory(3).get("arrivals.iat"),
        )
        system.sim.run()  # drains once the arrival limit is reached
        trace_bytes = "\n".join(
            repr((record.time, record.kind, sorted(record.payload.items())))
            for record in tracer
        ).encode()
        return (trace_bytes, system.sim.events_processed,
                system.sim.events_scheduled)

    fast = run(True)
    reference = run(False)
    assert fast[0], "tracer recorded nothing; the runs did not execute"
    assert fast == reference
