"""Tests for trajectory sampling."""

import numpy as np
import pytest

from repro.core import MulticlusterSimulation
from repro.metrics.timeseries import TimeSeriesProbe, TrajectoryRecorder
from repro.sim import Simulator, StreamFactory
from repro.workload import JobFactory, das_s_128
from repro.sim.distributions import Deterministic


class TestTimeSeriesProbe:
    def test_samples_at_period(self):
        sim = Simulator()
        counter = {"v": 0.0}

        def bump(sim):
            while True:
                yield sim.timeout(1.0)
                counter["v"] += 1.0

        sim.process(bump(sim))
        probe = TimeSeriesProbe(sim, {"v": lambda: counter["v"]},
                                period=2.0)
        sim.run(until=10.5)
        times, values = probe.series("v")
        assert list(times) == [2.0, 4.0, 6.0, 8.0, 10.0]
        # Tie order: the bump process (created first) runs before the
        # probe at even times.
        assert values[0] in (1.0, 2.0)
        assert len(probe) == 5

    def test_stop(self):
        sim = Simulator()
        probe = TimeSeriesProbe(sim, {"x": lambda: 1.0}, period=1.0)
        sim.call_at(3.5, probe.stop)
        sim.run(until=10.0)
        assert len(probe) <= 4

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            TimeSeriesProbe(sim, {"x": lambda: 1.0}, period=0.0)
        with pytest.raises(ValueError):
            TimeSeriesProbe(sim, {}, period=1.0)

    def test_last_empty_is_nan(self):
        sim = Simulator()
        probe = TimeSeriesProbe(sim, {"x": lambda: 1.0}, period=1.0)
        assert np.isnan(probe.last("x"))


class TestTrajectoryRecorder:
    def test_multicluster_signals(self):
        system = MulticlusterSimulation("LS")
        recorder = TrajectoryRecorder(system, period=50.0)
        factory = JobFactory(das_s_128(), Deterministic(100.0), 16,
                             streams=StreamFactory(2))
        for _ in range(60):
            system.submit(factory.next_job())
        system.sim.run(until=600.0)
        # Signals exist for every queue and cluster.
        names = set(recorder.probe.signals)
        assert {"backlog", "busy"} <= names
        assert sum(1 for n in names if n.startswith("queue:")) == 4
        assert sum(1 for n in names if n.startswith("cluster:")) == 4
        # The sampled busy average is within capacity.
        assert 0.0 <= recorder.mean_busy() <= 128.0
        # Busiest queue resolves to a real queue name.
        assert recorder.busiest_queue().startswith("local-")

    def test_queue_series_shape(self):
        system = MulticlusterSimulation("GS")
        recorder = TrajectoryRecorder(system, period=10.0)
        system.sim.run(until=55.0)
        times, values = recorder.queue_series("global")
        assert len(times) == len(values) == 5
        assert np.all(values == 0.0)
