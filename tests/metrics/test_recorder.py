"""Unit tests for the metrics recorder (utilization and response)."""

import math

import pytest

from repro.core import Job
from repro.metrics import MetricsRecorder
from repro.workload import JobSpec


def job(size=16, components=(16,), service=100.0, arrival=0.0):
    spec = JobSpec(index=0, size=size, components=tuple(components),
                   service_time=service, queue=0)
    return Job(spec, arrival, 1.25)


class TestLifecycleAccounting:
    def test_single_job_utilization_exact(self):
        rec = MetricsRecorder(capacity=128)
        j = job(size=64, service=100.0)
        rec.on_arrival(j, 0.0)
        j.start(0.0, [(0, 64)])
        rec.on_start(j, 0.0)
        j.finish(100.0)
        rec.on_finish(j, 100.0)
        report = rec.report(100.0)
        # 64 processors busy for 100 of 100 s on 128: exactly 0.5.
        assert report.gross_utilization == pytest.approx(0.5)
        assert report.net_utilization == pytest.approx(0.5)
        assert report.mean_response == pytest.approx(100.0)

    def test_multi_component_gross_vs_net(self):
        rec = MetricsRecorder(capacity=128)
        j = job(size=64, components=(32, 32), service=100.0)
        rec.on_arrival(j, 0.0)
        j.start(0.0, [(0, 32), (1, 32)])
        rec.on_start(j, 0.0)
        j.finish(125.0)  # extended by 1.25
        rec.on_finish(j, 125.0)
        report = rec.report(125.0)
        # Gross: 64 busy for 125 s; net: the same work at rate 64/1.25.
        assert report.gross_utilization == pytest.approx(
            64 * 125 / (128 * 125)
        )
        assert report.net_utilization == pytest.approx(
            64 * 100 / (128 * 125)
        )

    def test_partial_inflight_job_counted(self):
        # A job still running at the report time contributes its
        # elapsed busy time exactly.
        rec = MetricsRecorder(capacity=128)
        j = job(size=32, service=1000.0)
        rec.on_arrival(j, 0.0)
        j.start(0.0, [(0, 32)])
        rec.on_start(j, 0.0)
        assert rec.gross_utilization(50.0) == pytest.approx(
            32 * 50 / (128 * 50)
        )

    def test_local_vs_global_breakdown(self):
        rec = MetricsRecorder(capacity=128)
        a, b = job(service=10.0), job(service=30.0)
        for x, t, is_global in ((a, 0.0, False), (b, 0.0, True)):
            rec.on_arrival(x, t)
            x.start(t, [(0, 16)])
            rec.on_start(x, t)
        a.finish(10.0)
        rec.on_finish(a, 10.0, global_queue=False)
        b.finish(30.0)
        rec.on_finish(b, 30.0, global_queue=True)
        report = rec.report(30.0)
        assert report.mean_response_local == pytest.approx(10.0)
        assert report.mean_response_global == pytest.approx(30.0)
        assert report.mean_response == pytest.approx(20.0)

    def test_queue_population_signals(self):
        rec = MetricsRecorder(capacity=4)
        j = job(size=4, components=(4,), service=10.0)
        rec.on_arrival(j, 0.0)
        j.start(5.0, [(0, 4)])
        rec.on_start(j, 5.0)
        j.finish(15.0)
        rec.on_finish(j, 15.0)
        report = rec.report(20.0)
        # Waiting 5 of 20 s; in system 15 of 20 s.
        assert report.mean_jobs_waiting == pytest.approx(5 / 20)
        assert report.mean_jobs_in_system == pytest.approx(15 / 20)


class TestWindows:
    def test_reset_discards_history(self):
        rec = MetricsRecorder(capacity=128)
        j = job(size=128, service=100.0)
        rec.on_arrival(j, 0.0)
        j.start(0.0, [(0, 128)])
        rec.on_start(j, 0.0)
        j.finish(100.0)
        rec.on_finish(j, 100.0)
        rec.reset(100.0)
        assert rec.completions == 0
        report = rec.report(200.0)
        assert report.gross_utilization == pytest.approx(0.0)
        assert math.isnan(report.mean_response)

    def test_reset_preserves_levels(self):
        rec = MetricsRecorder(capacity=128)
        j = job(size=64, service=1000.0)
        rec.on_arrival(j, 0.0)
        j.start(0.0, [(0, 64)])
        rec.on_start(j, 0.0)
        rec.reset(10.0)
        # Still busy after the reset.
        assert rec.gross_utilization(20.0) == pytest.approx(0.5)

    def test_empty_window_rejected(self):
        rec = MetricsRecorder(capacity=8)
        with pytest.raises(ValueError):
            rec.report(0.0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            MetricsRecorder(capacity=0)


class TestReport:
    def test_as_dict_roundtrip(self):
        rec = MetricsRecorder(capacity=8)
        j = job(size=8, components=(8,), service=5.0)
        rec.on_arrival(j, 0.0)
        j.start(0.0, [(0, 8)])
        rec.on_start(j, 0.0)
        j.finish(5.0)
        rec.on_finish(j, 5.0)
        d = rec.report(10.0).as_dict()
        assert d["completed_jobs"] == 1
        assert set(d) >= {"gross_utilization", "net_utilization",
                          "mean_response", "elapsed"}

    def test_unknown_report_fields_rejected(self):
        from repro.metrics import UtilizationReport

        with pytest.raises(TypeError):
            UtilizationReport(bogus=1.0)
