"""Tests for per-user/per-class fairness metrics."""

import pytest

from repro.core import Job
from repro.metrics.fairness import FairnessTracker, jain_index
from repro.workload import JobSpec


def finished(size, response, service=100.0, user=0):
    spec = JobSpec(index=0, size=size, components=(size,),
                   service_time=service, queue=0, user=user)
    job = Job(spec, 0.0, 1.25)
    job.start(response - service, [(0, size)])
    job.finish(response)
    return job


class TestJainIndex:
    def test_perfect_equality(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_total_concentration(self):
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_all_zero_is_fair(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            jain_index([])
        with pytest.raises(ValueError):
            jain_index([-1.0, 2.0])

    def test_nan_values_skipped(self):
        assert jain_index([5.0, float("nan"), 5.0]) == pytest.approx(1.0)


class TestFairnessTracker:
    def test_metric_validation(self):
        with pytest.raises(ValueError):
            FairnessTracker(metric="latency")

    def test_by_user_aggregation(self):
        tr = FairnessTracker(metric="response")
        tr.record_job(finished(8, 100.0, user=0))
        tr.record_job(finished(8, 300.0, user=0))
        tr.record_job(finished(8, 100.0, user=1))
        means = tr.user_means()
        assert means[0] == pytest.approx(200.0)
        assert means[1] == pytest.approx(100.0)

    def test_size_class_assignment(self):
        tr = FairnessTracker(metric="response")
        tr.record_job(finished(2, 50.0))
        tr.record_job(finished(16, 60.0))
        tr.record_job(finished(64, 70.0))
        tr.record_job(finished(128, 80.0))
        means = tr.class_means()
        assert means["tiny (1-4)"] == 50.0
        assert means["small (5-16)"] == 60.0
        assert means["large (33-64)"] == 70.0
        assert means["huge (65-128)"] == 80.0
        assert "medium (17-32)" not in means  # no data

    def test_fairness_indices(self):
        tr = FairnessTracker(metric="response")
        for user in range(4):
            tr.record_job(finished(8, 100.0, user=user))
        assert tr.user_fairness() == pytest.approx(1.0)
        tr.record_job(finished(8, 10_000.0, user=4))
        assert tr.user_fairness() < 0.6

    def test_worst_best_ratio(self):
        tr = FairnessTracker(metric="response")
        tr.record_job(finished(2, 100.0))
        tr.record_job(finished(64, 400.0))
        assert tr.worst_best_ratio() == pytest.approx(4.0)

    def test_bounded_slowdown_metric(self):
        tr = FairnessTracker(metric="bounded_slowdown")
        # service 100 (single comp, gross=100), response 250: sd 2.5
        tr.record_job(finished(8, 250.0))
        assert tr.class_means()["small (5-16)"] == pytest.approx(2.5)


class TestEndToEndFairness:
    def test_large_jobs_pay_more_under_fcfs(self):
        from repro.core import MulticlusterSimulation
        from repro.sim import StreamFactory
        from repro.workload import (
            ArrivalProcess,
            JobFactory,
            das_s_128,
            das_t_900,
        )

        system = MulticlusterSimulation("LS")
        tracker = FairnessTracker(metric="bounded_slowdown")
        system.on_departure_hook = tracker.record_job
        factory = JobFactory(das_s_128(), das_t_900(), 16,
                             streams=StreamFactory(12), num_users=20)
        rate = factory.arrival_rate_for_gross_utilization(0.6, 128)
        ArrivalProcess(system.sim, factory, rate, system.submit,
                       limit=4_000,
                       rng=StreamFactory(12).get("iat"))
        system.sim.run()
        means = tracker.class_means()
        # Whole-machine jobs suffer more than tiny ones under
        # space-sharing FCFS with co-allocation.
        assert means["huge (65-128)"] > means["tiny (1-4)"]
        assert 0.0 < tracker.user_fairness() <= 1.0
        assert len(tracker.by_user) == 20
