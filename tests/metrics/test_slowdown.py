"""Tests for slowdown metrics."""

import pytest

from repro.core import Job
from repro.metrics import SlowdownTracker, bounded_slowdown
from repro.workload import JobSpec


def finished_job(response, service, multi=False):
    components = (8, 8) if multi else (16,)
    spec = JobSpec(index=0, size=16, components=components,
                   service_time=service, queue=0)
    job = Job(spec, 0.0, 1.25)
    job.start(response - job.gross_service_time, [(0, 8), (1, 8)]
              if multi else [(0, 16)])
    job.finish(response)
    return job


class TestBoundedSlowdown:
    def test_basic(self):
        assert bounded_slowdown(100.0, 50.0) == pytest.approx(2.0)

    def test_threshold_floors_both_sides(self):
        # A 1-second job waiting 9 seconds: raw slowdown 10, bounded 1.
        assert bounded_slowdown(10.0, 1.0) == pytest.approx(1.0)
        assert bounded_slowdown(100.0, 1.0) == pytest.approx(10.0)

    def test_no_queueing_means_one(self):
        assert bounded_slowdown(50.0, 50.0) == pytest.approx(1.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bounded_slowdown(-1.0, 5.0)


class TestSlowdownTracker:
    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            SlowdownTracker(threshold=0.0)

    def test_record_pairs(self):
        tr = SlowdownTracker()
        tr.record(200.0, 100.0)
        tr.record(100.0, 100.0)
        assert tr.mean_slowdown == pytest.approx(1.5)
        assert tr.mean_bounded_slowdown == pytest.approx(1.5)

    def test_record_job_uses_gross_service(self):
        tr = SlowdownTracker()
        # Multi-component job: service 100, gross 125, response 250.
        job = finished_job(250.0, 100.0, multi=True)
        tr.record_job(job)
        assert tr.mean_slowdown == pytest.approx(250.0 / 125.0)

    def test_percentiles(self):
        tr = SlowdownTracker()
        for r in range(1, 101):
            tr.record(float(r * 100), 100.0)
        assert tr.percentile(0.5) == pytest.approx(50.0, rel=0.1)
        assert tr.percentile(0.95) == pytest.approx(95.0, rel=0.1)

    def test_reset(self):
        tr = SlowdownTracker()
        tr.record(200.0, 100.0)
        tr.reset()
        assert tr.bounded.count == 0


class TestRecorderIntegration:
    def test_report_carries_slowdown_and_percentiles(self):
        from repro.core import SimulationConfig, run_open_system
        from repro.workload import das_s_128, das_t_900

        cfg = SimulationConfig(policy="GS", component_limit=16,
                               warmup_jobs=100, measured_jobs=800,
                               seed=5, batch_size=100)
        result = run_open_system(cfg, das_s_128(), das_t_900(), 0.005)
        r = result.report
        assert r.mean_bounded_slowdown >= 1.0
        assert r.response_p50 <= r.response_p95
        assert r.response_p50 > 0
        d = r.as_dict()
        assert "response_p95" in d and "mean_bounded_slowdown" in d
