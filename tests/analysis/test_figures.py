"""Tests for multi-panel figure rendering."""

import pytest

from repro.analysis.experiments import Scale
from repro.analysis.figures import (
    figure6_grid,
    figure7_grid,
    render_panel,
    side_by_side,
)
from repro.analysis.sweeps import SweepPoint, SweepResult
from repro.core import SimulationConfig


def sweep(label, pairs):
    points = tuple(
        SweepPoint(offered_gross=u, gross_utilization=u,
                   net_utilization=u * 0.85, mean_response=r,
                   ci_half_width=1.0, saturated=False)
        for u, r in pairs
    )
    return SweepResult(label=label, config=SimulationConfig(),
                       points=points)


@pytest.fixture(scope="module")
def tiny():
    return Scale(
        name="tiny", warmup_jobs=100, measured_jobs=400,
        grid_step=0.3, grid_stop=0.5,
        backlog_warmup=100, backlog_measured=400,
        log_jobs=2_000, seed=23,
    )


class TestSideBySide:
    def test_joins_horizontally(self):
        out = side_by_side(["a\nb", "XX\nYY\nZZ"])
        lines = out.splitlines()
        assert lines[0] == "a   XX"
        assert lines[1] == "b   YY"
        assert lines[2].strip() == "ZZ"

    def test_empty(self):
        assert side_by_side([]) == ""

    def test_single_panel(self):
        assert side_by_side(["one\ntwo"]) == "one\ntwo"


class TestRenderPanel:
    def test_contains_series_and_title(self):
        s1 = sweep("LS", [(0.3, 500), (0.6, 2000)])
        s2 = sweep("GS", [(0.3, 550), (0.6, 4000)])
        out = render_panel([s1, s2], title="demo")
        assert out.startswith("demo")
        assert "o=LS" in out and "x=GS" in out

    def test_net_axis(self):
        s = sweep("LS", [(0.4, 700)])
        out = render_panel([s], title="t", x="net_utilization")
        assert "o=LS" in out


class TestGrids:
    @pytest.mark.slow
    def test_figure3_grid_runs(self):
        from repro.analysis.figures import figure3_grid

        micro = Scale(
            name="micro", warmup_jobs=60, measured_jobs=250,
            grid_step=0.3, grid_stop=0.3,
            backlog_warmup=60, backlog_measured=250,
            log_jobs=1_000, seed=29,
        )
        out = figure3_grid(micro)
        assert "Figure 3" in out
        # Six panels: three limits x two balance modes.
        assert out.count("L=16") == 2
        assert out.count("L=24") == 2
        assert out.count("L=32") == 2
        assert "balanced" in out and "unbalanced" in out

    def test_figure6_grid_shape(self, tiny):
        out = figure6_grid(tiny, policies=("LS",))
        assert "Figure 6" in out
        assert "LS 16" in out or "o=LS 16" in out

    def test_figure7_grid_shape(self, tiny):
        out = figure7_grid(tiny, policies=("GS",))
        assert "Figure 7" in out
        assert "gross" in out and "net" in out
