"""Tests for the one-factor-at-a-time sensitivity scan."""

import pytest

from repro.analysis.experiments import Scale
from repro.analysis.sensitivity import (
    BASE_FACTORS,
    SensitivityResult,
    render_tornado,
    sensitivity_scan,
)


@pytest.fixture(scope="module")
def tiny():
    return Scale(
        name="tiny", warmup_jobs=150, measured_jobs=800,
        grid_step=0.2, grid_stop=0.6,
        backlog_warmup=100, backlog_measured=500,
        log_jobs=3_000, seed=13,
    )


class TestSensitivityResult:
    def test_swing(self):
        r = SensitivityResult("f", (1, 2), (100.0, 250.0), 120.0)
        assert r.swing == 150.0
        assert r.relative_swing == pytest.approx(1.25)


class TestScan:
    @pytest.fixture(scope="class")
    def results(self, tiny):
        return sensitivity_scan(
            net_rho=0.35, scale=tiny,
            factors=["component_limit", "extension_factor",
                     "size_distribution"],
        )

    def test_factors_covered(self, results):
        assert {r.factor for r in results} == {
            "component_limit", "extension_factor", "size_distribution",
        }

    def test_sorted_by_swing(self, results):
        swings = [r.swing for r in results]
        assert swings == sorted(swings, reverse=True)

    def test_extension_factor_monotone(self, results):
        ext = next(r for r in results if r.factor == "extension_factor")
        # Higher extension → no faster responses at fixed net load.
        assert ext.responses[0] <= ext.responses[-1] * 1.1

    def test_all_responses_positive(self, results):
        for r in results:
            assert all(resp > 0 for resp in r.responses)
            assert r.base_response > 0

    def test_render_tornado(self, results):
        text = render_tornado(results)
        assert "Sensitivity scan" in text
        assert "component_limit" in text

    def test_factor_registry_complete(self):
        assert {"component_limit", "extension_factor", "routing",
                "placement", "cluster_shape",
                "size_distribution"} <= set(BASE_FACTORS)
