"""Tests for the replication harness."""

import math

import pytest

from repro.analysis.replications import (
    paired_comparison,
    replicate_sweep,
)
from repro.core import SimulationConfig
from repro.workload import das_s_128, das_t_900

SIZES = das_s_128()
SERVICE = das_t_900()


def small_config(policy="GS", **kw):
    base = dict(policy=policy, component_limit=16, warmup_jobs=150,
                measured_jobs=800, seed=3, batch_size=100)
    if policy == "SC":
        base.update(capacities=(128,), component_limit=None)
    base.update(kw)
    return SimulationConfig(**base)


class TestReplicateSweep:
    def test_aggregates_each_point(self):
        rs = replicate_sweep("GS", small_config(), SIZES, SERVICE,
                             utilizations=(0.3, 0.5), replications=3)
        assert len(rs.points) == 2
        for p in rs.points:
            assert p.replications == 3
            assert p.mean_response > 0
            assert not math.isinf(p.response_ci.half_width)
            assert p.mean_net_utilization < p.mean_gross_utilization

    def test_distinct_seeds(self):
        rs = replicate_sweep("GS", small_config(), SIZES, SERVICE,
                             utilizations=(0.3,), replications=3)
        assert len(set(rs.seeds)) == 3

    def test_ci_narrows_with_more_replications(self):
        few = replicate_sweep("GS", small_config(), SIZES, SERVICE,
                              utilizations=(0.4,), replications=2)
        many = replicate_sweep("GS", small_config(), SIZES, SERVICE,
                               utilizations=(0.4,), replications=6)
        assert (many.points[0].response_ci.half_width
                < few.points[0].response_ci.half_width)

    def test_single_replication_infinite_ci(self):
        rs = replicate_sweep("GS", small_config(), SIZES, SERVICE,
                             utilizations=(0.3,), replications=1)
        assert math.isinf(rs.points[0].response_ci.half_width)

    def test_invalid_replications(self):
        with pytest.raises(ValueError):
            replicate_sweep("GS", small_config(), SIZES, SERVICE,
                            utilizations=(0.3,), replications=0)

    def test_series_shape(self):
        rs = replicate_sweep("GS", small_config(), SIZES, SERVICE,
                             utilizations=(0.3, 0.5), replications=2)
        xs, ys = rs.series()
        assert len(xs) == len(ys) == 2

    def test_ci_covers_long_run_mean(self):
        # A long single run's mean must fall inside the replicated CI.
        from repro.analysis.sweeps import sweep

        rs = replicate_sweep("GS", small_config(), SIZES, SERVICE,
                             utilizations=(0.4,), replications=6)
        long_run = sweep(
            "GS", small_config(measured_jobs=8_000, seed=777),
            SIZES, SERVICE, utilizations=(0.4,),
        )
        point = rs.points[0]
        long_mean = long_run.points[0].mean_response
        slack = 3.0 * point.response_ci.half_width
        assert abs(long_mean - point.mean_response) <= max(slack, 100.0)


class TestPairedComparison:
    def test_lp_worse_than_ls_at_high_load(self):
        ci = paired_comparison(
            small_config("LP"), small_config("LS"),
            SIZES, SERVICE, utilization=0.6, replications=4,
        )
        # LP − LS response difference is positive (LP worse).
        assert ci.mean > 0

    def test_self_comparison_is_zero(self):
        ci = paired_comparison(
            small_config("GS"), small_config("GS"),
            SIZES, SERVICE, utilization=0.4, replications=3,
        )
        assert ci.mean == pytest.approx(0.0, abs=1e-9)
        assert ci.half_width == pytest.approx(0.0, abs=1e-9)
