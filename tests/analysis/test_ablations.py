"""Small-scale tests for the ablation experiment functions."""

import pytest

from repro.analysis.ablations import (
    backfilling_ablation,
    das2_heterogeneous_study,
    extension_factor_ablation,
    placement_rule_ablation,
    request_type_ablation,
    workload_sensitivity_ablation,
)
from repro.analysis.experiments import Scale


@pytest.fixture(scope="module")
def tiny():
    return Scale(
        name="tiny", warmup_jobs=120, measured_jobs=600,
        grid_step=0.3, grid_stop=0.6,
        backlog_warmup=120, backlog_measured=600,
        log_jobs=2_000, seed=19,
    )


def test_placement_rule_ablation(tiny):
    data = placement_rule_ablation(tiny)
    utils = data["max_gross_utilization"]
    assert set(utils) == {"worst-fit", "first-fit", "best-fit"}
    assert all(0.3 < v < 1.0 for v in utils.values())


def test_extension_factor_ablation(tiny):
    data = extension_factor_ablation(tiny, net_rho=0.35,
                                     factors=(1.0, 1.25))
    assert [r["factor"] for r in data["rows"]] == [1.0, 1.25]
    assert data["sc_response"] > 0
    for r in data["rows"]:
        assert r["ls_response"] > 0
        assert r["ratio_vs_sc"] > 0


def test_request_type_ablation(tiny):
    data = request_type_ablation(tiny)
    utils = data["max_gross_utilization"]
    assert set(utils) == {"unordered", "ordered", "flexible",
                          "total (SC)"}
    # Dominance holds even at tiny scale (generous slack).
    assert utils["flexible"] >= utils["ordered"] - 0.05


def test_backfilling_ablation(tiny):
    data = backfilling_ablation(tiny)
    utils = data["max_gross_utilization"]
    assert "GS-EASY (reservation)" in utils
    assert utils["GS-EASY (reservation)"] >= utils["GS (no backfill)"]


def test_workload_sensitivity_ablation(tiny):
    data = workload_sensitivity_ablation(tiny)
    table = data["max_gross_utilization"]
    assert set(table) == {"DAS-s-128 (trace)", "log-uniform p2=0.75",
                          "harmonic"}
    for row in table.values():
        assert set(row) == {16, 24, 32}


def test_das2_heterogeneous_study(tiny):
    data = das2_heterogeneous_study(tiny, utilization=0.4)
    assert data["capacities"] == (72, 32, 32, 32, 32)
    assert set(data["results"]) == {"GS", "LS", "LP", "SC"}
    for r in data["results"].values():
        assert r["mean_response"] > 0
        assert 0.2 < r["gross_utilization"] < 0.6
