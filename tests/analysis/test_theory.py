"""Tests for the analytic results (gross/net ratios, load algebra)."""

import pytest

from repro.analysis.theory import (
    arrival_rate_for_utilization,
    gross_net_ratio,
    gross_net_ratios_table,
    mm1_response_time,
    offered_gross_utilization,
    weighted_extension,
)
from repro.sim.distributions import DiscreteEmpirical
from repro.workload import das_s_128


class TestGrossNetRatio:
    def test_hand_computable_case(self):
        # Sizes 10 (single under L=16) and 40 (multi) equally likely:
        # ratio = (.5*10 + .5*40*1.25) / 25 = 30/25.
        dist = DiscreteEmpirical([10, 40], [0.5, 0.5])
        assert gross_net_ratio(dist, 16) == pytest.approx(1.2)

    def test_all_single_component_ratio_one(self):
        dist = DiscreteEmpirical([4, 8, 16], [1, 1, 1])
        assert gross_net_ratio(dist, 16) == pytest.approx(1.0)

    def test_paper_figure4_ratios(self):
        # Figure 4 prints (gross, net) utilization pairs per limit;
        # their ratios pin the workload's analytic gross/net ratio:
        # 0.552/0.453=1.219, 0.463/0.395=1.172, 0.544/0.469=1.160.
        ratios = gross_net_ratios_table(das_s_128())
        assert ratios[16] == pytest.approx(0.552 / 0.453, abs=0.006)
        assert ratios[24] == pytest.approx(0.463 / 0.395, abs=0.006)
        assert ratios[32] == pytest.approx(0.544 / 0.469, abs=0.006)

    def test_ratio_decreases_with_limit(self):
        # §4: the gross/net gap grows as the limit shrinks.
        ratios = gross_net_ratios_table(das_s_128())
        assert ratios[16] > ratios[24] > ratios[32] > 1.0

    def test_weighted_extension_bounds(self):
        dist = das_s_128()
        w = weighted_extension(dist, 16)
        assert dist.mean < w < 1.25 * dist.mean

    def test_extension_factor_parameter(self):
        dist = DiscreteEmpirical([10, 40], [0.5, 0.5])
        assert gross_net_ratio(dist, 16, extension_factor=1.0) == (
            pytest.approx(1.0)
        )
        assert gross_net_ratio(dist, 16, extension_factor=1.5) == (
            pytest.approx((5 + 30) / 25)
        )


class TestLoadAlgebra:
    def test_rate_utilization_roundtrip(self):
        rate = arrival_rate_for_utilization(0.6, 30.0, 350.0, 128)
        assert offered_gross_utilization(rate, 30.0, 350.0, 128) == (
            pytest.approx(0.6)
        )

    def test_invalid_utilization(self):
        with pytest.raises(ValueError):
            arrival_rate_for_utilization(0.0, 30.0, 350.0, 128)


class TestMM1:
    def test_known_values(self):
        assert mm1_response_time(0.5, 1.0) == pytest.approx(2.0)
        assert mm1_response_time(0.9, 2.0) == pytest.approx(20.0)

    def test_domain(self):
        with pytest.raises(ValueError):
            mm1_response_time(1.0)
        with pytest.raises(ValueError):
            mm1_response_time(-0.1)
