"""Tests for the sweep harness."""

import pytest

from repro.analysis.sweeps import (
    SweepPoint,
    SweepResult,
    compare,
    default_grid,
    rank_by_performance,
    sweep,
    utilization_grid,
    with_seed,
)
from repro.core import SimulationConfig
from repro.workload import das_s_128, das_t_900


def make_point(util, resp, saturated=False):
    return SweepPoint(
        offered_gross=util, gross_utilization=util, net_utilization=util,
        mean_response=resp, ci_half_width=resp * 0.1, saturated=saturated,
    )


def make_sweep(label, pairs):
    points = tuple(make_point(u, r, s) for u, r, s in pairs)
    return SweepResult(label=label,
                       config=SimulationConfig(policy="GS"),
                       points=points)


class TestGrid:
    def test_default_grid(self):
        grid = default_grid(0.2, 0.4, 0.1)
        assert grid == (0.2, 0.3, 0.4)

    def test_inclusive_stop(self):
        assert default_grid(0.1, 0.3, 0.05)[-1] == pytest.approx(0.3)

    def test_paper_default_grid_pinned(self):
        # Regression for the float-accumulation rewrite: the paper's
        # default range must produce exactly these 14 points.
        assert default_grid() == (
            0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5, 0.55,
            0.6, 0.65, 0.7, 0.75, 0.8, 0.85,
        )

    @pytest.mark.parametrize("start,stop,step", [
        (0.2, 0.85, 0.05), (0.1, 0.7, 0.1), (0.07, 0.7, 0.07),
        (0.2, 0.8, 0.1), (0.05, 0.9, 0.05), (0.2, 0.62, 0.06),
    ])
    def test_index_based_count_and_endpoint(self, start, stop, step):
        grid = utilization_grid(start, stop, step)
        assert len(grid) == round((stop - start) / step) + 1
        assert grid[0] == pytest.approx(start)
        assert grid[-1] == pytest.approx(stop)
        # Points are exactly start + i*step (no accumulated drift).
        for i, u in enumerate(grid):
            assert u == round(start + i * step, 10)

    def test_no_spurious_points_from_absolute_epsilon(self):
        # The old accumulation used an absolute 1e-9 tolerance, which
        # for sub-1e-9 steps swept far past the endpoint; the tolerance
        # is now relative to the step.
        grid = utilization_grid(0.0, 2.5e-9, 5e-10)
        assert len(grid) == 6

    def test_stop_not_on_grid_truncates(self):
        assert utilization_grid(0.2, 0.49, 0.1) == (0.2, 0.3, 0.4)

    def test_bad_step_raises(self):
        with pytest.raises(ValueError):
            utilization_grid(0.2, 0.8, 0.0)

    def test_scale_grids_pinned(self):
        # The experiment scales share the same index-based grid.
        from repro.analysis.experiments import SCALES

        assert SCALES["quick"].grid() == (
            0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8,
        )
        assert SCALES["full"].grid() == default_grid()
        assert SCALES["smoke"].grid() == (0.2, 0.4, 0.6)


class TestSweepResult:
    def test_stable_points_and_max(self):
        s = make_sweep("A", [(0.3, 100, False), (0.5, 200, False),
                             (0.7, 5000, True)])
        assert len(s.stable_points) == 2
        assert s.max_stable_utilization == 0.5

    def test_series_extraction(self):
        s = make_sweep("A", [(0.3, 100, False), (0.5, 200, False)])
        xs, ys = s.series()
        assert xs == [0.3, 0.5]
        assert ys == [100, 200]

    def test_response_at_nearest(self):
        s = make_sweep("A", [(0.3, 100, False), (0.5, 200, False)])
        assert s.response_at(0.31) == 100
        assert s.response_at(0.8) is None

    def test_compare(self):
        a = make_sweep("A", [(0.5, 200, False)])
        b = make_sweep("B", [(0.5, 300, False)])
        assert compare([a, b], 0.5) == {"A": 200, "B": 300}


class TestRanking:
    def test_higher_stable_utilization_wins(self):
        good = make_sweep("good", [(0.5, 100, False), (0.7, 200, False)])
        bad = make_sweep("bad", [(0.5, 100, False), (0.7, 9000, True)])
        assert rank_by_performance([bad, good]) == ["good", "bad"]

    def test_tiny_utilization_differences_ignored(self):
        # 0.601 vs 0.603 max-stable must not decide the ranking; the
        # response at the common point must.
        a = make_sweep("slow", [(0.601, 900, False)])
        b = make_sweep("fast", [(0.603, 400, False)])
        assert rank_by_performance([a, b]) == ["fast", "slow"]

    def test_empty(self):
        assert rank_by_performance([]) == []


class TestRealSweep:
    def test_short_sweep_end_to_end(self):
        config = SimulationConfig(policy="GS", component_limit=16,
                                  warmup_jobs=200, measured_jobs=1000,
                                  seed=3, batch_size=100)
        result = sweep("GS", config, das_s_128(), das_t_900(),
                       utilizations=(0.3, 0.5))
        assert len(result.points) == 2
        assert result.points[0].mean_response < result.points[1].mean_response
        assert result.label == "GS"

    def test_sweep_stops_after_saturation(self):
        config = SimulationConfig(policy="LP", component_limit=16,
                                  warmup_jobs=200, measured_jobs=1200,
                                  seed=3, batch_size=100)
        result = sweep("LP", config, das_s_128(), das_t_900(),
                       utilizations=(0.3, 0.95, 0.4, 0.5))
        # The 0.95 point saturates; the sweep must stop there.
        assert len(result.points) == 2
        assert result.points[-1].saturated

    def test_with_seed(self):
        config = SimulationConfig(policy="GS", seed=1)
        assert with_seed(config, 9).seed == 9
        assert config.seed == 1
