"""Tests for curve interpolation and crossover detection."""

import math

import pytest

from repro.analysis.crossings import (
    crossover_utilization,
    dominance_interval,
    interpolate_response,
)
from repro.analysis.sweeps import SweepPoint, SweepResult
from repro.core import SimulationConfig


def curve(label, pairs, saturate_last=False):
    points = []
    for i, (u, r) in enumerate(pairs):
        points.append(SweepPoint(
            offered_gross=u, gross_utilization=u,
            net_utilization=u * 0.85, mean_response=r,
            ci_half_width=1.0,
            saturated=saturate_last and i == len(pairs) - 1,
        ))
    return SweepResult(label=label, config=SimulationConfig(),
                       points=tuple(points))


class TestInterpolation:
    def test_exact_points(self):
        c = curve("A", [(0.2, 100.0), (0.4, 300.0)])
        assert interpolate_response(c, 0.2) == 100.0
        assert interpolate_response(c, 0.4) == 300.0

    def test_midpoint(self):
        c = curve("A", [(0.2, 100.0), (0.4, 300.0)])
        assert interpolate_response(c, 0.3) == pytest.approx(200.0)

    def test_no_extrapolation(self):
        c = curve("A", [(0.2, 100.0), (0.4, 300.0)])
        assert interpolate_response(c, 0.1) is None
        assert interpolate_response(c, 0.5) is None

    def test_saturated_points_excluded(self):
        c = curve("A", [(0.2, 100.0), (0.4, 300.0), (0.6, 9000.0)],
                  saturate_last=True)
        assert interpolate_response(c, 0.5) is None

    def test_single_point_returns_none(self):
        c = curve("A", [(0.3, 100.0)])
        assert interpolate_response(c, 0.3) is None


class TestCrossover:
    def test_crossing_curves(self):
        # A: 100 + 1000(u-0.2); B: 200 + 250(u-0.2) — equal at
        # u = 0.2 + 100/750 = 1/3.
        a = curve("A", [(0.2, 100.0), (0.6, 500.0)])
        b = curve("B", [(0.2, 200.0), (0.6, 300.0)])
        cross = crossover_utilization(a, b)
        assert cross == pytest.approx(1.0 / 3.0, abs=0.01)

    def test_dominating_curve_no_crossover(self):
        a = curve("A", [(0.2, 100.0), (0.6, 200.0)])
        b = curve("B", [(0.2, 300.0), (0.6, 700.0)])
        assert crossover_utilization(a, b) is None

    def test_disjoint_ranges(self):
        a = curve("A", [(0.1, 100.0), (0.2, 150.0)])
        b = curve("B", [(0.5, 300.0), (0.6, 400.0)])
        assert crossover_utilization(a, b) is None


class TestDominance:
    def test_full_dominance(self):
        a = curve("A", [(0.2, 100.0), (0.6, 200.0)])
        b = curve("B", [(0.2, 300.0), (0.6, 700.0)])
        fraction, cross = dominance_interval(a, b)
        assert fraction == pytest.approx(1.0)
        assert cross is None

    def test_partial_dominance(self):
        # A is faster on [0.2, 1/3) of the [0.2, 0.6] range: 1/3 of it.
        a = curve("A", [(0.2, 100.0), (0.6, 500.0)])
        b = curve("B", [(0.2, 200.0), (0.6, 300.0)])
        fraction, cross = dominance_interval(a, b)
        assert fraction == pytest.approx(1.0 / 3.0, abs=0.02)
        assert cross == pytest.approx(1.0 / 3.0, abs=0.01)

    def test_no_overlap_is_nan(self):
        a = curve("A", [(0.1, 100.0), (0.2, 150.0)])
        b = curve("B", [(0.5, 300.0), (0.6, 400.0)])
        fraction, cross = dominance_interval(a, b)
        assert math.isnan(fraction)
        assert cross is None
