"""Tests for the experiment definitions (small scales only)."""

import pytest

from repro.analysis import experiments, tables
from repro.analysis.experiments import Scale, get_scale


@pytest.fixture(scope="module")
def tiny():
    return Scale(
        name="tiny", warmup_jobs=150, measured_jobs=800,
        grid_step=0.2, grid_stop=0.6,
        backlog_warmup=150, backlog_measured=800,
        log_jobs=5_000, seed=11,
    )


class TestScale:
    def test_get_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert get_scale().name == "quick"

    def test_get_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
        assert get_scale().name == "full"

    def test_get_scale_unknown(self):
        with pytest.raises(ValueError):
            get_scale("huge")

    def test_registered_scales(self):
        from repro.analysis.experiments import SCALES

        assert set(SCALES) == {"smoke", "quick", "full"}
        assert (SCALES["smoke"].measured_jobs
                < SCALES["quick"].measured_jobs
                < SCALES["full"].measured_jobs)

    def test_grid(self, tiny):
        assert tiny.grid() == (0.2, 0.4, 0.6)

    def test_config_sc_overrides(self, tiny):
        cfg = tiny.config("SC", 16)
        assert cfg.capacities == (128,)
        assert cfg.component_limit is None

    def test_config_unbalanced(self, tiny):
        cfg = tiny.config("LS", 16, balanced=False)
        assert cfg.routing_weights[0] == 0.40


class TestWorkloadExhibits:
    def test_table1(self, tiny):
        data = experiments.table1_power_of_two_fractions(tiny)
        assert len(data["rows"]) == 8
        for row in data["rows"]:
            assert row["model"] == pytest.approx(row["paper"], abs=1e-12)
            assert row["log"] == pytest.approx(row["paper"], abs=0.02)
        text = tables.render_table1(data)
        assert "Table 1" in text and "64" in text

    def test_fig1(self, tiny):
        data = experiments.fig1_size_density(tiny)
        assert set(data["powers"]) <= {1, 2, 4, 8, 16, 32, 64, 128}
        assert data["total"] == tiny.log_jobs
        assert data["distinct_sizes"] > 40

    def test_fig2(self, tiny):
        data = experiments.fig2_service_density(tiny)
        assert 0.8 < data["fraction_below_cutoff"] <= 1.0
        assert 100 < data["mean"] < 500
        assert all(b < 900 for b in data["bins"])

    def test_table2(self):
        data = experiments.table2_component_fractions()
        for row in data["rows"]:
            assert row["model"] == pytest.approx(row["paper"], abs=1e-9)
        text = tables.render_table2(data)
        assert "0.009" in text


class TestSimulationExhibits:
    def test_fig3_returns_four_policies(self, tiny):
        sweeps = experiments.fig3_policy_comparison(16, scale=tiny)
        assert [s.label for s in sweeps] == ["LS", "SC", "GS", "LP"]
        for s in sweeps:
            assert len(s.points) >= 2
        text = tables.render_sweeps(sweeps, title="t")
        assert "performance ranking" in text

    def test_fig4_panels(self, tiny):
        data = experiments.fig4_lp_saturation(scale=tiny)
        assert [p["limit"] for p in data["panels"]] == [16, 24, 32]
        for panel in data["panels"]:
            assert set(panel["bars"]) == {"GS", "LS", "LP", "SC"}
            assert panel["net_utilization"] < panel["gross_utilization"]
        assert "Figure 4" in tables.render_fig4(data)

    def test_fig6_labels(self, tiny):
        sweeps = experiments.fig6_component_size_limits("LS", scale=tiny)
        assert [s.label for s in sweeps] == ["LS 16", "LS 24", "LS 32"]

    def test_fig7_ratio_consistency(self, tiny):
        data = experiments.fig7_gross_vs_net("GS", 16, scale=tiny)
        sweep_points = data["sweep"].points
        for p in sweep_points:
            if p.net_utilization > 0:
                measured = p.gross_utilization / p.net_utilization
                assert measured == pytest.approx(
                    data["theoretical_ratio"], rel=0.02
                )
        assert "gross/net ratio" in tables.render_fig7(data)

    def test_table3(self, tiny):
        data = experiments.table3_maximal_utilization(
            scale=tiny, include_reference_policies=False,
        )
        assert len(data["gs_rows"]) == 3
        for row in data["gs_rows"]:
            assert 0.3 < row.gross < 1.0
            assert row.net == pytest.approx(
                row.gross / row.gross_net_ratio
            )
        assert "Table 3" in tables.render_table3(data)
