"""Queueing formulas + end-to-end engine validation against them."""

import pytest

from repro.analysis.queueing import (
    erlang_c,
    mean_queue_length,
    mg1_mean_response,
    mm1_mean_response,
    mmc_mean_response,
    mmc_mean_wait,
)
from repro.core import SimulationConfig, run_open_system
from repro.sim import (
    Deterministic,
    DiscreteEmpirical,
    Erlang,
    Exponential,
    Hyperexponential,
)


class TestFormulas:
    def test_erlang_c_single_server_equals_rho(self):
        # For c = 1, P(wait) = rho.
        assert erlang_c(0.6, 1.0, 1) == pytest.approx(0.6)

    def test_erlang_c_known_value(self):
        # Classic reference: a = 8 Erlangs on c = 10 servers →
        # Erlang-C ≈ 0.409.
        assert erlang_c(8.0, 1.0, 10) == pytest.approx(0.409, abs=0.005)

    def test_mmc_reduces_to_mm1(self):
        assert mmc_mean_response(0.5, 1.0, 1) == pytest.approx(
            mm1_mean_response(0.5, 1.0)
        )

    def test_mg1_with_cv1_is_mm1(self):
        assert mg1_mean_response(0.35, 2.0, 1.0) == pytest.approx(
            mm1_mean_response(0.35, 2.0)
        )

    def test_mg1_deterministic_halves_wait(self):
        # M/D/1 waits half as long as M/M/1.
        mm1_wait = mg1_mean_response(0.4, 1.0, 1.0) - 1.0
        md1_wait = mg1_mean_response(0.4, 1.0, 0.0) - 1.0
        assert md1_wait == pytest.approx(mm1_wait / 2.0)

    def test_unstable_rejected(self):
        with pytest.raises(ValueError):
            mm1_mean_response(1.0, 1.0)
        with pytest.raises(ValueError):
            mmc_mean_wait(5.0, 1.0, 4)

    def test_littles_law(self):
        assert mean_queue_length(2.0, 3.0) == pytest.approx(6.0)
        with pytest.raises(ValueError):
            mean_queue_length(0.0, 3.0)


def run_degenerate(servers, service_dist, rate, seed=17,
                   measured=30_000):
    """Single cluster of `servers` processors, size-1 jobs: an M/G/c."""
    ones = DiscreteEmpirical([1], [1.0])
    cfg = SimulationConfig(
        policy="SC", capacities=(servers,), component_limit=None,
        warmup_jobs=3_000, measured_jobs=measured, seed=seed,
    )
    return run_open_system(cfg, ones, service_dist, rate)


class TestEngineAgainstTheory:
    """The full engine+policy+metrics stack must reproduce closed forms."""

    def test_mm1(self):
        result = run_degenerate(1, Exponential(1.0), 0.7)
        assert result.mean_response == pytest.approx(
            mm1_mean_response(0.7, 1.0), rel=0.06
        )

    def test_mmc(self):
        result = run_degenerate(4, Exponential(1.0), 3.0)
        assert result.mean_response == pytest.approx(
            mmc_mean_response(3.0, 1.0, 4), rel=0.06
        )

    def test_md1(self):
        result = run_degenerate(1, Deterministic(1.0), 0.7)
        assert result.mean_response == pytest.approx(
            mg1_mean_response(0.7, 1.0, 0.0), rel=0.06
        )

    def test_me2_1_low_variability(self):
        dist = Erlang(2, 1.0)
        result = run_degenerate(1, dist, 0.7)
        assert result.mean_response == pytest.approx(
            mg1_mean_response(0.7, 1.0, dist.cv), rel=0.06
        )

    def test_mh2_1_high_variability(self):
        dist = Hyperexponential(0.9, 0.5, 5.5)
        result = run_degenerate(1, dist, 0.5 / dist.mean, measured=60_000)
        assert result.mean_response == pytest.approx(
            mg1_mean_response(0.5 / dist.mean, dist.mean, dist.cv),
            rel=0.10
        )

    def test_littles_law_holds_in_simulation(self):
        rate = 0.6
        result = run_degenerate(1, Exponential(1.0), rate)
        expected_l = mean_queue_length(rate, result.mean_response)
        assert result.report.mean_jobs_in_system == pytest.approx(
            expected_l, rel=0.08
        )
