"""Tests for terminal plotting."""

import math

from repro.analysis import bar_chart, line_plot, sparkline


class TestLinePlot:
    def test_basic_render(self):
        out = line_plot(
            {"a": ([0, 1, 2], [0, 1, 4])},
            width=20, height=5, title="demo",
        )
        assert "demo" in out
        assert "o=a" in out
        assert out.count("\n") >= 7

    def test_multiple_series_distinct_markers(self):
        out = line_plot({
            "first": ([0, 1], [0, 1]),
            "second": ([0, 1], [1, 0]),
        }, width=10, height=4)
        assert "o=first" in out
        assert "x=second" in out

    def test_empty_series(self):
        assert "(no data)" in line_plot({"a": ([], [])})

    def test_nan_points_skipped(self):
        out = line_plot({"a": ([0, 1], [math.nan, 2.0])}, width=10,
                        height=4)
        assert out.count("o") >= 1  # only the valid point plotted

    def test_explicit_ranges_clip(self):
        out = line_plot(
            {"a": ([0, 100], [0, 100])},
            width=10, height=4, x_range=(0, 1), y_range=(0, 1),
        )
        assert "o" in out  # the in-range point survives

    def test_degenerate_range(self):
        out = line_plot({"a": ([1, 1], [5, 5])}, width=10, height=4)
        assert "o" in out


class TestBarChart:
    def test_bars_scale_to_peak(self):
        out = bar_chart({"a": 10, "b": 5}, width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_title_and_labels(self):
        out = bar_chart({"x": 1}, title="chart")
        assert out.startswith("chart")
        assert "x |" in out

    def test_empty(self):
        assert "(no data)" in bar_chart({})

    def test_sorted_keys(self):
        out = bar_chart({"b": 1, "a": 2})
        assert out.index("a |") < out.index("b |")


class TestSparkline:
    def test_monotone_ramp_uses_full_scale(self):
        out = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert out == "▁▂▃▄▅▆▇█"

    def test_width_keeps_most_recent(self):
        out = sparkline([0, 0, 0, 0, 1, 8], width=2)
        assert len(out) == 2
        assert out[-1] == "█"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_values_render_mid_level(self):
        out = sparkline([3.0, 3.0, 3.0])
        assert len(set(out)) == 1
        assert out[0] not in (" ",)

    def test_nan_renders_as_space(self):
        out = sparkline([1.0, math.nan, 2.0])
        assert out[1] == " "
        assert sparkline([math.nan, math.nan]) == "  "

    def test_pinned_range(self):
        # With lo/hi pinned, identical values compare across calls.
        low = sparkline([1.0], lo=0.0, hi=10.0)
        high = sparkline([10.0], lo=0.0, hi=10.0)
        assert low == "▁"
        assert high == "█"

    def test_ascii_only(self):
        out = sparkline([1, 8], ascii_only=True)
        assert all(ord(ch) < 128 for ch in out)
