"""Tests for JSON result serialisation."""

import io as stdio
import json

import pytest

from repro.analysis.io import (
    FORMAT_VERSION,
    load_replicated_sweep,
    load_report,
    load_sweep,
    save_replicated_sweep,
    save_report,
    save_sweep,
)
from repro.analysis.replications import replicate_sweep
from repro.analysis.sweeps import sweep
from repro.core import SimulationConfig, run_open_system
from repro.workload import das_s_128, das_t_900

SIZES = das_s_128()
SERVICE = das_t_900()


@pytest.fixture(scope="module")
def sample_sweep():
    config = SimulationConfig(policy="GS", component_limit=16,
                              warmup_jobs=100, measured_jobs=500,
                              seed=3, batch_size=100)
    return sweep("GS", config, SIZES, SERVICE, utilizations=(0.3, 0.5))


@pytest.fixture(scope="module")
def sample_report():
    config = SimulationConfig(policy="GS", component_limit=16,
                              warmup_jobs=100, measured_jobs=500,
                              seed=3, batch_size=100)
    return run_open_system(config, SIZES, SERVICE, 0.005).report


class TestSweepRoundtrip:
    def test_file_roundtrip(self, tmp_path, sample_sweep):
        path = tmp_path / "sweep.json"
        save_sweep(sample_sweep, path)
        back = load_sweep(path)
        assert back.label == sample_sweep.label
        assert back.config == sample_sweep.config
        assert back.points == sample_sweep.points

    def test_stream_roundtrip(self, sample_sweep):
        buf = stdio.StringIO()
        save_sweep(sample_sweep, buf)
        buf.seek(0)
        back = load_sweep(buf)
        assert back.points == sample_sweep.points

    def test_json_is_flat_and_versioned(self, sample_sweep):
        buf = stdio.StringIO()
        save_sweep(sample_sweep, buf)
        payload = json.loads(buf.getvalue())
        assert payload["version"] == FORMAT_VERSION
        assert payload["format"] == "repro.sweep"
        assert isinstance(payload["points"][0]["mean_response"], float)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"format": "other", "version": 1}')
        with pytest.raises(ValueError, match="not a repro sweep"):
            load_sweep(path)

    def test_wrong_version_rejected(self, tmp_path, sample_sweep):
        path = tmp_path / "sweep.json"
        save_sweep(sample_sweep, path)
        payload = json.loads(path.read_text())
        payload["version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="version"):
            load_sweep(path)


class TestReplicatedSweepRoundtrip:
    @pytest.fixture(scope="class")
    def sample(self):
        config = SimulationConfig(policy="GS", component_limit=16,
                                  warmup_jobs=100, measured_jobs=400,
                                  seed=3, batch_size=100)
        return replicate_sweep("GS", config, SIZES, SERVICE, (0.3, 0.5),
                               replications=2)

    def test_file_roundtrip(self, tmp_path, sample):
        path = tmp_path / "replicated.json"
        save_replicated_sweep(sample, path)
        back = load_replicated_sweep(path)
        assert back.label == sample.label
        assert back.config == sample.config
        assert back.seeds == sample.seeds
        for a, b in zip(back.points, sample.points):
            assert a.mean_response == b.mean_response
            assert a.response_ci.mean == b.response_ci.mean
            assert a.response_ci.half_width == b.response_ci.half_width
            assert a.replications == b.replications

    def test_save_is_deterministic(self, sample):
        # Byte-stable serialization underpins the golden-equivalence
        # suite's payload comparisons.
        a, b = stdio.StringIO(), stdio.StringIO()
        save_replicated_sweep(sample, a)
        save_replicated_sweep(sample, b)
        assert a.getvalue() == b.getvalue()

    def test_infinite_halfwidth_survives(self, tmp_path):
        config = SimulationConfig(policy="GS", component_limit=16,
                                  warmup_jobs=60, measured_jobs=200,
                                  seed=5, batch_size=50)
        single = replicate_sweep("GS", config, SIZES, SERVICE, (0.4,),
                                 replications=1)
        path = tmp_path / "single.json"
        save_replicated_sweep(single, path)
        back = load_replicated_sweep(path)
        assert back.points[0].response_ci.half_width == float("inf")

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"format": "other", "version": 1}')
        with pytest.raises(ValueError, match="not a repro replicated"):
            load_replicated_sweep(path)


class TestReportRoundtrip:
    def test_file_roundtrip(self, tmp_path, sample_report):
        path = tmp_path / "report.json"
        save_report(sample_report, path)
        back = load_report(path)
        assert back.as_dict() == pytest.approx(sample_report.as_dict(),
                                               nan_ok=True)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"format": "other", "version": 1}')
        with pytest.raises(ValueError, match="not a repro report"):
            load_report(path)
