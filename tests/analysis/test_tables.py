"""Direct tests for the text-table renderers."""

import math

from repro.analysis.sweeps import SweepPoint, SweepResult
from repro.analysis.tables import format_table, render_sweeps
from repro.core import SimulationConfig


class TestFormatTable:
    def test_alignment_and_rule(self):
        out = format_table(["name", "value"],
                           [("a", 1.5), ("long-name", 22.25)],
                           title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("name")
        assert set(lines[2]) <= {"-", " "}
        assert "long-name" in lines[4]

    def test_float_formatting(self):
        out = format_table(["x"], [(0.123456,), (1234.5,)])
        assert "0.123" in out
        assert "1234" in out and "1234.5" not in out  # >=100 -> no dp

    def test_nan_rendered_as_dash(self):
        out = format_table(["x"], [(math.nan,)])
        assert "-" in out.splitlines()[-1]

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out

    def test_non_numeric_cells(self):
        out = format_table(["k"], [("plain string",), (42,)])
        assert "plain string" in out
        assert "42" in out


class TestRenderSweeps:
    def make(self, label, saturated_last=False):
        points = [
            SweepPoint(offered_gross=0.3, gross_utilization=0.31,
                       net_utilization=0.26, mean_response=400.0,
                       ci_half_width=20.0, saturated=False),
            SweepPoint(offered_gross=0.6, gross_utilization=0.58,
                       net_utilization=0.49, mean_response=2400.0,
                       ci_half_width=300.0, saturated=saturated_last),
        ]
        return SweepResult(label=label, config=SimulationConfig(),
                           points=tuple(points))

    def test_rows_and_ranking(self):
        out = render_sweeps([self.make("A"), self.make("B", True)],
                            title="demo")
        assert out.startswith("demo")
        assert out.count("A") >= 2
        assert "saturated" in out
        assert "performance ranking" in out
        # A sustains more load than B (whose last point saturated).
        assert "A > B" in out

    def test_custom_axis(self):
        out = render_sweeps([self.make("A")], x="net_utilization")
        assert "net_utilization" in out
        assert "0.49" in out
