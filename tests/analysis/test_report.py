"""Tests for the one-shot report generator (small scale only)."""

import io

import pytest

from repro.analysis.experiments import Scale
from repro.analysis.report import REPORT_SECTIONS, generate_report


@pytest.fixture(scope="module")
def tiny():
    return Scale(
        name="tiny", warmup_jobs=100, measured_jobs=500,
        grid_step=0.3, grid_stop=0.5,
        backlog_warmup=100, backlog_measured=500,
        log_jobs=3_000, seed=5,
    )


def test_section_registry_complete():
    titles = [t for t, _ in REPORT_SECTIONS]
    assert any("Figure 3" in t for t in titles)
    assert any("Table 3" in t for t in titles)
    assert any("Ablations" in t for t in titles)


def test_workload_section_only(tiny, tmp_path):
    out = tmp_path / "report.md"
    rendered = generate_report(out, scale=tiny,
                               sections=["workload"])
    assert rendered == ["Workload validation (Tables 1-2, Figure 2)"]
    text = out.read_text()
    assert text.startswith("# Reproduction report")
    assert "Table 1" in text
    assert "0.513/0.267/0.009/0.211" in text
    assert "generated in" in text


def test_stream_target(tiny):
    buf = io.StringIO()
    generate_report(buf, scale=tiny, sections=["workload"])
    assert "Table 2" in buf.getvalue()


def test_multiple_sections(tiny, tmp_path):
    out = tmp_path / "r.md"
    rendered = generate_report(
        out, scale=tiny, sections=["workload", "table 3"])
    assert len(rendered) == 2
    text = out.read_text()
    assert "maximal utilizations" in text.lower()


def test_unknown_section_prefix_renders_nothing(tiny, tmp_path):
    out = tmp_path / "r.md"
    rendered = generate_report(out, scale=tiny, sections=["nonexistent"])
    assert rendered == []
    assert "# Reproduction report" in out.read_text()
