"""Property-based tests for the replication harness's CI mathematics.

The across-replication confidence interval must be *defined* for any
replication count (n=1 gives a degenerate mean ± ∞ interval, never a
``ZeroDivisionError`` from the Student-t machinery), and its expected
width must shrink monotonically as replications grow.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.replications import (
    _aggregate,
    paired_comparison,
    replicate_sweep,
)
from repro.analysis.sweeps import SweepPoint
from repro.core import SimulationConfig
from repro.sim.stats import student_t_quantile
from repro.workload import das_s_128, das_t_900

SIZES = das_s_128()
SERVICE = das_t_900()


def tiny_config(policy="GS", **kw):
    base = dict(policy=policy, component_limit=16, warmup_jobs=60,
                measured_jobs=250, seed=11, batch_size=50)
    base.update(kw)
    return SimulationConfig(**base)


def make_point(resp, saturated=False):
    return SweepPoint(offered_gross=0.4, gross_utilization=0.38,
                      net_utilization=0.33, mean_response=resp,
                      ci_half_width=1.0, saturated=saturated)


responses = st.floats(min_value=1.0, max_value=1e6,
                      allow_nan=False, allow_infinity=False)


class TestAggregateDefinedForAnyCount:
    @given(st.lists(responses, min_size=1, max_size=10),
           st.sampled_from([0.90, 0.95, 0.99]))
    @settings(max_examples=60, deadline=None)
    def test_ci_always_defined(self, values, level):
        point = _aggregate(0.4, [make_point(v) for v in values], level)
        assert point.replications == len(values)
        assert not math.isnan(point.mean_response)
        ci = point.response_ci
        assert ci.mean == point.mean_response
        if len(values) < 2:
            # Degenerate-but-defined: a loud infinite half width.
            assert math.isinf(ci.half_width)
        else:
            assert ci.half_width >= 0.0
            assert not math.isnan(ci.half_width)
            assert point.mean_response in ci

    @given(st.lists(responses, min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_nan_responses_excluded_not_fatal(self, values):
        points = [make_point(v) for v in values]
        points.append(make_point(float("nan"), saturated=True))
        aggregated = _aggregate(0.4, points, 0.95)
        assert aggregated.any_saturated
        assert not math.isnan(aggregated.mean_response)


class TestExpectedShrinkage:
    @given(st.sampled_from([0.90, 0.95, 0.99]))
    @settings(max_examples=10, deadline=None)
    def test_halfwidth_factor_strictly_decreasing(self, level):
        # E[half width] = E[S] * t_{n-1} / sqrt(n): for a fixed workload
        # (fixed E[S]) the deterministic factor must fall monotonically,
        # which is the "CIs shrink in expectation" property.
        p = 0.5 + level / 2.0
        factors = [student_t_quantile(p, n - 1) / math.sqrt(n)
                   for n in range(2, 60)]
        assert all(a > b for a, b in zip(factors, factors[1:]))

    def test_mean_halfwidth_shrinks_on_fixed_workload(self):
        # Averaged over several base seeds on one workload: 5
        # replications must beat 2 on mean CI half width.
        def mean_halfwidth(reps):
            widths = []
            for base in (11, 4011, 9011):
                rs = replicate_sweep(
                    "GS", tiny_config(), SIZES, SERVICE, (0.4,),
                    replications=reps, base_seed=base,
                )
                widths.append(rs.points[0].response_ci.half_width)
            return sum(widths) / len(widths)

        assert mean_halfwidth(5) < mean_halfwidth(2)


class TestSeedMatrix:
    @given(st.integers(min_value=0, max_value=2**31),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_seed_spacing_never_collides(self, base, reps):
        seeds = tuple(base + 1_000 * i for i in range(reps))
        assert len(set(seeds)) == reps

    def test_single_replication_ci_defined(self):
        rs = replicate_sweep("GS", tiny_config(), SIZES, SERVICE, (0.4,),
                             replications=1)
        assert rs.seeds == (11,)
        point = rs.points[0]
        assert point.replications == 1
        assert not math.isnan(point.mean_response)
        assert math.isinf(point.response_ci.half_width)

    def test_single_replication_paired_comparison_defined(self):
        ci = paired_comparison(tiny_config("GS"), tiny_config("LS"),
                               SIZES, SERVICE, utilization=0.4,
                               replications=1)
        assert not math.isnan(ci.mean)
        assert math.isinf(ci.half_width)

    def test_base_seed_defaults_to_config_seed(self):
        rs = replicate_sweep("GS", tiny_config(seed=123), SIZES, SERVICE,
                             (0.4,), replications=3)
        assert rs.seeds == (123, 1123, 2123)
