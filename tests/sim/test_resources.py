"""Unit tests for Resource, Store and Gate primitives."""

import pytest

from repro.sim import Gate, Resource, SchedulingError, Simulator, Store


@pytest.fixture
def sim():
    return Simulator()


class TestResource:
    def test_initial_state(self, sim):
        res = Resource(sim, 4)
        assert res.capacity == 4
        assert res.available == 4
        assert res.in_use == 0
        assert res.queue_length == 0

    def test_invalid_capacity(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, 0)
        with pytest.raises(ValueError):
            Resource(sim, -3)

    def test_immediate_grant(self, sim):
        res = Resource(sim, 4)
        grant = res.request(3)
        assert grant.satisfied
        assert res.available == 1

    def test_oversized_request_rejected(self, sim):
        res = Resource(sim, 4)
        with pytest.raises(SchedulingError):
            res.request(5)
        with pytest.raises(ValueError):
            res.request(0)

    def test_fifo_blocking_head_of_line(self, sim):
        # A big request at the head blocks a small one behind it,
        # exactly like FCFS space sharing without backfilling.
        res = Resource(sim, 4)
        first = res.request(3)
        big = res.request(4)
        small = res.request(1)
        assert first.satisfied
        assert not big.satisfied
        assert not small.satisfied  # blocked behind big despite fitting
        res.release(first)
        assert big.satisfied
        assert not small.satisfied
        res.release(big)
        assert small.satisfied

    def test_release_unsatisfied_rejected(self, sim):
        res = Resource(sim, 2)
        res.request(2)
        blocked = res.request(1)
        with pytest.raises(SchedulingError):
            res.release(blocked)

    def test_grant_event_wakes_process(self, sim):
        res = Resource(sim, 1)
        log = []

        def user(sim, res, label, hold):
            grant = res.request(1)
            yield grant
            log.append((label, "start", sim.now))
            yield sim.timeout(hold)
            res.release(grant)
            log.append((label, "end", sim.now))

        sim.process(user(sim, res, "a", 2.0))
        sim.process(user(sim, res, "b", 1.0))
        sim.run()
        assert log == [
            ("a", "start", 0.0),
            ("a", "end", 2.0),
            ("b", "start", 2.0),
            ("b", "end", 3.0),
        ]

    def test_cancel_unblocks_queue(self, sim):
        res = Resource(sim, 2)
        head = res.request(2)
        waiting = res.request(2)
        behind = res.request(1)
        waiting.cancel()
        res.release(head)
        assert behind.satisfied
        assert not waiting.satisfied

    def test_conservation_invariant(self, sim):
        res = Resource(sim, 10)
        grants = [res.request(2) for _ in range(4)]
        assert res.available + res.in_use == res.capacity
        for g in grants[:2]:
            res.release(g)
        assert res.available + res.in_use == res.capacity
        assert res.available == 6


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("x")
        ev = store.get()
        sim.run()
        assert ev.value == "x"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        got = []

        def consumer(sim):
            item = yield store.get()
            got.append((sim.now, item))

        def producer(sim):
            yield sim.timeout(5.0)
            store.put("late")

        sim.process(consumer(sim))
        sim.process(producer(sim))
        sim.run()
        assert got == [(5.0, "late")]

    def test_fifo_order(self, sim):
        store = Store(sim)
        for item in ("a", "b", "c"):
            store.put(item)
        events = [store.get() for _ in range(3)]
        sim.run()
        assert [e.value for e in events] == ["a", "b", "c"]

    def test_bounded_store_overflow(self, sim):
        store = Store(sim, capacity=1)
        store.put(1)
        with pytest.raises(SchedulingError):
            store.put(2)

    def test_len_and_items(self, sim):
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert len(store) == 2
        assert store.items == (1, 2)


class TestGate:
    def test_open_gate_passes_immediately(self, sim):
        gate = Gate(sim, open_=True)
        ev = gate.wait()
        sim.run()
        assert ev.processed

    def test_closed_gate_blocks_until_open(self, sim):
        gate = Gate(sim)
        woken = []

        def waiter(sim, label):
            yield gate.wait()
            woken.append((label, sim.now))

        sim.process(waiter(sim, "a"))
        sim.process(waiter(sim, "b"))
        sim.call_at(3.0, gate.open)
        sim.run()
        assert woken == [("a", 3.0), ("b", 3.0)]

    def test_close_reblocks(self, sim):
        gate = Gate(sim, open_=True)
        gate.close()
        assert not gate.is_open
        ev = gate.wait()
        sim.run()
        assert not ev.triggered
