"""Differential oracle: the batch backend vs. the scalar engine.

The batch backend's contract is *exact* per-replication equality: for
every seed, every :class:`~repro.analysis.points.SweepPoint` statistic
must match the scalar engine bit for bit — same RNG draw sequence,
same event order, same float reduction order.  These tests enforce the
contract across the configuration space the paper exercises: all four
policies, component limits 16/24/32, balanced and unbalanced routing,
batch widths 1/2/7/32, and ragged termination (replications finishing
after different event counts).

Any failure here is a real divergence, never tolerance noise: there is
no approx anywhere in this file.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.points import SweepPoint
from repro.core.system import SimulationConfig, run_open_system
from repro.sim.batch import BatchBackendError, run_batch_points
from repro.sim.rng import StreamFactory
from repro.workload import stats_model
from repro.workload.distributions import das_s_128, das_t_900
from repro.workload.generator import JobFactory

SIZES = das_s_128()
SERVICE = das_t_900()
BALANCED = stats_model.BALANCED_WEIGHTS
UNBALANCED = stats_model.UNBALANCED_WEIGHTS


def make_config(policy, limit, weights, seed=7, warmup=50, measured=200):
    if policy == "SC":
        return SimulationConfig.single_cluster(
            seed=seed, warmup_jobs=warmup, measured_jobs=measured,
            batch_size=50,
        )
    return SimulationConfig(
        policy=policy, component_limit=limit, routing_weights=weights,
        seed=seed, warmup_jobs=warmup, measured_jobs=measured,
        batch_size=50,
    )


def scalar_points(config, offered, seeds):
    """Per-seed oracle points from the scalar reference engine."""
    factory = JobFactory(
        SIZES, SERVICE, config.component_limit,
        clusters=len(config.capacities),
        extension_factor=config.extension_factor,
        routing_weights=config.routing_weights,
        streams=StreamFactory(0),
    )
    rate = factory.arrival_rate_for_gross_utilization(
        offered, config.capacity
    )
    points = []
    for seed in seeds:
        cfg = dataclasses.replace(config, seed=seed)
        points.append(SweepPoint.from_result(
            run_open_system(cfg, SIZES, SERVICE, rate)
        ))
    return points


def assert_identical(config, offered, seeds):
    expected = scalar_points(config, offered, seeds)
    actual = run_batch_points(config, SIZES, SERVICE, offered, seeds)
    assert len(actual) == len(seeds)
    for seed, want, got in zip(seeds, expected, actual):
        assert got == want, (
            f"seed {seed}: batch {got} != scalar {want}"
        )


# -- deterministic smoke over the full policy set -------------------------

@pytest.mark.parametrize("policy", ["GS", "LS", "LP", "SC"])
def test_every_policy_matches_scalar_at_width_two(policy):
    config = make_config(policy, 16, BALANCED)
    assert_identical(config, 0.6, [7, 1007])


@pytest.mark.parametrize("limit", [16, 24, 32])
def test_component_limits_match_scalar(limit):
    config = make_config("GS", limit, BALANCED)
    assert_identical(config, 0.7, [3, 1003])


@pytest.mark.parametrize("policy", ["LS", "LP"])
def test_unbalanced_routing_matches_scalar(policy):
    config = make_config(policy, 16, UNBALANCED)
    assert_identical(config, 0.75, [11, 1011, 2011])


def test_width_one_equals_scalar():
    config = make_config("LP", 24, BALANCED)
    assert_identical(config, 0.8, [42])


def test_width_32_lockstep_matches_scalar():
    config = make_config("GS", 16, BALANCED, warmup=20, measured=100)
    seeds = [7 + 1000 * i for i in range(32)]
    assert_identical(config, 0.65, seeds)


# -- hypothesis sweep over the configuration space ------------------------

config_space = st.tuples(
    st.sampled_from(["GS", "LS", "LP", "SC"]),
    st.sampled_from([16, 24, 32]),
    st.sampled_from([BALANCED, UNBALANCED]),
    st.sampled_from([1, 2, 7]),
    st.sampled_from([0.45, 0.7, 0.9]),
    st.integers(min_value=0, max_value=10_000),
)


@settings(max_examples=15, deadline=None)
@given(config_space)
def test_batch_matches_scalar_across_config_space(params):
    policy, limit, weights, width, offered, base_seed = params
    config = make_config(policy, limit, weights, warmup=30, measured=120)
    seeds = [base_seed + 1000 * i for i in range(width)]
    assert_identical(config, offered, seeds)


# -- ragged termination ----------------------------------------------------

def test_ragged_termination_keeps_lanes_independent():
    """Lanes finish after different event counts; survivors continue.

    At rho 0.9 seeds saturate at visibly different depths, so the
    per-seed end times — and therefore every statistic — diverge
    across lanes.  Each must still match its own scalar run exactly.
    """
    config = make_config("LS", 16, UNBALANCED, warmup=50, measured=300)
    seeds = [5 + 1000 * i for i in range(7)]
    expected = scalar_points(config, 0.9, seeds)
    actual = run_batch_points(config, SIZES, SERVICE, 0.9, seeds)
    assert actual == expected
    # The case is only meaningful if termination really was ragged:
    # distinct seeds must produce distinct measured utilizations.
    gross = [p.gross_utilization for p in actual]
    assert len(set(gross)) == len(gross)


# -- the placement kernels agree decision-for-decision ---------------------

placement_space = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=64),
        st.lists(st.integers(min_value=0, max_value=32),
                 min_size=4, max_size=4),
    ),
    min_size=1, max_size=16,
)


@settings(max_examples=150, deadline=None)
@given(placement_space, st.sampled_from([16, 24, 32]))
def test_worst_fit_batch_matches_scalar_kernel(cases, limit):
    """worst_fit_batch == the scalar Worst Fit, lane for lane.

    The per-lane engine memoizes the same decisions (its differential
    pin is the whole-run tests above); this pins the vectorized kernel
    itself so all three implementations stay mutually exact.
    """
    import numpy as np

    from repro.core.placement import place_components
    from repro.core.placement_batch import worst_fit_batch
    from repro.workload.splitting import split_size

    comp_rows = []
    frees = []
    expected = []
    for size, free in cases:
        comps = split_size(size, limit, 4)
        comp_rows.append(list(comps) + [0] * (4 - len(comps)))
        frees.append(free)
        expected.append(place_components(comps, free, "worst-fit"))
    fit, alloc = worst_fit_batch(
        np.array(comp_rows, dtype=np.int64),
        np.array(frees, dtype=np.int64),
    )
    for lane, want in enumerate(expected):
        if want is None:
            assert not fit[lane]
            assert not alloc[lane].any()
        else:
            assert fit[lane]
            totals = [0, 0, 0, 0]
            for cluster, processors in want:
                totals[cluster] += processors
            assert alloc[lane].tolist() == totals


# -- unsupported configurations fail loudly, never silently ----------------

def test_unknown_policy_is_rejected():
    config = SimulationConfig(policy="GS", warmup_jobs=10, measured_jobs=10)
    config = dataclasses.replace(config, policy="FCFS-elsewhere")
    with pytest.raises(BatchBackendError):
        run_batch_points(config, SIZES, SERVICE, 0.5, [1])


def test_non_worst_fit_placement_is_rejected():
    config = SimulationConfig(policy="GS", placement="first-fit",
                              warmup_jobs=10, measured_jobs=10)
    with pytest.raises(BatchBackendError):
        run_batch_points(config, SIZES, SERVICE, 0.5, [1])


def test_empty_seed_list_is_rejected():
    config = SimulationConfig(policy="GS")
    with pytest.raises(BatchBackendError):
        run_batch_points(config, SIZES, SERVICE, 0.5, [])
