"""Tests for sequential run-length control."""

import numpy as np
import pytest

from repro.core import SimulationConfig
from repro.sim.run_length import (
    RunLengthController,
    run_to_precision,
)
from repro.workload import das_s_128, das_t_900


class TestController:
    def test_validation(self):
        with pytest.raises(ValueError):
            RunLengthController(10, relative_width=0.0)
        with pytest.raises(ValueError):
            RunLengthController(10, min_batches=1)

    def test_stops_on_precision_for_low_variance(self):
        ctrl = RunLengthController(batch_size=10, relative_width=0.10,
                                   min_batches=5)
        rng = np.random.default_rng(0)
        decision = None
        for _ in range(100_000):
            ctrl.record(100.0 + rng.normal(0, 5.0))
            decision = ctrl.should_stop()
            if decision:
                break
        assert decision is not None
        assert decision.converged
        assert decision.ci.relative_width <= 0.10
        # Low-variance data converges fast.
        assert decision.observations <= 200

    def test_high_variance_needs_more_observations(self):
        def observations_needed(sigma):
            ctrl = RunLengthController(batch_size=10,
                                       relative_width=0.05,
                                       min_batches=5,
                                       max_observations=500_000)
            rng = np.random.default_rng(1)
            for _ in range(500_000):
                ctrl.record(100.0 + rng.normal(0, sigma))
                decision = ctrl.should_stop()
                if decision:
                    return decision.observations
            raise AssertionError("never stopped")

        assert observations_needed(50.0) > observations_needed(5.0)

    def test_budget_stop(self):
        ctrl = RunLengthController(batch_size=10, relative_width=1e-9,
                                   min_batches=5, max_observations=300)
        rng = np.random.default_rng(2)
        decision = None
        for _ in range(301):
            ctrl.record(rng.normal(100.0, 30.0))
            decision = ctrl.should_stop()
            if decision:
                break
        assert decision is not None
        assert decision.reason == "budget"
        assert not decision.converged

    def test_waits_for_min_batches(self):
        ctrl = RunLengthController(batch_size=10, relative_width=10.0,
                                   min_batches=5)
        for _ in range(40):  # 4 batches < 5 required
            ctrl.record(100.0)
            assert ctrl.should_stop() is None


class TestRunToPrecision:
    def test_converges_at_moderate_load(self):
        cfg = SimulationConfig(policy="GS", component_limit=16,
                               warmup_jobs=300, measured_jobs=0,
                               seed=5, batch_size=200)
        report, decision = run_to_precision(
            cfg, das_s_128(), das_t_900(), 0.004,
            relative_width=0.10, min_batches=6, max_jobs=60_000,
        )
        assert decision.converged
        assert decision.ci.relative_width <= 0.10
        assert report.completed_jobs >= decision.observations

    def test_budget_exhausted_at_overload(self):
        cfg = SimulationConfig(policy="GS", component_limit=16,
                               warmup_jobs=200, measured_jobs=0,
                               seed=5, batch_size=200)
        # Far beyond the maximal utilization: never converges.
        report, decision = run_to_precision(
            cfg, das_s_128(), das_t_900(), 0.02,
            relative_width=0.02, min_batches=6, max_jobs=4_000,
        )
        assert not decision.converged
        assert decision.reason == "budget"
