"""Unit tests for named reproducible random streams."""

import numpy as np

from repro.sim import StreamFactory, stream


def test_same_seed_same_stream_reproduces():
    a = StreamFactory(7).get("arrivals").random(10)
    b = StreamFactory(7).get("arrivals").random(10)
    assert np.array_equal(a, b)


def test_different_names_are_independent_sequences():
    f = StreamFactory(7)
    a = f.get("arrivals").random(10)
    b = f.get("sizes").random(10)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = StreamFactory(1).get("x").random(10)
    b = StreamFactory(2).get("x").random(10)
    assert not np.array_equal(a, b)


def test_stream_identity_cached():
    f = StreamFactory(3)
    assert f.get("x") is f.get("x")
    assert f["x"] is f.get("x")


def test_creation_order_does_not_matter():
    f1 = StreamFactory(9)
    f1.get("a")
    a_then = f1.get("b").random(5)

    f2 = StreamFactory(9)
    b_first = f2.get("b").random(5)
    assert np.array_equal(a_then, b_first)


def test_names_listing():
    f = StreamFactory(0)
    f.get("one")
    f.get("two")
    assert set(f.names()) == {"one", "two"}


def test_oneshot_helper_matches_factory():
    assert np.array_equal(
        stream(5, "svc").random(8), StreamFactory(5).get("svc").random(8)
    )


def test_streams_pass_basic_uniformity():
    draws = StreamFactory(11).get("u").random(100_000)
    assert abs(draws.mean() - 0.5) < 0.01
    assert abs(draws.var() - 1 / 12) < 0.005


def test_common_random_numbers_across_policies():
    # The core policy-comparison trick: two factories with the same master
    # seed expose identical workload streams regardless of which policy
    # consumes them first.
    workload_a = StreamFactory(99).get("workload.sizes").integers(1, 129, 50)
    f = StreamFactory(99)
    f.get("policy.noise")  # a different consumer created first
    workload_b = f.get("workload.sizes").integers(1, 129, 50)
    assert np.array_equal(workload_a, workload_b)
