"""Tests for MSER initial-transient detection."""

import numpy as np
import pytest

from repro.sim.warmup import (
    is_warmup_adequate,
    mser_statistic,
    mser_truncation_point,
)


def transient_series(transient_len=200, total=2_000, seed=0):
    """A decaying transient followed by stationary noise."""
    rng = np.random.default_rng(seed)
    t = np.arange(total, dtype=float)
    drift = 50.0 * np.exp(-t / (transient_len / 3.0))
    return 100.0 + drift + rng.normal(0, 5.0, total)


class TestMserTruncation:
    def test_detects_transient(self):
        series = transient_series(transient_len=200)
        d = mser_truncation_point(series)
        # Cuts most of the transient but not half the run.
        assert 50 <= d <= 500

    def test_stationary_series_cuts_little(self):
        rng = np.random.default_rng(1)
        series = 100.0 + rng.normal(0, 5.0, 2_000)
        d = mser_truncation_point(series)
        assert d <= 200

    def test_longer_transient_larger_cut(self):
        short = mser_truncation_point(
            transient_series(transient_len=100, seed=2))
        long = mser_truncation_point(
            transient_series(transient_len=600, seed=2))
        assert long > short

    def test_max_fraction_guard(self):
        series = transient_series(transient_len=1_900, total=2_000)
        d = mser_truncation_point(series, max_fraction=0.5)
        assert d <= 1_000

    def test_validation(self):
        with pytest.raises(ValueError):
            mser_truncation_point([1.0] * 5)
        with pytest.raises(ValueError):
            mser_truncation_point([1.0] * 100, max_fraction=0.0)

    def test_truncation_in_group_units(self):
        series = transient_series()
        assert mser_truncation_point(series, group=5) % 5 == 0


class TestMserStatistic:
    def test_lower_after_transient_removed(self):
        series = transient_series(transient_len=300)
        assert mser_statistic(series, 300) < mser_statistic(series, 0)

    def test_infinite_for_tiny_tail(self):
        assert mser_statistic([1.0, 2.0, 3.0], 2) == float("inf")


class TestWarmupAdequacy:
    def test_fixed_budget_audit(self):
        series = transient_series(transient_len=200)
        assert is_warmup_adequate(series, warmup=600)
        assert not is_warmup_adequate(series, warmup=0)

    def test_audits_the_actual_simulation_driver(self):
        # The fixed warmup used by the benchmark harness must cover the
        # MSER-detected transient of a representative run.
        from repro.core import SimulationConfig
        from repro.core.system import _build
        from repro.sim.rng import StreamFactory
        from repro.workload import (
            ArrivalProcess,
            JobFactory,
            das_s_128,
            das_t_900,
        )

        sizes, service = das_s_128(), das_t_900()
        config = SimulationConfig(policy="GS", component_limit=16,
                                  warmup_jobs=1_000,
                                  measured_jobs=0, seed=8)
        system, factory = _build(config, sizes, service)
        rate = JobFactory(
            sizes, service, 16, streams=StreamFactory(8)
        ).arrival_rate_for_gross_utilization(0.5, 128)
        responses = []
        system.on_departure_hook = (
            lambda job: responses.append(job.response_time)
        )
        ArrivalProcess(system.sim, factory, rate, system.submit,
                       limit=None,
                       rng=StreamFactory(8).get("arrivals.iat"))
        while system.jobs_finished < 6_000:
            system.sim.step()
        d = mser_truncation_point(responses)
        assert d <= config.warmup_jobs, (
            f"MSER wants {d} but the fixed budget is "
            f"{config.warmup_jobs}"
        )
