"""Tests for the calendar-queue event list (equivalence with the heap)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import CalendarQueue, HeapEventList, Simulator


def entries_from(times):
    return [(float(t), 1, i, f"payload-{i}") for i, t in enumerate(times)]


class TestCalendarQueueBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            CalendarQueue(initial_buckets=0)
        with pytest.raises(ValueError):
            CalendarQueue(initial_width=0.0)

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            CalendarQueue().pop()

    def test_peek_empty(self):
        assert CalendarQueue().peek_time() is None
        assert HeapEventList().peek_time() is None

    def test_orders_simple_sequence(self):
        cq = CalendarQueue()
        for e in entries_from([5.0, 1.0, 3.0]):
            cq.push(e)
        times = [cq.pop()[0] for _ in range(3)]
        assert times == [1.0, 3.0, 5.0]

    def test_len_tracks_population(self):
        cq = CalendarQueue()
        for e in entries_from([1, 2, 3]):
            cq.push(e)
        assert len(cq) == 3
        cq.pop()
        assert len(cq) == 2

    def test_resize_preserves_order(self):
        cq = CalendarQueue(initial_buckets=4)
        times = list(np.random.default_rng(0).exponential(10.0, 500))
        for e in entries_from(times):
            cq.push(e)
        popped = [cq.pop()[0] for _ in range(500)]
        assert popped == sorted(popped)

    def test_clustered_times(self):
        # Many events at nearly the same time stress one bucket.
        cq = CalendarQueue(initial_width=100.0)
        times = [1000.0 + i * 1e-6 for i in range(200)]
        np.random.default_rng(1).shuffle(times)
        for e in entries_from(times):
            cq.push(e)
        popped = [cq.pop()[0] for _ in range(200)]
        assert popped == sorted(popped)

    def test_sparse_times_trigger_year_scan(self):
        # Huge gaps force the full-year-scan fallback.
        cq = CalendarQueue(initial_buckets=4, initial_width=0.001)
        times = [0.0, 1e6, 2e6, 5e6]
        for e in entries_from(times):
            cq.push(e)
        popped = [cq.pop()[0] for _ in range(4)]
        assert popped == times


@given(st.lists(
    st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
    min_size=1, max_size=200,
))
@settings(max_examples=60)
def test_calendar_equals_heap_order(times):
    heap, cal = HeapEventList(), CalendarQueue()
    for e in entries_from(times):
        heap.push(e)
        cal.push(e)
    out_heap = [heap.pop() for _ in range(len(times))]
    out_cal = [cal.pop() for _ in range(len(times))]
    assert out_heap == out_cal


@given(st.lists(
    st.tuples(st.booleans(),
              st.floats(min_value=0.0, max_value=100.0,
                        allow_nan=False)),
    min_size=1, max_size=120,
))
@settings(max_examples=40)
def test_interleaved_push_pop_equivalence(ops):
    heap, cal = HeapEventList(), CalendarQueue()
    seq = 0
    for is_push, t in ops:
        if is_push or len(heap) == 0:
            seq += 1
            entry = (t, 1, seq, None)
            heap.push(entry)
            cal.push(entry)
        else:
            assert heap.pop() == cal.pop()
    while len(heap):
        assert heap.pop() == cal.pop()


def test_simulator_runs_identically_on_both_event_lists():
    def run(event_list):
        sim = Simulator(event_list=event_list)
        rng = np.random.default_rng(9)
        order = []

        def proc(sim, label):
            for _ in range(20):
                yield sim.timeout(float(rng.exponential(3.0)))
                order.append((sim.now, label))

        for label in range(5):
            sim.process(proc(sim, label))
        sim.run()
        return order

    assert run(HeapEventList()) == run(CalendarQueue())


@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),   # 3 = pop, else push
            # Coarse grid => many exact time collisions, plus a far
            # outlier to force year-advance scans and realignment.
            st.sampled_from([0.0, 0.25, 0.5, 1.0, 1.5, 2.0, 7.25, 1000.0]),
            st.integers(min_value=0, max_value=1),   # priority rank
        ),
        min_size=1, max_size=150,
    ),
    width=st.sampled_from([0.25, 1.0, 64.0]),
    buckets=st.sampled_from([4, 16]),
)
@settings(max_examples=120, deadline=None)
def test_pop_order_matches_heap_under_adversarial_ties(ops, width, buckets):
    """Same-time/same-rank storms: pop order must equal the heap's.

    The engine's determinism contract is (time, rank, insertion seq)
    FIFO tie-breaking; this drives both event lists through identical
    adversarial schedules — heavy timestamp collisions, mixed priority
    ranks, pushes behind the dequeue clock, resize-triggering bursts —
    and requires bit-identical pop sequences and peek times throughout.
    """
    cal = CalendarQueue(initial_buckets=buckets, initial_width=width)
    heap = HeapEventList()
    seq = 0
    for op, t, rank in ops:
        if op == 3 and len(heap):
            assert cal.pop() == heap.pop()
        else:
            seq += 1
            entry = (float(t), rank, seq, f"payload-{seq}")
            cal.push(entry)
            heap.push(entry)
        assert len(cal) == len(heap)
        assert cal.peek_time() == heap.peek_time()
    while len(heap):
        assert cal.pop() == heap.pop()
