"""Tests for the calendar-queue event list (equivalence with the heap)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import CalendarQueue, HeapEventList, Simulator


def entries_from(times):
    return [(float(t), 1, i, f"payload-{i}") for i, t in enumerate(times)]


class TestCalendarQueueBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            CalendarQueue(initial_buckets=0)
        with pytest.raises(ValueError):
            CalendarQueue(initial_width=0.0)

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            CalendarQueue().pop()

    def test_peek_empty(self):
        assert CalendarQueue().peek_time() is None
        assert HeapEventList().peek_time() is None

    def test_orders_simple_sequence(self):
        cq = CalendarQueue()
        for e in entries_from([5.0, 1.0, 3.0]):
            cq.push(e)
        times = [cq.pop()[0] for _ in range(3)]
        assert times == [1.0, 3.0, 5.0]

    def test_len_tracks_population(self):
        cq = CalendarQueue()
        for e in entries_from([1, 2, 3]):
            cq.push(e)
        assert len(cq) == 3
        cq.pop()
        assert len(cq) == 2

    def test_resize_preserves_order(self):
        cq = CalendarQueue(initial_buckets=4)
        times = list(np.random.default_rng(0).exponential(10.0, 500))
        for e in entries_from(times):
            cq.push(e)
        popped = [cq.pop()[0] for _ in range(500)]
        assert popped == sorted(popped)

    def test_clustered_times(self):
        # Many events at nearly the same time stress one bucket.
        cq = CalendarQueue(initial_width=100.0)
        times = [1000.0 + i * 1e-6 for i in range(200)]
        np.random.default_rng(1).shuffle(times)
        for e in entries_from(times):
            cq.push(e)
        popped = [cq.pop()[0] for _ in range(200)]
        assert popped == sorted(popped)

    def test_sparse_times_trigger_year_scan(self):
        # Huge gaps force the full-year-scan fallback.
        cq = CalendarQueue(initial_buckets=4, initial_width=0.001)
        times = [0.0, 1e6, 2e6, 5e6]
        for e in entries_from(times):
            cq.push(e)
        popped = [cq.pop()[0] for _ in range(4)]
        assert popped == times


@given(st.lists(
    st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
    min_size=1, max_size=200,
))
@settings(max_examples=60)
def test_calendar_equals_heap_order(times):
    heap, cal = HeapEventList(), CalendarQueue()
    for e in entries_from(times):
        heap.push(e)
        cal.push(e)
    out_heap = [heap.pop() for _ in range(len(times))]
    out_cal = [cal.pop() for _ in range(len(times))]
    assert out_heap == out_cal


@given(st.lists(
    st.tuples(st.booleans(),
              st.floats(min_value=0.0, max_value=100.0,
                        allow_nan=False)),
    min_size=1, max_size=120,
))
@settings(max_examples=40)
def test_interleaved_push_pop_equivalence(ops):
    heap, cal = HeapEventList(), CalendarQueue()
    seq = 0
    for is_push, t in ops:
        if is_push or len(heap) == 0:
            seq += 1
            entry = (t, 1, seq, None)
            heap.push(entry)
            cal.push(entry)
        else:
            assert heap.pop() == cal.pop()
    while len(heap):
        assert heap.pop() == cal.pop()


def test_simulator_runs_identically_on_both_event_lists():
    def run(event_list):
        sim = Simulator(event_list=event_list)
        rng = np.random.default_rng(9)
        order = []

        def proc(sim, label):
            for _ in range(20):
                yield sim.timeout(float(rng.exponential(3.0)))
                order.append((sim.now, label))

        for label in range(5):
            sim.process(proc(sim, label))
        sim.run()
        return order

    assert run(HeapEventList()) == run(CalendarQueue())
