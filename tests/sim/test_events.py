"""Unit tests for Event state machine and condition events."""

import pytest

from repro.sim import AllOf, AnyOf, Event, SchedulingError, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestEventLifecycle:
    def test_fresh_event_is_untriggered(self, sim):
        ev = sim.event()
        assert not ev.triggered
        assert not ev.processed

    def test_value_before_trigger_raises(self, sim):
        with pytest.raises(SchedulingError):
            sim.event().value

    def test_ok_before_trigger_raises(self, sim):
        with pytest.raises(SchedulingError):
            sim.event().ok

    def test_succeed_sets_value_and_ok(self, sim):
        ev = sim.event().succeed(42)
        assert ev.triggered
        assert ev.ok
        assert ev.value == 42

    def test_succeed_twice_rejected(self, sim):
        ev = sim.event().succeed()
        with pytest.raises(SchedulingError):
            ev.succeed()

    def test_fail_then_succeed_rejected(self, sim):
        ev = sim.event().fail(RuntimeError())
        ev.defuse()
        with pytest.raises(SchedulingError):
            ev.succeed()

    def test_fail_requires_exception_instance(self, sim):
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_callbacks_receive_event(self, sim):
        ev = sim.event()
        got = []
        ev.callbacks.append(got.append)
        ev.succeed("x")
        sim.run()
        assert got == [ev]
        assert ev.processed

    def test_succeed_with_delay(self, sim):
        ev = sim.event()
        times = []
        ev.callbacks.append(lambda e: times.append(sim.now))
        ev.succeed(delay=4.0)
        sim.run()
        assert times == [4.0]

    def test_trigger_from_copies_success(self, sim):
        src = sim.event().succeed("payload")
        dst = sim.event()
        dst.trigger_from(src)
        assert dst.ok and dst.value == "payload"

    def test_trigger_from_copies_failure(self, sim):
        exc = RuntimeError("x")
        src = sim.event().fail(exc)
        src.defuse()
        dst = sim.event()
        dst.trigger_from(src)
        dst.defuse()
        assert not dst.ok and dst.value is exc


class TestAnyOf:
    def test_fires_on_first_child(self, sim):
        a, b = sim.timeout(2.0, "a"), sim.timeout(5.0, "b")
        cond = AnyOf(sim, [a, b])
        sim.run(until=cond)
        assert sim.now == 2.0
        assert cond.value == {a: "a"}

    def test_operator_or(self, sim):
        a, b = sim.timeout(1.0), sim.timeout(2.0)
        cond = a | b
        assert isinstance(cond, AnyOf)
        sim.run(until=cond)
        assert sim.now == 1.0

    def test_empty_any_of_fires_immediately(self, sim):
        cond = AnyOf(sim, [])
        sim.run()
        assert cond.triggered and cond.value == {}

    def test_already_processed_child_satisfies(self, sim):
        a = sim.timeout(1.0, "a")
        sim.run()
        cond = AnyOf(sim, [a])
        sim.run()
        assert cond.triggered
        assert cond.value == {a: "a"}

    def test_failed_child_fails_condition(self, sim):
        a = sim.event()
        b = sim.timeout(10.0)
        cond = AnyOf(sim, [a, b])
        sim.call_at(1.0, lambda: a.fail(RuntimeError("child")))
        with pytest.raises(RuntimeError, match="child"):
            sim.run(until=cond)


class TestAllOf:
    def test_waits_for_every_child(self, sim):
        a, b, c = (sim.timeout(t, t) for t in (1.0, 3.0, 2.0))
        cond = AllOf(sim, [a, b, c])
        sim.run(until=cond)
        assert sim.now == 3.0
        assert set(cond.value.values()) == {1.0, 2.0, 3.0}

    def test_operator_and(self, sim):
        a, b = sim.timeout(1.0), sim.timeout(2.0)
        cond = a & b
        assert isinstance(cond, AllOf)
        sim.run(until=cond)
        assert sim.now == 2.0

    def test_value_preserves_child_order(self, sim):
        a, b = sim.timeout(5.0, "a"), sim.timeout(1.0, "b")
        cond = AllOf(sim, [a, b])
        sim.run(until=cond)
        assert list(cond.value.keys()) == [a, b]

    def test_cross_simulator_condition_rejected(self, sim):
        other = Simulator()
        with pytest.raises(SchedulingError):
            AllOf(sim, [sim.event(), other.event()])
