"""Tests for the preemptive priority resource."""

import pytest

from repro.sim import (
    Interrupt,
    PreemptiveResource,
    SchedulingError,
    Simulator,
)


@pytest.fixture
def sim():
    return Simulator()


def test_idle_acquire_immediate(sim):
    res = PreemptiveResource(sim)
    grant = res.request(priority=5)
    assert grant.triggered
    assert res.busy


def test_equal_priority_waits_fifo(sim):
    res = PreemptiveResource(sim)
    first = res.request(priority=1)
    second = res.request(priority=1)
    third = res.request(priority=1)
    assert not second.triggered
    res.release(first)
    assert second.triggered
    assert not third.triggered
    res.release(second)
    assert third.triggered


def test_higher_priority_jumps_queue(sim):
    res = PreemptiveResource(sim)
    holder = res.request(priority=1)
    low = res.request(priority=5)
    high = res.request(priority=2)
    res.release(holder)
    assert high.triggered
    assert not low.triggered


def test_preemption_interrupts_owner(sim):
    res = PreemptiveResource(sim)
    log = []

    def background(sim):
        grant = res.request(priority=10, owner=sim.active_process)
        yield grant
        try:
            yield sim.timeout(100.0)
            res.release(grant)
            log.append(("bg-finished", sim.now))
        except Interrupt as inter:
            log.append(("bg-preempted", sim.now, inter.cause.triggered))

    def urgent(sim):
        yield sim.timeout(10.0)
        grant = res.request(priority=0, owner=sim.active_process)
        yield grant
        yield sim.timeout(5.0)
        res.release(grant)
        log.append(("urgent-done", sim.now))

    sim.process(background(sim), name="bg")
    sim.process(urgent(sim))
    sim.run()
    assert ("bg-preempted", 10.0, True) in log
    assert ("urgent-done", 15.0) in log
    assert res.preemptions == 1


def test_release_by_non_holder_rejected(sim):
    res = PreemptiveResource(sim)
    holder = res.request(priority=1)
    waiter = res.request(priority=1)
    with pytest.raises(SchedulingError):
        res.release(waiter)
    res.release(holder)


def test_no_preemption_for_equal_priority(sim):
    res = PreemptiveResource(sim)
    res.request(priority=1)
    second = res.request(priority=1)
    assert not second.triggered
    assert res.preemptions == 0


def test_queue_length(sim):
    res = PreemptiveResource(sim)
    res.request()
    res.request()
    res.request()
    assert res.queue_length == 2
    assert "busy" in repr(res)
