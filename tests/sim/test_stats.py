"""Unit tests for output statistics: tallies, time averages, batch means."""

import math

import numpy as np
import pytest

from repro.sim import (
    BatchMeans,
    Histogram,
    Tally,
    TimeWeighted,
    normal_quantile,
    student_t_quantile,
)


class TestTally:
    def test_empty(self):
        t = Tally()
        assert t.count == 0
        assert math.isnan(t.mean)
        assert math.isnan(t.variance)

    def test_single_observation(self):
        t = Tally()
        t.record(5.0)
        assert t.mean == 5.0
        assert math.isnan(t.variance)
        assert t.minimum == t.maximum == 5.0

    def test_matches_numpy(self):
        data = np.random.default_rng(0).normal(10, 3, 1000)
        t = Tally()
        t.record_many(data)
        assert t.mean == pytest.approx(data.mean())
        assert t.variance == pytest.approx(data.var(ddof=1))
        assert t.std == pytest.approx(data.std(ddof=1))
        assert t.minimum == data.min()
        assert t.maximum == data.max()
        assert t.total == pytest.approx(data.sum())

    def test_cv(self):
        t = Tally()
        t.record_many([1.0, 3.0])
        assert t.cv == pytest.approx(math.sqrt(2.0) / 2.0)

    def test_reset(self):
        t = Tally()
        t.record_many([1, 2, 3])
        t.reset()
        assert t.count == 0
        assert math.isnan(t.mean)

    def test_numerical_stability_large_offset(self):
        # Welford must survive a large constant offset.
        t = Tally()
        base = 1e9
        t.record_many([base + x for x in (1.0, 2.0, 3.0)])
        assert t.variance == pytest.approx(1.0)


class TestTimeWeighted:
    def test_piecewise_constant_average(self):
        tw = TimeWeighted()
        tw.update(0.0, 2.0)   # level 2 on [0, 4)
        tw.update(4.0, 6.0)   # level 6 on [4, 10)
        assert tw.mean(10.0) == pytest.approx((2 * 4 + 6 * 6) / 10)

    def test_integral(self):
        tw = TimeWeighted(value=1.0)
        tw.update(5.0, 0.0)
        assert tw.integral(8.0) == pytest.approx(5.0)

    def test_add_delta(self):
        tw = TimeWeighted()
        tw.add(0.0, 3.0)
        tw.add(2.0, -1.0)
        assert tw.value == 2.0
        assert tw.mean(4.0) == pytest.approx((3 * 2 + 2 * 2) / 4)

    def test_reset_discards_history_keeps_level(self):
        tw = TimeWeighted()
        tw.update(0.0, 100.0)
        tw.reset(10.0)
        assert tw.value == 100.0
        tw.update(12.0, 0.0)
        assert tw.mean(20.0) == pytest.approx(100 * 2 / 10)

    def test_extrema(self):
        tw = TimeWeighted()
        tw.update(1.0, 5.0)
        tw.update(2.0, -3.0)
        assert tw.maximum == 5.0
        assert tw.minimum == -3.0

    def test_time_backwards_rejected(self):
        tw = TimeWeighted()
        tw.update(5.0, 1.0)
        with pytest.raises(ValueError):
            tw.update(4.0, 0.0)
        with pytest.raises(ValueError):
            tw.integral(4.0)

    def test_mean_zero_elapsed_is_nan(self):
        tw = TimeWeighted()
        assert math.isnan(tw.mean(0.0))


class TestBatchMeans:
    def test_batching(self):
        bm = BatchMeans(batch_size=3)
        for v in [1, 2, 3, 4, 5, 6, 7]:
            bm.record(v)
        assert bm.count == 7
        assert bm.num_batches == 2
        assert bm.batches.mean == pytest.approx((2 + 5) / 2)

    def test_ci_covers_true_mean_for_iid_data(self):
        rng = np.random.default_rng(42)
        bm = BatchMeans(batch_size=100)
        for v in rng.exponential(10.0, 20_000):
            bm.record(v)
        ci = bm.confidence_interval(0.95)
        assert 10.0 in ci
        assert ci.half_width < 1.0

    def test_ci_infinite_with_too_few_batches(self):
        bm = BatchMeans(batch_size=100)
        bm.record(1.0)
        ci = bm.confidence_interval()
        assert math.isinf(ci.half_width)

    def test_ci_coverage_rate(self):
        # Across many replications, the 90% CI must cover the true mean
        # roughly 90% of the time (allow generous slack).
        covered = 0
        reps = 200
        for rep in range(reps):
            rng = np.random.default_rng(rep)
            bm = BatchMeans(batch_size=50)
            for v in rng.normal(5.0, 2.0, 1000):
                bm.record(v)
            if 5.0 in bm.confidence_interval(0.90):
                covered += 1
        assert 0.82 * reps <= covered <= 0.97 * reps

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            BatchMeans(0)

    def test_ci_properties(self):
        bm = BatchMeans(batch_size=2)
        for v in [1, 2, 3, 4, 5, 6]:
            bm.record(v)
        ci = bm.confidence_interval(0.95)
        assert ci.low == pytest.approx(ci.mean - ci.half_width)
        assert ci.high == pytest.approx(ci.mean + ci.half_width)
        assert ci.relative_width > 0


class TestHistogram:
    def test_binning(self):
        h = Histogram(0.0, 10.0, 10)
        for v in [0.5, 1.5, 1.7, 9.9]:
            h.record(v)
        assert h.counts[0] == 1
        assert h.counts[1] == 2
        assert h.counts[9] == 1

    def test_under_overflow(self):
        h = Histogram(0.0, 10.0, 5)
        h.record(-1.0)
        h.record(10.0)
        h.record(100.0)
        assert h.underflow == 1
        assert h.overflow == 2
        assert h.total == 3

    def test_density_sums_to_one(self):
        h = Histogram(0.0, 1.0, 4)
        for v in np.random.default_rng(0).random(100):
            h.record(v)
        assert h.density().sum() == pytest.approx(1.0)

    def test_edges(self):
        h = Histogram(0.0, 10.0, 5)
        assert list(h.edges()) == [0.0, 2.0, 4.0, 6.0, 8.0, 10.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram(1.0, 1.0, 5)
        with pytest.raises(ValueError):
            Histogram(0.0, 1.0, 0)


class TestQuantiles:
    def test_normal_quantile_symmetry(self):
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-9)
        assert normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-4)
        assert normal_quantile(0.025) == pytest.approx(-1.959964, abs=1e-4)

    def test_normal_quantile_tails(self):
        assert normal_quantile(0.001) == pytest.approx(-3.090232, abs=1e-4)
        assert normal_quantile(0.999) == pytest.approx(3.090232, abs=1e-4)

    def test_normal_quantile_domain(self):
        with pytest.raises(ValueError):
            normal_quantile(0.0)
        with pytest.raises(ValueError):
            normal_quantile(1.0)

    @pytest.mark.parametrize(
        "df,expected",
        [
            (1, 12.70620),
            (2, 4.30265),
            (5, 2.57058),
            (10, 2.22814),
            (30, 2.04227),
            (100, 1.98397),
        ],
    )
    def test_t_quantile_97_5(self, df, expected):
        # Reference values from standard t tables.
        tol = 0.02 if df <= 5 else 0.005
        assert student_t_quantile(0.975, df) == pytest.approx(expected,
                                                              rel=tol)

    def test_t_quantile_symmetry(self):
        assert student_t_quantile(0.25, 7) == pytest.approx(
            -student_t_quantile(0.75, 7), abs=1e-9
        )

    def test_t_approaches_normal(self):
        assert student_t_quantile(0.975, 10_000) == pytest.approx(
            normal_quantile(0.975), abs=1e-3
        )

    def test_t_domain(self):
        with pytest.raises(ValueError):
            student_t_quantile(0.5, 0)
        with pytest.raises(ValueError):
            student_t_quantile(1.5, 5)
