"""Unit tests for the event calendar and run control."""

import pytest

from repro.sim import (
    EmptySchedule,
    Event,
    SchedulingError,
    Simulator,
    Timeout,
)


def test_clock_starts_at_initial_time():
    assert Simulator().now == 0.0
    assert Simulator(initial_time=5.5).now == 5.5


def test_run_until_time_advances_clock_exactly():
    sim = Simulator()
    sim.timeout(3.0)
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_run_until_past_time_rejected():
    sim = Simulator(initial_time=5.0)
    with pytest.raises(SchedulingError):
        sim.run(until=1.0)


def test_run_drains_calendar_when_until_none():
    sim = Simulator()
    sim.timeout(1.0)
    sim.timeout(7.0)
    sim.run()
    assert sim.now == 7.0


def test_step_raises_on_empty_calendar():
    with pytest.raises(EmptySchedule):
        Simulator().step()


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(4.0)
    sim.timeout(2.0)
    assert sim.peek() == 2.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    for delay in (5.0, 1.0, 3.0):
        ev = sim.timeout(delay, value=delay)
        ev.callbacks.append(lambda e: fired.append(e.value))
    sim.run()
    assert fired == [1.0, 3.0, 5.0]


def test_simultaneous_events_fire_fifo():
    sim = Simulator()
    fired = []
    for tag in "abc":
        ev = sim.timeout(1.0, value=tag)
        ev.callbacks.append(lambda e: fired.append(e.value))
    sim.run()
    assert fired == ["a", "b", "c"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SchedulingError):
        sim.timeout(-1.0)
    with pytest.raises(SchedulingError):
        sim.schedule(Event(sim), delay=-0.5)


def test_run_until_event_returns_its_value():
    sim = Simulator()
    ev = sim.event()
    sim.call_at(4.0, lambda: ev.succeed("payload"))
    assert sim.run(until=ev) == "payload"
    assert sim.now == 4.0


def test_run_until_already_processed_event():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(11)
    sim.run()
    assert sim.run(until=ev) == 11


def test_run_until_event_that_never_fires_raises():
    sim = Simulator()
    ev = sim.event()
    sim.timeout(1.0)
    with pytest.raises(SchedulingError):
        sim.run(until=ev)


def test_run_until_failed_event_raises_its_exception():
    sim = Simulator()
    ev = sim.event()
    sim.call_at(2.0, lambda: ev.fail(RuntimeError("boom")))
    with pytest.raises(RuntimeError, match="boom"):
        sim.run(until=ev)


def test_call_at_runs_function_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.call_at(6.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [6.0]


def test_call_at_in_past_rejected():
    sim = Simulator(initial_time=3.0)
    with pytest.raises(SchedulingError):
        sim.call_at(2.0, lambda: None)


def test_events_processed_counter():
    sim = Simulator()
    sim.timeout(1.0)
    sim.timeout(2.0)
    sim.run()
    assert sim.events_processed == 2


def test_unhandled_failed_event_crashes_run():
    sim = Simulator()
    ev = sim.event()
    ev.fail(ValueError("unnoticed"))
    with pytest.raises(ValueError, match="unnoticed"):
        sim.run()


def test_defused_failed_event_does_not_crash():
    sim = Simulator()
    ev = sim.event()
    ev.fail(ValueError("handled"))
    ev.defuse()
    sim.run()  # must not raise
    assert sim.events_processed == 1


def test_timeout_carries_value():
    sim = Simulator()
    ev = sim.timeout(1.0, value="v")
    sim.run()
    assert ev.value == "v"
    assert ev.ok


def test_repr_smoke():
    sim = Simulator()
    sim.timeout(1.0)
    assert "pending=1" in repr(sim)


def test_run_while_stops_on_predicate():
    sim = Simulator()
    seen = []
    for t in (1.0, 2.0, 3.0, 4.0):
        ev = sim.timeout(t, value=t)
        ev.callbacks.append(lambda e: seen.append(e.value))
    stopped = sim.run_while(lambda: len(seen) < 2)
    assert stopped is True
    assert seen == [1.0, 2.0]
    assert sim.now == 2.0
    # Remaining events stay on the calendar, resumable.
    assert sim.run_while(lambda: True) is False
    assert seen == [1.0, 2.0, 3.0, 4.0]


def test_run_while_returns_false_when_calendar_drains():
    sim = Simulator()
    sim.timeout(1.0)
    assert sim.run_while(lambda: True) is False
    assert sim.events_processed == 1
    # Draining never raises EmptySchedule, even on an empty calendar.
    assert sim.run_while(lambda: True) is False


def test_run_while_checks_predicate_before_each_event():
    # Exactly like `while pred() and peek() != inf: step()` — an
    # already-false predicate processes nothing.
    sim = Simulator()
    sim.timeout(1.0)
    assert sim.run_while(lambda: False) is True
    assert sim.events_processed == 0


def test_run_while_propagates_failed_events():
    sim = Simulator()
    ev = sim.event()
    ev.fail(ValueError("boom"))
    with pytest.raises(ValueError, match="boom"):
        sim.run_while(lambda: True)


def test_run_while_generic_event_list_fallback():
    from repro.sim import CalendarQueue

    sim = Simulator(event_list=CalendarQueue())
    seen = []
    for t in (1.0, 2.0, 3.0):
        ev = sim.timeout(t, value=t)
        ev.callbacks.append(lambda e: seen.append(e.value))
    assert sim.run_while(lambda: len(seen) < 2) is True
    assert seen == [1.0, 2.0]
    assert sim.run_while(lambda: True) is False
    assert seen == [1.0, 2.0, 3.0]


def test_defer_interleaves_with_timeouts_in_fifo_order():
    sim = Simulator()
    order = []
    sim.timeout(1.0).callbacks.append(lambda e: order.append("timeout"))
    sim.defer(1.0, (lambda e: order.append("defer"),))
    sim.timeout(1.0).callbacks.append(lambda e: order.append("timeout2"))
    sim.run()
    # Same time, same rank: insertion order decides.
    assert order == ["timeout", "defer", "timeout2"]
    assert sim.events_scheduled == 3
    assert sim.events_processed == 3


def test_defer_value_and_priority():
    sim = Simulator()
    order = []
    sim.defer(0.0, (lambda e: order.append(("normal", e.value)),), value=1)
    sim.defer(0.0, (lambda e: order.append(("urgent", e.value)),), value=2,
              priority=True)
    sim.run()
    assert order == [("urgent", 2), ("normal", 1)]


def test_defer_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(SchedulingError):
        sim.defer(-1.0, (lambda e: None,))


def test_defer_shared_callback_tuple_is_not_consumed():
    sim = Simulator()
    hits = []
    shared = (lambda e: hits.append(e.value),)
    for i in range(3):
        sim.defer(float(i), shared, value=i)
    sim.run()
    assert hits == [0, 1, 2]
    assert shared  # the tuple itself is untouched
