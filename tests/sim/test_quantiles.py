"""Tests for the P² streaming quantile estimator."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.quantiles import P2Quantile, QuantileSet


class TestP2Quantile:
    def test_domain(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.5).value)

    def test_exact_for_few_observations(self):
        est = P2Quantile(0.5)
        for v in (3.0, 1.0, 2.0):
            est.record(v)
        assert est.value == 2.0

    @pytest.mark.parametrize("p", [0.5, 0.9, 0.95, 0.99])
    def test_converges_on_uniform(self, p):
        est = P2Quantile(p)
        rng = np.random.default_rng(0)
        for v in rng.random(100_000):
            est.record(v)
        assert est.value == pytest.approx(p, abs=0.01)

    @pytest.mark.parametrize("p,expected", [(0.5, math.log(2)),
                                            (0.95, -math.log(0.05))])
    def test_converges_on_exponential(self, p, expected):
        est = P2Quantile(p)
        rng = np.random.default_rng(1)
        for v in rng.exponential(1.0, 100_000):
            est.record(v)
        assert est.value == pytest.approx(expected, rel=0.05)

    def test_matches_numpy_on_normal(self):
        data = np.random.default_rng(2).normal(100.0, 15.0, 50_000)
        est = P2Quantile(0.9)
        for v in data:
            est.record(v)
        assert est.value == pytest.approx(np.quantile(data, 0.9),
                                          rel=0.02)

    @given(st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1, max_size=300,
    ))
    @settings(max_examples=50)
    def test_estimate_within_data_range(self, values):
        est = P2Quantile(0.75)
        for v in values:
            est.record(v)
        assert min(values) - 1e-9 <= est.value <= max(values) + 1e-9

    def test_count_tracked(self):
        est = P2Quantile(0.5)
        for v in range(17):
            est.record(float(v))
        assert est.count == 17


class TestQuantileSet:
    def test_default_ladder(self):
        qs = QuantileSet()
        assert set(qs.estimators) == {0.5, 0.9, 0.95, 0.99}

    def test_empty_ladder_rejected(self):
        with pytest.raises(ValueError):
            QuantileSet([])

    def test_snapshot_and_getitem(self):
        qs = QuantileSet([0.5])
        qs.record_many([1.0, 2.0, 3.0])
        assert qs[0.5] == 2.0
        assert qs.snapshot() == {0.5: 2.0}
        assert qs.count == 3

    def test_ladder_is_monotone(self):
        qs = QuantileSet()
        rng = np.random.default_rng(3)
        qs.record_many(rng.exponential(10.0, 20_000))
        snap = qs.snapshot()
        assert snap[0.5] <= snap[0.9] <= snap[0.95] <= snap[0.99]
