"""Property-based tests (hypothesis) for the simulation engine substrate."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    BatchMeans,
    DiscreteEmpirical,
    Resource,
    Simulator,
    Tally,
    TimeWeighted,
)

delays = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
              allow_infinity=False),
    min_size=1,
    max_size=40,
)


@given(delays)
def test_events_always_processed_in_nondecreasing_time(ds):
    sim = Simulator()
    seen = []
    for d in ds:
        ev = sim.timeout(d)
        ev.callbacks.append(lambda e: seen.append(sim.now))
    sim.run()
    assert seen == sorted(seen)
    assert len(seen) == len(ds)


@given(delays)
def test_clock_never_goes_backwards_through_processes(ds):
    sim = Simulator()
    times = []

    def proc(sim, d):
        yield sim.timeout(d)
        times.append(sim.now)

    for d in ds:
        sim.process(proc(sim, d))
    sim.run()
    assert times == sorted(times)


@given(
    st.lists(st.integers(min_value=1, max_value=10), min_size=1, max_size=30),
    st.integers(min_value=1, max_value=10),
)
def test_resource_conservation_under_arbitrary_request_patterns(units, cap):
    sim = Simulator()
    res = Resource(sim, cap)
    grants = []
    for u in units:
        if u <= cap:
            grants.append(res.request(u))
        # Invariant must hold after every operation.
        assert res.available + res.in_use == res.capacity
        assert 0 <= res.available <= res.capacity
    for g in [g for g in grants if g.satisfied]:
        res.release(g)
        assert res.available + res.in_use == res.capacity
    # Everyone released → releasing the newly satisfied ones too until idle.
    while any(g.satisfied for g in grants):
        for g in grants:
            if g.satisfied:
                res.release(g)
    assert res.available == res.capacity


@given(
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=2,
        max_size=200,
    )
)
def test_tally_agrees_with_numpy(values):
    t = Tally()
    t.record_many(values)
    arr = np.asarray(values)
    assert math.isclose(t.mean, arr.mean(), rel_tol=1e-9, abs_tol=1e-6)
    assert math.isclose(
        t.variance, arr.var(ddof=1), rel_tol=1e-6, abs_tol=1e-3
    )
    assert t.minimum == arr.min()
    assert t.maximum == arr.max()


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.001, max_value=100.0, allow_nan=False),
            st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
        ),
        min_size=1,
        max_size=50,
    )
)
def test_time_weighted_mean_is_within_signal_range(steps):
    tw = TimeWeighted()
    t = 0.0
    lo, hi = 0.0, 0.0
    for dt, level in steps:
        t += dt
        tw.update(t, level)
        lo = min(lo, level)
        hi = max(hi, level)
    end = t + 1.0
    mean = tw.mean(end)
    assert lo - 1e-9 <= mean <= hi + 1e-9


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
        min_size=4,
        max_size=200,
    ),
    st.integers(min_value=1, max_value=20),
)
def test_batch_means_grand_mean_matches_tally(values, batch):
    bm = BatchMeans(batch_size=batch)
    t = Tally()
    for v in values:
        bm.record(v)
        t.record(v)
    assert math.isclose(bm.mean, t.mean, rel_tol=1e-9, abs_tol=1e-9)
    assert bm.num_batches == len(values) // batch


@given(
    st.dictionaries(
        st.integers(min_value=1, max_value=128),
        st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
        min_size=1,
        max_size=30,
    )
)
def test_discrete_empirical_invariants(masses):
    values = sorted(masses)
    weights = [masses[v] for v in values]
    d = DiscreteEmpirical(values, weights)
    # Probabilities sum to one, CDF is monotone and hits 1 at the top.
    assert math.isclose(float(d.probabilities.sum()), 1.0, rel_tol=1e-9)
    cdf_vals = [d.cdf(v) for v in values]
    assert all(b >= a for a, b in zip(cdf_vals, cdf_vals[1:]))
    assert math.isclose(cdf_vals[-1], 1.0, rel_tol=1e-9)
    # The mean lies inside the support hull.
    assert values[0] <= d.mean <= values[-1]
    # Sampling stays within support.
    draws = d.sample_array(np.random.default_rng(0), 500)
    assert set(np.unique(draws)).issubset(set(float(v) for v in values))


@given(st.integers(min_value=0, max_value=2**32 - 1), delays)
@settings(max_examples=25)
def test_simulation_is_deterministic_for_fixed_seed(seed, ds):
    def run_once():
        sim = Simulator()
        rng = np.random.default_rng(seed)
        order = []

        def proc(sim, d):
            yield sim.timeout(d + rng.random())
            order.append(sim.now)

        for d in ds:
            sim.process(proc(sim, d))
        sim.run()
        return order

    assert run_once() == run_once()
