"""Edge-case tests for the engine's boundary semantics."""

import pytest

from repro.sim import EmptySchedule, Simulator


def test_zero_delay_timeout_fires_now_after_current_event():
    sim = Simulator()
    order = []

    def proc(sim):
        order.append(("before", sim.now))
        yield sim.timeout(0.0)
        order.append(("after", sim.now))

    sim.process(proc(sim))
    sim.run()
    assert order == [("before", 0.0), ("after", 0.0)]


def test_event_exactly_at_run_horizon_is_processed():
    # run(until=t): events scheduled at exactly t... the stop event is
    # urgent, so it fires BEFORE normal events at the same time — the
    # horizon is exclusive for same-time normal events.
    sim = Simulator()
    fired = []
    ev = sim.timeout(5.0)
    ev.callbacks.append(lambda e: fired.append(sim.now))
    sim.run(until=5.0)
    assert fired == []
    assert sim.now == 5.0
    # Continuing the run processes it.
    sim.run()
    assert fired == [5.0]


def test_run_resumable_after_horizon():
    sim = Simulator()
    ticks = []

    def ticker(sim):
        while True:
            yield sim.timeout(1.0)
            ticks.append(sim.now)

    sim.process(ticker(sim))
    sim.run(until=3.5)
    assert ticks == [1.0, 2.0, 3.0]
    sim.run(until=5.5)
    assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_run_until_now_is_noop():
    sim = Simulator(initial_time=2.0)
    sim.timeout(1.0)
    sim.run(until=2.0)
    assert sim.now == 2.0


def test_step_after_drain_raises():
    sim = Simulator()
    sim.timeout(1.0)
    sim.run()
    with pytest.raises(EmptySchedule):
        sim.step()


def test_massive_simultaneous_events_preserve_fifo():
    sim = Simulator()
    fired = []
    for i in range(500):
        ev = sim.timeout(1.0, value=i)
        ev.callbacks.append(lambda e: fired.append(e.value))
    sim.run()
    assert fired == list(range(500))


def test_events_processed_counter_includes_internal_events():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)

    sim.process(proc(sim))
    sim.run()
    # init event + timeout + termination event.
    assert sim.events_processed == 3


def test_nested_process_spawning_during_callbacks():
    sim = Simulator()
    spawned = []

    def child(sim, depth):
        yield sim.timeout(0.5)
        spawned.append(depth)
        if depth < 5:
            sim.process(child(sim, depth + 1))

    sim.process(child(sim, 1))
    sim.run()
    assert spawned == [1, 2, 3, 4, 5]
    assert sim.now == pytest.approx(2.5)
