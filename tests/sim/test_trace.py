"""Unit tests for the tracing facility."""

from repro.sim import NullTracer, Tracer
from repro.sim.trace import filter_records


def test_emit_and_read_back():
    tr = Tracer()
    tr.emit(1.0, "arrival", job=3)
    tr.emit(2.0, "start", job=3, cluster=0)
    assert len(tr) == 2
    assert tr.records[0].time == 1.0
    assert tr.records[0].kind == "arrival"
    assert tr.records[0].payload == {"job": 3}


def test_kind_filter():
    tr = Tracer(kinds={"departure"})
    tr.emit(1.0, "arrival")
    tr.emit(2.0, "departure")
    assert [r.kind for r in tr] == ["departure"]


def test_of_kind_selection():
    tr = Tracer()
    tr.emit(1.0, "a")
    tr.emit(2.0, "b")
    tr.emit(3.0, "a")
    assert [r.time for r in tr.of_kind("a")] == [1.0, 3.0]
    assert tr.kinds_seen() == {"a", "b"}


def test_limit_drops_and_counts():
    tr = Tracer(limit=2)
    for t in range(5):
        tr.emit(float(t), "x")
    assert len(tr) == 2
    assert tr.dropped == 3


def test_clear():
    tr = Tracer()
    tr.emit(0.0, "x")
    tr.clear()
    assert len(tr) == 0
    assert tr.dropped == 0


def test_null_tracer_discards_everything():
    tr = NullTracer()
    tr.emit(1.0, "anything", heavy="payload")
    assert len(tr.records) == 0
    assert not tr.enabled


def test_regular_tracer_enabled():
    assert Tracer().enabled


def test_filter_records_helper():
    tr = Tracer()
    tr.emit(1.0, "x", v=1)
    tr.emit(2.0, "x", v=2)
    late = filter_records(tr.records, lambda r: r.time > 1.5)
    assert [r.payload["v"] for r in late] == [2]


def test_ring_mode_keeps_newest():
    tr = Tracer(limit=2, mode="ring")
    for t in range(5):
        tr.emit(float(t), "x", n=t)
    assert [r.payload["n"] for r in tr] == [3, 4]
    assert tr.dropped == 3


def test_head_mode_keeps_oldest():
    tr = Tracer(limit=2, mode="head")
    for t in range(5):
        tr.emit(float(t), "x", n=t)
    assert [r.payload["n"] for r in tr] == [0, 1]
    assert tr.dropped == 3


def test_invalid_mode_rejected():
    import pytest

    with pytest.raises(ValueError, match="mode"):
        Tracer(mode="tail")


def test_filtered_counter_separate_from_dropped():
    tr = Tracer(kinds={"keep"}, limit=1)
    tr.emit(1.0, "skip")
    tr.emit(2.0, "keep")
    tr.emit(3.0, "keep")
    tr.emit(4.0, "skip")
    assert tr.filtered == 2
    assert tr.dropped == 1
    assert len(tr) == 1


def test_repr_distinguishes_dropped_and_filtered():
    tr = Tracer(kinds={"keep"}, limit=1)
    tr.emit(1.0, "skip")
    tr.emit(2.0, "keep")
    tr.emit(3.0, "keep")
    text = repr(tr)
    assert "dropped=1" in text
    assert "filtered=1" in text


def test_clear_resets_filtered():
    tr = Tracer(kinds={"keep"})
    tr.emit(1.0, "skip")
    assert tr.filtered == 1
    tr.clear()
    assert tr.filtered == 0


def test_sink_sees_full_flow_past_the_cap():
    seen = []
    tr = Tracer(limit=1, sink=seen.append)
    tr.emit(1.0, "x")
    tr.emit(2.0, "x")
    tr.emit(3.0, "x")
    assert len(tr) == 1
    assert [r.time for r in seen] == [1.0, 2.0, 3.0]


def test_sink_not_called_for_filtered_kinds():
    seen = []
    tr = Tracer(kinds={"keep"}, sink=seen.append)
    tr.emit(1.0, "skip")
    tr.emit(2.0, "keep")
    assert [r.kind for r in seen] == ["keep"]


def test_null_tracer_zero_storage_and_counters():
    tr = NullTracer()
    for t in range(100):
        tr.emit(float(t), "x", heavy=list(range(10)))
    assert len(tr) == 0
    assert tr.dropped == 0
    assert tr.filtered == 0
