"""Unit tests for the tracing facility."""

from repro.sim import NullTracer, Tracer
from repro.sim.trace import filter_records


def test_emit_and_read_back():
    tr = Tracer()
    tr.emit(1.0, "arrival", job=3)
    tr.emit(2.0, "start", job=3, cluster=0)
    assert len(tr) == 2
    assert tr.records[0].time == 1.0
    assert tr.records[0].kind == "arrival"
    assert tr.records[0].payload == {"job": 3}


def test_kind_filter():
    tr = Tracer(kinds={"departure"})
    tr.emit(1.0, "arrival")
    tr.emit(2.0, "departure")
    assert [r.kind for r in tr] == ["departure"]


def test_of_kind_selection():
    tr = Tracer()
    tr.emit(1.0, "a")
    tr.emit(2.0, "b")
    tr.emit(3.0, "a")
    assert [r.time for r in tr.of_kind("a")] == [1.0, 3.0]
    assert tr.kinds_seen() == {"a", "b"}


def test_limit_drops_and_counts():
    tr = Tracer(limit=2)
    for t in range(5):
        tr.emit(float(t), "x")
    assert len(tr) == 2
    assert tr.dropped == 3


def test_clear():
    tr = Tracer()
    tr.emit(0.0, "x")
    tr.clear()
    assert len(tr) == 0
    assert tr.dropped == 0


def test_null_tracer_discards_everything():
    tr = NullTracer()
    tr.emit(1.0, "anything", heavy="payload")
    assert len(tr.records) == 0
    assert not tr.enabled


def test_regular_tracer_enabled():
    assert Tracer().enabled


def test_filter_records_helper():
    tr = Tracer()
    tr.emit(1.0, "x", v=1)
    tr.emit(2.0, "x", v=2)
    late = filter_records(tr.records, lambda r: r.time > 1.5)
    assert [r.payload["v"] for r in late] == [2]
