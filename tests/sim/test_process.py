"""Unit tests for generator-coroutine processes and interrupts."""

import pytest

from repro.sim import Interrupt, Process, SchedulingError, Simulator


@pytest.fixture
def sim():
    return Simulator()


def test_process_advances_through_timeouts(sim):
    log = []

    def worker(sim):
        log.append(sim.now)
        yield sim.timeout(2.0)
        log.append(sim.now)
        yield sim.timeout(3.0)
        log.append(sim.now)

    sim.process(worker(sim))
    sim.run()
    assert log == [0.0, 2.0, 5.0]


def test_process_return_value_becomes_event_value(sim):
    def worker(sim):
        yield sim.timeout(1.0)
        return "result"

    proc = sim.process(worker(sim))
    assert sim.run(until=proc) == "result"


def test_process_waits_for_child_process(sim):
    def child(sim):
        yield sim.timeout(4.0)
        return 99

    def parent(sim):
        value = yield sim.process(child(sim))
        return value + 1

    proc = sim.process(parent(sim))
    assert sim.run(until=proc) == 100
    assert sim.now == 4.0


def test_timeout_value_is_sent_into_generator(sim):
    received = []

    def worker(sim):
        got = yield sim.timeout(1.0, value="hello")
        received.append(got)

    sim.process(worker(sim))
    sim.run()
    assert received == ["hello"]


def test_non_generator_rejected(sim):
    def not_a_generator(sim):
        return 5

    with pytest.raises(SchedulingError):
        sim.process(not_a_generator(sim))


def test_yielding_non_event_raises(sim):
    def worker(sim):
        yield 42

    sim.process(worker(sim))
    with pytest.raises(SchedulingError):
        sim.run()


def test_unhandled_exception_in_process_crashes_run(sim):
    def worker(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("model bug")

    sim.process(worker(sim))
    with pytest.raises(RuntimeError, match="model bug"):
        sim.run()


def test_exception_handled_by_waiting_parent(sim):
    def child(sim):
        yield sim.timeout(1.0)
        raise ValueError("expected")

    def parent(sim):
        try:
            yield sim.process(child(sim))
        except ValueError as exc:
            return f"caught {exc}"

    proc = sim.process(parent(sim))
    assert sim.run(until=proc) == "caught expected"


def test_is_alive_transitions(sim):
    def worker(sim):
        yield sim.timeout(5.0)

    proc = sim.process(worker(sim))
    assert proc.is_alive
    sim.run()
    assert not proc.is_alive


class TestInterrupt:
    def test_interrupt_delivers_cause(self, sim):
        causes = []

        def victim(sim):
            try:
                yield sim.timeout(100.0)
            except Interrupt as inter:
                causes.append((sim.now, inter.cause))

        def attacker(sim, target):
            yield sim.timeout(3.0)
            target.interrupt(cause="preempted")

        target = sim.process(victim(sim))
        sim.process(attacker(sim, target))
        sim.run()
        assert causes == [(3.0, "preempted")]

    def test_interrupted_process_can_continue(self, sim):
        log = []

        def victim(sim):
            try:
                yield sim.timeout(100.0)
            except Interrupt:
                pass
            yield sim.timeout(2.0)
            log.append(sim.now)

        def attacker(sim, target):
            yield sim.timeout(1.0)
            target.interrupt()

        target = sim.process(victim(sim))
        sim.process(attacker(sim, target))
        sim.run()
        assert log == [3.0]

    def test_uncaught_interrupt_fails_process(self, sim):
        def victim(sim):
            yield sim.timeout(100.0)

        def attacker(sim, target):
            yield sim.timeout(1.0)
            target.interrupt()

        target = sim.process(victim(sim))
        sim.process(attacker(sim, target))
        with pytest.raises(Interrupt):
            sim.run()

    def test_interrupting_dead_process_rejected(self, sim):
        def quick(sim):
            yield sim.timeout(1.0)

        proc = sim.process(quick(sim))
        sim.run()
        with pytest.raises(SchedulingError):
            proc.interrupt()

    def test_stale_target_event_ignored_after_interrupt(self, sim):
        # The timeout the victim was waiting on fires *after* the
        # interrupt; the process must not be resumed twice.
        resumed = []

        def victim(sim):
            try:
                yield sim.timeout(5.0)
            except Interrupt:
                resumed.append("interrupted")
            yield sim.timeout(10.0)
            resumed.append("done")

        def attacker(sim, target):
            yield sim.timeout(1.0)
            target.interrupt()

        target = sim.process(victim(sim))
        sim.process(attacker(sim, target))
        sim.run()
        assert resumed == ["interrupted", "done"]
        assert sim.now == 11.0


def test_process_name_defaults(sim):
    def myproc(sim):
        yield sim.timeout(1.0)

    proc = sim.process(myproc(sim), name="custom")
    assert proc.name == "custom"
    assert "custom" in repr(proc)
    sim.run()
    assert "dead" in repr(proc)


def test_two_processes_interleave_deterministically(sim):
    log = []

    def ticker(sim, label, period):
        while sim.now < 6:
            yield sim.timeout(period)
            log.append((sim.now, label))

    sim.process(ticker(sim, "a", 2.0))
    sim.process(ticker(sim, "b", 3.0))
    sim.run(until=7.0)
    # At t=6 both fire; b's timeout was scheduled earlier (at t=3, vs t=4
    # for a's), so FIFO tie-breaking runs b first.
    assert log == [(2.0, "a"), (3.0, "b"), (4.0, "a"), (6.0, "b"), (6.0, "a")]
