"""Backend resolution: scalar / batch / auto, with clean degradation.

:func:`repro.sim.backend.resolve_backend` is the single choke point
every entry point (sweep, replicate_sweep, the CLI) funnels a
``backend=`` argument through, so these tests pin its whole contract:
explicit choices are honoured, ``"batch"`` without numpy degrades to
scalar with a warning instead of crashing, and ``"auto"`` picks the
kernel only when numpy is present, the campaign is wide enough and
the model is supported.  Resolution must happen before task keys are
derived, so it must also be deterministic and never return "auto".
"""

from __future__ import annotations

import warnings

import pytest

from repro.core.system import SimulationConfig
from repro.sim import backend as backend_module
from repro.sim.backend import (
    AUTO_MIN_WIDTH,
    BackendFallbackWarning,
    batch_supported,
    numpy_available,
    resolve_backend,
)
from repro.workload.distributions import das_s_128

SIZES = das_s_128()


def config_for(policy="GS", **kw) -> SimulationConfig:
    base = dict(policy=policy, component_limit=16,
                warmup_jobs=10, measured_jobs=10)
    base.update(kw)
    return SimulationConfig(**base)


class TestExplicitChoices:
    def test_scalar_is_always_scalar(self):
        assert resolve_backend("scalar") == "scalar"
        assert resolve_backend("scalar", config_for(),
                               width=1000) == "scalar"

    def test_batch_with_numpy_stays_batch(self, monkeypatch):
        monkeypatch.setattr(backend_module, "numpy_available",
                            lambda: True)
        assert resolve_backend("batch") == "batch"

    def test_batch_without_numpy_degrades_with_warning(self, monkeypatch):
        monkeypatch.setattr(backend_module, "numpy_available",
                            lambda: False)
        with pytest.warns(BackendFallbackWarning):
            assert resolve_backend("batch") == "scalar"

    def test_unknown_backend_is_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("vectorized")


class TestAuto:
    def test_wide_supported_campaign_picks_batch(self, monkeypatch):
        monkeypatch.setattr(backend_module, "numpy_available",
                            lambda: True)
        assert resolve_backend("auto", config_for(),
                               width=AUTO_MIN_WIDTH,
                               size_distribution=SIZES) == "batch"

    def test_narrow_campaign_stays_scalar(self, monkeypatch):
        monkeypatch.setattr(backend_module, "numpy_available",
                            lambda: True)
        assert resolve_backend("auto", config_for(),
                               width=AUTO_MIN_WIDTH - 1,
                               size_distribution=SIZES) == "scalar"

    def test_auto_without_numpy_stays_scalar_silently(self, monkeypatch):
        monkeypatch.setattr(backend_module, "numpy_available",
                            lambda: False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_backend("auto", config_for(),
                                   width=64) == "scalar"

    def test_unsupported_model_stays_scalar(self, monkeypatch):
        monkeypatch.setattr(backend_module, "numpy_available",
                            lambda: True)
        exotic = config_for(placement="first-fit")
        assert resolve_backend("auto", exotic, width=64) == "scalar"

    def test_no_config_skips_the_support_check(self, monkeypatch):
        monkeypatch.setattr(backend_module, "numpy_available",
                            lambda: True)
        assert resolve_backend("auto", width=64) == "batch"


class TestBatchSupported:
    def test_paper_policies_under_worst_fit_are_supported(self):
        for policy in ("GS", "LS", "LP"):
            assert batch_supported(config_for(policy), SIZES)
        assert batch_supported(
            SimulationConfig.single_cluster(warmup_jobs=1,
                                            measured_jobs=1), SIZES)

    def test_non_worst_fit_placement_is_unsupported(self):
        assert not batch_supported(config_for(placement="first-fit"))

    def test_continuous_size_distribution_is_unsupported(self):
        class Continuous:
            support = None

        assert not batch_supported(config_for(), Continuous())

    def test_numpy_available_matches_reality(self):
        # The real probe must agree with an actual import attempt.
        try:
            import numpy  # noqa: F401
            importable = True
        except ImportError:
            importable = False
        assert numpy_available() == importable
