"""Unit and statistical tests for the input distributions."""

import math

import numpy as np
import pytest

from repro.sim import (
    ContinuousEmpirical,
    Deterministic,
    DiscreteEmpirical,
    Erlang,
    Exponential,
    Hyperexponential,
    Lognormal,
    Mixture,
    Scaled,
    TruncatedLognormal,
    Uniform,
)

RNG = np.random.default_rng(12345)
N = 50_000


def check_moments(dist, n=N, rel_tol=0.05):
    """Sample mean/std must match the analytic moments within tolerance."""
    draws = dist.sample_array(np.random.default_rng(7), n)
    assert abs(draws.mean() - dist.mean) <= rel_tol * max(dist.mean, 1e-12)
    if dist.variance > 0:
        assert abs(draws.std() - math.sqrt(dist.variance)) <= (
            2 * rel_tol * math.sqrt(dist.variance)
        )


class TestDeterministic:
    def test_constant(self):
        d = Deterministic(7.5)
        assert d.sample(RNG) == 7.5
        assert d.mean == 7.5
        assert d.variance == 0.0
        assert np.all(d.sample_array(RNG, 10) == 7.5)


class TestExponential:
    def test_moments(self):
        check_moments(Exponential(3.0))

    def test_cv_is_one(self):
        assert Exponential(5.0).cv == pytest.approx(1.0)

    def test_rate(self):
        assert Exponential(4.0).rate == 0.25

    def test_invalid_mean(self):
        with pytest.raises(ValueError):
            Exponential(0.0)

    def test_nonnegative(self):
        draws = Exponential(1.0).sample_array(RNG, 1000)
        assert np.all(draws >= 0)


class TestUniform:
    def test_moments(self):
        check_moments(Uniform(2.0, 8.0))

    def test_support(self):
        draws = Uniform(2.0, 8.0).sample_array(RNG, 1000)
        assert np.all((draws >= 2.0) & (draws < 8.0))

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Uniform(3.0, 3.0)


class TestErlang:
    def test_moments(self):
        check_moments(Erlang(4, 10.0))

    def test_cv_below_one(self):
        assert Erlang(4, 10.0).cv == pytest.approx(0.5)

    def test_k_one_is_exponential(self):
        e = Erlang(1, 2.0)
        assert e.cv == pytest.approx(1.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            Erlang(0, 1.0)


class TestHyperexponential:
    def test_moments(self):
        check_moments(Hyperexponential(0.3, 1.0, 10.0))

    def test_cv_above_one(self):
        assert Hyperexponential(0.3, 1.0, 10.0).cv > 1.0

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Hyperexponential(1.5, 1.0, 2.0)


class TestLognormal:
    def test_moments(self):
        check_moments(Lognormal(mean=100.0, cv=1.5), rel_tol=0.08)

    def test_mean_cv_parameterisation(self):
        d = Lognormal(mean=50.0, cv=0.8)
        assert d.mean == pytest.approx(50.0)
        assert d.cv == pytest.approx(0.8)

    def test_positive(self):
        draws = Lognormal(10.0, 2.0).sample_array(RNG, 1000)
        assert np.all(draws > 0)


class TestTruncatedLognormal:
    def test_support_respected(self):
        base = Lognormal(mean=300.0, cv=1.5)
        d = TruncatedLognormal(base, low=1.0, high=900.0)
        draws = d.sample_array(np.random.default_rng(3), 5000)
        assert np.all((draws >= 1.0) & (draws <= 900.0))

    def test_scalar_sample_in_support(self):
        base = Lognormal(mean=300.0, cv=1.5)
        d = TruncatedLognormal(base, low=1.0, high=900.0)
        for _ in range(50):
            assert 1.0 <= d.sample(RNG) <= 900.0

    def test_moments_match_samples(self):
        base = Lognormal(mean=300.0, cv=1.0)
        d = TruncatedLognormal(base, high=900.0)
        check_moments(d, rel_tol=0.05)

    def test_mean_below_cutoff(self):
        base = Lognormal(mean=300.0, cv=1.5)
        d = TruncatedLognormal(base, high=900.0)
        assert d.mean < 900.0
        assert d.mean < base.mean  # truncation removes the upper tail

    def test_negligible_mass_rejected(self):
        base = Lognormal(mean=1.0, cv=0.1)
        with pytest.raises(ValueError):
            TruncatedLognormal(base, low=1e6, high=2e6)


class TestDiscreteEmpirical:
    def test_probabilities_normalised(self):
        d = DiscreteEmpirical([1, 2, 4], [2.0, 2.0, 4.0])
        assert d.probabilities.sum() == pytest.approx(1.0)
        assert d.prob(4) == pytest.approx(0.5)
        assert d.prob(3) == 0.0

    def test_mean_and_variance(self):
        d = DiscreteEmpirical([0, 10], [0.5, 0.5])
        assert d.mean == pytest.approx(5.0)
        assert d.variance == pytest.approx(25.0)

    def test_sampling_frequencies(self):
        d = DiscreteEmpirical([1, 2, 3], [0.2, 0.3, 0.5])
        draws = d.sample_array(np.random.default_rng(1), 100_000)
        for value, p in zip([1, 2, 3], [0.2, 0.3, 0.5]):
            freq = np.mean(draws == value)
            assert abs(freq - p) < 0.01

    def test_cdf(self):
        d = DiscreteEmpirical([1, 2, 4], [0.25, 0.25, 0.5])
        assert d.cdf(0.5) == 0.0
        assert d.cdf(1) == pytest.approx(0.25)
        assert d.cdf(3) == pytest.approx(0.5)
        assert d.cdf(4) == pytest.approx(1.0)

    def test_truncate(self):
        d = DiscreteEmpirical([1, 2, 4, 8], [0.25] * 4)
        cut = d.truncate(4)
        assert list(cut.support) == [1, 2, 4]
        assert cut.probabilities.sum() == pytest.approx(1.0)
        assert cut.prob(2) == pytest.approx(1 / 3)

    def test_truncate_below_support_rejected(self):
        d = DiscreteEmpirical([5, 6], [1, 1])
        with pytest.raises(ValueError):
            d.truncate(4)

    def test_from_samples(self):
        d = DiscreteEmpirical.from_samples([1, 1, 2, 2, 2, 5])
        assert d.prob(2) == pytest.approx(0.5)
        assert d.mean == pytest.approx(13 / 6)

    def test_expectation(self):
        d = DiscreteEmpirical([1, 2], [0.5, 0.5])
        assert d.expectation(lambda x: x * x) == pytest.approx(2.5)

    def test_unsorted_input_sorted(self):
        d = DiscreteEmpirical([4, 1, 2], [0.5, 0.25, 0.25])
        assert list(d.support) == [1, 2, 4]

    def test_validation(self):
        with pytest.raises(ValueError):
            DiscreteEmpirical([], [])
        with pytest.raises(ValueError):
            DiscreteEmpirical([1], [-1.0])
        with pytest.raises(ValueError):
            DiscreteEmpirical([1, 2], [0.0, 0.0])


class TestContinuousEmpirical:
    def test_from_samples_roundtrip(self):
        src = np.random.default_rng(2).exponential(100.0, 20_000)
        d = ContinuousEmpirical.from_samples(src, bins=200)
        assert d.mean == pytest.approx(src.mean(), rel=0.05)
        draws = d.sample_array(np.random.default_rng(3), 20_000)
        assert draws.mean() == pytest.approx(src.mean(), rel=0.05)

    def test_support_within_edges(self):
        d = ContinuousEmpirical([0.0, 1.0, 2.0], [1.0, 1.0])
        draws = d.sample_array(RNG, 1000)
        assert np.all((draws >= 0.0) & (draws <= 2.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            ContinuousEmpirical([0, 1], [1, 2])  # edge/count mismatch
        with pytest.raises(ValueError):
            ContinuousEmpirical([0, 0, 1], [1, 1])  # non-increasing
        with pytest.raises(ValueError):
            ContinuousEmpirical([0, 1, 2], [0, 0])  # zero mass


class TestWeibull:
    def test_shape_one_is_exponential(self):
        from repro.sim import Weibull

        w = Weibull(scale=5.0, shape=1.0)
        assert w.mean == pytest.approx(5.0)
        assert w.cv == pytest.approx(1.0)

    def test_moments(self):
        from repro.sim import Weibull

        check_moments(Weibull(scale=10.0, shape=0.7), rel_tol=0.08)

    def test_heavy_tail_below_one_shape(self):
        from repro.sim import Weibull

        assert Weibull(1.0, 0.5).cv > 1.0
        assert Weibull(1.0, 2.0).cv < 1.0

    def test_validation(self):
        from repro.sim import Weibull

        with pytest.raises(ValueError):
            Weibull(0.0, 1.0)
        with pytest.raises(ValueError):
            Weibull(1.0, -1.0)


class TestBoundedPareto:
    def test_support(self):
        from repro.sim import BoundedPareto

        d = BoundedPareto(alpha=1.1, low=1.0, high=1000.0)
        draws = d.sample_array(np.random.default_rng(5), 5000)
        assert np.all((draws >= 1.0) & (draws <= 1000.0))

    def test_moments_match_samples(self):
        from repro.sim import BoundedPareto

        d = BoundedPareto(alpha=1.5, low=1.0, high=500.0)
        check_moments(d, n=200_000, rel_tol=0.05)

    def test_alpha_equal_moment_degenerate_case(self):
        from repro.sim import BoundedPareto

        # alpha == 1: the mean integral has a log form; must still be
        # finite and bracketed by the support.
        d = BoundedPareto(alpha=1.0, low=1.0, high=100.0)
        assert 1.0 < d.mean < 100.0
        draws = d.sample_array(np.random.default_rng(6), 200_000)
        assert d.mean == pytest.approx(draws.mean(), rel=0.05)

    def test_heavier_tail_with_smaller_alpha(self):
        from repro.sim import BoundedPareto

        heavy = BoundedPareto(0.9, 1.0, 10_000.0)
        light = BoundedPareto(2.5, 1.0, 10_000.0)
        assert heavy.cv > light.cv

    def test_validation(self):
        from repro.sim import BoundedPareto

        with pytest.raises(ValueError):
            BoundedPareto(0.0, 1.0, 10.0)
        with pytest.raises(ValueError):
            BoundedPareto(1.0, 5.0, 5.0)
        with pytest.raises(ValueError):
            BoundedPareto(1.0, 0.0, 5.0)


class TestMixtureAndScaled:
    def test_mixture_mean(self):
        m = Mixture([Deterministic(0.0), Deterministic(10.0)], [0.5, 0.5])
        assert m.mean == pytest.approx(5.0)
        assert m.variance == pytest.approx(25.0)

    def test_mixture_sampling(self):
        m = Mixture([Deterministic(1.0), Deterministic(2.0)], [0.25, 0.75])
        draws = [m.sample(np.random.default_rng(i)) for i in range(2000)]
        assert abs(np.mean(draws) - 1.75) < 0.05

    def test_scaled_models_extension_factor(self):
        base = Exponential(100.0)
        scaled = Scaled(base, 1.25)
        assert scaled.mean == pytest.approx(125.0)
        assert scaled.cv == pytest.approx(base.cv)

    def test_scaled_sampling(self):
        d = Scaled(Deterministic(4.0), 1.25)
        assert d.sample(RNG) == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Mixture([], [])
        with pytest.raises(ValueError):
            Scaled(Deterministic(1.0), 0.0)
