"""Heterogeneous lanes: one kernel, many configurations, exact oracle.

``test_batch_oracle.py`` pins the homogeneous case — N seeds of one
configuration.  This file pins what PR 9 generalized: lanes of one
:class:`~repro.sim.batch.BatchLaneKernel` may differ in arrival rate,
component limit, routing weights, warmup/measured targets and batch
size, and retired lanes may be *reloaded* with fresh work mid-flight.
Every lane must still reproduce its own scalar run bit for bit — the
same no-approx contract as the oracle suite.

Also pinned here: the bounded placement memo (satellite of the same
PR).  Capping the cache changes *which* placements are memoized, never
what any placement decision is, so a cap-1 kernel and an unbounded one
are byte-identical — only the eviction counters differ.
"""

import dataclasses

import pytest

np = pytest.importorskip("numpy")

from repro.analysis.points import SweepPoint  # noqa: E402
from repro.core.system import SimulationConfig, run_open_system  # noqa: E402
from repro.obs.registry import REGISTRY  # noqa: E402
from repro.sim.batch import (  # noqa: E402
    PLACE_CACHE_CAP,
    BatchBackendError,
    BatchLaneKernel,
)
from repro.sim.rng import StreamFactory  # noqa: E402
from repro.workload import stats_model  # noqa: E402
from repro.workload.distributions import das_s_128, das_t_900  # noqa: E402
from repro.workload.generator import JobFactory  # noqa: E402

SIZES = das_s_128()
SERVICE = das_t_900()
BALANCED = stats_model.BALANCED_WEIGHTS
UNBALANCED = stats_model.UNBALANCED_WEIGHTS


def make_config(policy, limit=16, weights=BALANCED, seed=7, warmup=50,
                measured=200, batch=50):
    if policy == "SC":
        return SimulationConfig.single_cluster(
            seed=seed, warmup_jobs=warmup, measured_jobs=measured,
            batch_size=batch,
        )
    return SimulationConfig(
        policy=policy, component_limit=limit, routing_weights=weights,
        seed=seed, warmup_jobs=warmup, measured_jobs=measured,
        batch_size=batch,
    )


def scalar_point(config, offered):
    """The scalar engine's point for one (config, offered) cell."""
    factory = JobFactory(
        SIZES, SERVICE, config.component_limit,
        clusters=len(config.capacities),
        extension_factor=config.extension_factor,
        routing_weights=config.routing_weights,
        streams=StreamFactory(0),
    )
    rate = factory.arrival_rate_for_gross_utilization(
        offered, config.capacity
    )
    return SweepPoint.from_result(
        run_open_system(config, SIZES, SERVICE, rate)
    )


def run_hetero(policy_template, cells, width, **kernel_kw):
    """Feed ``cells`` ((config, offered) pairs) through ``width`` lanes.

    Retired lanes are refilled from the remaining cells, so any
    ``width < len(cells)`` exercises mid-flight slot reuse.  Returns
    points in cell order.
    """
    kernel = BatchLaneKernel(policy_template, SIZES, SERVICE, width,
                             **kernel_kw)
    pending = list(enumerate(cells))
    free = list(range(width))
    loaded = {}
    points = {}
    while pending or not kernel.idle:
        while free and pending:
            slot = free.pop()
            index, (config, offered) = pending.pop(0)
            kernel.load(slot, config, offered)
            loaded[slot] = index
        kernel.step()
        for slot, point in kernel.drain_retired():
            points[loaded.pop(slot)] = point
            free.append(slot)
    return [points[i] for i in range(len(cells))], kernel


class TestHeterogeneousLanes:
    def test_mixed_rho_limit_and_seed_lanes_match_scalar(self):
        """Every lane differs in load, limit and seed at once."""
        cells = [
            (make_config("GS", limit=limit, seed=seed), offered)
            for limit, seed, offered in [
                (16, 7, 0.45), (24, 1007, 0.65), (32, 2007, 0.8),
                (16, 3007, 0.8), (24, 4007, 0.45),
            ]
        ]
        template = cells[0][0]
        actual, _ = run_hetero(template, cells, width=len(cells))
        for (config, offered), got in zip(cells, actual):
            assert got == scalar_point(config, offered)

    def test_mixed_run_lengths_and_batch_sizes_match_scalar(self):
        """Warmup, measured-job and batch-means targets are per lane."""
        cells = [
            (make_config("LS", warmup=w, measured=m, batch=b,
                         seed=100 + 7 * i), 0.7)
            for i, (w, m, b) in enumerate(
                [(0, 120, 30), (50, 200, 50), (25, 300, 100),
                 (80, 160, 40)])
        ]
        template = cells[0][0]
        actual, _ = run_hetero(template, cells, width=len(cells))
        for (config, offered), got in zip(cells, actual):
            assert got == scalar_point(config, offered)

    def test_mixed_routing_weights_match_scalar(self):
        """Balanced and unbalanced queue routing coexist as lanes."""
        cells = [
            (make_config("LP", weights=BALANCED, seed=11), 0.75),
            (make_config("LP", weights=UNBALANCED, seed=11), 0.75),
            (make_config("LP", weights=UNBALANCED, seed=2011), 0.6),
        ]
        template = cells[0][0]
        actual, _ = run_hetero(template, cells, width=len(cells))
        for (config, offered), got in zip(cells, actual):
            assert got == scalar_point(config, offered)

    @pytest.mark.parametrize("policy", ["GS", "LS", "LP", "SC"])
    def test_refill_with_fewer_lanes_than_cells(self, policy):
        """width 2 over 5 cells: three slots are reused mid-flight."""
        limits = [16, 24, 32, 16, 24]
        rhos = [0.5, 0.7, 0.6, 0.8, 0.45]
        cells = [
            (make_config(policy, limit=limit, seed=7 + 1000 * i,
                         warmup=30, measured=120, batch=30), rho)
            for i, (limit, rho) in enumerate(zip(limits, rhos))
        ]
        template = cells[0][0]
        actual, _ = run_hetero(template, cells, width=2)
        for (config, offered), got in zip(cells, actual):
            assert got == scalar_point(config, offered)

    def test_load_rejects_occupied_and_mismatched_slots(self):
        config = make_config("GS")
        kernel = BatchLaneKernel(config, SIZES, SERVICE, 2)
        kernel.load(0, config, 0.6)
        with pytest.raises(BatchBackendError):
            kernel.load(0, dataclasses.replace(config, seed=8), 0.6)
        with pytest.raises(BatchBackendError):
            kernel.load(1, make_config("LS"), 0.6)
        with pytest.raises(BatchBackendError):
            kernel.load(2, config, 0.6)


class TestBoundedPlacementMemo:
    def test_default_cap_is_bounded(self):
        assert BatchLaneKernel(make_config("GS"), SIZES, SERVICE, 1
                               )._place_cap == PLACE_CACHE_CAP

    def test_cap_one_is_byte_identical_to_unbounded(self):
        """Eviction pressure changes memoization, never decisions."""
        cells = [
            (make_config("GS", limit=limit, seed=7 + 1000 * i,
                         warmup=30, measured=150, batch=30), rho)
            for i, (limit, rho) in enumerate(
                zip([16, 24, 32], [0.7, 0.8, 0.75]))
        ]
        template = cells[0][0]
        capped, capped_kernel = run_hetero(
            template, cells, width=3, place_cache_cap=1)
        unbounded, roomy_kernel = run_hetero(
            template, cells, width=3, place_cache_cap=1 << 30)
        assert capped == unbounded
        assert capped_kernel.place_evictions > 0
        assert roomy_kernel.place_evictions == 0

    def test_evictions_feed_the_registry_counter(self):
        counter = REGISTRY.counter("batch.place_cache.evictions")
        before = counter.value
        cells = [(make_config("GS", warmup=20, measured=100,
                              batch=25), 0.7)]
        _, kernel = run_hetero(cells[0][0], cells, width=1,
                               place_cache_cap=1)
        assert kernel.place_evictions > 0
        assert counter.value - before == kernel.place_evictions

    def test_invalid_cap_is_rejected(self):
        with pytest.raises(BatchBackendError):
            BatchLaneKernel(make_config("GS"), SIZES, SERVICE, 1,
                            place_cache_cap=0)
