"""The shipped tree is simlint-clean.

This is the enforcement half of the simlint subsystem: the rules in
:mod:`repro.lint.rules` only protect the determinism/typing invariants
if the gate actually runs, so the suite fails the moment a violation
lands in ``src/repro``.
"""

from __future__ import annotations

import pathlib

from repro.lint import lint_paths

SRC = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"


def test_source_tree_exists() -> None:
    assert SRC.is_dir(), f"source tree not found at {SRC}"


def test_shipped_tree_is_violation_free() -> None:
    result = lint_paths([SRC])
    formatted = "\n".join(v.format() for v in result.violations)
    assert not result.violations, f"simlint violations:\n{formatted}"
    assert not result.errors, f"unparsable files: {result.errors}"
    # Sanity: the run actually covered the package, rather than linting
    # an empty directory and vacuously passing.
    assert result.files_checked > 50


def test_exit_code_clean() -> None:
    assert lint_paths([SRC]).exit_code() == 0
