#!/usr/bin/env bash
# One-command quality gate: simlint -> ruff -> mypy -> pytest.
#
# Exits non-zero on the first failing step.  ruff and mypy are optional
# tooling (install with `pip install -e .[dev]`); when a tool is not on
# PATH the step is skipped with a notice rather than failing, so the
# gate stays runnable in minimal environments — simlint and pytest
# always run.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

step() {
    printf '\n==> %s\n' "$*"
}

step "simlint (python -m repro.lint src/repro)"
python -m repro.lint src/repro

if command -v ruff >/dev/null 2>&1; then
    step "ruff check src tests"
    ruff check src tests
else
    step "ruff not installed — skipping (pip install -e .[dev])"
fi

if command -v mypy >/dev/null 2>&1; then
    step "mypy --strict src/repro/sim src/repro/core"
    mypy --strict src/repro/sim src/repro/core
else
    step "mypy not installed — skipping (pip install -e .[dev])"
fi

step "pytest"
python -m pytest -x -q

step "all checks passed"
