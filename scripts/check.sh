#!/usr/bin/env bash
# One-command quality gate: simlint -> ruff -> mypy -> pytest.
#
# Fails fast: the first failing step aborts the gate and the script
# exits with THAT tool's exit code (not a generic 1), so CI and
# pre-commit hooks can distinguish lint violations (1), parse errors
# (2), test failures, etc.
#
# ruff and mypy are optional tooling (install with `pip install -e
# .[dev]`); when a tool is not on PATH the step is skipped with a
# notice rather than failing, so the gate stays runnable in minimal
# environments — simlint and pytest always run.
#
# Usage:
#   scripts/check.sh                 # full gate
#   scripts/check.sh --changed-only  # lint/ruff only files touched vs
#                                    # HEAD (plus untracked), for fast
#                                    # pre-commit runs
set -uo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

CHANGED_ONLY=0
for arg in "$@"; do
    case "$arg" in
        --changed-only) CHANGED_ONLY=1 ;;
        -h|--help)
            grep '^#' "$0" | sed 's/^# \{0,1\}//' | sed -n '2,18p'
            exit 0
            ;;
        *)
            echo "unknown argument: $arg (try --help)" >&2
            exit 64
            ;;
    esac
done

run_step() {
    local name="$1"
    shift
    printf '\n==> %s\n' "$name"
    "$@"
    local code=$?
    if [ "$code" -ne 0 ]; then
        printf '\ncheck.sh: FAILED at "%s" (exit %d)\n' "$name" "$code" >&2
        exit "$code"
    fi
}

notice() {
    printf '\n==> %s\n' "$*"
}

# Changed .py files vs HEAD, plus untracked ones (NUL-safe is overkill
# here: the tree forbids whitespace in tracked names).  Scoped to
# src/ — the same tree the full gate lints; files outside a package
# root would get every rule regardless of scope and fail spuriously.
changed_py_files() {
    {
        git diff --name-only HEAD -- 'src/*.py'
        git ls-files --others --exclude-standard -- 'src/*.py'
    } | sort -u
}

if [ "$CHANGED_ONLY" -eq 1 ]; then
    mapfile -t CHANGED < <(changed_py_files)
    if [ "${#CHANGED[@]}" -eq 0 ]; then
        notice "no changed Python files — lint steps skipped"
    else
        run_step "simlint (changed files only)" \
            python -m repro.lint "${CHANGED[@]}"
        if command -v ruff >/dev/null 2>&1; then
            run_step "ruff check (changed files only)" \
                ruff check "${CHANGED[@]}"
        else
            notice "ruff not installed — skipping (pip install -e .[dev])"
        fi
    fi
else
    run_step "simlint (python -m repro.lint src/repro)" \
        python -m repro.lint src/repro
    if command -v ruff >/dev/null 2>&1; then
        run_step "ruff check src tests" ruff check src tests
    else
        notice "ruff not installed — skipping (pip install -e .[dev])"
    fi
fi

# The simulation layers (and therefore the test suite and strict
# typing of src/repro/sim + src/repro/core) need numpy, which ships
# under the [batch] extra.  Without it the gate still runs everything
# numpy-free — simlint and ruff above — and skips the rest with a
# notice instead of failing on an ImportError cascade.
if python -c "import numpy" >/dev/null 2>&1; then
    HAVE_NUMPY=1
else
    HAVE_NUMPY=0
fi

if [ "$HAVE_NUMPY" -eq 0 ]; then
    notice "numpy not installed — skipping mypy and pytest" \
           "(pip install -e '.[batch]' for the numeric stack)"
elif command -v mypy >/dev/null 2>&1; then
    run_step "mypy --strict src/repro/sim src/repro/core" \
        mypy --strict src/repro/sim src/repro/core
else
    notice "mypy not installed — skipping (pip install -e .[dev])"
fi

if [ "$HAVE_NUMPY" -eq 1 ]; then
    run_step "pytest" python -m pytest -x -q
fi

notice "all checks passed"
