#!/usr/bin/env python
"""CI telemetry smoke: one faulted campaign through every consumer.

Runs a small sweep in which the first task's worker is killed once
(crash fault + retry), then points the whole telemetry read side at
the artifacts it left behind:

* the **dashboard** must show the campaign complete with exactly one
  retried task (snapshot saved as ``dashboard.txt``);
* the **span exporter** must produce a Chrome trace-event JSON with a
  span for every attempt, the failed one included
  (``campaign.trace.json`` — load it in https://ui.perfetto.dev);
* every published **event log** must validate cleanly against the
  registered event schemas.

Exit status 0 only when every check passes.  All artifacts land in
``--out-dir`` (default ``telemetry-smoke/``) so CI can upload them.

Usage::

    PYTHONPATH=src python scripts/telemetry_smoke.py
    PYTHONPATH=src python scripts/telemetry_smoke.py --out-dir /tmp/ts
"""

from __future__ import annotations

import argparse
import io
import json
import os
import sys
from pathlib import Path

GRID = (0.35, 0.55)


def _fail(message: str) -> None:
    print(f"FAIL  {message}")
    raise SystemExit(1)


def _ok(message: str) -> None:
    print(f"ok    {message}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out-dir", default="telemetry-smoke",
                        help="artifact directory (created if missing)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes for the campaign")
    args = parser.parse_args(argv)

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    obs_root = out_dir / "obs"
    faults_dir = out_dir / "faults"
    faults_dir.mkdir(exist_ok=True)

    # Environment before any worker forks: obs on, faults armed.
    from repro.obs.gate import OBS_DIR_ENV, OBS_ENV
    from repro.runner.faults import FAULTS_ENV

    os.environ[OBS_ENV] = "1"
    os.environ[OBS_DIR_ENV] = str(obs_root)
    os.environ[FAULTS_ENV] = str(faults_dir)

    from repro.analysis.sweeps import sweep, sweep_tasks
    from repro.core import SimulationConfig
    from repro.obs.cli import validate
    from repro.obs.dash import collect, render
    from repro.obs.spans import SpanRecorder, export_chrome_trace
    from repro.runner import ResultCache, RetryPolicy, task_keys
    from repro.runner.faults import Fault, plan_fault
    from repro.workload import das_s_128, das_t_900

    config = SimulationConfig(policy="LS", component_limit=16,
                              warmup_jobs=100, measured_jobs=400,
                              seed=7, batch_size=100)
    sizes, service = das_s_128(), das_t_900()
    keys = task_keys(sweep_tasks(config, sizes, service, GRID))
    plan_fault(faults_dir, Fault(key=keys[0], kind="crash"))
    cache = ResultCache(out_dir / "cache")

    print(f"running faulted campaign ({len(keys)} tasks, crash armed "
          f"on task 1, {args.workers} workers)")
    recorder = SpanRecorder()
    with recorder:
        sweep("LS", config, sizes, service, GRID,
              workers=args.workers, cache=cache,
              retry=RetryPolicy(max_attempts=2, backoff_base=0.01,
                                backoff_cap=0.05))
    _ok("campaign survived the injected crash")

    # -- dashboard ---------------------------------------------------------
    data = collect(obs_root, cache.root)
    frame = render(data, ascii_only=True)
    (out_dir / "dashboard.txt").write_text(frame, encoding="utf-8")
    print(frame)
    if data.runs != len(keys):
        _fail(f"dashboard shows {data.runs} runs, expected {len(keys)}")
    if data.tasks_retried != 1 or data.extra_attempts != 1:
        _fail(f"dashboard retry counters wrong: "
              f"retried={data.tasks_retried} "
              f"extra={data.extra_attempts}")
    rows = [r for r in data.campaigns if r.status == "complete"
            and (r.done, r.total) == (len(keys), len(keys))]
    if not rows:
        _fail(f"no complete {len(keys)}/{len(keys)} campaign row: "
              f"{data.campaigns}")
    _ok("dashboard snapshot shows full progress and one retry")

    # -- Perfetto trace ----------------------------------------------------
    trace_path = out_dir / "campaign.trace.json"
    export_chrome_trace(recorder, trace_path)
    payload = json.loads(trace_path.read_text(encoding="utf-8"))
    attempts = [e for e in payload["traceEvents"]
                if e.get("cat") == "attempt"]
    failed = [e for e in attempts if e["args"]["status"] == "failed"]
    if len(attempts) != len(keys) + 1:
        _fail(f"trace has {len(attempts)} attempt spans, expected "
              f"{len(keys) + 1}")
    if len(failed) != 1 or failed[0]["args"]["key"] != keys[0]:
        _fail(f"expected one failed attempt span for task 1, got "
              f"{[e['args'] for e in failed]}")
    if not any(e.get("cat") == "campaign"
               for e in payload["traceEvents"]):
        _fail("trace has no campaign span")
    _ok(f"trace export: {len(attempts)} attempt spans "
        f"({len(failed)} failed) -> {trace_path}")

    # -- schema validation -------------------------------------------------
    report = io.StringIO()
    rc = validate(str(obs_root), stream=report)
    sys.stdout.write(report.getvalue())
    if rc != 0:
        _fail("event logs did not validate cleanly")
    _ok("every published event log validates against the schemas")

    print("telemetry smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
