#!/usr/bin/env python
"""Compare all four scheduling policies across the load range.

Reproduces the experiment behind the paper's Figure 3 (L = 16, balanced
local queues): response-time-vs-utilization curves for LS, GS, LP in the
4x32 multicluster and FCFS total requests in a single 128-processor
cluster (SC).  Thanks to common random numbers (one master seed feeding
identical workload streams to every policy), the differences between the
curves are policy effects, not sampling noise.

Run:  python examples/policy_comparison.py [--full]
"""

import argparse

from repro import SimulationConfig
from repro.analysis import line_plot, rank_by_performance, sweep, tables
from repro.workload import das_s_128, das_t_900
from repro.workload.stats_model import SINGLE_CLUSTER_SIZE


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--full", action="store_true",
                        help="paper-grade run lengths (slower)")
    parser.add_argument("--limit", type=int, default=16,
                        choices=[16, 24, 32])
    args = parser.parse_args()

    warmup, measured = (4_000, 25_000) if args.full else (1_000, 6_000)
    grid = tuple(round(0.2 + 0.05 * i, 2) for i in range(14))

    sizes, service = das_s_128(), das_t_900()
    results = []
    for policy in ("LS", "SC", "GS", "LP"):
        kwargs = dict(policy=policy, component_limit=args.limit,
                      warmup_jobs=warmup, measured_jobs=measured, seed=7)
        if policy == "SC":
            kwargs.update(capacities=(SINGLE_CLUSTER_SIZE,),
                          component_limit=None)
        config = SimulationConfig(**kwargs)
        print(f"sweeping {policy} ...")
        results.append(sweep(policy, config, sizes, service,
                             utilizations=grid))

    print()
    print(tables.render_sweeps(
        results,
        title=f"Policies at component-size limit {args.limit} "
              "(balanced local queues)",
    ))
    print()
    print(line_plot(
        {s.label: s.series() for s in results},
        x_label="gross utilization",
        y_label="mean response time (s)",
        y_range=(0, 10_000),
        title="Figure-3-style curves (clipped at response 10000)",
    ))
    print()
    ranking = rank_by_performance(results)
    print(f"Best policy for this workload: {ranking[0]} "
          f"(full order: {' > '.join(ranking)})")


if __name__ == "__main__":
    main()
