#!/usr/bin/env python
"""Trace tooling: generate, export, re-import and analyse a DAS1 log.

Shows the workload-substrate path end to end:

1. generate the synthetic DAS1 log (marginals match the paper's Table 1
   and the Figure 1/2 densities);
2. export it in Standard Workload Format (the format of the Parallel
   Workloads Archive, where the public DAS2 traces live);
3. read it back and derive the empirical DAS-s-128 / DAS-s-64 /
   DAS-t-900 distributions exactly as the authors derived theirs;
4. drive a short simulation from the *trace-derived* distributions and
   compare against the canonical ones.

Run:  python examples/trace_tools.py
"""

import tempfile
from pathlib import Path

from repro import SimulationConfig, run_open_system
from repro.analysis import bar_chart
from repro.sim import StreamFactory
from repro.workload import (
    JobFactory,
    das_s_128,
    generate_das_log,
    read_swf,
    service_distribution_from_log,
    size_distribution_from_log,
    size_histogram,
    summarize_log,
    write_swf,
)


def main() -> None:
    # 1. Generate.
    log = generate_das_log(seed=2003, num_jobs=30_000)
    summary = summarize_log(log)
    print(f"generated {summary.num_jobs} jobs, "
          f"{summary.num_users} users, "
          f"{summary.num_distinct_sizes} distinct sizes, "
          f"mean size {summary.mean_size:.2f}, "
          f"mean runtime {summary.mean_runtime:.0f}s")

    # 2. Export to SWF and 3. read back.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "das1-synthetic.swf"
        write_swf(log, path)
        print(f"exported to {path.name} "
              f"({path.stat().st_size // 1024} KiB)")
        records = read_swf(path)
    assert len(records) == len(log)

    sizes = size_distribution_from_log(records)
    service = service_distribution_from_log(records)
    canonical = das_s_128()
    print(f"trace-derived size distribution: mean {sizes.mean:.2f} "
          f"(canonical {canonical.mean:.2f})")

    hist = size_histogram(records)
    top = dict(sorted(hist.items(), key=lambda kv: -kv[1])[:10])
    print()
    print(bar_chart(top, title="ten most frequent job sizes "
                               "(the paper's Figure 1 spikes)",
                    sort_keys=True))

    # 4. Simulate from the trace-derived distributions.
    config = SimulationConfig(policy="GS", component_limit=16,
                              warmup_jobs=500, measured_jobs=4_000,
                              seed=5)
    factory = JobFactory(sizes, service, 16,
                         streams=StreamFactory(config.seed))
    rate = factory.arrival_rate_for_gross_utilization(0.5, 128)
    result = run_open_system(config, sizes, service, rate)
    print()
    print(f"GS at offered gross utilization 0.5 (trace-derived inputs): "
          f"mean response {result.mean_response:.0f}s, "
          f"measured gross util {result.gross_utilization:.3f}")


if __name__ == "__main__":
    main()
