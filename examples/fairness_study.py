#!/usr/bin/env python
"""Fairness: who pays for co-allocation?

The paper reports mean response times; a mean can hide the fact that
one class of jobs absorbs all the queueing pain.  This example runs LS
and GS at a common load with a 20-user Zipf workload and reports

* bounded slowdown per job-size class (the whole-machine jobs starve,
  the tiny jobs sail through),
* Jain's fairness index across users and across size classes,
* the worst/best class ratio for each policy.

Run:  python examples/fairness_study.py
"""

from repro import MulticlusterSimulation
from repro.metrics import FairnessTracker
from repro.sim import StreamFactory
from repro.workload import ArrivalProcess, JobFactory, das_s_128, das_t_900


def run_policy(policy: str, utilization: float = 0.6,
               jobs: int = 12_000) -> FairnessTracker:
    system = MulticlusterSimulation(policy)
    tracker = FairnessTracker(metric="bounded_slowdown")
    system.on_departure_hook = tracker.record_job
    factory = JobFactory(das_s_128(), das_t_900(), 16,
                         streams=StreamFactory(31), num_users=20)
    rate = factory.arrival_rate_for_gross_utilization(utilization, 128)
    ArrivalProcess(system.sim, factory, rate, system.submit,
                   limit=jobs, rng=StreamFactory(31).get("iat"))
    system.sim.run()
    return tracker


def main() -> None:
    print("Bounded slowdown by job-size class at gross utilization 0.6")
    print(f"{'class':<16}", end="")
    trackers = {}
    for policy in ("LS", "GS"):
        trackers[policy] = run_policy(policy)
        print(f"{policy:>10}", end="")
    print()

    classes = sorted(
        set(trackers["LS"].class_means()) | set(trackers["GS"].class_means())
    )
    for cls in classes:
        print(f"{cls:<16}", end="")
        for policy in ("LS", "GS"):
            mean = trackers[policy].class_means().get(cls, float("nan"))
            print(f"{mean:>10.2f}", end="")
        print()

    print()
    for policy, tracker in trackers.items():
        print(f"{policy}: Jain index across size classes "
              f"{tracker.class_fairness():.3f}, across users "
              f"{tracker.user_fairness():.3f}; worst class pays "
              f"{tracker.worst_best_ratio():.1f}x the best")

    print()
    print("Reading: space-sharing FCFS co-allocation is deeply unfair "
          "to whole-machine jobs —")
    print("the paper's §3.2 prescription (cap the total job size) is as "
          "much a fairness fix as a throughput fix.")


if __name__ == "__main__":
    main()
