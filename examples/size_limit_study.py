#!/usr/bin/env python
"""Capacity planning: choosing the job-component-size limit.

The paper's §3.3 finding: the component-size limit interacts with the
popular job sizes.  Size 64 — 19% of all jobs — splits into
(16,16,16,16) under L=16, (22,21,21) under L=24 and (32,32) under L=32;
the (22,21,21) split packs disastrously into 32-processor clusters, so
L=24 is the *worst* choice for every policy even though it sits between
the other two.

This example quantifies that: for each limit it reports the split of
size 64, the fraction of multi-component jobs, the analytic gross/net
utilization ratio, and the measured maximal gross utilization of the GS
policy (constant-backlog method, paper §4 / Table 3).

Run:  python examples/size_limit_study.py
"""

from repro import SimulationConfig, run_constant_backlog
from repro.analysis.theory import gross_net_ratio
from repro.workload import das_s_128, das_t_900
from repro.workload.splitting import multi_component_fraction, split_size


def main() -> None:
    sizes, service = das_s_128(), das_t_900()

    print(f"{'limit':>5}  {'split of 64':>16}  {'multi jobs':>10}  "
          f"{'gross/net':>9}  {'max gross util (GS)':>19}")
    results = {}
    for limit in (16, 24, 32):
        config = SimulationConfig(policy="GS", component_limit=limit,
                                  seed=13)
        report = run_constant_backlog(
            config, sizes, service,
            backlog=60, warmup_jobs=1_000, measured_jobs=8_000,
        )
        results[limit] = report.gross_utilization
        print(f"{limit:>5}  {str(split_size(64, limit, 4)):>16}  "
              f"{multi_component_fraction(sizes, limit, 4):>10.1%}  "
              f"{gross_net_ratio(sizes, limit):>9.4f}  "
              f"{report.gross_utilization:>19.3f}")

    worst = min(results, key=results.get)
    best = max(results, key=results.get)
    print()
    print(f"Worst limit: {worst} (as in the paper — the (22,21,21) "
          "split of size-64 jobs wastes a third of the machine)")
    print(f"Best limit : {best}")
    print("Rule of thumb (paper §5): with power-of-two cluster sizes and "
          "power-of-two popular job sizes, pick a power-of-two limit.")


if __name__ == "__main__":
    main()
