#!/usr/bin/env python
"""When does co-allocation stop paying off?  The extension-factor study.

The paper's abstract: "for a slowdown of jobs due to global
communication bounded by ~1.25, co-allocation is a viable choice."  This
example sweeps the wide-area extension factor from 1.0 (wide-area links
as fast as the local Myrinet) to 1.6, comparing the best multicluster
policy (LS) against the single-cluster reference (SC) at a fixed offered
*net* load, and reports where LS's response time crosses SC's.

At factor 1.0 a multicluster only pays the fragmentation cost of
distinct-cluster placement; each extra 0.1 of factor inflates the gross
demand of the ~49% multi-component jobs, pushing LS toward saturation
while SC is unaffected.

Run:  python examples/viability_threshold.py
"""

from repro import SimulationConfig, run_open_system
from repro.sim import StreamFactory
from repro.workload import JobFactory, das_s_128, das_t_900
from repro.workload.stats_model import SINGLE_CLUSTER_SIZE


def response_at(policy: str, extension: float, net_rho: float) -> tuple:
    sizes, service = das_s_128(), das_t_900()
    kwargs = dict(policy=policy, component_limit=16,
                  extension_factor=extension,
                  warmup_jobs=1_000, measured_jobs=8_000, seed=11)
    if policy == "SC":
        kwargs.update(capacities=(SINGLE_CLUSTER_SIZE,),
                      component_limit=None, extension_factor=1.0)
    config = SimulationConfig(**kwargs)
    factory = JobFactory(sizes, service, config.component_limit,
                         extension_factor=config.extension_factor,
                         streams=StreamFactory(config.seed))
    # Fix the *net* load so every factor carries the same useful work.
    rate = net_rho * config.capacity / factory.expected_net_work()
    result = run_open_system(config, sizes, service, rate)
    return result.mean_response, result.saturated


def main() -> None:
    net_rho = 0.45
    sc_response, _ = response_at("SC", 1.0, net_rho)
    print(f"offered net utilization fixed at {net_rho:.2f}")
    print(f"single-cluster FCFS reference (SC): {sc_response:.0f} s")
    print()
    print(f"{'extension':>9}  {'LS response':>11}  {'vs SC':>7}  verdict")

    crossover = None
    for factor in (1.0, 1.1, 1.2, 1.25, 1.3, 1.4, 1.5, 1.6):
        response, saturated = response_at("LS", factor, net_rho)
        ratio = response / sc_response
        viable = ratio <= 1.5 and not saturated
        if not viable and crossover is None:
            crossover = factor
        tag = "viable" if viable else "NOT viable"
        sat = " (saturated)" if saturated else ""
        print(f"{factor:>9.2f}  {response:>11.0f}  {ratio:>6.2f}x  "
              f"{tag}{sat}")

    print()
    if crossover:
        print(f"Co-allocation stops being attractive around extension "
              f"factor {crossover:.2f} at this load — consistent with "
              "the paper's ~1.25 viability bound.")
    else:
        print("LS stayed within 1.5x of SC for every factor tested; "
              "raise the load to see the crossover.")


if __name__ == "__main__":
    main()
