#!/usr/bin/env python
"""Diagnosing saturation: who blows up first, and who suffers?

Pushes the LP policy past its knee (the paper's Figure 4 regime) and
uses the instrumentation beyond the paper's aggregates:

* a trajectory probe shows the *global* queue is the one that grows
  without bound while the local queues stay short (§3.1.3);
* bounded-slowdown percentiles show how disproportionately the
  co-allocated (multi-component) jobs pay for it;
* a paired common-random-number comparison against LS quantifies the
  penalty with a confidence interval.

Run:  python examples/saturation_diagnosis.py
"""

from repro import MulticlusterSimulation, SimulationConfig
from repro.analysis.replications import paired_comparison
from repro.metrics import TrajectoryRecorder
from repro.sim import StreamFactory
from repro.workload import ArrivalProcess, JobFactory, das_s_128, das_t_900


def main() -> None:
    sizes, service = das_s_128(), das_t_900()
    target_util = 0.62  # just past LP's knee, inside LS's stable range

    # --- trajectory of an overloaded LP system -------------------------
    system = MulticlusterSimulation("LP")
    factory = JobFactory(sizes, service, 16, streams=StreamFactory(8))
    rate = factory.arrival_rate_for_gross_utilization(target_util, 128)
    recorder = TrajectoryRecorder(system, period=2_000.0)
    ArrivalProcess(system.sim, factory, rate, system.submit,
                   rng=StreamFactory(8).get("iat"))
    system.sim.run(until=300_000.0)

    print(f"LP at offered gross utilization {target_util}:")
    for queue in system.policy.queues():
        times, lengths = recorder.queue_series(queue.name)
        print(f"  queue {queue.name:8s}: final length "
              f"{lengths[-1]:5.0f}, peak {lengths.max():5.0f}")
    print(f"  -> the runaway queue is '{recorder.busiest_queue()}' "
          "(the paper's §3.1.3 bottleneck)")

    report = system.metrics.report(system.sim.now)
    print(f"  local-queue mean response : "
          f"{report.mean_response_local:8.0f} s")
    print(f"  global-queue mean response: "
          f"{report.mean_response_global:8.0f} s")
    print(f"  bounded slowdown mean {report.mean_bounded_slowdown:.1f}, "
          f"response P50 {report.response_p50:.0f} s, "
          f"P95 {report.response_p95:.0f} s")

    # --- paired LP-vs-LS comparison with a CI ---------------------------
    def config(policy):
        return SimulationConfig(policy=policy, component_limit=16,
                                warmup_jobs=1_000, measured_jobs=6_000,
                                seed=100)

    ci = paired_comparison(config("LP"), config("LS"), sizes, service,
                           utilization=0.60, replications=4)
    print()
    print(f"Paired LP−LS response difference at utilization 0.60: "
          f"{ci.mean:+.0f} s ± {ci.half_width:.0f} (95% CI, common "
          "random numbers)")
    verdict = ("significantly worse" if ci.low > 0 else
               "not significantly different")
    print(f"LP is {verdict} than LS at this load.")


if __name__ == "__main__":
    main()
