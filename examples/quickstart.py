#!/usr/bin/env python
"""Quickstart: simulate one co-allocation policy on the DAS workload.

Builds the paper's base system — four clusters of 32 processors, the
DAS-s-128 job-size distribution split at a component limit of 16, the
DAS-t-900 service times, wide-area extension factor 1.25 — runs the LS
policy at 50% offered gross utilization, and prints the measured
response time and utilizations.

Run:  python examples/quickstart.py
"""

from repro import SimulationConfig, run_open_system
from repro.sim import StreamFactory
from repro.workload import JobFactory, das_s_128, das_t_900


def main() -> None:
    sizes = das_s_128()       # total-job-size distribution from the trace
    service = das_t_900()     # service times, cut at the 900 s kill limit

    config = SimulationConfig(
        policy="LS",          # local queues + co-allocation (paper's best)
        component_limit=16,   # jobs split into components of <= 16 procs
        warmup_jobs=2_000,    # transient discarded
        measured_jobs=10_000,
        seed=42,
    )

    # Translate "50% offered gross utilization" into an arrival rate.
    factory = JobFactory(sizes, service, config.component_limit,
                         streams=StreamFactory(config.seed))
    rate = factory.arrival_rate_for_gross_utilization(0.50,
                                                      config.capacity)

    result = run_open_system(config, sizes, service, rate)
    report = result.report

    print(f"policy              : {config.policy}")
    print(f"arrival rate        : {rate * 3600:.1f} jobs/hour")
    print(f"gross utilization   : {report.gross_utilization:.3f}")
    print(f"net utilization     : {report.net_utilization:.3f} "
          "(useful work only)")
    print(f"mean response time  : {report.mean_response:.0f} s "
          f"± {report.response_ci_half_width:.0f} (95% CI)")
    print(f"mean jobs waiting   : {report.mean_jobs_waiting:.2f}")
    print(f"saturated           : {'yes' if result.saturated else 'no'}")


if __name__ == "__main__":
    main()
