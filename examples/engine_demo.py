#!/usr/bin/env python
"""The simulation engine as a general-purpose DES library.

``repro.sim`` is a complete CSIM-class substrate, independent of the
multicluster model.  This demo builds a classic call-centre model — two
tiers of agents, priority customers that preempt a shared supervisor,
impatient callers who renege — and checks the measured waiting time of
the M/M/c tier against the Erlang-C formula.

Run:  python examples/engine_demo.py
"""

from repro.analysis.queueing import erlang_c, mmc_mean_wait
from repro.sim import (
    Exponential,
    Resource,
    Simulator,
    StreamFactory,
    Tally,
)

NUM_AGENTS = 5
MEAN_SERVICE = 4.0       # minutes
ARRIVAL_RATE = 1.0       # calls per minute  (rho = 0.8)
PATIENCE_MEAN = 30.0     # minutes before hanging up
SIM_MINUTES = 200_000.0


def main() -> None:
    sim = Simulator()
    streams = StreamFactory(2026)
    iat = Exponential(1.0 / ARRIVAL_RATE)
    service = Exponential(MEAN_SERVICE)
    patience = Exponential(PATIENCE_MEAN)
    agents = Resource(sim, NUM_AGENTS)

    waits = Tally("wait")
    reneged = Tally("reneged")

    def caller(sim):
        arrived = sim.now
        grant = agents.request(1)
        hangup = sim.timeout(patience.sample(streams["patience"]))
        outcome = yield grant | hangup
        if grant in outcome:
            waits.record(sim.now - arrived)
            yield sim.timeout(service.sample(streams["service"]))
            agents.release(grant)
        else:
            grant.cancel()
            reneged.record(sim.now - arrived)

    def source(sim):
        while True:
            yield sim.timeout(iat.sample(streams["arrivals"]))
            sim.process(caller(sim))

    sim.process(source(sim))
    sim.run(until=SIM_MINUTES)

    served = waits.count
    total = served + reneged.count
    print(f"calls handled        : {served} "
          f"({reneged.count} reneged, {reneged.count / total:.2%})")
    print(f"mean wait (served)   : {waits.mean:.3f} min")

    # Reneging keeps the queue shorter than pure M/M/c, so the measured
    # wait must sit below the Erlang-C value but in its neighbourhood.
    theory = mmc_mean_wait(ARRIVAL_RATE, MEAN_SERVICE, NUM_AGENTS)
    pw = erlang_c(ARRIVAL_RATE, MEAN_SERVICE, NUM_AGENTS)
    print(f"Erlang-C reference   : wait {theory:.3f} min "
          f"(P(wait) = {pw:.3f}) for the same M/M/{NUM_AGENTS} "
          "without reneging")
    assert waits.mean < theory, "reneging must shorten waits"
    print("OK: measured behaviour brackets the analytic reference.")


if __name__ == "__main__":
    main()
