"""Published statistics of the DAS1 workload and their reconstruction.

The paper derives its workload from a proprietary 3-month log of the
largest (128-processor) DAS1 cluster.  The log itself is unavailable, but
the paper publishes enough marginal statistics to reconstruct the job-size
distribution *exactly* at the resolution the experiments are sensitive to:

* **Table 1** — the probability mass on each power-of-two size;
* **Table 2** — the fraction of jobs with 1..4 components for each
  job-component-size limit L ∈ {16, 24, 32}, which (because the number of
  components is a deterministic function of total size) pins down the
  cumulative size distribution at 16, 24, 32, 48, 64, 72, 96;
* §3.3/§5 — 19% of jobs have size 64, the most popular size; the
  cumulative constraints put a further 22.5% in (16, 24], which we spread
  over that interval with peaks at the multiples of four; 58 distinct
  sizes occur in [1, 128].

The scanned Table 2 row for L=16 (0.513 / 0.267 / 0.090 / 0.211) sums to
1.081 and is inconsistent with the other two rows; the unique correction
that makes all three rows derive from one size distribution is a
3-component fraction of **0.009**, giving the cumulative distribution
F(16)=0.513, F(24)=0.738, F(32)=0.780, F(48)=0.789, F(64)=0.980,
F(72)=0.983, F(96)=0.983, F(128)=1.

:data:`SIZE_TABLE` below realises those constraints with exactly 58 sizes;
every interval mass matches the published/derived value, so Table 1,
Table 2 and the §3.3 observations are reproduced *identically*, while the
masses of individual non-power-of-two sizes inside an interval (to which
no experiment is sensitive) are modelling choices.

Service times: the paper's Figure 2 shows the DAS-t-900 density (log cut
at the 900 s working-hours kill limit) with heavy mass at short times; the
printed mean/CV digits are illegible in the available scan.  We model the
uncut runtime as a lognormal body plus a small mass pushed against the
kill limit, so that the cut distribution has a mean of a few hundred
seconds and CV near 1 — consistent with the response-time magnitudes in
the paper's figures (thousands of seconds near saturation).
"""

from __future__ import annotations

from typing import Mapping

__all__ = [
    "SIZE_TABLE",
    "POWER_OF_TWO_FRACTIONS",
    "CUMULATIVE_TARGETS",
    "COMPONENT_FRACTION_TARGETS",
    "MULTI_COMPONENT_FRACTIONS",
    "NUM_CLUSTERS",
    "CLUSTER_SIZE",
    "SINGLE_CLUSTER_SIZE",
    "SIZE_LIMITS",
    "EXTENSION_FACTOR",
    "SERVICE_CUTOFF",
    "DAS_S_64_CUT",
    "UNBALANCED_WEIGHTS",
    "BALANCED_WEIGHTS",
    "LOG_NUM_JOBS",
    "LOG_NUM_USERS",
    "LOG_DURATION_DAYS",
]

# --------------------------------------------------------------------------
# System model constants (paper §3, first paragraph).
# --------------------------------------------------------------------------

#: Number of clusters in the simulated multicluster.
NUM_CLUSTERS = 4
#: Processors per cluster.
CLUSTER_SIZE = 32
#: Processors in the single-cluster reference system.
SINGLE_CLUSTER_SIZE = 128
#: Job-component-size limits studied in the paper.
SIZE_LIMITS = (16, 24, 32)
#: Service-time extension factor for multi-component jobs (paper §2.4:
#: "a realistic upper bound for many applications"; Ernemann et al. [11]
#: conclude co-allocation pays while the factor is at most 1.25).
EXTENSION_FACTOR = 1.25
#: Working-hours runtime kill limit on the DAS (15 minutes), and the
#: cutoff defining the DAS-t-900 service-time distribution.
SERVICE_CUTOFF = 900.0
#: Cutoff defining the DAS-s-64 size distribution.
DAS_S_64_CUT = 64

#: Balanced routing of jobs over the local queues.
BALANCED_WEIGHTS = (0.25, 0.25, 0.25, 0.25)
#: Unbalanced routing: one queue overloaded (values illegible in the scan;
#: 40/20/20/20 per the authors' companion JSSPP'02 study — see DESIGN.md).
UNBALANCED_WEIGHTS = (0.40, 0.20, 0.20, 0.20)

#: Scale of the original log (three months, 20 users; the exact job count
#: is illegible in the scan, but Figure 1's y-axis tops out at 6,000 jobs
#: with the 19%-of-jobs bar at size 64 below it, bounding the log at
#: roughly 30,000 jobs).
LOG_NUM_JOBS = 30_000
LOG_NUM_USERS = 20
LOG_DURATION_DAYS = 92

# --------------------------------------------------------------------------
# The reconstructed job-size distribution (58 sizes, weights sum to 10000).
# --------------------------------------------------------------------------

#: Probability mass per job size, in units of 1e-4.  Powers of two carry
#: the masses of Table 1 verbatim; the interval totals of the remaining
#: sizes are forced by Table 2 (see module docstring).
SIZE_TABLE: Mapping[int, int] = {
    # powers of two — Table 1 of the paper, exact
    1: 910, 2: 1300, 4: 870, 8: 660, 16: 900, 32: 390, 64: 1900, 128: 120,
    # other sizes in [1, 16] — total mass 0.049 = F(16) - powers(<=16)
    3: 90, 5: 60, 6: 70, 7: 40, 9: 30, 10: 50,
    11: 20, 12: 60, 13: 20, 14: 25, 15: 25,
    # (16, 24] — total 0.225 = F(24) - F(16); concentrated on the
    # multiples of four (20, 24) as in production logs
    17: 100, 18: 300, 19: 50, 20: 700, 21: 50, 22: 200, 23: 50, 24: 800,
    # (24, 32) — total 0.003 = F(32) - F(24) - mass(32)
    25: 6, 26: 5, 27: 3, 28: 6, 29: 3, 30: 5, 31: 2,
    # (32, 48] — total 0.009 = F(48) - F(32)
    33: 10, 34: 8, 36: 15, 38: 8, 40: 20, 42: 9, 44: 8, 46: 5, 48: 7,
    # (48, 64) — total 0.001 = F(64) - F(48) - mass(64)
    50: 2, 52: 2, 54: 1, 56: 2, 60: 2, 62: 1,
    # (64, 72] — total 0.003 = F(72) - F(64)
    66: 10, 68: 8, 70: 12,
    # (96, 128) — total 0.005 = 1 - F(96) - mass(128)
    100: 12, 104: 8, 108: 6, 112: 10, 120: 8, 126: 6,
}

#: Table 1 of the paper: fraction of jobs at each power-of-two size.
POWER_OF_TWO_FRACTIONS: Mapping[int, float] = {
    1: 0.091, 2: 0.130, 4: 0.087, 8: 0.066,
    16: 0.090, 32: 0.039, 64: 0.190, 128: 0.012,
}

#: Cumulative size-distribution values implied by Table 2 (corrected).
CUMULATIVE_TARGETS: Mapping[int, float] = {
    16: 0.513, 24: 0.738, 32: 0.780, 48: 0.789,
    64: 0.980, 72: 0.983, 96: 0.983, 128: 1.000,
}

#: Table 2 of the paper (DAS-s-128): fraction of jobs with 1..4 components
#: per component-size limit.  The L=16 row carries the 0.009 correction.
COMPONENT_FRACTION_TARGETS: Mapping[int, tuple[float, float, float, float]] = {
    16: (0.513, 0.267, 0.009, 0.211),
    24: (0.738, 0.051, 0.194, 0.017),
    32: (0.780, 0.200, 0.003, 0.017),
}

#: Fraction of multi-component jobs per limit (quoted in §3.1.1 as 48.7%,
#: and for limits 24 and 32 as 26.2% and 22.0%).
MULTI_COMPONENT_FRACTIONS: Mapping[int, float] = {
    16: 0.487, 24: 0.262, 32: 0.220,
}

# --------------------------------------------------------------------------
# Service-time model (DAS-t-900 reconstruction).
# --------------------------------------------------------------------------

#: Arithmetic mean of the uncut lognormal runtime body (seconds).
SERVICE_BODY_MEAN = 280.0
#: CV of the uncut lognormal runtime body.
SERVICE_BODY_CV = 1.6
#: Weight of the near-cutoff mass (jobs running into the 15-minute kill).
SERVICE_SPIKE_WEIGHT = 0.12
#: The near-cutoff mass is uniform on [SPIKE_LOW, SERVICE_CUTOFF].
SERVICE_SPIKE_LOW = 860.0


def validate_size_table() -> None:
    """Assert every published constraint against :data:`SIZE_TABLE`.

    Raises ``AssertionError`` listing the first violated constraint; used
    by the test suite and importable as a self-check.
    """
    total = sum(SIZE_TABLE.values())
    assert total == 10_000, f"weights sum to {total}, expected 10000"
    assert len(SIZE_TABLE) == 58, f"{len(SIZE_TABLE)} sizes, expected 58"
    assert all(1 <= s <= 128 for s in SIZE_TABLE), "size out of [1, 128]"

    for size, frac in POWER_OF_TWO_FRACTIONS.items():
        got = SIZE_TABLE[size] / 10_000
        assert abs(got - frac) < 1e-12, (
            f"power-of-two mass at {size}: {got} != {frac}"
        )

    for point, frac in CUMULATIVE_TARGETS.items():
        got = sum(w for s, w in SIZE_TABLE.items() if s <= point) / 10_000
        assert abs(got - frac) < 1e-12, (
            f"cumulative F({point}): {got} != {frac}"
        )
