"""Parametric workload models from the parallel-job literature.

The paper's experiments sample a *trace-derived* size distribution; the
surrounding literature (Downey, Jann, Lublin–Feitelson) uses parametric
models instead.  Two simplified but faithful-in-shape models are
provided so the workload-sensitivity ablation can ask: *which of the
paper's findings survive when the DAS trace is swapped for a generic
supercomputer workload?*

* :class:`LogUniformSizes` — job sizes log-uniform on [1, max_size]
  with a configurable fraction rounded to powers of two (the dominant
  empirical regularity in every archive trace, cf. Lublin & Feitelson,
  JPDC 2003).
* :class:`HarmonicSizes` — P(size = s) ∝ 1/s^a over a support of
  "nice" sizes (powers of two plus multiples of a step), a heavier
  small-job mix.
* :func:`hypergamma_service` — a two-branch gamma mixture for service
  times (the Lublin–Feitelson runtime shape), optionally truncated at
  an administrative limit like the DAS 900 s kill.

All models produce ordinary distribution objects, so they plug into
:class:`~repro.workload.generator.JobFactory` unchanged.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.sim.distributions import (
    DiscreteEmpirical,
    Distribution,
    Erlang,
    Mixture,
)

__all__ = [
    "LogUniformSizes",
    "HarmonicSizes",
    "hypergamma_service",
    "powers_of_two_up_to",
]


def powers_of_two_up_to(limit: int) -> list[int]:
    """All powers of two in [1, limit]."""
    if limit < 1:
        raise ValueError(f"limit must be >= 1, got {limit!r}")
    out, p = [], 1
    while p <= limit:
        out.append(p)
        p *= 2
    return out


def LogUniformSizes(max_size: int = 128, power_fraction: float = 0.75,
                    seed_support: Optional[Sequence[int]] = None
                    ) -> DiscreteEmpirical:
    """Log-uniform job sizes with a power-of-two preference.

    With probability ``power_fraction`` the log-uniform draw is rounded
    to the nearest power of two; the remaining mass stays on the raw
    integer sizes.  Returns a :class:`DiscreteEmpirical` computed in
    closed form (no sampling).
    """
    if max_size < 2:
        raise ValueError(f"max_size must be >= 2, got {max_size!r}")
    if not 0.0 <= power_fraction <= 1.0:
        raise ValueError(
            f"power_fraction must be in [0,1], got {power_fraction!r}"
        )
    support = (list(seed_support) if seed_support is not None
               else list(range(1, max_size + 1)))
    log_hi = math.log(max_size + 1.0)
    raw = {}
    for s in support:
        # Mass of the log-uniform density on [s, s+1).
        mass = (math.log(s + 1.0) - math.log(float(s))) / log_hi
        raw[s] = mass
    powers = powers_of_two_up_to(max_size)
    weights: dict[int, float] = {}
    for s, mass in raw.items():
        nearest = min(powers, key=lambda p: (abs(math.log(p / s)), p))
        weights[nearest] = weights.get(nearest, 0.0) + (
            power_fraction * mass
        )
        weights[s] = weights.get(s, 0.0) + (1.0 - power_fraction) * mass
    values = sorted(weights)
    return DiscreteEmpirical(values, [weights[v] for v in values])


def HarmonicSizes(max_size: int = 128, exponent: float = 1.0,
                  step: int = 4) -> DiscreteEmpirical:
    """Harmonic job sizes on powers of two and multiples of ``step``.

    P(size = s) ∝ 1 / s**exponent — a strongly small-job-biased mix.
    """
    if max_size < 2:
        raise ValueError(f"max_size must be >= 2, got {max_size!r}")
    if step < 1:
        raise ValueError(f"step must be >= 1, got {step!r}")
    support = sorted(
        set(powers_of_two_up_to(max_size))
        | set(range(step, max_size + 1, step))
        | {1, 2}
    )
    weights = [s ** (-float(exponent)) for s in support]
    return DiscreteEmpirical(support, weights)


def hypergamma_service(mean_short: float = 60.0, mean_long: float = 600.0,
                       short_fraction: float = 0.7, shape: int = 2,
                       cutoff: Optional[float] = None) -> Distribution:
    """Two-branch gamma (Erlang) mixture for service times.

    The Lublin–Feitelson runtime model is a hyper-gamma; this keeps its
    two-mode character with integer shapes.  With ``cutoff`` the
    distribution is resampled empirically below the limit, modelling an
    administrative kill like the DAS 900 s rule.
    """
    if not 0.0 < short_fraction < 1.0:
        raise ValueError(
            f"short_fraction must be in (0,1), got {short_fraction!r}"
        )
    mixture = Mixture(
        [Erlang(shape, mean_short), Erlang(shape, mean_long)],
        [short_fraction, 1.0 - short_fraction],
    )
    if cutoff is None:
        return mixture
    if cutoff <= 0:
        raise ValueError(f"cutoff must be positive, got {cutoff!r}")
    # Empirical truncation: histogram a large sample below the cutoff.
    from repro.sim.distributions import ContinuousEmpirical

    rng = np.random.default_rng(0)
    draws = np.array([mixture.sample(rng) for _ in range(200_000)])
    kept = draws[draws <= cutoff]
    if kept.size < 1_000:
        raise ValueError("cutoff removes almost all mass")
    edges = np.linspace(0.0, cutoff, 121)
    counts, _ = np.histogram(kept, bins=edges)
    return ContinuousEmpirical(edges, counts.astype(float))
