"""Synthetic DAS1 trace generation.

The paper's workload is *trace-based*: the authors sampled the empirical
job-size and service-time distributions measured on the 128-processor DAS1
cluster over three months.  That log is proprietary, so this module
generates a synthetic log whose marginals match every statistic the paper
publishes (see :mod:`repro.workload.stats_model`), and the rest of the
package treats it exactly as the authors treated theirs: empirical
distributions are *derived from the log* and then sampled in simulations.

Realism beyond the published marginals (diurnal arrival intensity, a
heavy-tailed user mix, runtimes killed at the working-hours limit) is
included so the trace-tooling path (SWF export, log analysis) exercises
realistic data, but none of it influences the paper's experiments, which
consume only the size and service-time marginals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.sim.distributions import Lognormal
from repro.sim.rng import StreamFactory

from . import stats_model

__all__ = ["JobRecord", "DASLogGenerator", "generate_das_log", "LogSummary",
           "summarize_log"]

_SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class JobRecord:
    """One job in a cluster log.

    Attributes
    ----------
    job_id:
        1-based sequence number in submission order.
    user:
        Anonymised user index (0-based).
    submit_time:
        Submission time in seconds from the start of the log.
    size:
        Number of processors requested (rigid job).
    runtime:
        Service time in seconds (wall-clock on allocated processors).
    """

    job_id: int
    user: int
    submit_time: float
    size: int
    runtime: float

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"job size must be >= 1, got {self.size!r}")
        if self.runtime < 0:
            raise ValueError(f"runtime must be >= 0, got {self.runtime!r}")
        if self.submit_time < 0:
            raise ValueError(
                f"submit_time must be >= 0, got {self.submit_time!r}"
            )


class DASLogGenerator:
    """Generates a synthetic DAS1-like log.

    Parameters
    ----------
    seed:
        Master seed; the generator is fully deterministic given it.
    num_jobs:
        Number of jobs in the log (paper: ~66,000 over three months).
    num_users:
        Number of distinct users (paper: 20), with a Zipf-like activity
        mix (a few users dominate, as in every production log).
    duration_days:
        Length of the logging period.
    kill_limit:
        Working-hours runtime cap: jobs submitted during working hours
        have their runtime clipped to this value (the DAS killed jobs
        after 15 minutes during the day).
    """

    #: Fraction of arrival intensity concentrated in working hours.
    WORK_HOURS = (9.0, 18.0)
    WORK_INTENSITY = 0.75

    def __init__(self, seed: int = 0,
                 num_jobs: int = stats_model.LOG_NUM_JOBS,
                 num_users: int = stats_model.LOG_NUM_USERS,
                 duration_days: int = stats_model.LOG_DURATION_DAYS,
                 kill_limit: float = stats_model.SERVICE_CUTOFF):
        if num_jobs < 1:
            raise ValueError(f"num_jobs must be >= 1, got {num_jobs!r}")
        self.seed = seed
        self.num_jobs = num_jobs
        self.num_users = num_users
        self.duration_days = duration_days
        self.kill_limit = kill_limit
        self._streams = StreamFactory(seed)

    # -- pieces ------------------------------------------------------------

    def _sizes(self) -> np.ndarray:
        """Job sizes sampled from the reconstructed size table."""
        values = np.array(sorted(stats_model.SIZE_TABLE), dtype=np.int64)
        weights = np.array(
            [stats_model.SIZE_TABLE[int(v)] for v in values], dtype=float
        )
        probs = weights / weights.sum()
        rng = self._streams.get("log.sizes")
        return rng.choice(values, size=self.num_jobs, p=probs)

    def _users(self) -> np.ndarray:
        """User indices with Zipf-like activity shares."""
        ranks = np.arange(1, self.num_users + 1, dtype=float)
        shares = 1.0 / ranks
        shares /= shares.sum()
        rng = self._streams.get("log.users")
        return rng.choice(self.num_users, size=self.num_jobs, p=shares)

    def _submit_times(self) -> np.ndarray:
        """Sorted submission times with a diurnal intensity profile."""
        rng = self._streams.get("log.arrivals")
        total = self.duration_days * _SECONDS_PER_DAY
        lo, hi = self.WORK_HOURS
        work_frac_of_day = (hi - lo) / 24.0

        # Thinning-free approach: choose day uniformly, then hour from the
        # two-level (work / off-hours) density.
        days = rng.integers(0, self.duration_days, size=self.num_jobs)
        in_work = rng.random(self.num_jobs) < self.WORK_INTENSITY
        hours = np.where(
            in_work,
            rng.uniform(lo, hi, size=self.num_jobs),
            # off-hours: uniform over the complement of the work window
            np.where(
                rng.random(self.num_jobs) < lo / (24.0 - (hi - lo)),
                rng.uniform(0.0, lo, size=self.num_jobs),
                rng.uniform(hi, 24.0, size=self.num_jobs),
            ),
        )
        times = days * _SECONDS_PER_DAY + hours * 3600.0
        times.sort()
        # Guard against pathological duplicates for tiny logs.
        assert times[-1] <= total
        del work_frac_of_day
        return times

    def _runtimes(self, submit_times: np.ndarray) -> np.ndarray:
        """Runtimes: lognormal body; clipped at the kill limit for
        working-hours submissions (which is what puts the observed mass
        right at 900 s in the paper's Figure 2)."""
        rng = self._streams.get("log.runtimes")
        body = Lognormal(
            mean=stats_model.SERVICE_BODY_MEAN,
            cv=stats_model.SERVICE_BODY_CV,
        )
        runtimes = body.sample_array(rng, self.num_jobs)
        runtimes = np.maximum(runtimes, 1.0)

        hour_of_day = (submit_times % _SECONDS_PER_DAY) / 3600.0
        lo, hi = self.WORK_HOURS
        working = (hour_of_day >= lo) & (hour_of_day < hi)
        runtimes[working] = np.minimum(runtimes[working], self.kill_limit)
        return runtimes

    # -- API ---------------------------------------------------------------

    def generate(self) -> list[JobRecord]:
        """Produce the synthetic log, sorted by submission time."""
        submit = self._submit_times()
        sizes = self._sizes()
        users = self._users()
        runtimes = self._runtimes(submit)
        return [
            JobRecord(
                job_id=i + 1,
                user=int(users[i]),
                submit_time=float(submit[i]),
                size=int(sizes[i]),
                runtime=float(runtimes[i]),
            )
            for i in range(self.num_jobs)
        ]


def generate_das_log(seed: int = 0, num_jobs: int = stats_model.LOG_NUM_JOBS,
                     **kwargs) -> list[JobRecord]:
    """Convenience wrapper around :class:`DASLogGenerator`."""
    return DASLogGenerator(seed=seed, num_jobs=num_jobs, **kwargs).generate()


@dataclass(frozen=True)
class LogSummary:
    """Aggregate statistics of a log (the numbers the paper reports)."""

    num_jobs: int
    num_users: int
    num_distinct_sizes: int
    mean_size: float
    cv_size: float
    mean_runtime: float
    cv_runtime: float
    fraction_below_cutoff: float
    power_of_two_fraction: float


def summarize_log(records: Sequence[JobRecord],
                  cutoff: float = stats_model.SERVICE_CUTOFF) -> LogSummary:
    """Compute the summary statistics the paper quotes for its log."""
    if not records:
        raise ValueError("empty log")
    sizes = np.array([r.size for r in records], dtype=float)
    runtimes = np.array([r.runtime for r in records], dtype=float)
    users = {r.user for r in records}
    powers = {1, 2, 4, 8, 16, 32, 64, 128}
    return LogSummary(
        num_jobs=len(records),
        num_users=len(users),
        num_distinct_sizes=len(np.unique(sizes)),
        mean_size=float(sizes.mean()),
        cv_size=float(sizes.std() / sizes.mean()),
        mean_runtime=float(runtimes.mean()),
        cv_runtime=float(runtimes.std() / runtimes.mean()),
        fraction_below_cutoff=float(np.mean(runtimes < cutoff)),
        power_of_two_fraction=float(
            np.mean([r.size in powers for r in records])
        ),
    )


def filter_log(records: Iterable[JobRecord], *,
               max_size: int | None = None,
               max_runtime: float | None = None) -> list[JobRecord]:
    """The paper's log cuts: drop jobs above a size or runtime threshold.

    ``max_size=64`` yields the population behind DAS-s-64;
    ``max_runtime=900`` the population behind DAS-t-900.
    """
    out = []
    for r in records:
        if max_size is not None and r.size > max_size:
            continue
        if max_runtime is not None and r.runtime > max_runtime:
            continue
        out.append(r)
    return out


def size_histogram(records: Sequence[JobRecord]) -> dict[int, int]:
    """Job count per size — the data behind the paper's Figure 1."""
    hist: dict[int, int] = {}
    for r in records:
        hist[r.size] = hist.get(r.size, 0) + 1
    return dict(sorted(hist.items()))


def runtime_histogram(records: Sequence[JobRecord], bin_width: float = 10.0,
                      cutoff: float = stats_model.SERVICE_CUTOFF
                      ) -> dict[float, int]:
    """Job count per runtime bin up to ``cutoff`` — Figure 2's data.

    Runtimes exactly at the cutoff (jobs killed by the working-hours
    limit) are counted in the last bin — that pile-up is the spike at
    the right edge of the paper's Figure 2.
    """
    if bin_width <= 0:
        raise ValueError(f"bin_width must be positive, got {bin_width!r}")
    last_bin = math.floor((cutoff - 1e-9) / bin_width) * bin_width
    hist: dict[float, int] = {}
    for r in records:
        if r.runtime > cutoff:
            continue
        b = min(math.floor(r.runtime / bin_width) * bin_width, last_bin)
        hist[b] = hist.get(b, 0) + 1
    return dict(sorted(hist.items()))
