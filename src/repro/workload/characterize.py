"""Workload characterisation: the statistics a trace study reports.

The trace-based methodology starts with characterising the log (the
paper's §2.4 and Figures 1–2).  This module computes the standard
characterisation battery for any :class:`JobRecord` log — real (via the
SWF reader) or synthetic:

* arrival pattern — hourly intensity profile, peak/off-peak ratio;
* user concentration — activity share of the top-k users, Gini
  coefficient;
* size/runtime dependence — the paper *assumes* independence of job
  sizes and service times (§4); :func:`size_runtime_correlation`
  quantifies it (Pearson on ranks ≈ Spearman) so the assumption can be
  audited on any trace before trusting gross/net ratio arithmetic;
* marginal moments with bootstrap confidence intervals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .das_log import JobRecord

__all__ = [
    "hourly_profile",
    "peak_offpeak_ratio",
    "user_shares",
    "gini_coefficient",
    "size_runtime_correlation",
    "bootstrap_mean_ci",
    "characterize",
    "WorkloadCharacterization",
]

_SECONDS_PER_HOUR = 3600.0
_HOURS_PER_DAY = 24


def hourly_profile(records: Sequence[JobRecord]) -> np.ndarray:
    """Fraction of jobs submitted in each hour of day (length 24)."""
    if not records:
        raise ValueError("empty log")
    hours = np.array([
        int((r.submit_time / _SECONDS_PER_HOUR) % _HOURS_PER_DAY)
        for r in records
    ])
    counts = np.bincount(hours, minlength=_HOURS_PER_DAY).astype(float)
    return counts / counts.sum()


def peak_offpeak_ratio(records: Sequence[JobRecord],
                       work_hours: tuple[int, int] = (9, 18)) -> float:
    """Mean hourly intensity in working hours over the off-hours mean."""
    profile = hourly_profile(records)
    lo, hi = work_hours
    work = profile[lo:hi].mean()
    off = np.concatenate([profile[:lo], profile[hi:]]).mean()
    if off == 0:
        return math.inf
    return float(work / off)


def user_shares(records: Sequence[JobRecord]) -> np.ndarray:
    """Per-user job shares, sorted descending."""
    if not records:
        raise ValueError("empty log")
    users = np.array([r.user for r in records])
    counts = np.bincount(users).astype(float)
    counts = counts[counts > 0]
    shares = np.sort(counts / counts.sum())[::-1]
    return shares


def gini_coefficient(shares: Sequence[float]) -> float:
    """Gini coefficient of a share vector (0 = equal, →1 = concentrated)."""
    x = np.sort(np.asarray(shares, dtype=float))
    if x.size == 0 or np.any(x < 0) or x.sum() == 0:
        raise ValueError("shares must be nonnegative and nonzero")
    n = x.size
    ranks = np.arange(1, n + 1)
    return float((2 * np.dot(ranks, x) - (n + 1) * x.sum())
                 / (n * x.sum()))


def _ranks(values: np.ndarray) -> np.ndarray:
    order = np.argsort(values, kind="stable")
    ranks = np.empty_like(order, dtype=float)
    ranks[order] = np.arange(values.size, dtype=float)
    return ranks


def size_runtime_correlation(records: Sequence[JobRecord]) -> float:
    """Spearman rank correlation between job size and runtime.

    The paper's gross/net arithmetic assumes independence; values near
    zero support that, strong positive values would inflate FCFS drain
    costs beyond what the model captures.
    """
    if len(records) < 3:
        raise ValueError("need at least 3 records")
    sizes = np.array([r.size for r in records], dtype=float)
    runtimes = np.array([r.runtime for r in records], dtype=float)
    rs, rr = _ranks(sizes), _ranks(runtimes)
    rs -= rs.mean()
    rr -= rr.mean()
    denom = math.sqrt(float(np.dot(rs, rs)) * float(np.dot(rr, rr)))
    if denom == 0:
        return 0.0
    return float(np.dot(rs, rr) / denom)


def bootstrap_mean_ci(values: Sequence[float], level: float = 0.95,
                      resamples: int = 1_000,
                      seed: int = 0) -> tuple[float, float, float]:
    """(mean, low, high) percentile-bootstrap CI for the mean."""
    x = np.asarray(values, dtype=float)
    if x.size == 0:
        raise ValueError("empty sample")
    rng = np.random.default_rng(seed)
    means = np.array([
        x[rng.integers(0, x.size, x.size)].mean()
        for _ in range(resamples)
    ])
    alpha = (1.0 - level) / 2.0
    return (float(x.mean()),
            float(np.quantile(means, alpha)),
            float(np.quantile(means, 1.0 - alpha)))


@dataclass(frozen=True)
class WorkloadCharacterization:
    """The full characterisation battery for one log."""

    num_jobs: int
    mean_size: float
    size_ci: tuple[float, float]
    mean_runtime: float
    runtime_ci: tuple[float, float]
    size_runtime_spearman: float
    peak_offpeak: float
    top3_user_share: float
    user_gini: float

    def summary(self) -> str:
        """Multi-line human-readable summary."""
        return "\n".join([
            f"jobs                    {self.num_jobs}",
            f"mean size               {self.mean_size:.2f} "
            f"[{self.size_ci[0]:.2f}, {self.size_ci[1]:.2f}]",
            f"mean runtime            {self.mean_runtime:.1f}s "
            f"[{self.runtime_ci[0]:.1f}, {self.runtime_ci[1]:.1f}]",
            f"size-runtime Spearman   {self.size_runtime_spearman:+.3f}",
            f"peak/off-peak intensity {self.peak_offpeak:.2f}",
            f"top-3 user share        {self.top3_user_share:.1%}",
            f"user Gini               {self.user_gini:.3f}",
        ])


def characterize(records: Sequence[JobRecord],
                 bootstrap_resamples: int = 500
                 ) -> WorkloadCharacterization:
    """Compute the full characterisation of a log."""
    sizes = [r.size for r in records]
    runtimes = [r.runtime for r in records]
    mean_size, size_lo, size_hi = bootstrap_mean_ci(
        sizes, resamples=bootstrap_resamples)
    mean_rt, rt_lo, rt_hi = bootstrap_mean_ci(
        runtimes, resamples=bootstrap_resamples)
    shares = user_shares(records)
    return WorkloadCharacterization(
        num_jobs=len(records),
        mean_size=mean_size,
        size_ci=(size_lo, size_hi),
        mean_runtime=mean_rt,
        runtime_ci=(rt_lo, rt_hi),
        size_runtime_spearman=size_runtime_correlation(records),
        peak_offpeak=peak_offpeak_ratio(records),
        top3_user_share=float(shares[:3].sum()),
        user_gini=gini_coefficient(shares),
    )
