"""``repro.workload`` — DAS-derived workload modelling.

The substrate replacing the paper's proprietary DAS1 trace: a synthetic
log generator matching every published marginal statistic, the canonical
DAS-s-128 / DAS-s-64 / DAS-t-900 distributions, the component-splitting
rule, Standard Workload Format I/O, and the open-system arrival process.
"""

from . import models, stats_model
from .arrivals import DiurnalRate, NHPPArrivalProcess
from .characterize import (
    WorkloadCharacterization,
    characterize,
    size_runtime_correlation,
)
from .das_log import (
    DASLogGenerator,
    JobRecord,
    LogSummary,
    filter_log,
    generate_das_log,
    runtime_histogram,
    size_histogram,
    summarize_log,
)
from .distributions import (
    WORKLOADS,
    das_s_128,
    das_s_64,
    das_t_900,
    service_distribution_from_log,
    size_distribution_from_log,
)
from .generator import ArrivalProcess, JobFactory, JobSpec, QueueRouter
from .splitting import (
    component_fractions,
    multi_component_fraction,
    num_components,
    split_size,
)
from .swf import SWFFormatError, read_swf, swf_header, write_swf

__all__ = [
    "stats_model", "models",
    # characterisation
    "characterize", "WorkloadCharacterization",
    "size_runtime_correlation",
    # log
    "JobRecord", "DASLogGenerator", "generate_das_log", "LogSummary",
    "summarize_log", "filter_log", "size_histogram", "runtime_histogram",
    # distributions
    "das_s_128", "das_s_64", "das_t_900", "WORKLOADS",
    "size_distribution_from_log", "service_distribution_from_log",
    # splitting
    "num_components", "split_size", "component_fractions",
    "multi_component_fraction",
    # generation
    "JobSpec", "JobFactory", "ArrivalProcess", "QueueRouter",
    "DiurnalRate", "NHPPArrivalProcess",
    # swf
    "write_swf", "read_swf", "swf_header", "SWFFormatError",
]
