"""Job reshaping: the user-side cost of a total-size cap.

The paper's §3.2 recommends capping the total job size (DAS-s-64) and
notes the users' side of the bargain: *"complying to this restriction
translates into reconfiguring their jobs to use fewer processors and
accepting the consequence of having longer service times."*  The
DAS-s-64 experiments drop the large jobs; this module instead *reshapes*
them, conserving their work:

a job of size s > cap becomes size cap with service time scaled by
``(s / cap) / efficiency`` — perfect speedup at ``efficiency = 1``,
sublinear below (the reshaped job needs *more* total processor-seconds,
modelling parallel inefficiency at the original scale persisting as
overhead).

:class:`ReshapingJobFactory` wraps any job factory and applies the cap
on the fly, so every driver and sweep works unchanged; the companion
experiment asks whether the §3.2 advice survives when the capped jobs'
work is kept instead of dropped.
"""

from __future__ import annotations

from typing import Optional

from .generator import JobFactory, JobSpec
from .splitting import split_size

__all__ = ["reshape_spec", "ReshapingJobFactory"]


def reshape_spec(spec: JobSpec, cap: int, *, efficiency: float = 1.0,
                 component_limit: Optional[int] = None,
                 clusters: int = 4) -> JobSpec:
    """Reshape one job spec to at most ``cap`` processors.

    Jobs at or below the cap are returned unchanged.  Larger jobs get
    size ``cap`` and service time scaled by ``(size/cap)/efficiency``
    (work-conserving at efficiency 1).  Components are re-split under
    ``component_limit`` (or kept single-component if ``None``).
    """
    if cap < 1:
        raise ValueError(f"cap must be >= 1, got {cap!r}")
    if not 0.0 < efficiency <= 1.0:
        raise ValueError(
            f"efficiency must be in (0, 1], got {efficiency!r}"
        )
    if spec.size <= cap:
        return spec
    scale = (spec.size / cap) / efficiency
    components = (
        split_size(cap, component_limit, clusters)
        if component_limit is not None else (cap,)
    )
    return JobSpec(
        index=spec.index,
        size=cap,
        components=components,
        service_time=spec.service_time * scale,
        queue=spec.queue,
        user=spec.user,
    )


class ReshapingJobFactory:
    """Wraps a :class:`JobFactory`, capping and reshaping its jobs.

    Exposes the same sampling and load-accounting interface, with the
    expected-work quantities computed for the *reshaped* stream (the
    whole point: the offered work changes when large jobs get slower).
    """

    def __init__(self, inner: JobFactory, cap: int, *,
                 efficiency: float = 1.0):
        if cap < 1:
            raise ValueError(f"cap must be >= 1, got {cap!r}")
        if not 0.0 < efficiency <= 1.0:
            raise ValueError(
                f"efficiency must be in (0, 1], got {efficiency!r}"
            )
        self.inner = inner
        self.cap = int(cap)
        self.efficiency = float(efficiency)
        self.reshaped_jobs = 0

    def next_job(self) -> JobSpec:
        """Sample the next (possibly reshaped) job."""
        spec = self.inner.next_job()
        reshaped = reshape_spec(
            spec, self.cap, efficiency=self.efficiency,
            component_limit=self.inner.component_limit,
            clusters=self.inner.clusters,
        )
        if reshaped is not spec:
            self.reshaped_jobs += 1
        return reshaped

    def jobs(self, n: int) -> list[JobSpec]:
        """Sample ``n`` jobs."""
        return [self.next_job() for _ in range(n)]

    # -- load accounting (for the reshaped stream) -----------------------

    def _work_factors(self):
        import numpy as np

        dist = self.inner.size_distribution
        ext = self.inner.extension_factor
        limit = self.inner.component_limit
        clusters = self.inner.clusters
        sizes = dist.support
        net = []
        gross = []
        for s in sizes:
            s = int(s)
            if s <= self.cap:
                eff_size, scale = s, 1.0
            else:
                eff_size = self.cap
                scale = (s / self.cap) / self.efficiency
            if limit is not None:
                multi = len(split_size(eff_size, limit, clusters)) > 1
            else:
                multi = False
            net.append(eff_size * scale)
            gross.append(eff_size * scale * (ext if multi else 1.0))
        probs = dist.probabilities
        return float(np.dot(net, probs)), float(np.dot(gross, probs))

    def expected_net_work(self) -> float:
        """Mean net processor-seconds per (reshaped) job."""
        net, _ = self._work_factors()
        return net * self.inner.service_distribution.mean

    def expected_gross_work(self) -> float:
        """Mean gross processor-seconds per (reshaped) job."""
        _, gross = self._work_factors()
        return gross * self.inner.service_distribution.mean

    def arrival_rate_for_gross_utilization(self, rho: float,
                                           capacity: int) -> float:
        """λ achieving offered gross utilization ``rho``."""
        if rho <= 0:
            raise ValueError(f"utilization must be positive, got {rho!r}")
        return rho * capacity / self.expected_gross_work()

    def __repr__(self) -> str:
        return (
            f"<ReshapingJobFactory cap={self.cap} "
            f"efficiency={self.efficiency} "
            f"reshaped={self.reshaped_jobs}>"
        )
