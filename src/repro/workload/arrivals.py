"""Non-homogeneous (diurnal) arrival processes.

The paper uses exponential interarrival times (a homogeneous Poisson
process); real logs are strongly diurnal — the synthetic DAS1 trace
carries a 9-to-18 working-hours peak.  This module provides a
non-homogeneous Poisson process (NHPP) via Lewis–Shedler thinning, with
the piecewise-constant day profile as the rate function, so the
sensitivity of the paper's results to the Poisson assumption can be
studied (a day-night load swing stresses FCFS queues harder than a
stationary stream with the same mean rate).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

    from .generator import JobFactory, JobSpec

__all__ = ["RateFunction", "DiurnalRate", "NHPPArrivalProcess"]

_SECONDS_PER_DAY = 86_400.0

#: A rate function maps absolute simulation time to an arrival rate.
RateFunction = Callable[[float], float]


class DiurnalRate:
    """Piecewise-constant daily rate profile.

    Parameters
    ----------
    mean_rate:
        Time-average arrival rate (jobs/second) — offered load matches
        a homogeneous process of this rate exactly.
    hourly_weights:
        24 nonnegative weights giving each hour's relative intensity
        (normalised internally).  Defaults to the synthetic DAS
        profile: 75% of arrivals in the 9-18h window.
    """

    def __init__(self, mean_rate: float,
                 hourly_weights: Optional[Sequence[float]] = None):
        if mean_rate <= 0:
            raise ValueError(f"mean_rate must be positive, got {mean_rate!r}")
        if hourly_weights is None:
            work = 0.75 / 9.0      # 9 working hours share 75%
            off = 0.25 / 15.0      # 15 off-hours share 25%
            hourly_weights = [off] * 9 + [work] * 9 + [off] * 6
        w = np.asarray(hourly_weights, dtype=float)
        if w.shape != (24,):
            raise ValueError("need exactly 24 hourly weights")
        if np.any(w < 0) or w.sum() <= 0:
            raise ValueError("weights must be nonnegative, sum positive")
        self.mean_rate = float(mean_rate)
        # Normalise so the daily average equals mean_rate.
        self.hourly_rates = mean_rate * w / w.mean()

    def __call__(self, time: float) -> float:
        hour = int((time % _SECONDS_PER_DAY) / 3600.0) % 24
        return float(self.hourly_rates[hour])

    @property
    def peak_rate(self) -> float:
        """The maximum instantaneous rate (the thinning majorant)."""
        return float(self.hourly_rates.max())

    def __repr__(self) -> str:
        return (
            f"<DiurnalRate mean={self.mean_rate:.4g} "
            f"peak={self.peak_rate:.4g}>"
        )


class NHPPArrivalProcess:
    """Non-homogeneous Poisson arrivals via Lewis–Shedler thinning.

    Candidate arrivals are generated at the majorant (peak) rate and
    accepted with probability rate(t)/peak — an exact NHPP sampler for
    any bounded rate function.

    Parameters mirror :class:`~repro.workload.generator.ArrivalProcess`
    except that ``rate`` is a :class:`DiurnalRate` (or any object with
    ``__call__`` and ``peak_rate``).
    """

    def __init__(self, sim: "Simulator", factory: "JobFactory",
                 rate: DiurnalRate,
                 submit: Callable[["JobSpec"], None],
                 limit: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None):
        peak = getattr(rate, "peak_rate", None)
        if peak is None or peak <= 0:
            raise ValueError("rate must expose a positive peak_rate")
        self.sim = sim
        self.factory = factory
        self.rate = rate
        self.submit = submit
        self.limit = limit
        # Seeded fallback: an OS-entropy default would silently break
        # replayability and common-random-numbers comparisons.
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.generated = 0
        self.candidates = 0
        self.process = sim.process(self._run(), name="nhpp-arrivals")

    def _run(self):
        peak = self.rate.peak_rate
        mean_gap = 1.0 / peak
        while self.limit is None or self.generated < self.limit:
            yield self.sim.timeout(
                float(self._rng.exponential(mean_gap))
            )
            self.candidates += 1
            accept = self._rng.random() < self.rate(self.sim.now) / peak
            if accept:
                self.submit(self.factory.next_job())
                self.generated += 1

    @property
    def acceptance_rate(self) -> float:
        """Fraction of thinning candidates accepted so far."""
        if self.candidates == 0:
            return float("nan")
        return self.generated / self.candidates
