"""The paper's workload distributions: DAS-s-128, DAS-s-64, DAS-t-900.

Two construction paths are provided, mirroring how the authors worked:

* **Canonical** — :func:`das_s_128`, :func:`das_s_64`, :func:`das_t_900`
  build the distributions directly from the reconstructed statistical
  model (:mod:`repro.workload.stats_model`).  These are the versions used
  by the benchmark harness, so results do not depend on the sampling noise
  of a synthetic log.
* **Trace-derived** — :func:`size_distribution_from_log` and
  :func:`service_distribution_from_log` derive the same distributions from
  any (synthetic or real) log of :class:`~repro.workload.das_log.JobRecord`
  entries, exactly as the authors derived theirs from the DAS1 log.  With
  a large synthetic log the two paths agree to sampling error (asserted in
  the test suite).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.sim.distributions import (
    ContinuousEmpirical,
    DiscreteEmpirical,
    Distribution,
    Lognormal,
    Mixture,
    TruncatedLognormal,
    Uniform,
)

from . import stats_model
from .das_log import JobRecord

__all__ = [
    "das_s_128",
    "das_s_64",
    "das_t_900",
    "size_distribution_from_log",
    "service_distribution_from_log",
    "WORKLOADS",
]


def das_s_128() -> DiscreteEmpirical:
    """The DAS-s-128 total-job-size distribution (full log)."""
    values = sorted(stats_model.SIZE_TABLE)
    weights = [float(stats_model.SIZE_TABLE[v]) for v in values]
    return DiscreteEmpirical(values, weights)


def das_s_64() -> DiscreteEmpirical:
    """The DAS-s-64 size distribution: DAS-s-128 cut at 64 and
    renormalised (paper §2.4 — the cut removes ~2% of the jobs)."""
    return das_s_128().truncate(stats_model.DAS_S_64_CUT)


def das_t_900(moment_seed: int = 0) -> Distribution:
    """The DAS-t-900 service-time distribution (log cut at 900 s).

    Reconstruction: a lognormal body conditioned on (0, 900] plus a
    uniform mass pushed against the working-hours kill limit — the shape
    of the paper's Figure 2.  See ``stats_model`` for parameter choices.
    """
    body = TruncatedLognormal(
        Lognormal(mean=stats_model.SERVICE_BODY_MEAN,
                  cv=stats_model.SERVICE_BODY_CV),
        low=1.0,
        high=stats_model.SERVICE_CUTOFF,
        moment_seed=moment_seed,
    )
    spike = Uniform(stats_model.SERVICE_SPIKE_LOW,
                    stats_model.SERVICE_CUTOFF)
    return Mixture(
        [body, spike],
        [1.0 - stats_model.SERVICE_SPIKE_WEIGHT,
         stats_model.SERVICE_SPIKE_WEIGHT],
    )


def size_distribution_from_log(records: Sequence[JobRecord],
                               max_size: int | None = None
                               ) -> DiscreteEmpirical:
    """Empirical job-size distribution of a log, optionally cut.

    ``max_size=64`` reproduces the paper's DAS-s-64 construction from the
    full log.
    """
    sizes = [r.size for r in records
             if max_size is None or r.size <= max_size]
    if not sizes:
        raise ValueError("no jobs left after the size cut")
    return DiscreteEmpirical.from_samples(sizes)


def service_distribution_from_log(records: Sequence[JobRecord],
                                  cutoff: float = stats_model.SERVICE_CUTOFF,
                                  bins: int = 90) -> ContinuousEmpirical:
    """Empirical service-time distribution of a log, cut at ``cutoff``.

    Bins the runtimes below the cutoff (the paper's DAS-t-900) into an
    interpolated empirical distribution.
    """
    runtimes = np.array([r.runtime for r in records if r.runtime <= cutoff])
    if runtimes.size == 0:
        raise ValueError("no jobs at or below the runtime cutoff")
    edges = np.linspace(0.0, cutoff, bins + 1)
    counts, _ = np.histogram(runtimes, bins=edges)
    return ContinuousEmpirical(edges, counts.astype(float))


#: Named workload registry used by the CLI and the benchmark harness.
WORKLOADS = {
    "das-s-128": das_s_128,
    "das-s-64": das_s_64,
}
