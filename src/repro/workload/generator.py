"""Open-system workload generation for the simulations.

:class:`JobFactory` turns the workload distributions into a stream of
:class:`JobSpec` tuples — total size, component split, base (net) service
time, and the submission queue for policies with local queues.
:class:`ArrivalProcess` drives a factory inside a simulation with
exponential interarrival times (the paper's arrival model).

Load accounting: for a given size distribution, component-size limit and
extension factor, the *offered gross utilization* of an arrival rate λ is

    rho_gross = λ · E[size · extension(size)] · E[service] / capacity

with extension(size) = 1.25 for multi-component sizes and 1 otherwise
(sizes and service times are independent in the model, paper §4).
:meth:`JobFactory.arrival_rate_for_gross_utilization` inverts this so
sweeps can be parameterised directly by target utilization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Sequence

import numpy as np

from repro.sim.distributions import DiscreteEmpirical, Distribution
from repro.sim.rng import StreamFactory

from . import stats_model
from .splitting import split_size

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = ["JobSpec", "JobFactory", "ArrivalProcess", "QueueRouter",
           "DEFAULT_DRAW_BATCH"]

#: Default block size for prefetching random draws.  Block draws from a
#: ``block_equivalent`` distribution consume the generator's bit stream
#: exactly like successive scalar draws, so any batch size (including 1,
#: which disables prefetching) yields byte-identical workloads — pinned
#: by tests/test_determinism.py.
DEFAULT_DRAW_BATCH = 256


@dataclass(frozen=True)
class JobSpec:
    """A job as produced by the workload layer.

    Attributes
    ----------
    index:
        0-based arrival sequence number.
    size:
        Total number of processors.
    components:
        Non-increasing component sizes (one entry per required cluster).
    service_time:
        Base (net) service time; *not* extended.
    queue:
        Index of the local queue this job is submitted to (policies with
        a single global queue ignore it).
    user:
        Anonymised submitting-user index (for fairness analysis; 0 when
        the workload has no user model).
    """

    index: int
    size: int
    components: tuple[int, ...]
    service_time: float
    queue: int
    user: int = 0

    @property
    def is_multi_component(self) -> bool:
        """Whether the job needs co-allocation (more than one component)."""
        return len(self.components) > 1


class QueueRouter:
    """Routes arriving jobs to local queues with given probabilities.

    The paper studies *balanced* (25% each) and *unbalanced* (one queue
    40%, the others 20%) submission of jobs to the local queues of LS and
    LP.
    """

    def __init__(self, weights: Sequence[float],
                 rng: np.random.Generator,
                 batch: Optional[int] = None):
        w = np.asarray(weights, dtype=float)
        if w.ndim != 1 or w.size == 0:
            raise ValueError("weights must be a non-empty 1-D sequence")
        if np.any(w < 0) or w.sum() <= 0:
            raise ValueError("weights must be nonnegative with positive sum")
        self.weights = w / w.sum()
        self._cdf = np.cumsum(self.weights)
        self._cdf[-1] = 1.0
        self._rng = rng
        if batch is None:
            batch = DEFAULT_DRAW_BATCH
        self._batch = max(1, int(batch))
        self._buf = np.empty(0)
        self._pos = 0

    def route(self) -> int:
        """Pick a queue index.

        Uniform draws are prefetched in blocks; ``rng.random(n)``
        consumes the bit stream exactly like ``n`` scalar
        ``rng.random()`` calls, so the routed sequence is identical for
        any batch size.
        """
        pos = self._pos
        buf = self._buf
        if pos >= len(buf):
            buf = self._buf = self._rng.random(self._batch)
            pos = 0
        self._pos = pos + 1
        return int(np.searchsorted(self._cdf, buf[pos], side="right"))

    @property
    def num_queues(self) -> int:
        """Number of local queues."""
        return int(self.weights.size)


class JobFactory:
    """Samples :class:`JobSpec` streams and computes offered loads.

    Parameters
    ----------
    size_distribution:
        Total-job-size distribution (DAS-s-128 or DAS-s-64).
    service_distribution:
        Base service-time distribution (DAS-t-900).
    component_limit:
        Job-component-size limit L; ``None`` disables splitting entirely
        (total requests for the single-cluster reference system).
    clusters:
        Number of clusters (bounds the number of components).
    extension_factor:
        Service-time multiplier for multi-component jobs.
    routing_weights:
        Local-queue submission probabilities.
    streams:
        Named random streams (common random numbers across policies).
    num_users:
        Size of the submitting-user population; users are assigned with
        Zipf-like activity shares (0 disables the user model — every
        job gets user 0).
    batch:
        Block size for prefetched random draws (default
        :data:`DEFAULT_DRAW_BATCH`); 1 disables prefetching.  Only
        ``block_equivalent`` distributions are ever batched, so the job
        stream is byte-identical for every batch size.
    """

    def __init__(self,
                 size_distribution: DiscreteEmpirical,
                 service_distribution: Distribution,
                 component_limit: Optional[int],
                 clusters: int = stats_model.NUM_CLUSTERS,
                 extension_factor: float = stats_model.EXTENSION_FACTOR,
                 routing_weights: Sequence[float] = stats_model.BALANCED_WEIGHTS,
                 streams: Optional[StreamFactory] = None,
                 num_users: int = 0,
                 batch: Optional[int] = None):
        if extension_factor < 1.0:
            raise ValueError(
                f"extension factor must be >= 1, got {extension_factor!r}"
            )
        self.size_distribution = size_distribution
        self.service_distribution = service_distribution
        self.component_limit = component_limit
        self.clusters = clusters
        self.extension_factor = float(extension_factor)
        streams = streams or StreamFactory(None)
        self._size_rng = streams.get("workload.sizes")
        self._service_rng = streams.get("workload.services")
        if batch is None:
            batch = DEFAULT_DRAW_BATCH
        self._batch = max(1, int(batch))
        # Prefetch blocks only from distributions whose block draws are
        # provably stream-equivalent to scalar draws; everything else
        # (rejection samplers, mixtures) keeps the scalar path.
        self._batch_sizes = (self._batch > 1
                             and size_distribution.block_equivalent)
        self._batch_services = (self._batch > 1
                                and service_distribution.block_equivalent)
        self._size_buf = np.empty(0)
        self._size_pos = 0
        self._service_buf = np.empty(0)
        self._service_pos = 0
        self.router = QueueRouter(routing_weights,
                                  streams.get("workload.routing"),
                                  batch=self._batch)
        self.num_users = int(num_users)
        if self.num_users > 0:
            ranks = np.arange(1, self.num_users + 1, dtype=float)
            shares = 1.0 / ranks
            self._user_probs = shares / shares.sum()
            self._user_cdf = np.cumsum(self._user_probs)
            self._user_cdf[-1] = 1.0
            self._user_rng = streams.get("workload.users")
        self._count = 0

    # -- sampling ----------------------------------------------------------

    def _components_for(self, size: int) -> tuple[int, ...]:
        if self.component_limit is None:
            return (size,)
        return split_size(size, self.component_limit, self.clusters)

    def _next_user(self) -> int:
        if self.num_users <= 0:
            return 0
        u = self._user_rng.random()
        return int(np.searchsorted(self._user_cdf, u, side="right"))

    def next_job(self) -> JobSpec:
        """Sample the next job spec."""
        if self._batch_sizes:
            pos = self._size_pos
            buf = self._size_buf
            if pos >= len(buf):
                buf = self._size_buf = self.size_distribution.sample_array(
                    self._size_rng, self._batch
                )
                pos = 0
            self._size_pos = pos + 1
            size = int(buf[pos])
        else:
            size = int(self.size_distribution.sample(self._size_rng))
        if self._batch_services:
            pos = self._service_pos
            buf = self._service_buf
            if pos >= len(buf):
                buf = self._service_buf = (
                    self.service_distribution.sample_array(
                        self._service_rng, self._batch
                    )
                )
                pos = 0
            self._service_pos = pos + 1
            service = float(buf[pos])
        else:
            service = float(
                self.service_distribution.sample(self._service_rng)
            )
        spec = JobSpec(
            index=self._count,
            size=size,
            components=self._components_for(size),
            service_time=service,
            queue=self.router.route(),
            user=self._next_user(),
        )
        self._count += 1
        return spec

    def jobs(self, n: int) -> list[JobSpec]:
        """Sample ``n`` job specs."""
        return [self.next_job() for _ in range(n)]

    # -- analytic load accounting -------------------------------------------

    def expected_gross_work(self) -> float:
        """E[size · extension(size)] · E[service]: mean gross
        processor-seconds demanded per job."""
        ext = self.extension_factor

        def weighted(sizes: np.ndarray) -> np.ndarray:
            if self.component_limit is None:
                return sizes
            multis = np.array(
                [len(self._components_for(int(s))) > 1 for s in sizes]
            )
            return sizes * np.where(multis, ext, 1.0)

        return (self.size_distribution.expectation(weighted)
                * self.service_distribution.mean)

    def expected_net_work(self) -> float:
        """E[size] · E[service]: mean net processor-seconds per job."""
        return self.size_distribution.mean * self.service_distribution.mean

    def gross_net_ratio(self) -> float:
        """Ratio of gross to net utilization (paper §4).

        Independent of the scheduling policy because sizes and service
        times are independent of each other and of arrival times.
        """
        return self.expected_gross_work() / self.expected_net_work()

    def arrival_rate_for_gross_utilization(self, rho: float,
                                           capacity: int) -> float:
        """λ achieving offered gross utilization ``rho`` on ``capacity``."""
        if rho <= 0:
            raise ValueError(f"utilization must be positive, got {rho!r}")
        return rho * capacity / self.expected_gross_work()

    def offered_gross_utilization(self, rate: float, capacity: int) -> float:
        """Offered gross utilization of arrival rate ``rate``."""
        return rate * self.expected_gross_work() / capacity

    def offered_net_utilization(self, rate: float, capacity: int) -> float:
        """Offered net utilization of arrival rate ``rate``."""
        return rate * self.expected_net_work() / capacity


class ArrivalProcess:
    """Poisson job source driving a submit callback inside a simulation.

    The source is direct-scheduled: each arrival is one lightweight
    deferred callback on the calendar, with no generator-process
    machinery per tick.  The event sequence matches the classic
    process-based formulation exactly — one urgent initialisation event
    at time 0, then per tick the job is submitted *before* the next
    arrival is scheduled.  Interarrival draws are prefetched in blocks
    (``rng.exponential(mean, n)`` consumes the bit stream exactly like
    ``n`` scalar draws), so arrival times are byte-identical for any
    batch size.

    Parameters
    ----------
    sim:
        The simulator to run in.
    factory:
        Source of job specs.
    rate:
        Arrival rate λ (jobs per second); interarrival times are
        exponential with mean 1/λ.
    submit:
        Callback invoked with each :class:`JobSpec` at its arrival time.
    limit:
        Stop after this many arrivals (``None`` = run until the
        simulation ends).
    rng:
        Random generator for interarrival times.
    batch:
        Block size for prefetched interarrival draws (default
        :data:`DEFAULT_DRAW_BATCH`); 1 disables prefetching.
    """

    def __init__(self, sim: "Simulator", factory: JobFactory, rate: float,
                 submit: Callable[[JobSpec], None],
                 limit: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None,
                 batch: Optional[int] = None):
        if rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate!r}")
        self.sim = sim
        self.factory = factory
        self.rate = float(rate)
        self.submit = submit
        self.limit = limit
        # Seeded fallback: an OS-entropy default would silently break
        # replayability and common-random-numbers comparisons.
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.generated = 0
        self._mean_iat = 1.0 / self.rate
        if batch is None:
            batch = DEFAULT_DRAW_BATCH
        self._batch = max(1, int(batch))
        self._iat_buf = np.empty(0)
        self._iat_pos = 0
        self._tick_callbacks = (self._tick,)
        # Urgent init event at t=0, mirroring the initialisation event a
        # process-based source would schedule — the scheduling sequence
        # numbers of everything that follows are unchanged.
        sim.defer(0.0, (self._arm,), priority=True)

    def _next_iat(self) -> float:
        pos = self._iat_pos
        buf = self._iat_buf
        if pos >= len(buf):
            buf = self._iat_buf = self._rng.exponential(
                self._mean_iat, self._batch
            )
            pos = 0
        self._iat_pos = pos + 1
        return float(buf[pos])

    def _arm(self, _event: object) -> None:
        if self.limit is None or self.generated < self.limit:
            self.sim.defer(self._next_iat(), self._tick_callbacks)

    def _tick(self, _event: object) -> None:
        self.submit(self.factory.next_job())
        self.generated += 1
        if self.limit is None or self.generated < self.limit:
            self.sim.defer(self._next_iat(), self._tick_callbacks)
