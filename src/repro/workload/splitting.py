"""Splitting total job sizes into per-cluster components.

The paper's rule (§2.4): given a job-component-size limit L and a system
of C clusters, a job of total size s is split into the smallest number of
components n such that no component exceeds L — i.e. n = ceil(s / L) —
clamped to at most C components; the size is then divided as equally as
possible (components differ by at most one processor).

Jobs whose size exceeds C·L therefore get C components *larger than L*;
this is unavoidable (the job must fit in C clusters) and matches the
paper's workload, where size-128 jobs under L=16 become (32,32,32,32).

Examples (the packing-critical size 64 from §3.3):

>>> split_size(64, 16, 4)
(16, 16, 16, 16)
>>> split_size(64, 24, 4)
(22, 21, 21)
>>> split_size(64, 32, 4)
(32, 32)
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.distributions import DiscreteEmpirical

__all__ = ["num_components", "split_size", "component_fractions",
           "multi_component_fraction"]


def num_components(size: int, limit: int, clusters: int) -> int:
    """Number of components for a job of ``size`` under limit ``limit``.

    ``min(ceil(size / limit), clusters)`` per the paper's rule.
    """
    if size < 1:
        raise ValueError(f"job size must be >= 1, got {size!r}")
    if limit < 1:
        raise ValueError(f"component-size limit must be >= 1, got {limit!r}")
    if clusters < 1:
        raise ValueError(f"cluster count must be >= 1, got {clusters!r}")
    return min(math.ceil(size / limit), clusters)


def split_size(size: int, limit: int, clusters: int) -> tuple[int, ...]:
    """Split ``size`` into components per the paper's rule.

    Returns component sizes in non-increasing order (sizes differ by at
    most one).  The sum of the components always equals ``size``.
    """
    n = num_components(size, limit, clusters)
    base, rem = divmod(size, n)
    return (base + 1,) * rem + (base,) * (n - rem)


def component_fractions(size_distribution: "DiscreteEmpirical", limit: int,
                        clusters: int) -> tuple[float, ...]:
    """Fraction of jobs with 1..clusters components (Table 2 of the paper).

    Computed exactly from the size distribution's probability masses.
    """
    fractions = [0.0] * clusters
    for size, prob in zip(size_distribution.support,
                          size_distribution.probabilities):
        n = num_components(int(size), limit, clusters)
        fractions[n - 1] += float(prob)
    return tuple(fractions)


def multi_component_fraction(size_distribution: "DiscreteEmpirical",
                             limit: int, clusters: int) -> float:
    """Fraction of jobs with more than one component."""
    fractions = component_fractions(size_distribution, limit, clusters)
    return 1.0 - fractions[0]
