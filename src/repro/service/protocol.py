"""The sweep service's wire protocol: specs, requests, event streams.

Everything the server and client exchange is newline-delimited JSON
over a local Unix-domain socket.  One connection carries one request:

* the client sends a single request line — ``{"op": ...}`` with
  op-specific fields;
* for ``ping`` / ``status`` / ``shutdown`` the server answers with a
  single response line (``{"schema": "repro.service/1", "ok": true,
  ...}``, or ``{"error": ...}``) and closes;
* for ``submit`` / ``attach`` the server answers with a *campaign
  stream*: a header line in the obs EventLog format (``{"schema":
  "repro.obs/events/1", "stream": "repro.service/stream/1",
  "campaign": <key>}``) followed by one event object per line
  (kinds and payload keys registered in
  :data:`repro.obs.events.SERVICE_EVENT_SCHEMAS`), then EOF.  ``t`` is
  a per-stream monotone sequence number, never a clock, so streams are
  deterministic.  A stream captured to a file parses with
  :func:`repro.obs.events.read_events` unchanged.

A *submission spec* is the JSON description of one campaign — the
same information a ``repro-sim sweep`` invocation carries: a labelled
list of (configuration, offered load) cells over a named workload,
with a backend request resolved server-side **before** task keys are
derived (exactly like the one-shot path, so the service addresses the
same cache entries byte for byte).  :func:`spec_tasks` is the single
point turning a spec into :class:`~repro.runner.task.RunTask`\\ s;
because the campaign key hashes the resulting task keys, equal specs
always map to the same campaign and reattachment can never mix state
across campaigns.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Iterator, Optional, Sequence

from repro.core.system import SimulationConfig
from repro.obs.events import EVENT_SCHEMA, SERVICE_EVENT_SCHEMAS
from repro.runner import RunTask, campaign_key, task_keys
from repro.sim.backend import resolve_backend
from repro.workload import WORKLOADS, das_t_900

__all__ = [
    "PROTOCOL_SCHEMA",
    "STREAM_SCHEMA",
    "SPEC_SCHEMA",
    "ProtocolError",
    "config_to_dict",
    "config_from_dict",
    "normalize_spec",
    "sweep_spec",
    "spec_tasks",
    "spec_campaign",
    "encode_line",
    "decode_line",
    "stream_header",
    "stream_event",
]

#: Versioned tag on request/response lines; bump on change.
PROTOCOL_SCHEMA = "repro.service/1"

#: Versioned tag naming the campaign-stream flavour inside the obs
#: EventLog header; bump when stream event shapes change.
STREAM_SCHEMA = "repro.service/stream/1"

#: Versioned shape tag of submission specs; bump on change.
SPEC_SCHEMA = "repro.service/spec/1"

#: Config tuple fields that JSON flattens to lists.
_TUPLE_FIELDS = ("capacities", "routing_weights")

_BACKENDS = ("scalar", "batch", "auto")


class ProtocolError(ValueError):
    """A request, spec or stream line violated the wire protocol."""


def config_to_dict(config: SimulationConfig) -> dict:
    """JSON-ready dict form of a configuration."""
    return asdict(config)


def config_from_dict(payload: dict) -> SimulationConfig:
    """Rebuild a configuration, restoring tuple-typed fields.

    Unknown fields are rejected (a spec from a newer protocol must not
    be silently reinterpreted), as are missing required ones.
    """
    if not isinstance(payload, dict):
        raise ProtocolError(f"config must be an object, "
                            f"got {type(payload).__name__}")
    known = set(SimulationConfig.__dataclass_fields__)
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ProtocolError(f"unknown config fields: {unknown}")
    data = dict(payload)
    for field in _TUPLE_FIELDS:
        if field in data and isinstance(data[field], (list, tuple)):
            data[field] = tuple(data[field])
    try:
        return SimulationConfig(**data)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"bad config: {exc}") from None


def normalize_spec(spec: object) -> dict:
    """Validate a submission spec and return its canonical dict form.

    Raises :class:`ProtocolError` on any malformation; the canonical
    form always carries the ``schema`` tag and a ``kind``, and every
    cell's config has round-tripped through
    :func:`config_from_dict` (so downstream code never sees a bad one).
    """
    if not isinstance(spec, dict):
        raise ProtocolError(f"spec must be an object, "
                            f"got {type(spec).__name__}")
    schema = spec.get("schema", SPEC_SCHEMA)
    if schema != SPEC_SCHEMA:
        raise ProtocolError(f"spec schema {schema!r} != {SPEC_SCHEMA!r}")
    label = spec.get("label")
    if not isinstance(label, str) or not label:
        raise ProtocolError("spec needs a non-empty string 'label'")
    kind = spec.get("kind", "sweep")
    if not isinstance(kind, str) or not kind:
        raise ProtocolError("spec 'kind' must be a non-empty string")
    workload = spec.get("workload", "das-s-128")
    if workload not in WORKLOADS:
        raise ProtocolError(
            f"unknown workload {workload!r} "
            f"(expected one of {sorted(WORKLOADS)})")
    backend = spec.get("backend", "scalar")
    if backend not in _BACKENDS:
        raise ProtocolError(f"unknown backend {backend!r} "
                            f"(expected one of {list(_BACKENDS)})")
    stop = spec.get("stop_after_saturation")
    if stop is not None and (not isinstance(stop, int)
                             or isinstance(stop, bool) or stop < 1):
        raise ProtocolError("'stop_after_saturation' must be null or "
                            "an integer >= 1")
    cells = spec.get("cells")
    if not isinstance(cells, list) or not cells:
        raise ProtocolError("spec needs a non-empty 'cells' list")
    canonical_cells = []
    seen: set[str] = set()
    for i, cell in enumerate(cells):
        if not isinstance(cell, dict):
            raise ProtocolError(f"cell {i} must be an object")
        rho = cell.get("offered_gross")
        if not isinstance(rho, (int, float)) or isinstance(rho, bool):
            raise ProtocolError(f"cell {i} needs a numeric "
                                f"'offered_gross'")
        config = config_from_dict(cell.get("config"))
        identity = json.dumps(
            {"config": config_to_dict(config), "offered_gross": rho},
            sort_keys=True, separators=(",", ":"))
        if identity in seen:
            raise ProtocolError(f"cell {i} duplicates an earlier cell")
        seen.add(identity)
        canonical_cells.append({"config": config_to_dict(config),
                                "offered_gross": float(rho)})
    return {
        "schema": SPEC_SCHEMA,
        "kind": kind,
        "label": label,
        "workload": workload,
        "backend": backend,
        "stop_after_saturation": stop,
        "cells": canonical_cells,
    }


def sweep_spec(label: str, config: SimulationConfig,
               grid: Sequence[float], *,
               workload: str = "das-s-128",
               backend: str = "scalar",
               stop_after_saturation: Optional[int] = None) -> dict:
    """A canonical sweep spec: one configuration across a load grid.

    The service counterpart of :func:`~repro.analysis.sweeps.sweep`'s
    argument list; ``stop_after_saturation=None`` runs the full grid
    (an integer reproduces the one-shot early-stop truncation — the
    tail past the threshold is still simulated speculatively and
    cached, only the streamed curve is cut).
    """
    return normalize_spec({
        "schema": SPEC_SCHEMA,
        "kind": "sweep",
        "label": label,
        "workload": workload,
        "backend": backend,
        "stop_after_saturation": stop_after_saturation,
        "cells": [{"config": config_to_dict(config),
                   "offered_gross": float(rho)} for rho in grid],
    })


def spec_tasks(spec: dict) -> list[RunTask]:
    """The planned task list of a (normalized) spec, in cell order.

    The backend request resolves here — before any key derivation,
    exactly like the one-shot paths — so the service and a local
    ``sweep()`` over the same inputs address identical cache entries.
    """
    sizes = WORKLOADS[spec["workload"]]()
    service = das_t_900()
    configs = [config_from_dict(cell["config"])
               for cell in spec["cells"]]
    backend = resolve_backend(spec["backend"], configs[0],
                              width=len(configs),
                              size_distribution=sizes)
    return [
        RunTask(config, sizes, service, cell["offered_gross"],
                backend=backend)
        for config, cell in zip(configs, spec["cells"])
    ]


def spec_campaign(spec: dict) -> tuple[str, list[RunTask], list[str]]:
    """``(campaign_key, tasks, task_keys)`` of a normalized spec."""
    tasks = spec_tasks(spec)
    keys = task_keys(tasks)
    return campaign_key(spec["kind"], spec["label"], keys), tasks, keys


def encode_line(payload: dict) -> bytes:
    """One wire line: compact JSON plus the newline terminator."""
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(raw: "bytes | str") -> dict:
    """Parse one wire line into a dict (typed error on garbage)."""
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"bad protocol line: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(f"protocol line must be an object, "
                            f"got {type(payload).__name__}")
    return payload


def stream_header(campaign: str) -> dict:
    """The obs-EventLog header opening one campaign stream."""
    return {"schema": EVENT_SCHEMA, "stream": STREAM_SCHEMA,
            "campaign": campaign}


def stream_event(seq: Iterator[int], kind: str, **payload: object) -> dict:
    """One stream event; ``t`` is drawn from the stream's sequence.

    The payload keys are checked against
    :data:`~repro.obs.events.SERVICE_EVENT_SCHEMAS` so an emit site
    cannot drift from the registered wire contract unnoticed.
    """
    expected = SERVICE_EVENT_SCHEMAS.get(kind)
    if expected is None:
        raise ProtocolError(f"unregistered stream event kind {kind!r}")
    if set(payload) != expected:
        raise ProtocolError(
            f"event {kind!r} payload keys {sorted(payload)} != "
            f"registered schema {sorted(expected)}")
    return {"t": float(next(seq)), "kind": kind, **payload}
