"""``repro.service`` — the persistent sweep/campaign service.

A long-lived asyncio server (:class:`ServiceServer`) accepts campaign
submissions over a local Unix-domain socket, multiplexes them over one
shared worker fleet with single-flight per-task deduplication
(:class:`TaskBroker`), and streams results back as obs-EventLog-framed
JSON lines.  Persistence lives entirely in the result-cache directory
— campaign ledgers make every submission re-derivable from its key, so
killing and restarting the server over the same cache finishes only
the remaining work (the ``--resume`` contract, as a reconnection).

See ``docs/service.md`` for the protocol, lifecycle and failure
semantics; ``repro-sim serve`` / ``submit`` / ``attach`` are the CLI
entry points.
"""

import os
from pathlib import Path
from typing import Optional

from .client import (
    CampaignResult,
    CampaignStream,
    ServiceClient,
    ServiceConnectionError,
    ServiceError,
    collect,
    wait_until_ready,
)
from .protocol import (
    PROTOCOL_SCHEMA,
    SPEC_SCHEMA,
    STREAM_SCHEMA,
    ProtocolError,
    config_from_dict,
    config_to_dict,
    normalize_spec,
    spec_campaign,
    spec_tasks,
    sweep_spec,
)
from .scheduler import TaskBroker
from .server import ServiceServer, serve_in_thread

__all__ = [
    "PROTOCOL_SCHEMA", "STREAM_SCHEMA", "SPEC_SCHEMA",
    "ProtocolError", "config_to_dict", "config_from_dict",
    "normalize_spec", "sweep_spec", "spec_tasks", "spec_campaign",
    "TaskBroker", "ServiceServer", "serve_in_thread",
    "ServiceClient", "CampaignStream", "CampaignResult",
    "ServiceError", "ServiceConnectionError", "collect",
    "wait_until_ready",
    "SOCKET_ENV", "DEFAULT_SOCKET", "resolve_socket_path",
]

#: Environment override naming the service socket for CLI clients.
SOCKET_ENV = "REPRO_SERVICE_SOCKET"

#: Socket filename used when neither ``--socket`` nor the environment
#: names one (relative to the working directory, next to the default
#: cache).
DEFAULT_SOCKET = ".repro-service.sock"


def resolve_socket_path(explicit: "Optional[Path | str]" = None) -> Path:
    """The service socket path: explicit arg > env > default."""
    if explicit is not None:
        return Path(explicit)
    env = os.environ.get(SOCKET_ENV)
    if env:
        return Path(env)
    return Path(DEFAULT_SOCKET)
