"""The shared worker fleet: single-flight task scheduling.

A :class:`TaskBroker` owns the one execution fleet every connected
campaign shares.  Its contract is *single-flight per task key*: however
many concurrent campaigns want a task, it runs **at most once** —

* a key with a cached result is served from the shared read-through
  :class:`~repro.runner.cache.ResultCache` (zero engine calls);
* a key already in flight hands back the in-flight future (the second
  client awaits the first client's execution);
* only a key that is neither cached nor in flight is executed, through
  the ordinary :func:`~repro.runner.pool.execute` path — so the
  round-based crash/hang/timeout recovery of
  :mod:`repro.runner.pool` / :mod:`repro.runner.retry` applies under
  the service unchanged (an armed fault plan routes execution through
  a worker pool whose children, never the server, absorb the crash).

Computations are *detached* ``asyncio.Task``\\ s owned by the broker,
not by the requesting connection: a client that disconnects mid-flight
cancels only its own ``await`` (shielded), while the computation runs
to completion and checkpoints to the cache — exactly the semantics a
killed one-shot campaign has, where completed tasks stay completed.

Batch-backend campaigns go through :meth:`TaskBroker.run_fused`: the
owned (non-cached, non-inflight) remainder of the grid becomes one
:func:`~repro.runner.fused.execute_fused` call whose ``on_result``
callback resolves each task's future the moment its lane retires, so
points stream to clients mid-wave.

Concurrency is bounded by a fleet semaphore counting concurrent engine
invocations (a fused kernel call is one invocation, however many lanes
it packs).  All bookkeeping lives on the server's event loop; only the
engine work itself runs in threads.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, Optional, Sequence

from repro.obs import progress as _progress
from repro.runner import ResultCache, RetryPolicy, execute
from repro.runner.fused import DEFAULT_FUSED_WIDTH, execute_fused
from repro.runner.task import RunTask

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.analysis.points import SweepPoint

__all__ = ["TaskBroker"]

#: ``(point, status)`` with status in {"hit", "computed", "deduped"}.
_Resolution = "tuple[SweepPoint, str]"


def _consume_exception(future: "asyncio.Future") -> None:
    """Mark a future's exception retrieved (a client may have gone)."""
    if not future.cancelled():
        future.exception()


class TaskBroker:
    """Single-flight execution of tasks over one shared fleet."""

    def __init__(self, store: ResultCache, *, fleet: int = 4,
                 workers: int = 1,
                 retry: Optional[RetryPolicy] = None,
                 fused_width: int = DEFAULT_FUSED_WIDTH) -> None:
        if fleet < 1:
            raise ValueError(f"fleet must be >= 1, got {fleet!r}")
        self.store = store
        self.workers = workers
        self.retry = retry
        self.fused_width = fused_width
        self._semaphore = asyncio.Semaphore(fleet)
        #: key -> future of its in-flight computation.  Only keys with
        #: no cached result appear here; entries are removed as their
        #: futures settle.
        self.inflight: "dict[str, asyncio.Future]" = {}
        #: Strong references to fused driver tasks (futures alone would
        #: let the event loop garbage-collect a running driver).
        self._drivers: "set[asyncio.Task]" = set()
        self.counters = {
            "tasks.executed": 0,   # fresh engine executions completed
            "tasks.hit": 0,        # served straight from the cache
            "tasks.deduped": 0,    # joined an in-flight execution
            "fused.calls": 0,      # fused kernel drivers launched
        }

    def snapshot(self) -> dict:
        """JSON-ready state for the ``status`` op."""
        return {"counters": dict(self.counters),
                "inflight": len(self.inflight),
                "cache": self.store.stats()}

    async def point_for(self, task: RunTask, key: str) -> _Resolution:
        """Resolve one task: cache hit, join in-flight, or execute.

        The await on an in-flight computation is shielded — a
        cancelled client never cancels work other clients (or the
        cache) will want.
        """
        existing = self.inflight.get(key)
        if existing is None:
            hit = await asyncio.to_thread(self.store.load, key)
            # The cache probe yielded the loop: someone may have
            # started this key meanwhile.
            existing = self.inflight.get(key)
            if existing is None:
                if hit is not None:
                    self.counters["tasks.hit"] += 1
                    _progress.notify("hit", key, task.describe())
                    return hit, "hit"
                handle = asyncio.create_task(self._compute(task, key))
                self._register(key, handle)
                return await asyncio.shield(handle), "computed"
        self.counters["tasks.deduped"] += 1
        return await asyncio.shield(existing), "deduped"

    async def run_fused(self, pairs: "Sequence[tuple[RunTask, str]]"
                        ) -> "dict[str, tuple[str, object]]":
        """Plan a batch-backend campaign; resolve cells incrementally.

        Returns ``{key: ("hit", point) | (status, future)}`` covering
        every pair — cached cells resolve immediately, in-flight cells
        are joined (``"deduped"``), and the owned remainder runs as one
        fused kernel call whose futures settle lane by lane as they
        retire (``"computed"``).  Callers await the futures (shielded)
        in whatever order they stream cells.
        """
        loop = asyncio.get_running_loop()
        resolved: "dict[str, tuple[str, object]]" = {}
        fresh: "list[tuple[RunTask, str]]" = []
        futures: "dict[str, asyncio.Future]" = {}
        for task, key in pairs:
            if key in resolved:
                continue
            existing = self.inflight.get(key)
            if existing is None:
                hit = await asyncio.to_thread(self.store.load, key)
                existing = self.inflight.get(key)
                if existing is None:
                    if hit is not None:
                        self.counters["tasks.hit"] += 1
                        _progress.notify("hit", key, task.describe())
                        resolved[key] = ("hit", hit)
                        continue
                    # Claim the key *before* the next cache probe can
                    # yield the loop, or a concurrent campaign could
                    # claim it too and the task would run twice.
                    future = loop.create_future()
                    self._register(key, future)
                    futures[key] = future
                    fresh.append((task, key))
                    resolved[key] = ("computed", future)
                    continue
            self.counters["tasks.deduped"] += 1
            resolved[key] = ("deduped", existing)
        if fresh:
            self.counters["fused.calls"] += 1
            driver = asyncio.create_task(
                self._drive_fused([t for t, _ in fresh], futures))
            self._drivers.add(driver)
            driver.add_done_callback(self._drivers.discard)
        return resolved

    def _register(self, key: str, future: "asyncio.Future") -> None:
        self.inflight[key] = future
        # Consume the exception even when every waiter has gone away
        # (clients may disconnect mid-flight) so the loop never logs
        # "exception was never retrieved" for a fleet failure that the
        # retry machinery already reported.
        future.add_done_callback(_consume_exception)
        future.add_done_callback(
            lambda fut: self._unregister(key, fut))

    def _unregister(self, key: str, future: "asyncio.Future") -> None:
        if self.inflight.get(key) is future:
            del self.inflight[key]

    async def _compute(self, task: RunTask, key: str) -> "SweepPoint":
        async with self._semaphore:
            point = await asyncio.to_thread(self._execute_one, task)
        self.counters["tasks.executed"] += 1
        return point

    def _execute_one(self, task: RunTask) -> "SweepPoint":
        # execute() checkpoints to the cache, emits the per-task
        # heartbeats, and applies the retry/timeout/crash-recovery
        # machinery; workers=1 without faults or a timeout runs the
        # engine right here in this thread.
        [point] = execute([task], workers=self.workers,
                          cache=self.store, retry=self.retry)
        return point

    async def _drive_fused(self, tasks: "list[RunTask]",
                           futures: "dict[str, asyncio.Future]") -> None:
        """Run one fused kernel call, settling futures as lanes retire."""
        loop = asyncio.get_running_loop()

        def on_result(task: RunTask, key: str, point: object) -> None:
            # Called on the executor thread mid-wave (after the cache
            # checkpoint); hop to the loop to touch the futures.
            loop.call_soon_threadsafe(self._settle, futures, key, point)

        try:
            async with self._semaphore:
                results = await asyncio.to_thread(
                    execute_fused, tasks, cache=self.store,
                    width=self.fused_width, on_result=on_result)
        except BaseException as exc:
            for future in futures.values():
                if not future.done():
                    future.set_exception(exc)
            return
        # on_result settles everything in the normal case; sweep any
        # future a lost callback left behind so no client hangs.
        for key, future in futures.items():
            if not future.done():
                self._settle(futures, key, results[key])

    def _settle(self, futures: "dict[str, asyncio.Future]", key: str,
                point: object) -> None:
        future = futures.get(key)
        if future is not None and not future.done():
            future.set_result(point)
            self.counters["tasks.executed"] += 1
