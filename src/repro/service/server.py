"""The sweep service: a persistent asyncio campaign dispatcher.

:class:`ServiceServer` listens on a local Unix-domain socket and runs
submitted campaigns over one shared :class:`~.scheduler.TaskBroker`
fleet.  Each connection carries one request (see
:mod:`repro.service.protocol`); ``submit`` and ``attach`` answer with a
campaign stream — an obs-EventLog-framed sequence of ``campaign-begin``
/ ``heartbeat`` / ``point`` / ``campaign-finish`` events — while the
campaign's tasks resolve against the shared read-through
:class:`~repro.runner.cache.ResultCache` with single-flight
deduplication.

Persistence is the cache directory, not server memory:

* every submission is recorded as a *campaign ledger*
  (:func:`~repro.runner.campaign.record_ledger`) next to the campaign
  manifest, so a campaign is re-derivable from its key alone;
* ``attach`` rebuilds the task list from the ledger (by unique key
  prefix, like an abbreviated git hash) and streams the campaign —
  completed tasks are cache hits, the remainder executes.  A server
  killed mid-campaign and restarted over the same cache directory
  therefore finishes only the remaining tasks, which is exactly the
  one-shot ``--resume`` contract with the re-run replaced by a client
  reconnection.

Heartbeats from the runner (hit/start/retry/attempt-failed/finish/
fail) are fanned in through one process-wide
:class:`~repro.obs.progress.HeartbeatRouter` and routed to each
connection by its campaign's task keys, so concurrent clients only see
their own campaign's execution, whichever fleet thread emits it.

:func:`serve_in_thread` hosts a server inside the current process for
tests and benchmarks.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import signal
import threading
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.points import point_to_dict
from repro.obs.progress import HeartbeatRouter
from repro.runner import (
    ResultCache,
    RetryPolicy,
    RunTask,
    SweepManifest,
    begin_campaign,
    finish_campaign,
    fused_eligible,
    load_ledger,
    match_campaigns,
    record_ledger,
)
from repro.runner.fused import DEFAULT_FUSED_WIDTH

from .protocol import (
    PROTOCOL_SCHEMA,
    ProtocolError,
    decode_line,
    encode_line,
    normalize_spec,
    spec_campaign,
    stream_event,
    stream_header,
)
from .scheduler import TaskBroker

__all__ = ["ServiceServer", "serve_in_thread"]

#: Heartbeat kinds forwarded into campaign streams.  The campaign
#: markers are excluded — the stream has richer first-class
#: ``campaign-begin`` / ``campaign-finish`` events of its own.
_FORWARDED_PHASES = frozenset({
    "hit", "start", "retry", "attempt-failed", "finish", "fail",
})


class ServiceServer:
    """One campaign dispatcher bound to a cache directory and socket."""

    def __init__(self, cache_dir: "Path | str",
                 socket_path: "Path | str", *,
                 fleet: int = 4,
                 workers: int = 1,
                 retry: Optional[RetryPolicy] = None,
                 fused_width: int = DEFAULT_FUSED_WIDTH) -> None:
        self.socket_path = Path(socket_path)
        self.store = ResultCache(Path(cache_dir))
        self.broker = TaskBroker(self.store, fleet=fleet,
                                 workers=workers, retry=retry,
                                 fused_width=fused_width)
        self.router = HeartbeatRouter()
        self.campaigns_served = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None

    # -- lifecycle ----------------------------------------------------

    async def serve(self, *,
                    ready: Optional[threading.Event] = None) -> None:
        """Listen until :meth:`request_stop` (or SIGINT/SIGTERM).

        ``ready`` is set once the socket is accepting connections —
        :func:`serve_in_thread` blocks on it so callers never race the
        bind.
        """
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._stop = asyncio.Event()
        self.router.start()
        with contextlib.suppress(OSError):
            self.socket_path.unlink()
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        server = await asyncio.start_unix_server(
            self._handle, path=str(self.socket_path))
        handled_signals = []
        for sig in (signal.SIGINT, signal.SIGTERM):
            # Only available on the main thread of the main
            # interpreter; in-thread servers stop via request_stop().
            with contextlib.suppress(NotImplementedError, RuntimeError,
                                     ValueError):
                loop.add_signal_handler(sig, self._stop.set)
                handled_signals.append(sig)
        if ready is not None:
            ready.set()
        try:
            await self._stop.wait()
        finally:
            for sig in handled_signals:
                with contextlib.suppress(NotImplementedError,
                                         RuntimeError, ValueError):
                    loop.remove_signal_handler(sig)
            server.close()
            await server.wait_closed()
            self.router.stop()
            with contextlib.suppress(OSError):
                self.socket_path.unlink()

    def request_stop(self) -> None:
        """Ask a running server to shut down (safe from any thread)."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(stop.set)

    # -- request handling ---------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            raw = await reader.readline()
            if not raw:
                return
            try:
                await self._dispatch(decode_line(raw), writer)
            except ProtocolError as exc:
                await _send_line(writer, {"schema": PROTOCOL_SCHEMA,
                                          "error": str(exc)})
        except (ConnectionError, BrokenPipeError):
            pass  # client went away mid-stream; its campaign continues
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (Exception, asyncio.CancelledError):
                # Nothing follows this close; swallowing a shutdown
                # cancellation here keeps loop teardown quiet.
                pass

    async def _dispatch(self, request: dict,
                        writer: asyncio.StreamWriter) -> None:
        op = request.get("op")
        if op == "ping":
            await _send_line(writer, {"schema": PROTOCOL_SCHEMA,
                                      "ok": True, "op": "ping"})
        elif op == "status":
            payload = {"schema": PROTOCOL_SCHEMA, "ok": True,
                       "op": "status",
                       "campaigns_served": self.campaigns_served}
            payload.update(self.broker.snapshot())
            await _send_line(writer, payload)
        elif op == "shutdown":
            await _send_line(writer, {"schema": PROTOCOL_SCHEMA,
                                      "ok": True, "op": "shutdown"})
            if self._stop is not None:
                self._stop.set()
        elif op == "submit":
            spec = normalize_spec(request.get("spec"))
            await self._stream_campaign(spec, writer)
        elif op == "attach":
            spec = await self._attached_spec(request.get("campaign"))
            await self._stream_campaign(spec, writer)
        else:
            raise ProtocolError(f"unknown op {op!r}")

    async def _attached_spec(self, prefix: object) -> dict:
        if not isinstance(prefix, str) or not prefix:
            raise ProtocolError("attach needs a non-empty string "
                                "'campaign' key prefix")
        matches = await asyncio.to_thread(match_campaigns, self.store,
                                          prefix)
        if not matches:
            raise ProtocolError(
                f"unknown campaign {prefix!r}: no ledger under "
                f"{self.store.root}/sweeps matches")
        if len(matches) > 1:
            raise ProtocolError(
                f"ambiguous campaign prefix {prefix!r} "
                f"({len(matches)} matches); use more characters")
        submission = await asyncio.to_thread(load_ledger, self.store,
                                             matches[0])
        if submission is None:
            raise ProtocolError(
                f"campaign {matches[0]} has a malformed ledger")
        return normalize_spec(submission)

    # -- campaign streaming -------------------------------------------

    async def _stream_campaign(self, spec: dict,
                               writer: asyncio.StreamWriter) -> None:
        campaign, tasks, keys = spec_campaign(spec)
        loop = asyncio.get_running_loop()
        seq = itertools.count()
        lock = asyncio.Lock()

        async def emit(kind: str, **payload: object) -> None:
            # stream_event draws ``t`` under the lock, so sequence
            # numbers always match line order on the wire.
            async with lock:
                line = encode_line(stream_event(seq, kind, **payload))
                writer.write(line)
                await writer.drain()

        beats: "asyncio.Queue[tuple[str, str, str]]" = asyncio.Queue()

        def on_beat(kind: str, key: str, description: str) -> None:
            # Fleet threads emit heartbeats; hop onto the loop.
            loop.call_soon_threadsafe(beats.put_nowait,
                                      (kind, key, description))

        async def pump() -> None:
            while True:
                kind, key, description = await beats.get()
                if kind in _FORWARDED_PHASES:
                    await emit("heartbeat", phase=kind, key=key,
                               description=description)

        async with lock:
            writer.write(encode_line(stream_header(campaign)))
            await writer.drain()
        token = self.router.watch(set(keys), on_beat)
        pump_task = asyncio.create_task(pump())
        try:
            manifest = await asyncio.to_thread(
                self._open_campaign, spec, campaign, tasks)
            await emit("campaign-begin", campaign=campaign,
                       campaign_kind=spec["kind"], label=spec["label"],
                       planned=len(keys))
            emitted = await self._stream_points(spec, tasks, keys, emit)
            await asyncio.to_thread(finish_campaign, manifest,
                                    self.store, emitted)
            await emit("campaign-finish", campaign=campaign,
                       points=emitted)
            self.campaigns_served += 1
        except (ConnectionError, BrokenPipeError):
            raise
        except Exception as exc:  # surfaced to the client, not the log
            with contextlib.suppress(ConnectionError, BrokenPipeError):
                await emit("error", message=f"{type(exc).__name__}: "
                                            f"{exc}")
        finally:
            self.router.unwatch(token)
            pump_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await pump_task

    def _open_campaign(self, spec: dict, campaign: str,
                       tasks: "list[RunTask]") -> Optional[SweepManifest]:
        record_ledger(self.store, campaign, spec)
        return begin_campaign(spec["kind"], spec["label"], tasks,
                              self.store)

    async def _stream_points(self, spec: dict,
                             tasks: "Sequence[RunTask]",
                             keys: "Sequence[str]", emit) -> int:
        """Resolve and emit the campaign's points in cell order.

        Returns the number of ``point`` events emitted.  With
        ``stop_after_saturation`` set the curve is cut after the Nth
        saturated point, mirroring the one-shot sweep; without it the
        whole grid resolves concurrently (bounded by the fleet), so a
        wide campaign keeps every fleet slot busy.
        """
        stop = spec["stop_after_saturation"]
        pairs = list(zip(tasks, keys))
        fused = (tasks and tasks[0].backend == "batch"
                 and fused_eligible())
        emitted = 0
        saturated_seen = 0
        waiters: "list[asyncio.Task]" = []
        if fused:
            resolution = await self.broker.run_fused(pairs)
        elif stop is None:
            # Full grid: admit every cell up front; the broker's
            # semaphore bounds actual concurrency.
            waiters = [asyncio.create_task(self.broker.point_for(t, k))
                       for t, k in pairs]
        try:
            for index, (task, key) in enumerate(pairs):
                if fused:
                    status, value = resolution[key]
                    point = (value if status == "hit"
                             else await asyncio.shield(value))
                elif stop is None:
                    point, status = await waiters[index]
                else:
                    # Early-stopping campaigns resolve sequentially so
                    # the tail past the knee is never requested.
                    point, status = await self.broker.point_for(task,
                                                                key)
                await emit("point", key=key, index=index, status=status,
                           point=point_to_dict(point))
                emitted += 1
                if point.saturated:
                    saturated_seen += 1
                    if stop is not None and saturated_seen >= stop:
                        break
        finally:
            for waiter in waiters:
                # Shielded internally: cancelling a waiter abandons
                # this client's await, never the computation.
                if not waiter.done():
                    waiter.cancel()
        return emitted


async def _send_line(writer: asyncio.StreamWriter, payload: dict) -> None:
    writer.write(encode_line(payload))
    await writer.drain()


@contextlib.contextmanager
def serve_in_thread(cache_dir: "Path | str", socket_path: "Path | str",
                    **kwargs):
    """Host a :class:`ServiceServer` on a daemon thread (tests, bench).

    Yields the server once its socket accepts connections; stops it and
    joins the thread on exit.
    """
    server = ServiceServer(cache_dir, socket_path, **kwargs)
    ready = threading.Event()
    thread = threading.Thread(
        target=lambda: asyncio.run(server.serve(ready=ready)),
        name="repro-service", daemon=True)
    thread.start()
    if not ready.wait(timeout=30.0):
        raise RuntimeError("sweep service failed to start within 30s")
    try:
        yield server
    finally:
        server.request_stop()
        thread.join(timeout=30.0)
