"""Blocking client for the sweep service.

:class:`ServiceClient` speaks the newline-delimited JSON protocol of
:mod:`repro.service.protocol` over a Unix-domain socket with plain
blocking sockets — no asyncio on the client side, so tests, the CLI
and user scripts stay synchronous.

``submit``/``attach`` return a :class:`CampaignStream`: an iterator of
validated stream events that raises :class:`ServiceError` on an
``error`` event and on a connection lost before ``campaign-finish``
(the signal a chaos test uses to detect a killed server).
:func:`collect` folds a stream into a :class:`CampaignResult` with the
points in grid order.
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional

from repro.analysis.points import SweepPoint, point_from_dict
from repro.obs.events import EVENT_SCHEMA

from .protocol import (
    PROTOCOL_SCHEMA,
    STREAM_SCHEMA,
    ProtocolError,
    decode_line,
    encode_line,
)

__all__ = [
    "ServiceError",
    "ServiceConnectionError",
    "ServiceClient",
    "CampaignStream",
    "CampaignResult",
    "collect",
    "wait_until_ready",
]


class ServiceError(RuntimeError):
    """The service reported an error, or its stream broke."""


class ServiceConnectionError(ServiceError):
    """No server was listening on the socket."""


@dataclass
class CampaignResult:
    """A completed campaign folded out of its stream."""

    campaign: str
    points: "list[SweepPoint]"
    #: Per-point resolution in grid order: "hit" | "computed" |
    #: "deduped".
    statuses: "list[str]" = field(default_factory=list)
    #: The raw ``point`` payload dicts, in grid order — byte-level
    #: ground truth for identity checks against archived sweeps.
    raw_points: "list[dict]" = field(default_factory=list)
    #: Task key per emitted point, in grid order.
    keys: "list[str]" = field(default_factory=list)
    #: Forwarded runner heartbeats ``(phase, key)`` in arrival order.
    heartbeats: "list[tuple[str, str]]" = field(default_factory=list)


def _connect(socket_path: "Path | str",
             timeout: Optional[float]) -> socket.socket:
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    if timeout is not None:
        sock.settimeout(timeout)
    try:
        sock.connect(str(socket_path))
    except OSError as exc:
        sock.close()
        raise ServiceConnectionError(
            f"no sweep service listening at {socket_path} ({exc}); "
            f"start one with 'repro-sim serve --socket "
            f"{socket_path}'") from None
    return sock


def wait_until_ready(socket_path: "Path | str", *,
                     attempts: int = 200,
                     interval: float = 0.05,
                     timeout: Optional[float] = 5.0) -> None:
    """Poll until a server answers ``ping`` (or raise after the budget).

    Bounded by attempt count, not a clock — ``attempts × interval``
    caps the wait (plus per-attempt socket timeouts).
    """
    last: Optional[Exception] = None
    for _ in range(attempts):
        try:
            ServiceClient(socket_path, timeout=timeout).ping()
            return
        except ServiceError as exc:
            last = exc
            time.sleep(interval)
    raise ServiceConnectionError(
        f"sweep service at {socket_path} not ready after "
        f"{attempts} attempts: {last}")


class CampaignStream:
    """Iterator over one campaign's stream events.

    Yields validated event dicts (``campaign-begin`` through
    ``campaign-finish``).  Raises :class:`ServiceError` when the
    server sends an ``error`` event or the connection drops before the
    campaign finishes — a consumer that sees ``campaign-finish`` has
    the whole campaign.
    """

    def __init__(self, sock: socket.socket, campaign: str) -> None:
        self._sock = sock
        self._file = sock.makefile("rb")
        self.campaign = campaign
        self.finished = False

    def __iter__(self) -> "Iterator[dict]":
        try:
            for raw in self._file:
                event = decode_line(raw)
                kind = event.get("kind")
                if kind == "error":
                    raise ServiceError(
                        f"campaign {self.campaign[:12]} failed: "
                        f"{event.get('message')}")
                yield event
                if kind == "campaign-finish":
                    self.finished = True
                    return
            raise ServiceError(
                f"connection lost before campaign "
                f"{self.campaign[:12]} finished")
        except (OSError, ProtocolError) as exc:
            raise ServiceError(
                f"campaign {self.campaign[:12]} stream broke: "
                f"{exc}") from None
        finally:
            self.close()

    def close(self) -> None:
        self._file.close()
        self._sock.close()


class ServiceClient:
    """One service endpoint; each request opens its own connection."""

    def __init__(self, socket_path: "Path | str",
                 timeout: Optional[float] = None) -> None:
        self.socket_path = Path(socket_path)
        self.timeout = timeout

    # -- single-line ops ----------------------------------------------

    def request(self, op: str, **fields: object) -> dict:
        """One request → one response line (ping/status/shutdown)."""
        sock = _connect(self.socket_path, self.timeout)
        try:
            sock.sendall(encode_line({"op": op, **fields}))
            with sock.makefile("rb") as fh:
                raw = fh.readline()
            if not raw:
                raise ServiceError(f"service closed the connection "
                                   f"without answering {op!r}")
            response = decode_line(raw)
        except (OSError, ProtocolError) as exc:
            raise ServiceError(f"{op!r} request failed: {exc}") from None
        finally:
            sock.close()
        if "error" in response:
            raise ServiceError(str(response["error"]))
        if response.get("schema") != PROTOCOL_SCHEMA:
            raise ServiceError(f"unexpected response schema "
                               f"{response.get('schema')!r}")
        return response

    def ping(self) -> dict:
        return self.request("ping")

    def status(self) -> dict:
        return self.request("status")

    def shutdown(self) -> dict:
        return self.request("shutdown")

    # -- campaign streams ---------------------------------------------

    def _stream(self, request: dict) -> CampaignStream:
        sock = _connect(self.socket_path, self.timeout)
        try:
            sock.sendall(encode_line(request))
            fh = sock.makefile("rb")
            raw = fh.readline()
            fh.close()
            if not raw:
                raise ServiceError("service closed the connection "
                                   "without a stream header")
            header = decode_line(raw)
        except ServiceError:
            sock.close()
            raise
        except (OSError, ProtocolError) as exc:
            sock.close()
            raise ServiceError(f"campaign request failed: "
                               f"{exc}") from None
        if "error" in header:
            sock.close()
            raise ServiceError(str(header["error"]))
        if (header.get("schema") != EVENT_SCHEMA
                or header.get("stream") != STREAM_SCHEMA):
            sock.close()
            raise ServiceError(f"unexpected stream header: {header}")
        return CampaignStream(sock, str(header.get("campaign")))

    def submit(self, spec: dict) -> CampaignStream:
        """Submit a campaign spec; returns its event stream."""
        return self._stream({"op": "submit", "spec": spec})

    def attach(self, campaign: str) -> CampaignStream:
        """Reattach to a ledgered campaign by unique key prefix."""
        return self._stream({"op": "attach", "campaign": campaign})

    def run(self, spec: dict) -> CampaignResult:
        """Submit and block until the campaign completes."""
        return collect(self.submit(spec))

    def run_attached(self, campaign: str) -> CampaignResult:
        """Attach and block until the campaign completes."""
        return collect(self.attach(campaign))


def collect(stream: CampaignStream) -> CampaignResult:
    """Fold a campaign stream into a :class:`CampaignResult`.

    ``raw_points`` keeps each ``point`` payload exactly as parsed off
    the wire; since JSON float text round-trips through Python floats
    losslessly, comparing these dicts is a byte-level identity check
    against archived sweep payloads.
    """
    result = CampaignResult(campaign=stream.campaign, points=[])
    for event in stream:
        kind = event.get("kind")
        if kind == "point":
            payload = event["point"]
            result.points.append(point_from_dict(payload))
            result.raw_points.append(payload)
            result.statuses.append(str(event.get("status")))
            result.keys.append(str(event.get("key")))
        elif kind == "heartbeat":
            result.heartbeats.append((str(event.get("phase")),
                                      str(event.get("key"))))
    if not stream.finished:
        raise ServiceError(f"campaign {stream.campaign[:12]} stream "
                           f"ended without campaign-finish")
    return result
