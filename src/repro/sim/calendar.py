"""Calendar-queue event list — the classic O(1) DES priority queue.

Binary heaps give O(log n) per operation; Brown's calendar queue (CACM
1988) buckets events by time like a desk calendar and achieves amortised
O(1) enqueue/dequeue when its bucket width tracks the mean event
spacing.  For the multicluster workloads here the event population is
modest (thousands), so the heap is perfectly fine — the calendar queue
is provided as a drop-in :class:`EventList` implementation for large
models, selected via ``Simulator(event_list=CalendarQueue())``, and the
engine microbenches compare the two.

Both implementations order equal-time events by (priority rank,
insertion sequence), preserving the engine's deterministic FIFO
tie-breaking exactly.
"""

from __future__ import annotations

import heapq
from typing import Optional

__all__ = ["EventList", "HeapEventList", "CalendarQueue"]

#: Entries are (time, rank, sequence, payload) — matching the engine.
Entry = tuple


class EventList:
    """Interface for the engine's pending-event structure."""

    def push(self, entry: Entry) -> None:
        """Insert an entry."""
        raise NotImplementedError

    def pop(self) -> Entry:
        """Remove and return the minimum entry (IndexError if empty)."""
        raise NotImplementedError

    def peek_time(self) -> Optional[float]:
        """Time of the minimum entry, or None if empty."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class HeapEventList(EventList):
    """Binary-heap event list (the default)."""

    def __init__(self) -> None:
        self._heap: list[Entry] = []

    def push(self, entry: Entry) -> None:
        heapq.heappush(self._heap, entry)

    def pop(self) -> Entry:
        return heapq.heappop(self._heap)

    def peek_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __repr__(self) -> str:
        return f"<HeapEventList n={len(self._heap)}>"


class CalendarQueue(EventList):
    """Brown's calendar queue with automatic resizing.

    Parameters
    ----------
    initial_buckets:
        Starting number of day-buckets (power of two).
    initial_width:
        Starting bucket width (simulated time per bucket).

    The queue doubles its bucket count when the population exceeds
    twice the bucket count and halves it when below half, re-estimating
    the bucket width from the spacing of the next events — Brown's
    original heuristic, simplified.
    """

    _MIN_BUCKETS = 4

    def __init__(self, initial_buckets: int = 16,
                 initial_width: float = 1.0) -> None:
        if initial_buckets < 1:
            raise ValueError(
                f"initial_buckets must be >= 1, got {initial_buckets!r}"
            )
        if initial_width <= 0:
            raise ValueError(
                f"initial_width must be positive, got {initial_width!r}"
            )
        self._nbuckets = max(self._MIN_BUCKETS, initial_buckets)
        self._width = float(initial_width)
        self._buckets: list[list[Entry]] = [
            [] for _ in range(self._nbuckets)
        ]
        # Per-bucket head cursor: bucket[i] entries before _heads[i] have
        # already been dequeued.  Popping advances the cursor instead of
        # shifting the whole list (the old ``bucket.pop(0)`` was O(n) per
        # dequeue); the dead prefix is compacted once it dominates.
        self._heads: list[int] = [0] * self._nbuckets
        self._size = 0
        self._last_time = 0.0      # dequeue clock (monotone)
        self._current = 0          # bucket cursor
        self._bucket_top = self._width  # upper time edge of cursor year

    # -- helpers --------------------------------------------------------

    def _bucket_of(self, t: float) -> int:
        return int(t / self._width) % self._nbuckets

    def _take(self, index: int, head: int) -> Entry:
        """Dequeue the head entry of bucket ``index`` (cursor at ``head``)."""
        bucket = self._buckets[index]
        entry = bucket[head]
        head += 1
        if head >= 16 and head * 2 >= len(bucket):
            # Amortised O(1): each compaction moves at most as many
            # live entries as were dequeued since the last one.
            del bucket[:head]
            head = 0
        self._heads[index] = head
        self._size -= 1
        self._last_time = entry[0]
        return entry

    def push(self, entry: Entry) -> None:
        index = self._bucket_of(entry[0])
        bucket = self._buckets[index]
        # Insertion keeps the live tail of each bucket sorted (buckets
        # stay short when the width is right, so insertion is cheap).
        lo, hi = self._heads[index], len(bucket)
        while lo < hi:
            mid = (lo + hi) // 2
            if bucket[mid] < entry:
                lo = mid + 1
            else:
                hi = mid
        bucket.insert(lo, entry)
        self._size += 1
        # An entry earlier than the cursor's current bucket would be
        # missed by the forward scan; realign backwards.  (The engine
        # never schedules into the past, but the structure stays
        # correct standalone.)
        if entry[0] < self._bucket_top - self._width:
            self._realign(entry[0])
        if self._size > 2 * self._nbuckets:
            self._resize(self._nbuckets * 2)

    def pop(self) -> Entry:
        if self._size == 0:
            raise IndexError("pop from empty CalendarQueue")
        # Scan forward from the cursor for the first bucket whose head
        # falls inside the current "year"; wrap with year advance.
        scanned = 0
        while True:
            index = self._current
            bucket = self._buckets[index]
            head = self._heads[index]
            if head < len(bucket) and bucket[head][0] < self._bucket_top:
                entry = self._take(index, head)
                if (self._size < self._nbuckets // 2
                        and self._nbuckets > self._MIN_BUCKETS):
                    self._resize(self._nbuckets // 2)
                return entry
            self._current = (self._current + 1) % self._nbuckets
            self._bucket_top += self._width
            scanned += 1
            if scanned >= self._nbuckets:
                # A full year without a hit: jump straight to the
                # earliest event (direct search), then realign.
                entry = min(
                    b[h] for b, h in zip(self._buckets, self._heads)
                    if h < len(b)
                )
                index = self._bucket_of(entry[0])
                self._take(index, self._heads[index])
                self._realign(entry[0])
                return entry

    def peek_time(self) -> Optional[float]:
        if self._size == 0:
            return None
        return min(
            b[h][0] for b, h in zip(self._buckets, self._heads)
            if h < len(b)
        )

    def _realign(self, time: float) -> None:
        self._current = self._bucket_of(time)
        self._bucket_top = (
            (int(time / self._width) + 1) * self._width
        )

    def _resize(self, nbuckets: int) -> None:
        entries = [
            e for b, h in zip(self._buckets, self._heads) for e in b[h:]
        ]
        entries.sort()
        # Re-estimate the width from the spacing of the next events.
        if len(entries) >= 2:
            sample = entries[: min(len(entries), 25)]
            gaps = [
                b[0] - a[0] for a, b in zip(sample, sample[1:])
                if b[0] > a[0]
            ]
            if gaps:
                self._width = max(3.0 * sum(gaps) / len(gaps), 1e-9)
        self._nbuckets = max(self._MIN_BUCKETS, nbuckets)
        self._buckets = [[] for _ in range(self._nbuckets)]
        self._heads = [0] * self._nbuckets
        self._size = 0
        for e in entries:
            self.push(e)
        # Anchor the cursor at the earliest surviving entry, not the
        # dequeue clock: a push *earlier* than the last dequeue (legal
        # standalone) can trigger this resize, and realigning to
        # ``_last_time`` would strand that entry behind the cursor,
        # letting later events pop first.
        if entries:
            self._realign(min(entries[0][0], self._last_time))
        else:
            self._realign(self._last_time)

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        return (
            f"<CalendarQueue n={self._size} buckets={self._nbuckets} "
            f"width={self._width:.4g}>"
        )
