"""Simulation-backend selection: scalar, batch, or automatic.

The harness ships two engines with contractually identical statistics:
the scalar event engine (:mod:`repro.sim.engine`, always available)
and the lockstep batch kernel (:mod:`repro.sim.batch`, requires numpy
— the ``[batch]`` extra).  This module owns the *selection* logic so
every entry point — :func:`~repro.analysis.sweeps.sweep`,
:func:`~repro.analysis.replications.replicate_sweep`, the CLI —
resolves a requested backend the same way:

* ``"scalar"`` — always honoured;
* ``"batch"`` — honoured when numpy is importable; otherwise the run
  *degrades* to scalar with a :class:`BackendFallbackWarning` (a
  minimal install must never crash on a flag, and the statistics are
  identical either way).  An unsupported *model* (exotic policy or
  placement) is not silently downgraded — that surfaces downstream as
  :class:`~repro.sim.batch.BatchBackendError`, because asking for the
  batch kernel on a model it cannot run is a caller bug, not an
  environment limitation;
* ``"auto"`` — picks ``"batch"`` when numpy is importable, the model
  is supported, and the campaign is wide enough
  (:data:`AUTO_MIN_WIDTH` lanes) for the lockstep kernel's fan-out to
  pay for its fixed overhead; else ``"scalar"``.

Resolution happens *before* any :class:`~repro.runner.task.RunTask` is
built, so the resolved backend — never the literal ``"auto"`` — lands
in the task key and cache entries from different engines can never
mix.  This module imports no numpy; it is safe on minimal installs.
"""

from __future__ import annotations

import importlib.util
import warnings
from typing import Optional

from repro.core.system import SimulationConfig

__all__ = [
    "AUTO_MIN_WIDTH",
    "BackendFallbackWarning",
    "batch_supported",
    "numpy_available",
    "resolve_backend",
]

#: Minimum campaign width (grid points × replications for a sweep,
#: replications for a replication study) at which ``"auto"`` picks the
#: batch kernel.  Below it the lockstep columns amortize over too few
#: lanes to beat the scalar engine reliably.
AUTO_MIN_WIDTH = 4

#: The policy/placement surface the batch kernel implements
#: (mirrors :class:`~repro.sim.batch.BatchLaneKernel`'s validation).
_BATCH_POLICIES = ("GS", "LS", "LP", "SC")


class BackendFallbackWarning(RuntimeWarning):
    """An explicitly requested backend was unavailable and the run
    degraded to the scalar engine (statistics are unaffected)."""


def numpy_available() -> bool:
    """Whether numpy is importable (the ``[batch]`` extra)."""
    return importlib.util.find_spec("numpy") is not None


def batch_supported(config: SimulationConfig,
                    size_distribution: Optional[object] = None) -> bool:
    """Whether the batch kernel covers this model.

    Checks the same surface :class:`~repro.sim.batch.BatchLaneKernel`
    validates — the four paper policies under worst-fit placement, and
    (when a distribution is given) a discrete size support — without
    importing numpy.
    """
    if config.policy.upper() not in _BATCH_POLICIES:
        return False
    if config.placement != "worst-fit":
        return False
    if (size_distribution is not None
            and getattr(size_distribution, "support", None) is None):
        return False
    return True


def resolve_backend(backend: str,
                    config: Optional[SimulationConfig] = None,
                    *,
                    width: int = 1,
                    size_distribution: Optional[object] = None) -> str:
    """Resolve a requested backend to ``"scalar"`` or ``"batch"``.

    ``width`` is the campaign's lane count — how many independent runs
    could share one lockstep kernel (grid points for a sweep, seeds
    for a replication study).  ``config``/``size_distribution`` gate
    the ``"auto"`` choice on model support; pass ``None`` to skip that
    check.  Deterministic for a fixed environment, so a resumed
    campaign re-derives the same task keys.
    """
    if backend == "scalar":
        return "scalar"
    if backend == "batch":
        if not numpy_available():
            warnings.warn(
                "backend='batch' requires numpy (the [batch] extra); "
                "falling back to the scalar engine — results are "
                "identical, only slower",
                BackendFallbackWarning, stacklevel=2)
            return "scalar"
        return "batch"
    if backend == "auto":
        if (numpy_available()
                and width >= AUTO_MIN_WIDTH
                and (config is None
                     or batch_supported(config, size_distribution))):
            return "batch"
        return "scalar"
    raise ValueError(
        f"unknown backend {backend!r} (expected 'scalar', 'batch' "
        f"or 'auto')"
    )
