"""Shared-resource primitives built on the event engine.

Three resource flavours cover the needs of scheduling models:

* :class:`Resource` — a counted resource with FIFO request queue (like a
  bank of identical servers).  ``request(n)`` returns an event that fires
  once ``n`` units have been granted; ``release(grant)`` returns them.
* :class:`Store` — an unbounded (or bounded) FIFO buffer of Python objects
  with blocking ``get``.
* :class:`Gate` — a broadcast condition: processes wait until the gate is
  opened; reopening is allowed (level-triggered latch).

The multicluster model in :mod:`repro.core` manages processor allocation
itself (placement across clusters is policy logic, not a plain counter),
but these primitives are used for queue machinery, tests, and example
models, and make the engine a complete CSIM-class substrate.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Optional

from .errors import SchedulingError
from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Simulator

__all__ = ["Resource", "Grant", "Store", "Gate", "PreemptiveResource"]


class Grant(Event):
    """Pending or satisfied request for units of a :class:`Resource`.

    Fires (with itself as value) once the requested units are allocated.
    A grant may be cancelled before it is satisfied with :meth:`cancel`.
    """

    __slots__ = ("resource", "units", "satisfied")

    def __init__(self, resource: "Resource", units: int) -> None:
        super().__init__(resource.sim)
        self.resource = resource
        self.units = units
        self.satisfied = False

    def cancel(self) -> None:
        """Withdraw an unsatisfied request (no-op if already satisfied)."""
        if not self.satisfied:
            try:
                self.resource._waiting.remove(self)
            except ValueError:
                pass

    def __repr__(self) -> str:
        state = "satisfied" if self.satisfied else "waiting"
        return f"<Grant {self.units} units {state}>"


class Resource:
    """Counted resource with FIFO granting.

    Parameters
    ----------
    sim:
        Owning simulator.
    capacity:
        Total number of units.

    Notes
    -----
    Granting is strict FIFO: a large request at the head blocks smaller
    requests behind it, exactly like FCFS space sharing without
    backfilling.
    """

    def __init__(self, sim: "Simulator", capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.sim = sim
        self.capacity = int(capacity)
        self._available = int(capacity)
        self._waiting: Deque[Grant] = deque()

    @property
    def available(self) -> int:
        """Units currently free."""
        return self._available

    @property
    def in_use(self) -> int:
        """Units currently allocated."""
        return self.capacity - self._available

    @property
    def queue_length(self) -> int:
        """Number of unsatisfied requests."""
        return len(self._waiting)

    def request(self, units: int = 1) -> Grant:
        """Request ``units``; returns an event firing when granted."""
        if units <= 0:
            raise ValueError(f"units must be positive, got {units!r}")
        if units > self.capacity:
            raise SchedulingError(
                f"request of {units} exceeds capacity {self.capacity}"
            )
        grant = Grant(self, units)
        self._waiting.append(grant)
        self._dispatch()
        return grant

    def release(self, grant: Grant) -> None:
        """Return the units of a satisfied grant."""
        if not grant.satisfied:
            raise SchedulingError("cannot release an unsatisfied grant")
        grant.satisfied = False
        self._available += grant.units
        self._dispatch()

    def _dispatch(self) -> None:
        while self._waiting and self._waiting[0].units <= self._available:
            grant = self._waiting.popleft()
            self._available -= grant.units
            grant.satisfied = True
            grant.succeed(grant)


class PreemptiveResource:
    """Single-unit resource with priority preemption.

    Requests carry a priority (lower number = more important).  A more
    important request preempts the current holder: the holder's process
    is interrupted (:class:`~repro.sim.errors.Interrupt` with the
    preempting grant as cause) and must re-request if it wants the
    resource back.  Waiting requests are served in (priority, FIFO)
    order.

    This is the CSIM-style preemptive facility; the space-sharing
    multicluster model never preempts (jobs run to completion, paper
    §1), so this class serves tests, examples and derived models.
    """

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._holder: Optional[tuple["Event", int, object]] = None
        self._waiting: list[tuple[int, int, "Event", object]] = []
        self._seq = 0
        self.preemptions = 0

    @property
    def busy(self) -> bool:
        """Whether some process currently holds the resource."""
        return self._holder is not None

    @property
    def queue_length(self) -> int:
        """Requests waiting (not counting the holder)."""
        return len(self._waiting)

    def request(self, priority: int = 0,
                owner: object = None) -> Event:
        """Request the resource; the event fires when acquired.

        ``owner`` (typically the requesting :class:`Process`) is the
        target interrupted on preemption.
        """
        grant = Event(self.sim)
        if self._holder is None:
            self._holder = (grant, priority, owner)
            grant.succeed(grant)
            return grant
        _, holder_priority, holder_owner = self._holder
        if priority < holder_priority:
            # Preempt: interrupt the current owner, hand over.
            self.preemptions += 1
            victim = holder_owner
            self._holder = (grant, priority, owner)
            grant.succeed(grant)
            if victim is not None and getattr(victim, "is_alive", False):
                victim.interrupt(cause=grant)
            return grant
        self._seq += 1
        self._waiting.append((priority, self._seq, grant, owner))
        self._waiting.sort(key=lambda item: (item[0], item[1]))
        return grant

    def release(self, grant: Event) -> None:
        """Release the resource (only the holder may release)."""
        if self._holder is None or self._holder[0] is not grant:
            raise SchedulingError(
                "release by a grant that does not hold the resource"
            )
        self._holder = None
        if self._waiting:
            priority, _, next_grant, owner = self._waiting.pop(0)
            self._holder = (next_grant, priority, owner)
            next_grant.succeed(next_grant)

    def __repr__(self) -> str:
        state = "busy" if self.busy else "idle"
        return (
            f"<PreemptiveResource {state} queue={self.queue_length} "
            f"preemptions={self.preemptions}>"
        )


class Store:
    """FIFO buffer of objects with blocking ``get`` and optional bound.

    ``put`` never blocks for unbounded stores; for bounded stores a full
    ``put`` raises (models here never need blocking puts).
    """

    def __init__(self, sim: "Simulator", capacity: Optional[int] = None) -> None:
        self.sim = sim
        self.capacity = capacity
        self._items: Deque[object] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple[object, ...]:
        """Snapshot of buffered items (FIFO order)."""
        return tuple(self._items)

    def put(self, item: object) -> None:
        """Insert an item, waking the oldest waiting getter if any."""
        if self.capacity is not None and len(self._items) >= self.capacity:
            raise SchedulingError(f"store full (capacity {self.capacity})")
        self._items.append(item)
        self._dispatch()

    def get(self) -> Event:
        """Return an event that fires with the oldest item."""
        ev = Event(self.sim)
        self._getters.append(ev)
        self._dispatch()
        return ev

    def _dispatch(self) -> None:
        while self._items and self._getters:
            getter = self._getters.popleft()
            getter.succeed(self._items.popleft())


class Gate:
    """Broadcast latch: waiters block while closed, all wake on open."""

    def __init__(self, sim: "Simulator", open_: bool = False) -> None:
        self.sim = sim
        self._open = bool(open_)
        self._waiters: list[Event] = []

    @property
    def is_open(self) -> bool:
        """Whether the gate currently lets waiters pass immediately."""
        return self._open

    def wait(self) -> Event:
        """Event that fires immediately if open, else when next opened."""
        ev = Event(self.sim)
        if self._open:
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def open(self) -> None:
        """Open the gate and release every waiter."""
        self._open = True
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.succeed()

    def close(self) -> None:
        """Close the gate; subsequent waiters block."""
        self._open = False
