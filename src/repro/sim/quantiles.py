"""Streaming quantile estimation (the P² algorithm).

Simulation runs produce millions of response times; storing them to
compute percentiles is wasteful.  The P² algorithm (Jain & Chlamtac,
CACM 1985) tracks a single quantile with five markers updated in O(1)
per observation and no storage, converging to the true quantile for
well-behaved distributions.  :class:`QuantileSet` bundles the common
percentile ladder (P50/P90/P95/P99) used by the metrics layer.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = ["P2Quantile", "QuantileSet"]


class P2Quantile:
    """Single-quantile P² estimator.

    Parameters
    ----------
    p:
        The quantile to track, in (0, 1) — e.g. 0.95.

    Notes
    -----
    Exact while fewer than five observations have been seen (it sorts
    them); afterwards the five-marker parabolic update applies.
    """

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"p must be in (0,1), got {p!r}")
        self.p = float(p)
        self._initial: list[float] = []
        # Marker heights, positions and desired positions.
        self._q: list[float] = []
        self._n: list[int] = []
        self._np: list[float] = []
        self._dn = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]
        self.count = 0

    def record(self, value: float) -> None:
        """Add one observation."""
        self.count += 1
        if self.count <= 5:
            self._initial.append(float(value))
            if self.count == 5:
                self._initial.sort()
                self._q = list(self._initial)
                self._n = [0, 1, 2, 3, 4]
                self._np = [0.0, 2 * self.p, 4 * self.p,
                            2 + 2 * self.p, 4.0]
            return

        q, n = self._q, self._n
        # Locate the cell containing the observation; adjust extremes.
        if value < q[0]:
            q[0] = value
            k = 0
        elif value >= q[4]:
            q[4] = value
            k = 3
        else:
            k = 0
            while value >= q[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1
        for i in range(5):
            self._np[i] += self._dn[i]

        # Adjust interior markers with the piecewise-parabolic formula.
        for i in (1, 2, 3):
            d = self._np[i] - n[i]
            if (d >= 1 and n[i + 1] - n[i] > 1) or (
                    d <= -1 and n[i - 1] - n[i] < -1):
                d = 1 if d > 0 else -1
                candidate = self._parabolic(i, d)
                if not q[i - 1] < candidate < q[i + 1]:
                    candidate = self._linear(i, d)
                q[i] = candidate
                n[i] += d

    def _parabolic(self, i: int, d: int) -> float:
        q, n = self._q, self._n
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1])
            / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: int) -> float:
        q, n = self._q, self._n
        return q[i] + d * (q[i + d] - q[i]) / (n[i + d] - n[i])

    @property
    def value(self) -> float:
        """Current quantile estimate (nan when empty)."""
        if self.count == 0:
            return math.nan
        if self.count <= 5 or not self._q:
            data = sorted(self._initial)
            idx = min(int(self.p * len(data)), len(data) - 1)
            return data[idx]
        return self._q[2]

    def __repr__(self) -> str:
        return f"<P2Quantile p={self.p} n={self.count} ~{self.value:.6g}>"


class QuantileSet:
    """A ladder of P² estimators sharing the observation stream."""

    DEFAULT_LADDER = (0.5, 0.9, 0.95, 0.99)

    def __init__(self, quantiles: Sequence[float] = DEFAULT_LADDER) -> None:
        if not quantiles:
            raise ValueError("need at least one quantile")
        self.estimators = {p: P2Quantile(p) for p in quantiles}

    def record(self, value: float) -> None:
        """Add one observation to every estimator."""
        for est in self.estimators.values():
            est.record(value)

    def record_many(self, values: Iterable[float]) -> None:
        """Add a sequence of observations."""
        for v in values:
            self.record(v)

    def __getitem__(self, p: float) -> float:
        """Current estimate of quantile ``p``."""
        return self.estimators[p].value

    def snapshot(self) -> dict[float, float]:
        """All current estimates, keyed by quantile."""
        return {p: est.value for p, est in self.estimators.items()}

    @property
    def count(self) -> int:
        """Number of observations recorded."""
        return next(iter(self.estimators.values())).count

    def __repr__(self) -> str:
        inner = ", ".join(
            f"p{int(p * 100)}={est.value:.4g}"
            for p, est in sorted(self.estimators.items())
        )
        return f"<QuantileSet n={self.count} {inner}>"
