"""Lockstep batch backend: N heterogeneous lanes, one struct-of-arrays sim.

Campaigns run many configurations — replication seeds, utilization
grids, component-limit ladders — that share one policy.  The scalar
engine advances one event calendar at a time; this backend holds the
*lockstep* state of N such runs ("lanes") as numpy columns — the
clock, the pending-arrival and earliest-departure select columns, and
every metric accumulator — while each lane's policy state (queues,
free processors, the running-job calendar, the queue ring) lives in
plain per-lane Python containers sized for the per-event scalar work
(see the fast-path section of :class:`BatchLaneKernel`).  One
Python-level step advances every lane: the select and the departure
statistics vectorize across lanes, the policy decisions run per lane.

Lanes are *heterogeneous*: each carries its own arrival rate, seed,
warmup/measured-job targets, batch size, component limit, extension
factor and routing weights.  Only the policy, the placement rule, the
cluster capacities and the two workload distributions are fixed per
kernel (policy state containers differ by policy; capacities size the
free-processor lists).  Per-lane workload tables (component splits,
extension factors, routing CDF) are shared through interned
:class:`_LaneProfile` objects keyed by the lane parameters that shape
them.

Lanes terminate raggedly; a finished lane is *retired* — dropped from
the active mask and queued for :meth:`BatchLaneKernel.drain_retired`
— and its slot can be *refilled* with a fresh configuration via
:meth:`BatchLaneKernel.load`, so short-rho lanes don't idle while
rho=0.9 lanes drain.  The fused sweep executor
(:func:`repro.runner.fused.execute_fused`) drives exactly this
load/step/retire cycle over a whole campaign grid.

The contract is *bit-exactness against the scalar engine*: for each
lane, the six :class:`~repro.analysis.points.SweepPoint` statistics
(offered gross load, measured gross/net utilization, mean response,
CI half width, saturation flag) must equal the scalar run's output
exactly.  That holds because

* every random stream is consumed in the scalar order — block draws
  only for ``block_equivalent`` distributions (mirroring
  :class:`~repro.workload.generator.JobFactory`'s prefetch), scalar
  ``sample`` calls otherwise, and arrival times accumulated by
  *sequential* float addition (``np.cumsum`` may pairwise-sum, which
  is not the scalar reduction order);
* events are ordered by ``(time, sequence-number)`` with the same
  sequence-number bookkeeping as :meth:`repro.sim.engine.Simulator.defer`;
* placement reproduces Worst Fit decision-for-decision — a memoized
  per-lane kernel whose decision order equals the scalar rule and its
  vectorized twin :func:`repro.core.placement_batch.worst_fit_batch`
  (all three pinned against each other by the differential tests) —
  and the LS/LP queue ring is carried as per-lane visit/disabled
  lists whose order equals the scalar
  :class:`~repro.core.queues.QueueRing` lists;
* metric columns apply the exact float-operation order of
  :class:`~repro.sim.stats.TimeWeighted`, Welford's update and the
  batch-means CI (elementwise float64 IEEE ops are identical to the
  scalar Python-float ops).  The gross and net accumulators share one
  fused ``(N, 2)`` column pair: the scalar recorder always updates
  both at the same event times, so their ``last`` timestamps are
  provably equal and the area accruals are the same float products.
* lanes never interact — no shared queues, streams or statistics — so
  a lane's results are independent of which other lanes share the
  kernel, of slot position, and of when its slot was (re)loaded.

The backend intentionally computes *only* what feeds ``SweepPoint``:
queue-population time series, quantiles, slowdowns and the
local/global response split draw no RNG and never reach the point, so
they are skipped.  Consequently diagnostic counters
(``placement_attempts`` and friends) are not maintained and provably
no-op placement retries are elided — behavioural identity is defined
on the returned statistics, which the differential oracle suite pins.

Supported model surface: the four paper policies (GS/LS/LP/SC) under
``placement="worst-fit"``; anything else raises
:class:`BatchBackendError` so callers fall back to the scalar engine.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import replace
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Callable, Optional, Sequence

import numpy as np

from repro.core.system import SimulationConfig
from repro.obs.registry import REGISTRY
from repro.sim.distributions import (
    Distribution,
    Lognormal,
    Mixture,
    TruncatedLognormal,
    Uniform,
)
from repro.sim.rng import StreamFactory
from repro.sim.stats import student_t_quantile
from repro.workload.generator import DEFAULT_DRAW_BATCH, JobFactory
from repro.workload.splitting import split_size

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.analysis.points import SweepPoint
    from repro.runner.task import RunTask

__all__ = [
    "BatchBackendError",
    "BatchLaneKernel",
    "PLACE_CACHE_CAP",
    "run_batch_points",
    "run_batch_task",
]

#: Event-sequence sentinel for idle lanes (sorts after any real eid).
_HUGE_EID = np.iinfo(np.int64).max

_INF = float("inf")

#: Default bound on the shared worst-fit memo (entries).  Placement is
#: a pure function of its key, so the cap trades recomputation for
#: memory and never changes results; a campaign's working set is far
#: smaller, so evictions are rare outside adversarial workloads.
PLACE_CACHE_CAP = 1 << 18

#: One running job on a lane's calendar heap: (departure
#: time, event-sequence number, arrival time, total size, net size,
#: allocation pairs).  The sequence number is unique per lane, so heap
#: comparisons never reach the payload and the pop order is exactly
#: the scalar calendar's (time, sequence) total order.
_HeapItem = tuple[float, int, float, int, float,
                  tuple[tuple[int, int], ...]]

#: Cache-miss sentinel (``None`` is a valid cached "does not fit").
_MISS = object()


class BatchBackendError(ValueError):
    """The batch backend does not support the requested configuration."""


class _LaneStreams:
    """Per-lane RNG state mirroring one scalar run's consumption.

    One instance per lane: the four named substreams a scalar
    :func:`~repro.core.system.run_open_system` consumes, plus the
    running arrival-time accumulator.  Draw *order within each stream*
    is all that matters for equality; streams are independent
    generators, so lanes (and streams) can be refilled in any order.
    """

    __slots__ = ("sizes", "services", "routing", "iat", "last_arrival")

    def __init__(self, seed: int) -> None:
        streams = StreamFactory(seed)
        self.sizes = streams.get("workload.sizes")
        self.services = streams.get("workload.services")
        self.routing = streams.get("workload.routing")
        self.iat = streams.get("arrivals.iat")
        self.last_arrival = 0.0


class _LaneProfile:
    """Workload tables shared by every lane with the same shape.

    The component-split tables, extension factors and routing CDF are
    pure functions of (component limit, extension factor, routing
    weights) over the kernel's fixed size support and cluster count;
    lanes differing only in seed, rate or run-length targets intern to
    the same profile.  ``pid`` keys the shared placement memo (the
    split tables differ per profile, so memo entries must not cross
    profiles); ``factory`` performs the rate <-> offered-utilization
    conversions with the exact scalar float math.
    """

    __slots__ = ("pid", "ncomp_tab", "ext_tab", "comp_lists", "route_cdf",
                 "factory")

    def __init__(self, pid: int, ncomp_tab: "np.ndarray",
                 ext_tab: "np.ndarray",
                 comp_lists: list[tuple[int, ...]],
                 route_cdf: "np.ndarray", factory: JobFactory) -> None:
        self.pid = pid
        self.ncomp_tab = ncomp_tab
        self.ext_tab = ext_tab
        self.comp_lists = comp_lists
        self.route_cdf = route_cdf
        self.factory = factory


_ScalarSampler = Callable[[np.random.Generator, int], np.ndarray]

_ProfileKey = tuple[Optional[int], float, tuple[float, ...]]


def _make_scalar_sampler(dist: Distribution) -> Optional[_ScalarSampler]:
    """A fast draw-for-draw replica of ``n`` scalar ``dist.sample`` calls.

    Non-``block_equivalent`` distributions must be drawn one ``sample``
    call at a time so the generator state evolves exactly as in the
    scalar run.  For the distributions that actually appear on that
    path (the DAS-t-900 mixture: a rejection-sampled truncated
    lognormal body plus a uniform spike) the generic ``sample``
    dispatch dominates the draw cost, so this builds a closed-over
    loop making the *identical* generator calls — ``rng.random`` for
    the mixture pick compared against the same CDF floats,
    ``rng.lognormal`` per rejection trial, ``rng.uniform`` for the
    spike — with no per-draw attribute or ufunc dispatch.  Returns
    ``None`` when ``dist`` is not covered; callers then fall back to
    the plain ``sample`` loop.
    """

    def component(c: Distribution) -> Optional[
            Callable[[np.random.Generator], float]]:
        if type(c) is TruncatedLognormal and type(c.base) is Lognormal:
            mu, sigma = c.base.mu, c.base.sigma
            lo, hi = c.low, c.high

            def tln(rng: np.random.Generator) -> float:
                while True:
                    x = float(rng.lognormal(mu, sigma))
                    if lo <= x <= hi:
                        return x

            return tln
        if type(c) is Lognormal:
            mu, sigma = c.mu, c.sigma
            return lambda rng: float(rng.lognormal(mu, sigma))
        if type(c) is Uniform:
            lo, hi = c.low, c.high
            return lambda rng: float(rng.uniform(lo, hi))
        return None

    if type(dist) is Mixture:
        funcs = [component(c) for c in dist.components]
        if any(f is None for f in funcs):
            return None
        # Rebuilt with the same cumsum Mixture.__init__ ran, so the
        # pick comparisons see bit-identical thresholds.
        cdf_arr = np.cumsum(dist.weights)
        cdf_arr[-1] = 1.0
        cdf = [float(x) for x in cdf_arr]
        last = len(funcs) - 1

        def mixture_sampler(rng: np.random.Generator, n: int) -> np.ndarray:
            out = np.empty(n)
            random = rng.random
            for i in range(n):
                u = random()
                # searchsorted(cdf, u, side="right") clamped to the
                # last component, unrolled for the tiny CDF.
                k = 0
                while k < last and cdf[k] <= u:
                    k += 1
                out[i] = funcs[k](rng)  # type: ignore[misc]
            return out

        return mixture_sampler

    single = component(dist)
    if single is None:
        return None

    def single_sampler(rng: np.random.Generator, n: int) -> np.ndarray:
        out = np.empty(n)
        for i in range(n):
            out[i] = single(rng)
        return out

    return single_sampler


class BatchLaneKernel:
    """The struct-of-arrays simulation state and its step loop.

    Construction fixes the *kernel shape* — policy, placement,
    capacities, the two workload distributions and the slot count
    (``width``) — and allocates every column with all slots inactive.
    :meth:`load` arms one slot with a lane configuration (seed, rate,
    limits, run-length targets); :meth:`step` advances every active
    lane by one lockstep event round; lanes that reach their
    completion target retire themselves, and :meth:`drain_retired`
    yields their finished :class:`~repro.analysis.points.SweepPoint`
    so the slot can be refilled.
    """

    def __init__(self, config: SimulationConfig,
                 size_distribution: Distribution,
                 service_distribution: Distribution,
                 width: int, *,
                 place_cache_cap: int = PLACE_CACHE_CAP) -> None:
        policy = config.policy.upper()
        if policy not in ("GS", "LS", "LP", "SC"):
            raise BatchBackendError(
                f"batch backend supports GS/LS/LP/SC, got {config.policy!r}"
            )
        if config.placement != "worst-fit":
            raise BatchBackendError(
                "batch backend supports placement='worst-fit' only, got "
                f"{config.placement!r}"
            )
        if width < 1:
            raise BatchBackendError(f"kernel width must be >= 1, got {width}")
        if place_cache_cap < 1:
            raise BatchBackendError(
                f"place_cache_cap must be >= 1, got {place_cache_cap}"
            )
        self.policy = policy
        self.size_distribution = size_distribution
        self.service_distribution = service_distribution

        n = int(width)
        self.n = n
        caps = tuple(int(cap) for cap in config.capacities)
        self.capacities = caps
        self.n_clusters = len(caps)
        self.capacity = sum(caps)

        # -- the shared size support (profiles build tables over it) ------
        support = getattr(size_distribution, "support", None)
        if support is None:
            raise BatchBackendError(
                "batch backend needs a discrete size distribution "
                "(integer support)"
            )
        self._support = tuple(int(float(v)) for v in support)
        self._max_size = max(self._support)
        self._profiles: dict[_ProfileKey, _LaneProfile] = {}

        draw = DEFAULT_DRAW_BATCH
        self._sizes_blocked = draw > 1 and size_distribution.block_equivalent
        self._services_blocked = (draw > 1
                                  and service_distribution.block_equivalent)
        self._service_sampler = (None if self._services_blocked
                                 else _make_scalar_sampler(
                                     service_distribution))

        # -- per-lane draw state and parameters ---------------------------
        self._streams: list[Optional[_LaneStreams]] = [None] * n
        self._prof: list[Optional[_LaneProfile]] = [None] * n
        self._mean_iat = [0.0] * n
        self._offered = [0.0] * n
        self._bsize = np.zeros(n, dtype=np.int64)
        self._warm_tgt = np.zeros(n, dtype=np.int64)
        self._total_tgt = np.zeros(n, dtype=np.int64)

        # -- event state --------------------------------------------------
        # After the urgent arrival-process init event at t=0 the scalar
        # engine has consumed sequence numbers 1 (init) and 2 (first
        # tick); every later event is NORMAL rank, so ordering reduces
        # to (time, sequence number).
        self.now = np.zeros(n, dtype=np.float64)
        self.na_eid = np.full(n, 2, dtype=np.int64)
        self.na_t = np.full(n, _INF, dtype=np.float64)
        #: GS/SC run one global FCFS queue; LS/LP the visiting rounds
        #: over the queue ring.  Both as per-lane Python containers.
        self._single = policy in ("GS", "SC")

        # Per-lane Python containers (see the fast-path section): job
        # tuples, free processors per cluster, the running-job calendar
        # heap, the event-sequence counter, the next-arrival cursor.
        self._jobs_py: list[list[tuple]] = [[] for _ in range(n)]
        self._free_py = [[0] * self.n_clusters for _ in range(n)]
        self._heaps: list[list[_HeapItem]] = [[] for _ in range(n)]
        self._eid_py = [2] * n
        self._next_job_py = [0] * n
        # The select columns mirroring each lane's heap top.
        self._dmin_t = np.full(n, _INF, dtype=np.float64)
        self._dmin_eid = np.full(n, _HUGE_EID, dtype=np.int64)
        self._place_cache: dict[
            tuple[int, ...],
            Optional[tuple[tuple[int, int], ...]]] = {}
        self._place_cap = int(place_cache_cap)
        #: Evictions this kernel performed on the bounded memo.
        self.place_evictions = 0
        self._after_dep: Callable[[int, float, int], int]
        self._burst: Callable[[int, float], None]
        if self._single:
            #: The single FCFS queue of job indices per lane.
            self._q: list[deque[int]] = [deque() for _ in range(n)]
            self._after_dep = self._lane_drain
            self._burst = self._arrival_burst
        else:
            #: Queues per lane: LS one local queue per cluster (queue
            #: index == cluster index); LP index 0 is the global queue,
            #: 1..C the locals (cluster == queue index - 1).
            self._nq = self.n_clusters if policy == "LS" else (
                self.n_clusters + 1)
            self._qs: list[list[deque[int]]] = [
                [deque() for _ in range(self._nq)] for _ in range(n)]
            # The scalar QueueRing's two lists, per lane: enabled
            # queues in enablement order and disabled queues in
            # disablement order, plus the per-queue enabled flag.
            self._visit = [list(range(self._nq)) for _ in range(n)]
            self._disabled: list[list[int]] = [[] for _ in range(n)]
            self._enabled = [[True] * self._nq for _ in range(n)]
            self._after_dep = (self._lane_departure_ls if policy == "LS"
                               else self._lane_departure_lp)
            self._burst = self._arrival_burst_ring

        # -- metric columns (exact scalar float-op order) ------------------
        # Fused busy-gross / busy-net time-weighted accumulators:
        # column 0 gross, column 1 net.  Both scalar tallies are updated
        # at identical event times, so one shared ``last`` column holds.
        self.m_val = np.zeros((n, 2), dtype=np.float64)
        self.m_area = np.zeros((n, 2), dtype=np.float64)
        self.m_last = np.zeros(n, dtype=np.float64)
        self.origin = np.zeros(n, dtype=np.float64)
        self.resp_cnt = np.zeros(n, dtype=np.int64)
        self.resp_mean = np.zeros(n, dtype=np.float64)
        self.batch_sum = np.zeros(n, dtype=np.float64)
        self.in_batch = np.zeros(n, dtype=np.int64)
        self.b_cnt = np.zeros(n, dtype=np.int64)
        self.b_mean = np.zeros(n, dtype=np.float64)
        self.b_m2 = np.zeros(n, dtype=np.float64)

        # -- run control --------------------------------------------------
        self.finished = np.zeros(n, dtype=np.int64)
        self.active = np.zeros(n, dtype=bool)
        self.end_time = np.zeros(n, dtype=np.float64)
        self.backlog_reset = np.zeros(n, dtype=np.int64)
        self.backlog_end = np.zeros(n, dtype=np.int64)
        self.reset_done = np.ones(n, dtype=bool)
        #: Number of currently active lanes (maintained by load/retire).
        self.active_lanes = 0
        #: Slots whose lane finished and awaits :meth:`drain_retired`.
        self._retired: list[int] = []

    # -- lane lifecycle ----------------------------------------------------

    @property
    def idle(self) -> bool:
        """True when no lane is active (every slot loadable/drained)."""
        return self.active_lanes == 0

    def _profile_for(self, config: SimulationConfig) -> _LaneProfile:
        """Intern the workload tables for this lane's shape parameters."""
        key: _ProfileKey = (
            config.component_limit,
            float(config.extension_factor),
            tuple(float(w) for w in config.routing_weights),
        )
        prof = self._profiles.get(key)
        if prof is not None:
            return prof
        c = self.n_clusters
        ncomp_tab = np.zeros(self._max_size + 1, dtype=np.int64)
        ext_tab = np.ones(self._max_size + 1, dtype=np.float64)
        comp_lists: list[tuple[int, ...]] = [()] * (self._max_size + 1)
        for s in self._support:
            if config.component_limit is None:
                comps: tuple[int, ...] = (s,)
            else:
                comps = split_size(s, config.component_limit, c)
            ncomp_tab[s] = len(comps)
            comp_lists[s] = comps
            if len(comps) > 1:
                ext_tab[s] = float(config.extension_factor)
        # Routing CDF, built exactly like QueueRouter.
        w = np.asarray(config.routing_weights, dtype=float)
        weights = w / w.sum()
        route_cdf = np.cumsum(weights)
        route_cdf[-1] = 1.0
        factory = JobFactory(
            self.size_distribution,  # type: ignore[arg-type]
            self.service_distribution,
            config.component_limit,
            clusters=c,
            extension_factor=config.extension_factor,
            routing_weights=config.routing_weights,
            streams=StreamFactory(0),
        )
        prof = _LaneProfile(len(self._profiles), ncomp_tab, ext_tab,
                            comp_lists, route_cdf, factory)
        self._profiles[key] = prof
        return prof

    def load(self, slot: int, config: SimulationConfig,
             offered_gross: Optional[float] = None,
             arrival_rate: Optional[float] = None) -> None:
        """Arm ``slot`` with one lane: the run that a scalar
        :func:`~repro.core.system.run_open_system` under ``config``
        would perform at the given load.

        ``arrival_rate`` overrides the rate derived from
        ``offered_gross`` (they are redundant; both are accepted so
        callers can match either scalar entry point exactly).  The
        slot must be empty — never loaded, or retired and drained.
        """
        if not 0 <= slot < self.n:
            raise BatchBackendError(f"slot {slot} out of range 0..{self.n-1}")
        if self.active[slot] or slot in self._retired:
            raise BatchBackendError(f"slot {slot} is not free")
        if config.policy.upper() != self.policy:
            raise BatchBackendError(
                f"kernel runs policy {self.policy}, got {config.policy!r}"
            )
        if config.placement != "worst-fit":
            raise BatchBackendError(
                "batch backend supports placement='worst-fit' only, got "
                f"{config.placement!r}"
            )
        if tuple(int(cap) for cap in config.capacities) != self.capacities:
            raise BatchBackendError(
                f"kernel capacities {self.capacities} != "
                f"{tuple(config.capacities)}"
            )
        prof = self._profile_for(config)
        if arrival_rate is None:
            if offered_gross is None:
                raise BatchBackendError(
                    "need offered_gross or arrival_rate"
                )
            arrival_rate = prof.factory.arrival_rate_for_gross_utilization(
                float(offered_gross), self.capacity
            )
        rate = float(arrival_rate)
        self._prof[slot] = prof
        self._mean_iat[slot] = 1.0 / rate
        self._offered[slot] = prof.factory.offered_gross_utilization(
            rate, self.capacity
        )
        self._bsize[slot] = int(config.batch_size)
        self._warm_tgt[slot] = int(config.warmup_jobs)
        self._total_tgt[slot] = int(config.warmup_jobs
                                    + config.measured_jobs)
        self._streams[slot] = _LaneStreams(int(config.seed))

        # Per-lane containers back to their scalar t=0 state.
        self._jobs_py[slot] = []
        self._free_py[slot] = [int(cap) for cap in self.capacities]
        self._heaps[slot] = []
        self._eid_py[slot] = 2
        self._next_job_py[slot] = 0
        self.now[slot] = 0.0
        self.na_eid[slot] = 2
        self._dmin_t[slot] = _INF
        self._dmin_eid[slot] = _HUGE_EID
        if self._single:
            self._q[slot] = deque()
        else:
            self._qs[slot] = [deque() for _ in range(self._nq)]
            self._visit[slot] = list(range(self._nq))
            self._disabled[slot] = []
            self._enabled[slot] = [True] * self._nq

        self.m_val[slot] = 0.0
        self.m_area[slot] = 0.0
        self.m_last[slot] = 0.0
        self.origin[slot] = 0.0
        self.resp_cnt[slot] = 0
        self.resp_mean[slot] = 0.0
        self.batch_sum[slot] = 0.0
        self.in_batch[slot] = 0
        self.b_cnt[slot] = 0
        self.b_mean[slot] = 0.0
        self.b_m2[slot] = 0.0

        self.finished[slot] = 0
        self.end_time[slot] = 0.0
        self.backlog_reset[slot] = 0
        self.backlog_end[slot] = 0
        # warmup_jobs == 0: the scalar run resets at t=0 before any
        # event, which is exactly the initial column state.
        self.reset_done[slot] = config.warmup_jobs == 0

        self._generate_chunk(slot)
        self.na_t[slot] = self._jobs_py[slot][0][0]
        self.active[slot] = True
        self.active_lanes += 1

    def drain_retired(self) -> "list[tuple[int, SweepPoint]]":
        """Finished lanes since the last drain, as ``(slot, point)``
        pairs in retirement order.  Drained slots are free for
        :meth:`load`."""
        if not self._retired:
            return []
        out = [(slot, self._point(slot)) for slot in self._retired]
        self._retired.clear()
        return out

    # -- workload generation ---------------------------------------------

    def _generate_chunk(self, lane: int) -> None:
        """Draw one prefetch block of jobs for ``lane`` in scalar order."""
        n = DEFAULT_DRAW_BATCH
        streams = self._streams[lane]
        assert streams is not None
        prof = self._prof[lane]
        assert prof is not None
        size_dist = self.size_distribution
        service_dist = self.service_distribution
        # Sizes: block draws only when provably stream-equivalent —
        # exactly the JobFactory prefetch rule.  Chunks are always the
        # full block size, so refill boundaries match the scalar
        # buffer's.
        if self._sizes_blocked:
            raw = size_dist.sample_array(streams.sizes, n)
        else:
            raw = np.array([size_dist.sample(streams.sizes)
                            for _ in range(n)], dtype=np.float64)
        sizes = raw.astype(np.int64)
        if self._services_blocked:
            svc = np.asarray(service_dist.sample_array(streams.services, n),
                             dtype=np.float64)
        elif self._service_sampler is not None:
            svc = self._service_sampler(streams.services, n)
        else:
            svc = np.array([service_dist.sample(streams.services)
                            for _ in range(n)], dtype=np.float64)
        u = streams.routing.random(n)
        queues = np.searchsorted(prof.route_cdf, u, side="right")
        iat = streams.iat.exponential(self._mean_iat[lane], n)
        # Sequential accumulation: the scalar engine chains ``now +
        # delay`` one float add at a time; np.cumsum may pairwise-sum,
        # which rounds differently.
        arr = np.empty(n, dtype=np.float64)
        t = streams.last_arrival
        for i, delta in enumerate(iat.tolist()):
            t = t + delta
            arr[i] = t
        streams.last_arrival = float(t)

        # Jobs land in per-lane Python tuples.  The elementwise
        # products/quotients below are the same float64 IEEE ops the
        # scalar JobFactory performs, so the tuples hold the exact
        # scalar values.
        ext = prof.ext_tab[sizes]
        gross = (svc * ext).tolist()
        net = (sizes / ext).tolist()
        if self._single:
            # GS/SC ignore the routing draw (consumed above for stream
            # parity): (arrival, gross service, net size, total size).
            self._jobs_py[lane].extend(
                zip(arr.tolist(), gross, net, sizes.tolist()))
            return
        # LS/LP append the routing decision: (..., destination queue,
        # multi-component flag).  LS routes every job to its origin
        # cluster's local queue; LP sends multi-component jobs to the
        # global queue (index 0) and the rest to 1 + origin cluster.
        multi = prof.ncomp_tab[sizes] > 1
        if self.policy == "LS":
            qid = queues % self.n_clusters
        else:
            qid = np.where(multi, 0, 1 + queues % self.n_clusters)
        self._jobs_py[lane].extend(
            zip(arr.tolist(), gross, net, sizes.tolist(),
                qid.tolist(), multi.tolist()))

    # -- the per-lane Python fast path ---------------------------------------
    #
    # At realistic loads each step touches a handful of lanes, so
    # per-call numpy dispatch (microseconds per vector op) dominates
    # the actual work of small-vector updates.  Each lane therefore
    # carries the state only *it* touches — its queues, free
    # processors, the running-job calendar heap, the queue ring, the
    # sequence counter — in plain Python containers (deque / list /
    # heap), and numpy columns remain only where the lockstep step
    # genuinely vectorizes: the (time, sequence) select and the
    # departure statistics.  Python floats are the same IEEE doubles
    # as the float64 columns and every float operation keeps the exact
    # scalar-engine order, so the statistics are bit-identical; only
    # the bookkeeping representation changes.

    def _place_single(self, prof: _LaneProfile, free: list[int],
                      size: int) -> Optional[tuple[tuple[int, int], ...]]:
        """Worst Fit over Python ints: ``((cluster, component), ...)``
        or ``None`` when some component does not fit.

        Decision order matches the scalar Worst Fit (and its
        vectorized twin :func:`worst_fit_batch`, pinned by the same
        differential tests) exactly — components non-increasing, each
        on the fullest feasible cluster not already holding a
        component of this job, ties to the lowest cluster index.
        Placement is a pure function of (profile, total size, free
        counts): outcomes are memoized, which also elides re-deriving
        the scalar engine's repeated identical head-of-queue failures.
        The memo is bounded at ``place_cache_cap`` entries with
        deterministic oldest-insertion eviction — recomputing an
        evicted entry yields the identical tuple, so the cap never
        changes results.  Distinct keys number in the hundreds of
        thousands per campaign, so the miss path stays a plain Python
        scan — at width 1 the numpy kernel's dispatch overhead is ~10x
        the work.
        """
        key = (prof.pid, size, *free)
        cache = self._place_cache
        hit = cache.get(key, _MISS)
        if hit is not _MISS:
            return hit  # type: ignore[return-value]
        alloc: list[tuple[int, int]] = []
        used = 0
        result: Optional[tuple[tuple[int, int], ...]] = None
        for comp in prof.comp_lists[size]:
            best = -1
            best_i = -1
            for ci, f in enumerate(free):
                if f >= comp and f > best and not (used >> ci) & 1:
                    best = f
                    best_i = ci
            if best_i < 0:
                break
            used |= 1 << best_i
            alloc.append((best_i, comp))
        else:
            result = tuple(alloc)
        if len(cache) >= self._place_cap:
            # Deterministic eviction: dicts iterate in insertion
            # order, so the oldest entry goes first (FIFO).
            del cache[next(iter(cache))]
            self.place_evictions += 1
            # Resolved at use time, never cached: REGISTRY.reset()
            # replaces Counter objects (pool.py does the same).
            REGISTRY.counter("batch.place_cache.evictions").inc()
        cache[key] = result
        return result

    def _start_single(self, lane: int, job: int, now: float, eid: int,
                      alloc: tuple[tuple[int, int], ...]) -> float:
        """Commit one start on ``lane``; returns the departure time."""
        jt = self._jobs_py[lane][job]
        arr_t = jt[0]
        gross = jt[1]
        net = jt[2]
        size = jt[3]
        free = self._free_py[lane]
        for ci, comp in alloc:
            free[ci] -= comp
        dep_t = now + gross
        heappush(self._heaps[lane], (dep_t, eid, arr_t, size, net, alloc))
        # The fused TimeWeighted add, in Python floats (same IEEE
        # doubles, same operation order as the scalar recorder).
        m_val = self.m_val
        mflat = lane * 2
        v0 = m_val.item(mflat)
        v1 = m_val.item(mflat + 1)
        last = self.m_last.item(lane)
        if now != last:  # simlint: disable=SIM002 -- zero-width accrual adds exactly +0.0; eliding it is bit-exact
            m_area = self.m_area
            a_dt = now - last
            m_area[lane, 0] = m_area.item(mflat) + v0 * a_dt
            m_area[lane, 1] = m_area.item(mflat + 1) + v1 * a_dt
            self.m_last[lane] = now
        m_val[lane, 0] = v0 + size
        m_val[lane, 1] = v1 + net
        return dep_t

    def _lane_drain(self, lane: int, now: float, eid: int) -> int:
        """Start queued jobs on ``lane`` while its head fits (GS/SC
        departure rule); returns the updated sequence counter."""
        q = self._q[lane]
        if not q:
            return eid
        jobs = self._jobs_py[lane]
        free = self._free_py[lane]
        prof = self._prof[lane]
        assert prof is not None
        while q:
            head = q[0]
            alloc = self._place_single(prof, free, jobs[head][3])
            if alloc is None:
                break
            q.popleft()
            eid += 1
            self._start_single(lane, head, now, eid, alloc)
        return eid

    def _arrival_burst(self, lane: int, dmin: float) -> None:
        """Process the lane's due arrival plus every later arrival that
        strictly precedes the lane's earliest departure (GS/SC).

        While no departure can interleave, each arrival is either a
        pure push (non-empty queue: the head is already known not to
        fit) or an immediate-start attempt on an empty queue, so the
        whole stretch runs as one Python loop instead of one global
        step per arrival.  An immediate start elides the scalar's
        push-then-pop (net queue state is identical).  A start pulls
        ``dmin`` in; an arrival tying it exactly stops the burst and
        returns to the (time, sequence) select, which owns tie-breaks.
        """
        eid = self._eid_py[lane]
        job = self._next_job_py[lane]
        jobs = self._jobs_py[lane]
        q = self._q[lane]
        free = self._free_py[lane]
        prof = self._prof[lane]
        assert prof is not None
        t = float(self.na_t.item(lane))
        started = False
        while True:
            if q:
                q.append(job)
            elif (alloc := self._place_single(prof, free,
                                              jobs[job][3])) is None:
                q.append(job)
            else:
                eid += 1
                dep_t = self._start_single(lane, job, t, eid, alloc)
                started = True
                if dep_t < dmin:
                    dmin = dep_t
            # ArrivalProcess._tick: schedule the next arrival one
            # sequence number after any start the submit made.
            eid += 1
            job += 1
            while job >= len(jobs):
                self._generate_chunk(lane)
            t_next = jobs[job][0]
            if t_next >= dmin:
                break
            t = t_next
        self._eid_py[lane] = eid
        self._next_job_py[lane] = job
        self.now[lane] = t
        self.na_eid[lane] = eid
        self.na_t[lane] = t_next
        if started:
            top = self._heaps[lane][0]
            self._dmin_t[lane] = top[0]
            self._dmin_eid[lane] = top[1]

    # -- LS / LP: the visiting rounds over the queue ring -------------------

    def _lane_rounds_ls(self, lane: int, now: float, eid: int) -> int:
        """LSPolicy._rounds on one lane: visit the enabled queues in
        enablement order (snapshot per pass), start at most one job per
        queue per pass, disable a queue whose head does not fit, repeat
        while any pass started something.  Returns the updated
        sequence counter."""
        qs = self._qs[lane]
        visit = self._visit[lane]
        disabled = self._disabled[lane]
        enabled = self._enabled[lane]
        jobs = self._jobs_py[lane]
        free = self._free_py[lane]
        prof = self._prof[lane]
        assert prof is not None
        progress = True
        while progress:
            progress = False
            for qid in tuple(visit):
                q = qs[qid]
                if not enabled[qid] or not q:
                    continue
                head = q[0]
                jt = jobs[head]
                size = jt[3]
                if jt[5]:
                    # Multi-component: Worst Fit over all clusters.
                    alloc = self._place_single(prof, free, size)
                elif free[qid] >= size:
                    # Single-component: only the local cluster
                    # (LS queue index == cluster index).
                    alloc = ((qid, size),)
                else:
                    alloc = None
                if alloc is None:
                    enabled[qid] = False
                    visit.remove(qid)
                    disabled.append(qid)
                else:
                    q.popleft()
                    eid += 1
                    self._start_single(lane, head, now, eid, alloc)
                    progress = True
        return eid

    def _lane_rounds_lp(self, lane: int, now: float, eid: int) -> int:
        """LPPolicy._rounds on one lane.  As LS, plus the local-priority
        gate: the global queue (index 0) is *skipped* — not disabled —
        unless some local queue is empty, evaluated live at each visit;
        and a start that empties a local queue while the global queue
        is disabled re-enables the global queue mid-round (§2.5)."""
        qs = self._qs[lane]
        visit = self._visit[lane]
        disabled = self._disabled[lane]
        enabled = self._enabled[lane]
        jobs = self._jobs_py[lane]
        free = self._free_py[lane]
        prof = self._prof[lane]
        assert prof is not None
        nq = self._nq
        progress = True
        while progress:
            progress = False
            for qid in tuple(visit):
                q = qs[qid]
                if not enabled[qid] or not q:
                    continue
                if qid == 0:
                    for i in range(1, nq):
                        if not qs[i]:
                            break
                    else:
                        continue
                    # Global queue: all multi-component, Worst Fit.
                    alloc = self._place_single(prof, free, jobs[q[0]][3])
                else:
                    size = jobs[q[0]][3]
                    # Local queue: only its own cluster (qid - 1).
                    alloc = (((qid - 1, size),)
                             if free[qid - 1] >= size else None)
                if alloc is None:
                    enabled[qid] = False
                    visit.remove(qid)
                    disabled.append(qid)
                    continue
                head = q.popleft()
                eid += 1
                self._start_single(lane, head, now, eid, alloc)
                progress = True
                if qid and not q and not enabled[0]:
                    # A local queue just emptied: the global queue
                    # rejoins the visit list (QueueRing.reenable).
                    disabled.remove(0)
                    enabled[0] = True
                    visit.append(0)
        return eid

    def _lane_departure_ls(self, lane: int, now: float, eid: int) -> int:
        """LSPolicy.on_departure: enable_all (disablement order), then
        rounds."""
        disabled = self._disabled[lane]
        if disabled:
            enabled = self._enabled[lane]
            for qid in disabled:
                enabled[qid] = True
            self._visit[lane].extend(disabled)
            disabled.clear()
        return self._lane_rounds_ls(lane, now, eid)

    def _lane_departure_lp(self, lane: int, now: float, eid: int) -> int:
        """LPPolicy.on_departure: enable_all(global_first=True) when
        some local queue is empty — the global queue re-enables ahead
        of the locals — otherwise enable_all(skip_global=True), the
        global queue staying disabled (re-appended to the disabled
        list, as the scalar ring does); then rounds."""
        qs = self._qs[lane]
        disabled = self._disabled[lane]
        if disabled:
            enabled = self._enabled[lane]
            visit = self._visit[lane]
            some_local_empty = False
            for i in range(1, self._nq):
                if not qs[i]:
                    some_local_empty = True
                    break
            if some_local_empty:
                if not enabled[0]:
                    disabled.remove(0)
                    disabled.insert(0, 0)
                for qid in disabled:
                    enabled[qid] = True
                visit.extend(disabled)
                disabled.clear()
            else:
                keep_global = not enabled[0]
                for qid in disabled:
                    if qid:
                        enabled[qid] = True
                        visit.append(qid)
                disabled.clear()
                if keep_global:
                    disabled.append(0)
        return self._lane_rounds_lp(lane, now, eid)

    def _arrival_burst_ring(self, lane: int, dmin: float) -> None:
        """The LS/LP arrival burst: process the lane's due arrival plus
        every later arrival that strictly precedes the lane's earliest
        departure.

        Each arrival pushes its job (destination queue precomputed in
        the job tuple) and runs the visiting rounds exactly when the
        scalar policy would act: LS rounds only when the target queue
        is enabled; LP rounds always, elided when provably a no-op —
        the push touched a disabled queue, or the global queue while
        no local queue is empty.  (After any rounds call every enabled
        queue is empty except possibly a gate-blocked global queue,
        and pushes never empty a queue, so such a round could neither
        start a job nor change ring state.)  A start pulls ``dmin``
        in; an arrival tying it exactly stops the burst and returns to
        the (time, sequence) select, which owns tie-breaks."""
        eid = self._eid_py[lane]
        job = self._next_job_py[lane]
        jobs = self._jobs_py[lane]
        qs = self._qs[lane]
        enabled = self._enabled[lane]
        heap = self._heaps[lane]
        ls = self.policy == "LS"
        rounds = self._lane_rounds_ls if ls else self._lane_rounds_lp
        nq = self._nq
        t = float(self.na_t.item(lane))
        while True:
            jt = jobs[job]
            qid = jt[4]
            qs[qid].append(job)
            if ls:
                if enabled[qid]:
                    eid = rounds(lane, t, eid)
            elif enabled[qid]:
                if qid:
                    eid = rounds(lane, t, eid)
                else:
                    for i in range(1, nq):
                        if not qs[i]:
                            eid = rounds(lane, t, eid)
                            break
            # ArrivalProcess._tick: schedule the next arrival one
            # sequence number after any starts the submit made.
            eid += 1
            job += 1
            while job >= len(jobs):
                self._generate_chunk(lane)
            t_next = jobs[job][0]
            if heap:
                top_t = heap[0][0]
                if top_t < dmin:
                    dmin = top_t
            if t_next >= dmin:
                break
            t = t_next
        self._eid_py[lane] = eid
        self._next_job_py[lane] = job
        self.now[lane] = t
        self.na_eid[lane] = eid
        self.na_t[lane] = t_next
        if heap:
            top = heap[0]
            self._dmin_t[lane] = top[0]
            self._dmin_eid[lane] = top[1]

    # -- event processing --------------------------------------------------

    def _finish_block(self, idx: "np.ndarray", t: "np.ndarray",
                      arr_t: "np.ndarray", meta2: "np.ndarray") -> None:
        """MetricsRecorder.on_finish for one departure per lane, field
        for field (in_system and the diagnostic tallies never reach
        SweepPoint and are omitted).  ``meta2`` holds the fused
        [gross size, net size] pair per lane."""
        dt = t - self.m_last[idx]
        self.m_area[idx] += self.m_val[idx] * dt[:, None]
        self.m_last[idx] = t
        self.m_val[idx] -= meta2
        resp = t - arr_t
        cnt = self.resp_cnt[idx] + 1
        self.resp_cnt[idx] = cnt
        self.resp_mean[idx] += (resp - self.resp_mean[idx]) / cnt
        bsum = self.batch_sum[idx] + resp
        self.batch_sum[idx] = bsum
        in_b = self.in_batch[idx] + 1
        self.in_batch[idx] = in_b
        closing = in_b == self._bsize[idx]
        if closing.any():
            rows = idx[closing]
            bval = bsum[closing] / self._bsize[rows]
            bc = self.b_cnt[rows] + 1
            self.b_cnt[rows] = bc
            bdelta = bval - self.b_mean[rows]
            bmean = self.b_mean[rows] + bdelta / bc
            self.b_mean[rows] = bmean
            self.b_m2[rows] += bdelta * (bval - bmean)
            self.in_batch[rows] = 0
            self.batch_sum[rows] = 0.0
        self.finished[idx] += 1

    def _departures(self, idx: "np.ndarray") -> None:
        """One departure per lane: per-lane pops and releases, the
        vectorized statistics block, then the per-lane policy reaction
        (GS/SC: the FCFS drain; LS/LP: ring re-enables plus rounds).

        The scalar event order is release + on_finish first, the
        policy's start attempts second; the statistics block therefore
        runs *between* the two Python loops so each lane's
        metric-update sequence matches the scalar engine's exactly.
        The subsequent starts happen at the departure time the block
        just accrued to, so their TimeWeighted adds are the
        elided-zero-width case of ``_start_single``."""
        heaps = self._heaps
        free_py = self._free_py
        lanes = idx.tolist()
        times = []
        arrs = []
        metas = []
        for lane in lanes:
            dep_t, _, arr_t, size, net, alloc = heappop(heaps[lane])
            times.append(dep_t)
            arrs.append(arr_t)
            metas.append((size, net))
            free = free_py[lane]
            for ci, comp in alloc:
                free[ci] += comp
        t = np.array(times, dtype=np.float64)
        self.now[idx] = t
        self._finish_block(idx, t, np.array(arrs, dtype=np.float64),
                           np.array(metas, dtype=np.float64))
        eid_py = self._eid_py
        dmin_t = self._dmin_t
        dmin_eid = self._dmin_eid
        after_dep = self._after_dep
        for i, lane in enumerate(lanes):
            eid_py[lane] = after_dep(lane, times[i], eid_py[lane])
            heap = heaps[lane]
            if heap:
                top = heap[0]
                dmin_t[lane] = top[0]
                dmin_eid[lane] = top[1]
            else:
                dmin_t[lane] = _INF
                dmin_eid[lane] = _HUGE_EID

    def _backlog(self, rows: "np.ndarray") -> "np.ndarray":
        """Total queued jobs per lane (the saturation-estimate input)."""
        if self._single:
            return np.array([len(self._q[lane]) for lane in rows.tolist()],
                            dtype=np.int64)
        return np.array([sum(map(len, self._qs[lane]))
                         for lane in rows.tolist()], dtype=np.int64)

    def _post_departure(self, idx: "np.ndarray") -> None:
        """Warmup reset / termination — the scalar ``run_while``
        predicates, checked after the full departure event.  A lane
        reaching its completion target retires: it leaves the active
        mask and queues for :meth:`drain_retired`."""
        done_jobs = self.finished[idx]
        crossing = ((done_jobs == self._warm_tgt[idx])
                    & ~self.reset_done[idx])
        if crossing.any():
            rows = idx[crossing]
            t = self.now[rows]
            self.origin[rows] = t
            self.m_area[rows] = 0.0
            self.m_last[rows] = t
            self.resp_cnt[rows] = 0
            self.resp_mean[rows] = 0.0
            self.batch_sum[rows] = 0.0
            self.in_batch[rows] = 0
            self.b_cnt[rows] = 0
            self.b_mean[rows] = 0.0
            self.b_m2[rows] = 0.0
            self.backlog_reset[rows] = self._backlog(rows)
            self.reset_done[rows] = True
        finished = done_jobs >= self._total_tgt[idx]
        if finished.any():
            rows = idx[finished]
            self.end_time[rows] = self.now[rows]
            self.backlog_end[rows] = self._backlog(rows)
            self.active[rows] = False
            done = rows.tolist()
            self._retired.extend(done)
            self.active_lanes -= len(done)

    def step(self) -> None:
        """One step of the lockstep engine: vectorized select,
        departure statistics and run control; per-lane Python pops,
        policy reactions and arrival bursts.

        Lanes never interact, so each arrival lane may process its
        whole run of arrivals up to (strictly before) its own next
        departure in one go — global (time, sequence) order only ever
        matters *within* a lane."""
        active = self.active
        dmin_t = self._dmin_t
        na_t = self.na_t
        tie = dmin_t == na_t  # simlint: disable=SIM002 -- exact calendar tie-break, mirrors the heap's total order
        is_dep = active & ((dmin_t < na_t)
                           | (tie & (self._dmin_eid < self.na_eid)))
        dep_lanes = np.nonzero(is_dep)[0]
        arr_mask = active & ~is_dep
        if dep_lanes.size:
            self._departures(dep_lanes)
            self._post_departure(dep_lanes)
        if arr_mask.any():
            arr_lanes = np.nonzero(arr_mask)[0]
            burst = self._burst
            for lane, dmin in zip(arr_lanes.tolist(),
                                  dmin_t[arr_mask].tolist()):
                burst(lane, dmin)

    # -- results -----------------------------------------------------------

    def _point(self, lane: int) -> "SweepPoint":
        """The finished lane's statistics, exactly as the scalar
        engine's :class:`~repro.analysis.points.SweepPoint`."""
        from repro.analysis.points import SweepPoint

        confidence = 0.95
        end = float(self.end_time[lane])
        elapsed = end - float(self.origin[lane])
        if elapsed <= 0:
            raise ValueError("empty measurement window")
        denom = self.capacity * elapsed
        tail = end - float(self.m_last[lane])
        gross = (float(self.m_area[lane, 0])
                 + float(self.m_val[lane, 0]) * tail) / denom
        net = (float(self.m_area[lane, 1])
               + float(self.m_val[lane, 1]) * tail) / denom
        mean = (float(self.resp_mean[lane]) if self.resp_cnt[lane]
                else math.nan)
        k = int(self.b_cnt[lane])
        if k < 2:
            half = math.inf
        else:
            t_quant = student_t_quantile(0.5 + confidence / 2.0, k - 1)
            std = math.sqrt(float(self.b_m2[lane]) / (k - 1))
            half = t_quant * std / math.sqrt(k)
        saturated = (int(self.backlog_end[lane])
                     > max(50, 3 * int(self.backlog_reset[lane]) + 20))
        return SweepPoint(
            offered_gross=self._offered[lane],
            gross_utilization=gross,
            net_utilization=net,
            mean_response=mean,
            ci_half_width=half,
            saturated=saturated,
        )


def run_batch_points(config: SimulationConfig,
                     size_distribution: Distribution,
                     service_distribution: Distribution,
                     offered_gross: float,
                     seeds: Sequence[int],
                     arrival_rate: Optional[float] = None
                     ) -> "list[SweepPoint]":
    """Run one configuration under many seeds in lockstep.

    Returns one :class:`~repro.analysis.points.SweepPoint` per seed, in
    input order, each bit-identical to the scalar
    :func:`~repro.core.system.run_open_system` result for that seed.
    ``arrival_rate`` overrides the rate derived from ``offered_gross``
    (they are redundant; both are accepted so callers can match either
    scalar entry point exactly).
    """
    if not seeds:
        raise BatchBackendError("need at least one seed")
    factory = JobFactory(
        size_distribution,  # type: ignore[arg-type]
        service_distribution,
        config.component_limit,
        clusters=len(config.capacities),
        extension_factor=config.extension_factor,
        routing_weights=config.routing_weights,
        streams=StreamFactory(0),
    )
    if arrival_rate is None:
        arrival_rate = factory.arrival_rate_for_gross_utilization(
            offered_gross, config.capacity
        )
    kernel = BatchLaneKernel(config, size_distribution,
                             service_distribution, len(seeds))
    for slot, seed in enumerate(seeds):
        kernel.load(slot, replace(config, seed=int(seed)),
                    arrival_rate=arrival_rate)
    while not kernel.idle:
        kernel.step()
    by_slot = dict(kernel.drain_retired())
    return [by_slot[slot] for slot in range(len(seeds))]


def run_batch_task(task: "RunTask") -> "SweepPoint":
    """Worker entry point for ``backend="batch"`` tasks (width 1).

    The lockstep kernel degenerates to a single lane; results are
    width-independent, so a task executed here (serially, under the
    fault-injecting pool, from a cache-miss retry, ...) is
    byte-identical to the same seed inside a wide wave.
    """
    points = run_batch_points(task.config, task.size_distribution,
                              task.service_distribution, task.offered_gross,
                              (task.config.seed,))
    return points[0]
