"""``repro.sim`` — a process-oriented discrete-event simulation engine.

This subpackage is the substrate replacing the commercial CSIM18 package
the paper used: an event calendar with deterministic tie-breaking,
generator-coroutine processes, interrupts, counted resources, reproducible
named random streams, input distributions, and steady-state output
statistics (batch means, time-weighted averages).

Quick example::

    from repro.sim import Simulator, Exponential, StreamFactory

    sim = Simulator()
    rng = StreamFactory(1).get("arrivals")
    iat = Exponential(mean=2.0)

    def source(sim):
        while True:
            yield sim.timeout(iat.sample(rng))
            print("arrival at", sim.now)

    sim.process(source(sim))
    sim.run(until=10)
"""

from .calendar import CalendarQueue, EventList, HeapEventList
from .engine import Infinity, Simulator
from .errors import (
    EmptySchedule,
    Interrupt,
    SchedulingError,
    SimulationError,
)
from .events import AllOf, AnyOf, Condition, Event, Timeout
from .process import Process
from .resources import Gate, Grant, PreemptiveResource, Resource, Store
from .rng import StreamFactory, stream
from .distributions import (
    BoundedPareto,
    ContinuousEmpirical,
    Deterministic,
    DiscreteEmpirical,
    Distribution,
    Erlang,
    Exponential,
    Hyperexponential,
    Lognormal,
    Mixture,
    Scaled,
    TruncatedLognormal,
    Uniform,
    Weibull,
)
from .quantiles import P2Quantile, QuantileSet
from .run_length import RunLengthController, StoppingDecision, run_to_precision
from .warmup import is_warmup_adequate, mser_truncation_point
from .stats import (
    BatchMeans,
    ConfidenceInterval,
    Histogram,
    Tally,
    TimeWeighted,
    normal_quantile,
    student_t_quantile,
)
from .trace import NullTracer, TraceRecord, Tracer

__all__ = [
    # engine
    "Simulator", "Infinity",
    "EventList", "HeapEventList", "CalendarQueue",
    # errors
    "SimulationError", "SchedulingError", "EmptySchedule", "Interrupt",
    # events & processes
    "Event", "Timeout", "Condition", "AnyOf", "AllOf", "Process",
    # resources
    "Resource", "Grant", "Store", "Gate", "PreemptiveResource",
    # rng
    "StreamFactory", "stream",
    # distributions
    "Distribution", "Deterministic", "Exponential", "Uniform", "Erlang",
    "Hyperexponential", "Lognormal", "TruncatedLognormal",
    "DiscreteEmpirical", "ContinuousEmpirical", "Mixture", "Scaled",
    "Weibull", "BoundedPareto",
    # stats
    "P2Quantile", "QuantileSet",
    "RunLengthController", "StoppingDecision", "run_to_precision",
    "mser_truncation_point", "is_warmup_adequate",
    "Tally", "TimeWeighted", "BatchMeans", "Histogram",
    "ConfidenceInterval", "normal_quantile", "student_t_quantile",
    # tracing
    "Tracer", "NullTracer", "TraceRecord",
]
