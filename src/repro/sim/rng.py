"""Reproducible random-number streams.

Every stochastic component of a simulation (arrivals, job sizes, service
times, routing, ...) draws from its own *named substream*, all derived from
one master seed via :class:`numpy.random.SeedSequence` spawning.  This gives

* **reproducibility** — the same master seed always produces the same run;
* **common random numbers** — two policies simulated with the same master
  seed see the *same* arrival process and job mix, so their response-time
  difference is not polluted by sampling noise (a classic variance-reduction
  technique for policy comparisons, used throughout the benchmark harness);
* **independence** — substreams are statistically independent, so adding a
  new consumer never perturbs existing ones.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

__all__ = ["StreamFactory", "stream"]


class StreamFactory:
    """Factory of named, independent random generators.

    Parameters
    ----------
    master_seed:
        Any value accepted by :class:`numpy.random.SeedSequence`.

    Examples
    --------
    >>> streams = StreamFactory(42)
    >>> arrivals = streams.get("arrivals")
    >>> sizes = streams.get("sizes")
    >>> arrivals is streams.get("arrivals")
    True
    """

    def __init__(self, master_seed: Optional[int] = None) -> None:
        self.master_seed = master_seed
        self._root = np.random.SeedSequence(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for ``name``.

        The substream is derived deterministically from the master seed and
        the name, so creation order does not matter.
        """
        gen = self._streams.get(name)
        if gen is None:
            # Derive a child seed from the master entropy plus a stable
            # hash of the name so that streams are order-independent.
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=(_stable_hash(name),),
            )
            gen = np.random.default_rng(child)
            self._streams[name] = gen
        return gen

    def __getitem__(self, name: str) -> np.random.Generator:
        return self.get(name)

    def names(self) -> tuple[str, ...]:
        """Names of streams created so far."""
        return tuple(self._streams)

    def __repr__(self) -> str:
        return (
            f"<StreamFactory seed={self.master_seed!r} "
            f"streams={len(self._streams)}>"
        )


def _stable_hash(name: str) -> int:
    """A deterministic 64-bit hash of ``name`` (Python's hash is salted)."""
    h = np.uint64(14695981039346656037)  # FNV-1a offset basis
    prime = np.uint64(1099511628211)
    with np.errstate(over="ignore"):
        for byte in name.encode("utf-8"):
            h = np.uint64(h ^ np.uint64(byte))
            h = np.uint64(h * prime)
    return int(h)


def stream(seed: Optional[int], name: str) -> np.random.Generator:
    """One-shot helper: the named substream of a throwaway factory."""
    return StreamFactory(seed).get(name)
