"""Exception types used by the discrete-event simulation engine.

The engine distinguishes three failure modes:

* :class:`SimulationError` — a structural misuse of the engine (scheduling
  into the past, running a finished simulation, ...).  These indicate bugs
  in the model, never ordinary simulation outcomes.
* :class:`Interrupt` — thrown *into* a process when another process calls
  :meth:`repro.sim.process.Process.interrupt`.  Models preemption and
  cancellation; a process may catch it and continue.
* :class:`StopSimulation` — raised internally to end :meth:`Simulator.run`
  when the ``until`` event triggers.
"""

from __future__ import annotations

__all__ = [
    "SimulationError",
    "SchedulingError",
    "Interrupt",
    "StopSimulation",
    "EmptySchedule",
]


class SimulationError(Exception):
    """Base class for all engine-level errors."""


class SchedulingError(SimulationError):
    """An event was scheduled or triggered in an illegal way.

    Examples: scheduling an event at a time earlier than the current
    simulation time, triggering an already-triggered event, or yielding a
    non-event object from a process.
    """


class EmptySchedule(SimulationError):
    """The event calendar ran empty before the run's stop condition."""


class StopSimulation(Exception):
    """Internal control-flow exception that terminates :meth:`Simulator.run`.

    Carries the value of the event that ended the run.  User code never
    needs to raise or catch this.
    """

    def __init__(self, value: object = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process that is interrupted by another process.

    Parameters
    ----------
    cause:
        Arbitrary object describing why the interrupt happened; made
        available as :attr:`cause`.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> object:
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0]
