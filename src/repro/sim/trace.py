"""Lightweight structured tracing for simulation runs.

A :class:`Tracer` collects ``(time, kind, payload)`` records emitted by the
model (arrivals, starts, departures, queue enable/disable, ...).  Tracing
is opt-in and costs one predicate call when disabled, so production sweeps
leave it off while tests and debugging sessions use it to assert event
orderings precisely.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, NamedTuple, Optional

__all__ = ["TraceRecord", "Tracer", "NullTracer"]


class TraceRecord(NamedTuple):
    """One trace entry: simulation time, event kind, free-form payload."""

    time: float
    kind: str
    payload: dict


class Tracer:
    """Collects trace records, optionally filtered by kind.

    Parameters
    ----------
    kinds:
        If given, only records whose kind is in this set are kept.
    limit:
        Optional hard cap on stored records (oldest kept); protects tests
        against runaway memory in long runs.
    """

    def __init__(self, kinds: Optional[Iterable[str]] = None,
                 limit: Optional[int] = None) -> None:
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.limit = limit
        self.records: list[TraceRecord] = []
        self.dropped = 0

    @property
    def enabled(self) -> bool:
        """Tracers are always on; :class:`NullTracer` overrides this."""
        return True

    def emit(self, time: float, kind: str, **payload: object) -> None:
        """Record one event if it passes the kind filter and cap."""
        if self.kinds is not None and kind not in self.kinds:
            return
        if self.limit is not None and len(self.records) >= self.limit:
            self.dropped += 1
            return
        self.records.append(TraceRecord(time, kind, payload))

    def of_kind(self, kind: str) -> list[TraceRecord]:
        """All stored records of one kind, in time order."""
        return [r for r in self.records if r.kind == kind]

    def kinds_seen(self) -> set[str]:
        """Distinct kinds recorded."""
        return {r.kind for r in self.records}

    def clear(self) -> None:
        """Drop all stored records."""
        self.records.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __repr__(self) -> str:
        return f"<Tracer records={len(self.records)} dropped={self.dropped}>"


class NullTracer(Tracer):
    """A tracer that ignores everything (zero storage, near-zero cost)."""

    def __init__(self) -> None:
        super().__init__()

    @property
    def enabled(self) -> bool:
        """Always false: models may skip payload construction entirely."""
        return False

    def emit(self, time: float, kind: str, **payload: object) -> None:
        """Discard the record."""

    def __repr__(self) -> str:
        return "<NullTracer>"


def filter_records(records: Iterable[TraceRecord],
                   predicate: Callable[[TraceRecord], bool]
                   ) -> list[TraceRecord]:
    """Convenience: records satisfying ``predicate``, preserving order."""
    return [r for r in records if predicate(r)]
