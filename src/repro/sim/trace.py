"""Lightweight structured tracing for simulation runs.

A :class:`Tracer` collects ``(time, kind, payload)`` records emitted by the
model (arrivals, starts, departures, queue enable/disable, ...).  Tracing
is opt-in and costs one attribute read when disabled, so production sweeps
leave it off while tests and debugging sessions use it to assert event
orderings precisely.

Storage is bounded by ``limit`` in one of two modes: ``"head"`` (the
default) keeps the *first* ``limit`` records and drops the tail, while
``"ring"`` keeps the *last* ``limit`` records — the right choice when
debugging the end of a long run.  Records can additionally be streamed
to a ``sink`` callable regardless of what is stored; this is how
:class:`repro.obs.EventLog` exports full event logs without holding
them in memory.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Iterator, NamedTuple, Optional

__all__ = ["TraceRecord", "Tracer", "NullTracer"]


class TraceRecord(NamedTuple):
    """One trace entry: simulation time, event kind, free-form payload."""

    time: float
    kind: str
    payload: dict


class Tracer:
    """Collects trace records, optionally filtered by kind.

    Parameters
    ----------
    kinds:
        If given, only records whose kind is in this set are kept.
    limit:
        Optional hard cap on stored records; protects tests against
        runaway memory in long runs.
    mode:
        ``"head"`` (default) keeps the oldest ``limit`` records and
        drops the tail; ``"ring"`` keeps the newest ``limit`` records,
        evicting the oldest.
    sink:
        Optional callable invoked with every record that passes the
        kind filter, *before* the storage cap applies — streaming
        export sees the full record flow even when storage is bounded.

    Attributes
    ----------
    dropped:
        Records lost to the storage cap (tail drops in ``"head"`` mode,
        oldest-record evictions in ``"ring"`` mode).
    filtered:
        Records rejected by the kind filter (never stored, never sunk).
    """

    _MODES = ("head", "ring")

    #: Tracers are always on; :class:`NullTracer` overrides this.  A
    #: plain class attribute, not a property — model code checks it
    #: before every emission, and the disabled check is the only
    #: tracing cost a production sweep pays.
    enabled: bool = True

    def __init__(self, kinds: Optional[Iterable[str]] = None,
                 limit: Optional[int] = None,
                 mode: str = "head",
                 sink: Optional[Callable[[TraceRecord], None]] = None
                 ) -> None:
        if mode not in self._MODES:
            raise ValueError(
                f"mode must be one of {self._MODES}, got {mode!r}"
            )
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.limit = limit
        self.mode = mode
        self.sink = sink
        self.records: "list[TraceRecord] | deque[TraceRecord]" = (
            deque() if mode == "ring" else []
        )
        self.dropped = 0
        self.filtered = 0

    def emit(self, time: float, kind: str, **payload: object) -> None:
        """Record one event if it passes the kind filter and cap."""
        if self.kinds is not None and kind not in self.kinds:
            self.filtered += 1
            return
        record = TraceRecord(time, kind, payload)
        if self.sink is not None:
            self.sink(record)
        if self.limit is not None and len(self.records) >= self.limit:
            self.dropped += 1
            if self.mode == "head":
                return
            self.records.popleft()  # type: ignore[union-attr]
        self.records.append(record)

    def emit_row(self, row: dict) -> None:
        """Hot-path variant of :meth:`emit` taking one prebuilt row.

        ``row`` must carry ``"t"`` (time) and ``"kind"`` alongside the
        payload keys, and the tracer takes ownership of the dict.
        Model code on per-event paths builds the row once and hands it
        over whole — a single positional call, no keyword packing.
        The default implementation unpacks and delegates to
        :meth:`emit`, so subclasses that override only :meth:`emit`
        keep working; :class:`repro.obs.ExportTracer` overrides this
        method to stream the row as-is.
        """
        time = row.pop("t")
        kind = row.pop("kind")
        self.emit(time, kind, **row)

    def of_kind(self, kind: str) -> list[TraceRecord]:
        """All stored records of one kind, in time order."""
        return [r for r in self.records if r.kind == kind]

    def kinds_seen(self) -> set[str]:
        """Distinct kinds recorded."""
        return {r.kind for r in self.records}

    def clear(self) -> None:
        """Drop all stored records and reset the drop/filter counters."""
        self.records.clear()
        self.dropped = 0
        self.filtered = 0

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __repr__(self) -> str:
        return (f"<Tracer records={len(self.records)} "
                f"dropped={self.dropped} filtered={self.filtered}>")


class NullTracer(Tracer):
    """A tracer that ignores everything (zero storage, near-zero cost)."""

    #: Always false: models may skip payload construction entirely.
    enabled: bool = False

    def __init__(self) -> None:
        super().__init__()

    def emit(self, time: float, kind: str, **payload: object) -> None:
        """Discard the record."""

    def emit_row(self, row: dict) -> None:
        """Discard the row."""

    def __repr__(self) -> str:
        return "<NullTracer>"


def filter_records(records: Iterable[TraceRecord],
                   predicate: Callable[[TraceRecord], bool]
                   ) -> list[TraceRecord]:
    """Convenience: records satisfying ``predicate``, preserving order."""
    return [r for r in records if predicate(r)]
