"""Output-analysis statistics for simulation runs.

Three collector types cover steady-state output analysis:

* :class:`Tally` — observation-based statistics (response times): running
  count/mean/variance via Welford's algorithm, min/max.
* :class:`TimeWeighted` — time-average of a piecewise-constant signal
  (queue lengths, busy processors): the integral of the signal divided by
  elapsed time, with support for resetting at the end of a warmup period.
* :class:`BatchMeans` — batch-means confidence intervals for the mean of a
  correlated stationary sequence, the standard method for steady-state
  simulation output (Law & Kelton ch. 9).

Student-t quantiles are computed with the Cornish–Fisher expansion of the
t distribution around the normal quantile (Abramowitz & Stegun 26.7.5),
accurate to ~1e-4 for the degrees of freedom used here, so the package
needs no SciPy dependency.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

__all__ = [
    "Tally",
    "TimeWeighted",
    "BatchMeans",
    "Histogram",
    "normal_quantile",
    "student_t_quantile",
    "ConfidenceInterval",
]


class ConfidenceInterval:
    """A symmetric confidence interval ``mean ± half_width``."""

    __slots__ = ("mean", "half_width", "level")

    def __init__(self, mean: float, half_width: float, level: float) -> None:
        self.mean = mean
        self.half_width = half_width
        self.level = level

    @property
    def low(self) -> float:
        """Lower endpoint."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper endpoint."""
        return self.mean + self.half_width

    @property
    def relative_width(self) -> float:
        """Half width relative to |mean| (inf for zero mean)."""
        if self.mean == 0:
            return math.inf
        return self.half_width / abs(self.mean)

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __repr__(self) -> str:
        return (
            f"CI{self.level:.0%}({self.mean:.6g} ± {self.half_width:.3g})"
        )


class Tally:
    """Observation statistics: count, mean, variance, extrema.

    Uses Welford's online algorithm so it is numerically stable for long
    runs and never stores the observations.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.reset()

    def reset(self) -> None:
        """Forget all observations (e.g. at the end of warmup)."""
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.total = 0.0

    def record(self, value: float) -> None:
        """Add one observation."""
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def record_many(self, values: Iterable[float]) -> None:
        """Add a sequence of observations."""
        for v in values:
            self.record(v)

    @property
    def mean(self) -> float:
        """Sample mean (nan when empty)."""
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Unbiased sample variance (nan for < 2 observations)."""
        if self.count < 2:
            return math.nan
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        v = self.variance
        return math.sqrt(v) if v == v else math.nan

    @property
    def cv(self) -> float:
        """Sample coefficient of variation."""
        if not self.count or self._mean == 0:
            return math.nan
        return self.std / abs(self._mean)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<Tally{label} n={self.count} mean={self.mean:.6g}>"


class TimeWeighted:
    """Time-average of a piecewise-constant signal.

    ``update(t, value)`` states that the signal takes ``value`` from time
    ``t`` onward; ``mean(t)`` integrates up to ``t``.  ``reset(t)``
    restarts accumulation at ``t`` keeping the current level — used to
    discard a warmup transient.
    """

    def __init__(self, time: float = 0.0, value: float = 0.0, name: str = "") -> None:
        self.name = name
        self._last_time = float(time)
        self._value = float(value)
        self._area = 0.0
        self._origin = float(time)
        self.maximum = float(value)
        self.minimum = float(value)

    @property
    def value(self) -> float:
        """Current level of the signal."""
        return self._value

    def update(self, time: float, value: float) -> None:
        """Advance to ``time`` and set a new level."""
        if time < self._last_time:
            raise ValueError(
                f"time moved backwards: {time!r} < {self._last_time!r}"
            )
        self._area += self._value * (time - self._last_time)
        self._last_time = time
        self._value = float(value)
        if value > self.maximum:
            self.maximum = float(value)
        if value < self.minimum:
            self.minimum = float(value)

    def add(self, time: float, delta: float) -> None:
        """Advance to ``time`` and shift the level by ``delta``."""
        self.update(time, self._value + delta)

    def reset(self, time: float) -> None:
        """Restart integration at ``time`` (level preserved)."""
        if time < self._last_time:
            raise ValueError(
                f"time moved backwards: {time!r} < {self._last_time!r}"
            )
        self._area = 0.0
        self._last_time = float(time)
        self._origin = float(time)
        self.maximum = self._value
        self.minimum = self._value

    def integral(self, time: float) -> float:
        """∫ signal dt from the last reset to ``time``."""
        if time < self._last_time:
            raise ValueError(
                f"time moved backwards: {time!r} < {self._last_time!r}"
            )
        return self._area + self._value * (time - self._last_time)

    def mean(self, time: float) -> float:
        """Time-average from the last reset to ``time``."""
        elapsed = time - self._origin
        if elapsed <= 0:
            return math.nan
        return self.integral(time) / elapsed

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<TimeWeighted{label} value={self._value:.6g}>"


class BatchMeans:
    """Batch-means estimator for the mean of a correlated sequence.

    Observations are grouped into fixed-size batches; batch averages are
    treated as (approximately) independent normal samples, yielding a
    Student-t confidence interval.  Choose the batch size large relative
    to the autocorrelation time (thousands of jobs for queueing sims).
    """

    def __init__(self, batch_size: int, name: str = "") -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size!r}")
        self.batch_size = int(batch_size)
        self.name = name
        self._in_batch = 0
        self._batch_sum = 0.0
        self.batches = Tally(f"{name}.batches")
        self.observations = Tally(f"{name}.observations")

    def record(self, value: float) -> None:
        """Add one observation, closing a batch when full."""
        self.observations.record(value)
        self._batch_sum += value
        self._in_batch += 1
        if self._in_batch == self.batch_size:
            self.batches.record(self._batch_sum / self.batch_size)
            self._in_batch = 0
            self._batch_sum = 0.0

    @property
    def count(self) -> int:
        """Total observations recorded."""
        return self.observations.count

    @property
    def num_batches(self) -> int:
        """Completed batches."""
        return self.batches.count

    @property
    def mean(self) -> float:
        """Grand mean over all observations."""
        return self.observations.mean

    def confidence_interval(self, level: float = 0.95) -> ConfidenceInterval:
        """Student-t CI on the mean from the completed batches.

        With fewer than 2 completed batches the half width is infinite —
        a loud signal that the run was too short.
        """
        k = self.batches.count
        if k < 2:
            return ConfidenceInterval(self.mean, math.inf, level)
        t = student_t_quantile(0.5 + level / 2.0, k - 1)
        half = t * self.batches.std / math.sqrt(k)
        return ConfidenceInterval(self.batches.mean, half, level)

    def __repr__(self) -> str:
        return (
            f"<BatchMeans n={self.count} batches={self.num_batches} "
            f"mean={self.mean:.6g}>"
        )


class Histogram:
    """Fixed-bin histogram with under/overflow tracking."""

    def __init__(self, low: float, high: float, bins: int, name: str = "") -> None:
        if bins < 1 or high <= low:
            raise ValueError("need bins >= 1 and low < high")
        self.name = name
        self.low = float(low)
        self.high = float(high)
        self.bins = int(bins)
        self.counts = np.zeros(bins, dtype=np.int64)
        self.underflow = 0
        self.overflow = 0
        self._width = (high - low) / bins

    def record(self, value: float) -> None:
        """Add one observation."""
        if value < self.low:
            self.underflow += 1
        elif value >= self.high:
            self.overflow += 1
        else:
            self.counts[int((value - self.low) / self._width)] += 1

    @property
    def total(self) -> int:
        """All observations, including under/overflow."""
        return int(self.counts.sum()) + self.underflow + self.overflow

    def edges(self) -> np.ndarray:
        """Bin edges (length bins + 1)."""
        return np.linspace(self.low, self.high, self.bins + 1)

    def density(self) -> np.ndarray:
        """Per-bin probability mass (ignoring under/overflow)."""
        inside = self.counts.sum()
        if inside == 0:
            return np.zeros(self.bins)
        return self.counts / inside

    def __repr__(self) -> str:
        return f"<Histogram [{self.low}, {self.high}) n={self.total}>"


def normal_quantile(p: float) -> float:
    """Inverse standard normal CDF (Acklam's rational approximation).

    Absolute error below 1.15e-9 over the full open interval (0, 1).
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0,1), got {p!r}")
    # Coefficients for the central and tail rational approximations.
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if p > 1 - p_low:
        q = math.sqrt(-2 * math.log(1 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                 + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r
            + a[5]) * q / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r
                            + b[4]) * r + 1)


def student_t_quantile(p: float, df: int) -> float:
    """Inverse Student-t CDF via Cornish–Fisher expansion around normal.

    Exact for df = 1 (Cauchy) and df = 2 (closed form); otherwise the
    four-term A&S 26.7.5 series, good to ~1e-4 for df >= 3.
    """
    if df < 1:
        raise ValueError(f"df must be >= 1, got {df!r}")
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0,1), got {p!r}")
    if df == 1:
        return math.tan(math.pi * (p - 0.5))
    if df == 2:
        a = 2 * p - 1
        return a * math.sqrt(2.0 / (1.0 - a * a))
    x = normal_quantile(p)
    g1 = (x**3 + x) / 4.0
    g2 = (5 * x**5 + 16 * x**3 + 3 * x) / 96.0
    g3 = (3 * x**7 + 19 * x**5 + 17 * x**3 - 15 * x) / 384.0
    g4 = (79 * x**9 + 776 * x**7 + 1482 * x**5 - 1920 * x**3 - 945 * x) / 92160.0
    n = float(df)
    return x + g1 / n + g2 / n**2 + g3 / n**3 + g4 / n**4
