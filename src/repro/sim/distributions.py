"""Probability distributions for simulation input modelling.

All distributions share the tiny :class:`Distribution` interface — a
``sample(rng)`` method drawing one variate from a NumPy generator plus
analytic ``mean``/``variance`` where known — so models can be parameterised
by distribution objects and the analysis layer can compute offered loads
without sampling.

The workload module builds its empirical DAS distributions on top of
:class:`DiscreteEmpirical` (job sizes, integer support) and
:class:`ContinuousEmpirical` (service times, sampled from binned trace
data with within-bin interpolation).
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "Distribution",
    "Deterministic",
    "Exponential",
    "Uniform",
    "Erlang",
    "Hyperexponential",
    "Lognormal",
    "TruncatedLognormal",
    "Weibull",
    "BoundedPareto",
    "DiscreteEmpirical",
    "ContinuousEmpirical",
    "Mixture",
    "Scaled",
]


class Distribution:
    """Interface for one-dimensional random variates."""

    #: True when ``sample_array(rng, n)`` consumes the generator's bit
    #: stream exactly like ``n`` successive ``sample(rng)`` calls, so
    #: callers may prefetch blocks without changing the draw sequence.
    #: Conservatively False by default: rejection sampling, interleaved
    #: multi-draw schemes (mixtures, hyperexponentials) and any
    #: vectorisation that reorders consumption must not be batched.
    block_equivalent: bool = False

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one variate."""
        raise NotImplementedError

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` variates (vectorised where possible)."""
        return np.array([self.sample(rng) for _ in range(n)], dtype=float)

    @property
    def mean(self) -> float:
        """Analytic mean."""
        raise NotImplementedError

    @property
    def variance(self) -> float:
        """Analytic variance."""
        raise NotImplementedError

    @property
    def cv(self) -> float:
        """Coefficient of variation (std / mean)."""
        m = self.mean
        if m == 0:
            return math.inf
        return math.sqrt(self.variance) / m


class Deterministic(Distribution):
    """Always returns ``value`` — handy for tests and sensitivity studies."""

    block_equivalent = True

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, self.value)

    @property
    def mean(self) -> float:
        return self.value

    @property
    def variance(self) -> float:
        return 0.0

    def __repr__(self) -> str:
        return f"Deterministic({self.value!r})"


class Exponential(Distribution):
    """Exponential distribution with the given *mean* (not rate).

    The paper uses exponential interarrival times; the arrival rate is
    ``1 / mean``.
    """

    block_equivalent = True

    def __init__(self, mean: float) -> None:
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean!r}")
        self._mean = float(mean)

    @property
    def rate(self) -> float:
        """Event rate λ = 1 / mean."""
        return 1.0 / self._mean

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self._mean))

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.exponential(self._mean, size=n)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return self._mean * self._mean

    def __repr__(self) -> str:
        return f"Exponential(mean={self._mean!r})"


class Uniform(Distribution):
    """Continuous uniform on [low, high)."""

    block_equivalent = True

    def __init__(self, low: float, high: float) -> None:
        if high <= low:
            raise ValueError(f"need low < high, got [{low!r}, {high!r})")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n)

    @property
    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    @property
    def variance(self) -> float:
        return (self.high - self.low) ** 2 / 12.0

    def __repr__(self) -> str:
        return f"Uniform({self.low!r}, {self.high!r})"


class Erlang(Distribution):
    """Erlang-k distribution with the given mean (CV = 1/sqrt(k) < 1)."""

    block_equivalent = True

    def __init__(self, k: int, mean: float) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k!r}")
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean!r}")
        self.k = int(k)
        self._mean = float(mean)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.gamma(self.k, self._mean / self.k))

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.gamma(self.k, self._mean / self.k, size=n)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return self._mean * self._mean / self.k

    def __repr__(self) -> str:
        return f"Erlang(k={self.k}, mean={self._mean!r})"


class Hyperexponential(Distribution):
    """Two-phase hyperexponential (CV > 1), phase picked per sample."""

    def __init__(self, p: float, mean1: float, mean2: float) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0,1], got {p!r}")
        if mean1 <= 0 or mean2 <= 0:
            raise ValueError("phase means must be positive")
        self.p = float(p)
        self.mean1 = float(mean1)
        self.mean2 = float(mean2)

    def sample(self, rng: np.random.Generator) -> float:
        mean = self.mean1 if rng.random() < self.p else self.mean2
        return float(rng.exponential(mean))

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        choice = rng.random(n) < self.p
        means = np.where(choice, self.mean1, self.mean2)
        return rng.exponential(1.0, size=n) * means

    @property
    def mean(self) -> float:
        return self.p * self.mean1 + (1 - self.p) * self.mean2

    @property
    def variance(self) -> float:
        second = 2 * (self.p * self.mean1**2 + (1 - self.p) * self.mean2**2)
        return second - self.mean**2

    def __repr__(self) -> str:
        return f"Hyperexponential(p={self.p!r}, {self.mean1!r}, {self.mean2!r})"


class Lognormal(Distribution):
    """Lognormal parameterised by its *arithmetic* mean and CV."""

    block_equivalent = True

    def __init__(self, mean: float, cv: float) -> None:
        if mean <= 0 or cv <= 0:
            raise ValueError("mean and cv must be positive")
        self._mean = float(mean)
        self._cv = float(cv)
        self.sigma2 = math.log(1.0 + cv * cv)
        self.sigma = math.sqrt(self.sigma2)
        self.mu = math.log(mean) - 0.5 * self.sigma2

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self.mu, self.sigma))

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.lognormal(self.mu, self.sigma, size=n)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return (self._cv * self._mean) ** 2

    def __repr__(self) -> str:
        return f"Lognormal(mean={self._mean!r}, cv={self._cv!r})"


class TruncatedLognormal(Distribution):
    """Lognormal conditioned on a support interval via rejection.

    Used to model service-time bodies bounded by an administrative limit
    (the DAS 900 s working-hours kill).  Mean/variance are estimated
    numerically once at construction.
    """

    _MOMENT_SAMPLES = 200_000

    def __init__(self, base: Lognormal, low: float = 0.0,
                 high: float = math.inf, moment_seed: int = 0) -> None:
        if high <= low:
            raise ValueError(f"need low < high, got [{low!r}, {high!r}]")
        self.base = base
        self.low = float(low)
        self.high = float(high)
        rng = np.random.default_rng(moment_seed)
        draws = base.sample_array(rng, self._MOMENT_SAMPLES)
        kept = draws[(draws >= self.low) & (draws <= self.high)]
        if kept.size < 100:
            raise ValueError("truncation interval has negligible mass")
        self.acceptance = kept.size / draws.size
        self._mean = float(kept.mean())
        self._variance = float(kept.var())

    def sample(self, rng: np.random.Generator) -> float:
        while True:
            x = self.base.sample(rng)
            if self.low <= x <= self.high:
                return x

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        out = np.empty(n)
        filled = 0
        while filled < n:
            batch = max(64, int((n - filled) / max(self.acceptance, 1e-3)))
            draws = self.base.sample_array(rng, batch)
            kept = draws[(draws >= self.low) & (draws <= self.high)]
            take = min(kept.size, n - filled)
            out[filled:filled + take] = kept[:take]
            filled += take
        return out

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return self._variance

    def __repr__(self) -> str:
        return (
            f"TruncatedLognormal({self.base!r}, [{self.low!r}, {self.high!r}])"
        )


class Weibull(Distribution):
    """Weibull distribution with the given scale and shape.

    ``shape < 1`` gives a heavier-than-exponential tail (CV > 1),
    ``shape > 1`` a lighter one — the standard knob for service-time
    tail studies.
    """

    block_equivalent = True

    def __init__(self, scale: float, shape: float) -> None:
        if scale <= 0 or shape <= 0:
            raise ValueError("scale and shape must be positive")
        self.scale = float(scale)
        self.shape = float(shape)
        g1 = math.gamma(1.0 + 1.0 / shape)
        g2 = math.gamma(1.0 + 2.0 / shape)
        self._mean = scale * g1
        self._variance = scale * scale * (g2 - g1 * g1)

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.scale * rng.weibull(self.shape))

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.scale * rng.weibull(self.shape, size=n)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return self._variance

    def __repr__(self) -> str:
        return f"Weibull(scale={self.scale!r}, shape={self.shape!r})"


class BoundedPareto(Distribution):
    """Pareto distribution truncated to [low, high].

    The classic heavy-tail model for compute demand (Harchol-Balter &
    Downey): P(X > x) ∝ x^-alpha on the bounded support.  Sampling by
    inverse-CDF; moments in closed form.
    """

    block_equivalent = True

    def __init__(self, alpha: float, low: float, high: float) -> None:
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha!r}")
        if not 0 < low < high:
            raise ValueError(f"need 0 < low < high, got [{low!r}, {high!r}]")
        self.alpha = float(alpha)
        self.low = float(low)
        self.high = float(high)
        self._lo_a = self.low ** self.alpha
        self._ratio = (self.low / self.high) ** self.alpha

    def _moment(self, k: int) -> float:
        a, lo, hi = self.alpha, self.low, self.high
        if abs(a - k) < 1e-12:
            # Degenerate exponent: integral yields a log term.
            norm = 1.0 - self._ratio
            return (a * lo**a) * math.log(hi / lo) / norm
        norm = 1.0 - self._ratio
        return ((a * lo**a) / (a - k)
                * (lo ** (k - a) - hi ** (k - a)) / norm)

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.sample_array(rng, 1)[0])

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        u = rng.random(n)
        # Inverse CDF of the bounded Pareto.
        a = self.alpha
        return (
            -(u * self.high**a - u * self.low**a - self.high**a)
            / (self.high**a * self.low**a)
        ) ** (-1.0 / a)

    @property
    def mean(self) -> float:
        return self._moment(1)

    @property
    def variance(self) -> float:
        m = self._moment(1)
        return self._moment(2) - m * m

    def __repr__(self) -> str:
        return (
            f"BoundedPareto(alpha={self.alpha!r}, "
            f"[{self.low!r}, {self.high!r}])"
        )


class DiscreteEmpirical(Distribution):
    """Discrete distribution over arbitrary values with given weights.

    This is the workhorse for trace-derived *job-size* distributions:
    values are the observed sizes, weights their observed frequencies.
    Sampling uses a precomputed cumulative table with binary search.
    """

    block_equivalent = True

    def __init__(self, values: Sequence[float], weights: Sequence[float]) -> None:
        values = np.asarray(values, dtype=float)
        weights = np.asarray(weights, dtype=float)
        if values.shape != weights.shape or values.ndim != 1:
            raise ValueError("values and weights must be equal-length 1-D")
        if values.size == 0:
            raise ValueError("empty support")
        if np.any(weights < 0):
            raise ValueError("negative weight")
        total = float(weights.sum())
        if total <= 0:
            raise ValueError("weights sum to zero")
        order = np.argsort(values, kind="stable")
        self.values = values[order]
        self.probabilities = weights[order] / total
        self._cdf = np.cumsum(self.probabilities)
        self._cdf[-1] = 1.0  # guard against rounding drift

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "DiscreteEmpirical":
        """Build the empirical distribution of a sample (e.g. a trace)."""
        values, counts = np.unique(np.asarray(samples, dtype=float),
                                   return_counts=True)
        return cls(values, counts.astype(float))

    def sample(self, rng: np.random.Generator) -> float:
        u = rng.random()
        idx = int(np.searchsorted(self._cdf, u, side="right"))
        idx = min(idx, self.values.size - 1)
        return float(self.values[idx])

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        u = rng.random(n)
        idx = np.searchsorted(self._cdf, u, side="right")
        np.clip(idx, 0, self.values.size - 1, out=idx)
        return self.values[idx]

    def prob(self, value: float) -> float:
        """Probability mass at ``value`` (0 if not in support)."""
        idx = np.searchsorted(self.values, value)
        if idx < self.values.size and self.values[idx] == value:
            return float(self.probabilities[idx])
        return 0.0

    def cdf(self, value: float) -> float:
        """P(X <= value)."""
        idx = np.searchsorted(self.values, value, side="right")
        return float(self._cdf[idx - 1]) if idx > 0 else 0.0

    def truncate(self, high: float) -> "DiscreteEmpirical":
        """Condition on X <= high (the paper's DAS-s-64 construction)."""
        mask = self.values <= high
        if not mask.any():
            raise ValueError(f"no support at or below {high!r}")
        return DiscreteEmpirical(self.values[mask], self.probabilities[mask])

    @property
    def support(self) -> np.ndarray:
        """Sorted array of values with positive probability."""
        return self.values

    @property
    def mean(self) -> float:
        return float(np.dot(self.values, self.probabilities))

    @property
    def variance(self) -> float:
        m = self.mean
        return float(np.dot((self.values - m) ** 2, self.probabilities))

    def expectation(self, fn: Callable[[np.ndarray], np.ndarray]) -> float:
        """E[fn(X)] for a vectorised function ``fn``."""
        return float(np.dot(fn(self.values), self.probabilities))

    def __repr__(self) -> str:
        return (
            f"DiscreteEmpirical(n={self.values.size}, mean={self.mean:.4g}, "
            f"cv={self.cv:.4g})"
        )


class ContinuousEmpirical(Distribution):
    """Continuous distribution reconstructed from binned samples.

    Samples a bin according to observed frequency and interpolates
    uniformly within it — the standard way to replay a *service-time*
    histogram from a trace without step artefacts.
    """

    def __init__(self, edges: Sequence[float], counts: Sequence[float]) -> None:
        edges = np.asarray(edges, dtype=float)
        counts = np.asarray(counts, dtype=float)
        if edges.ndim != 1 or counts.ndim != 1 or edges.size != counts.size + 1:
            raise ValueError("need len(edges) == len(counts) + 1")
        if np.any(np.diff(edges) <= 0):
            raise ValueError("edges must be strictly increasing")
        if np.any(counts < 0) or counts.sum() <= 0:
            raise ValueError("counts must be nonnegative with positive sum")
        self.edges = edges
        self.probabilities = counts / counts.sum()
        self._cdf = np.cumsum(self.probabilities)
        self._cdf[-1] = 1.0
        mids = 0.5 * (edges[:-1] + edges[1:])
        widths = np.diff(edges)
        self._mean = float(np.dot(mids, self.probabilities))
        second = np.dot(mids**2 + widths**2 / 12.0, self.probabilities)
        self._variance = float(second - self._mean**2)

    @classmethod
    def from_samples(cls, samples: Sequence[float],
                     bins: int = 100) -> "ContinuousEmpirical":
        """Histogram a sample and return the matching distribution."""
        counts, edges = np.histogram(np.asarray(samples, dtype=float),
                                     bins=bins)
        return cls(edges, counts.astype(float))

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.sample_array(rng, 1)[0])

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        u = rng.random(n)
        idx = np.searchsorted(self._cdf, u, side="right")
        np.clip(idx, 0, self.probabilities.size - 1, out=idx)
        lo = self.edges[idx]
        hi = self.edges[idx + 1]
        return lo + rng.random(n) * (hi - lo)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return self._variance

    def __repr__(self) -> str:
        return (
            f"ContinuousEmpirical(bins={self.probabilities.size}, "
            f"mean={self.mean:.4g})"
        )


class Mixture(Distribution):
    """Finite mixture of component distributions."""

    def __init__(self, components: Sequence[Distribution],
                 weights: Sequence[float]) -> None:
        if len(components) != len(weights) or not components:
            raise ValueError("components and weights must match and be nonempty")
        w = np.asarray(weights, dtype=float)
        if np.any(w < 0) or w.sum() <= 0:
            raise ValueError("weights must be nonnegative with positive sum")
        self.components = tuple(components)
        self.weights = w / w.sum()
        self._cdf = np.cumsum(self.weights)
        self._cdf[-1] = 1.0

    def sample(self, rng: np.random.Generator) -> float:
        u = rng.random()
        idx = int(np.searchsorted(self._cdf, u, side="right"))
        idx = min(idx, len(self.components) - 1)
        return self.components[idx].sample(rng)

    @property
    def mean(self) -> float:
        return float(sum(w * c.mean for w, c in
                         zip(self.weights, self.components)))

    @property
    def variance(self) -> float:
        m = self.mean
        second = sum(
            w * (c.variance + c.mean**2)
            for w, c in zip(self.weights, self.components)
        )
        return float(second - m * m)

    def __repr__(self) -> str:
        return f"Mixture({len(self.components)} components, mean={self.mean:.4g})"


class Scaled(Distribution):
    """An underlying distribution multiplied by a constant factor.

    Models the paper's *extension factor*: the service time of a
    multi-component job is its base service time scaled by 1.25.
    """

    def __init__(self, base: Distribution, factor: float) -> None:
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor!r}")
        self.base = base
        self.factor = float(factor)
        # Scaling is a pure post-transform, so batchability follows the
        # base distribution.
        self.block_equivalent = base.block_equivalent

    def sample(self, rng: np.random.Generator) -> float:
        return self.factor * self.base.sample(rng)

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.factor * self.base.sample_array(rng, n)

    @property
    def mean(self) -> float:
        return self.factor * self.base.mean

    @property
    def variance(self) -> float:
        return self.factor**2 * self.base.variance

    def __repr__(self) -> str:
        return f"Scaled({self.base!r}, x{self.factor!r})"
