"""Initial-transient detection: the MSER truncation rule.

Fixed warmup budgets (discard the first W jobs) are a guess; the MSER
rule (White 1997; MSER-5 variant averages observations into groups of
five first) chooses the truncation point d* that minimises the standard
error of the remaining data's mean:

    d* = argmin_d  S(d) / (n - d)          (conventionally via
    MSER statistic  sqrt(Var_{i>d}) / sqrt(n - d) squared form)

Observations before d* are initial-transient-contaminated; after it the
marginal reduction in variance no longer pays for the lost sample.  The
run drivers keep their simple fixed budgets (cheap, reproducible), and
:func:`mser_truncation_point` is the audit tool: the test suite uses it
to verify the fixed budgets are conservative for representative runs.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = ["mser_truncation_point", "mser_statistic", "is_warmup_adequate"]


def _group_means(values: np.ndarray, group: int) -> np.ndarray:
    n = (values.size // group) * group
    if n == 0:
        return values.copy()
    return values[:n].reshape(-1, group).mean(axis=1)


def mser_statistic(values: Sequence[float], d: int) -> float:
    """The MSER objective at truncation point ``d`` (lower is better)."""
    x = np.asarray(values, dtype=float)
    tail = x[d:]
    if tail.size < 2:
        return math.inf
    return float(tail.var(ddof=0) / tail.size)


def mser_truncation_point(values: Sequence[float], group: int = 5,
                          max_fraction: float = 0.5) -> int:
    """The MSER(-``group``) truncation point, in raw observations.

    Only candidates in the first ``max_fraction`` of the series are
    considered (the standard guard: if the rule wants to cut more than
    half the run, the run is simply too short to trust).
    """
    x = np.asarray(values, dtype=float)
    if x.size < 2 * group:
        raise ValueError(
            f"need at least {2 * group} observations, got {x.size}"
        )
    if not 0.0 < max_fraction <= 1.0:
        raise ValueError(
            f"max_fraction must be in (0,1], got {max_fraction!r}"
        )
    grouped = _group_means(x, group)
    limit = max(1, int(grouped.size * max_fraction))
    # Vectorised suffix statistics: mean/var of grouped[d:] for all d.
    n = grouped.size
    suffix_sum = np.cumsum(grouped[::-1])[::-1]
    suffix_sq = np.cumsum((grouped ** 2)[::-1])[::-1]
    counts = np.arange(n, 0, -1, dtype=float)
    means = suffix_sum / counts
    variances = suffix_sq / counts - means**2
    objective = variances / counts
    best = int(np.argmin(objective[:limit]))
    return best * group


def is_warmup_adequate(values: Sequence[float], warmup: int,
                       group: int = 5) -> bool:
    """Whether a fixed warmup of ``warmup`` observations covers the
    MSER-detected transient of this series."""
    return warmup >= mser_truncation_point(values, group=group)
