"""Sequential run-length control.

Fixed-length runs either waste time (low load: the CI is tight long
before the job budget ends) or mislead (near saturation: the CI is still
wide when the budget ends).  The standard remedy (Law & Kelton §9.4) is
*sequential* control: keep extending the run until the confidence
interval on the target mean is narrower than a requested relative
width, up to a hard budget.

:class:`RunLengthController` wraps a :class:`~repro.sim.stats.BatchMeans`
collector with that stopping rule; :func:`run_to_precision` applies it
to the multicluster open-system driver.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from .distributions import Distribution
from .stats import BatchMeans, ConfidenceInterval

if TYPE_CHECKING:  # pragma: no cover - imported for annotations only
    from repro.core.system import SimulationConfig
    from repro.metrics.recorder import UtilizationReport

__all__ = ["RunLengthController", "StoppingDecision", "run_to_precision"]


@dataclass(frozen=True)
class StoppingDecision:
    """Why a sequential run ended."""

    reason: str               # "precision" | "budget"
    observations: int
    ci: ConfidenceInterval

    @property
    def converged(self) -> bool:
        """Whether the precision target was met."""
        return self.reason == "precision"


class RunLengthController:
    """Stopping rule: CI relative half-width below a target.

    Parameters
    ----------
    relative_width:
        Target for ``ci.half_width / |mean|`` (e.g. 0.05 for ±5%).
    min_batches:
        Batches required before the rule may fire (guards against
        lucky early narrow CIs).
    max_observations:
        Hard budget; the run stops "budget" when reached.
    confidence:
        CI level.
    """

    def __init__(self, batch_size: int, relative_width: float = 0.05,
                 min_batches: int = 10,
                 max_observations: int = 1_000_000,
                 confidence: float = 0.95) -> None:
        if relative_width <= 0:
            raise ValueError(
                f"relative_width must be positive, got {relative_width!r}"
            )
        if min_batches < 2:
            raise ValueError(
                f"min_batches must be >= 2, got {min_batches!r}"
            )
        self.collector = BatchMeans(batch_size)
        self.relative_width = float(relative_width)
        self.min_batches = int(min_batches)
        self.max_observations = int(max_observations)
        self.confidence = float(confidence)

    def record(self, value: float) -> None:
        """Add one observation."""
        self.collector.record(value)

    def should_stop(self) -> Optional[StoppingDecision]:
        """The stopping decision, or ``None`` to continue."""
        n = self.collector.count
        if n >= self.max_observations:
            return StoppingDecision(
                "budget", n,
                self.collector.confidence_interval(self.confidence),
            )
        if self.collector.num_batches < self.min_batches:
            return None
        # Only check at batch boundaries: the CI changes there.
        if n % self.collector.batch_size != 0:
            return None
        ci = self.collector.confidence_interval(self.confidence)
        if math.isnan(ci.mean) or ci.mean == 0:
            return None
        if ci.relative_width <= self.relative_width:
            return StoppingDecision("precision", n, ci)
        return None


def run_to_precision(config: "SimulationConfig",
                     size_distribution: Distribution,
                     service_distribution: Distribution,
                     arrival_rate: float, *,
                     relative_width: float = 0.05,
                     min_batches: int = 10,
                     max_jobs: int = 200_000,
                     ) -> tuple["UtilizationReport", StoppingDecision]:
    """Open-system run extended until the response-time CI converges.

    Returns ``(report, decision)``: the metrics report over the whole
    measurement window and the stopping decision.  Saturated systems
    never converge, so they stop on budget with ``converged == False``
    — a statistically explicit version of the saturation flag.
    """
    from repro.core.system import _build
    from repro.sim.rng import StreamFactory
    from repro.workload.generator import ArrivalProcess

    system, factory = _build(config, size_distribution,
                             service_distribution)
    sim = system.sim
    ArrivalProcess(sim, factory, arrival_rate, system.submit,
                   limit=None,
                   rng=StreamFactory(config.seed).get("arrivals.iat"))

    sim.run_while(lambda: system.jobs_finished < config.warmup_jobs)
    system.metrics.reset(sim.now)

    controller = RunLengthController(
        batch_size=config.batch_size,
        relative_width=relative_width,
        min_batches=min_batches,
        max_observations=max_jobs,
    )
    decision: Optional[StoppingDecision] = None
    finished_at_reset = system.jobs_finished

    def on_finish(job) -> None:
        nonlocal decision
        if decision is None:
            controller.record(job.response_time)
            decision = controller.should_stop()

    system.on_departure_hook = on_finish
    sim.run_while(lambda: decision is None)
    # Run metrics report over exactly the controlled window.
    del finished_at_reset
    return system.metrics.report(sim.now), decision
