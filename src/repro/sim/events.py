"""Event primitives for the discrete-event simulation engine.

An :class:`Event` is a one-shot occurrence on the simulation timeline.  It
moves through three states:

``untriggered`` → ``triggered`` (scheduled on the calendar with a value) →
``processed`` (callbacks have run).

Processes (see :mod:`repro.sim.process`) communicate exclusively through
events: a process *yields* an event to suspend until the event is processed.
Composite conditions (:class:`AnyOf`, :class:`AllOf`) let a process wait on
several events at once.

The design is deliberately close to the classic process-oriented simulation
libraries (CSIM, SimPy) so that models read like the pseudo-code in the
simulation literature, but the implementation here is self-contained.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional

from .errors import SchedulingError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .engine import Simulator

__all__ = ["Event", "Timeout", "Callback", "Condition", "AnyOf", "AllOf",
           "PENDING"]


class _PendingType:
    """Sentinel for the value of an event that has not been triggered."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<PENDING>"


#: Sentinel marking an event whose value has not been set yet.
PENDING = _PendingType()


class Event:
    """A one-shot occurrence that processes can wait for.

    Parameters
    ----------
    sim:
        The :class:`~repro.sim.engine.Simulator` this event belongs to.

    Attributes
    ----------
    callbacks:
        List of callables invoked with the event when it is processed.
        ``None`` once the event has been processed.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: object = PENDING
        self._ok: Optional[bool] = None
        self._defused = False

    # -- state inspection -------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been invoked."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded; raises if not yet triggered."""
        if self._ok is None:
            raise SchedulingError(f"{self!r} has not been triggered")
        return self._ok

    @property
    def value(self) -> object:
        """The event's value (or exception for failed events)."""
        if self._value is PENDING:
            raise SchedulingError(f"{self!r} has no value yet")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: object = None, *, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value``.

        The event is placed on the calendar at ``now + delay`` and its
        callbacks run when the simulator reaches that time.
        """
        if self._value is not PENDING:
            raise SchedulingError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim.schedule(self, delay=delay)
        return self

    def fail(self, exception: BaseException, *, delay: float = 0.0) -> "Event":
        """Trigger the event as failed with ``exception``.

        Any process waiting on the event will have the exception thrown
        into it, unless the failure is defused first.
        """
        if self._value is not PENDING:
            raise SchedulingError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.sim.schedule(self, delay=delay)
        return self

    def trigger_from(self, event: "Event") -> None:
        """Trigger this event with the state (ok/value) of ``event``.

        Useful for chaining events: the target mirrors the source.
        """
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)  # type: ignore[arg-type]

    def defuse(self) -> None:
        """Mark a failed event as handled so the engine will not re-raise.

        If a failed event has no waiting process, the engine propagates the
        exception out of :meth:`Simulator.step` to avoid silently lost
        errors; defusing suppresses that.
        """
        self._defused = True

    @property
    def defused(self) -> bool:
        """Whether a failure of this event has been marked as handled."""
        return self._defused

    # -- composition ------------------------------------------------------

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.sim, [self, other])

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.sim, [self, other])

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else ("triggered" if self.triggered else "pending")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed simulated delay.

    Yielding a ``Timeout`` is how a process models the passage of time::

        def worker(sim):
            yield sim.timeout(3.5)   # advance 3.5 time units
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: object = None) -> None:
        if delay < 0:
            raise SchedulingError(f"negative timeout delay {delay!r}")
        super().__init__(sim)
        self.delay = float(delay)
        self._ok = True
        self._value = value
        sim.schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay!r}>"


class Callback:
    """A pre-armed, always-successful occurrence on the calendar.

    Hot paths (job departures, arrival ticks) schedule hundreds of
    thousands of one-shot occurrences whose callbacks are fully known at
    creation time.  A full :class:`Event` pays for a fresh callback
    list, state flags and triggering machinery per instance; ``Callback``
    carries a *shared* callback tuple and a value through the engine's
    ``(time, rank, seq, event)`` calendar protocol with nothing else.

    The engine only requires ``callbacks`` (set to ``None`` after
    processing), ``_ok`` and ``_defused``; the latter two are class
    attributes here because a ``Callback`` always succeeds.  Schedule
    instances with :meth:`repro.sim.engine.Simulator.defer`, which
    constructs them directly.

    The shared tuple is safe: processing an event replaces only the
    *instance* ``callbacks`` slot with ``None``, never mutating the
    tuple itself.
    """

    __slots__ = ("callbacks", "value")

    _ok = True
    _defused = False

    def __init__(self,
                 callbacks: "tuple[Callable[[Callback], None], ...]",
                 value: object = None) -> None:
        self.callbacks: "Optional[tuple[Callable[[Callback], None], ...]]" \
            = callbacks
        self.value = value

    def __repr__(self) -> str:
        state = "processed" if self.callbacks is None else "scheduled"
        return f"<Callback {state} at {id(self):#x}>"


class Condition(Event):
    """An event that triggers when a predicate over child events holds.

    Subclasses define :meth:`_check` to decide, after each child event
    fires, whether the condition is satisfied.  The condition's value is a
    dict mapping each *triggered* child event to its value, in trigger
    order (insertion ordered).

    A failing child event fails the whole condition immediately.
    """

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events: tuple[Event, ...] = tuple(events)
        self._count = 0
        for event in self.events:
            if event.sim is not sim:
                raise SchedulingError("condition spans multiple simulators")
        # Immediately evaluate against already-processed children and
        # subscribe to pending ones.
        if self._check(0, len(self.events)) and not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.processed:
                self._on_child(event)
            else:
                event.callbacks.append(self._on_child)  # type: ignore[union-attr]

    def _check(self, count: int, total: int) -> bool:  # pragma: no cover
        raise NotImplementedError

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)  # type: ignore[arg-type]
            return
        self._count += 1
        if self._check(self._count, len(self.events)):
            self.succeed(self._collect())

    def _collect(self) -> dict[Event, object]:
        # Only children that have actually *occurred* (been processed)
        # belong in the value: a Timeout is "triggered" from construction
        # but has not happened until the calendar reaches it.
        return {ev: ev._value for ev in self.events if ev.processed and ev._ok}


class AnyOf(Condition):
    """Condition satisfied when at least one child event has triggered."""

    __slots__ = ()

    def _check(self, count: int, total: int) -> bool:
        return count >= 1 or total == 0


class AllOf(Condition):
    """Condition satisfied when every child event has triggered."""

    __slots__ = ()

    def _check(self, count: int, total: int) -> bool:
        return count == total
