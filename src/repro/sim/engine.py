"""The simulation engine: a time-ordered event calendar and its driver.

:class:`Simulator` owns the clock and the pending-event heap.  Events are
processed in (time, priority, insertion order) — ties at the same timestamp
are broken first by the *urgent* flag (used internally so process
initialisation and termination precede ordinary events) and then FIFO, which
makes runs fully deterministic.

Typical usage::

    sim = Simulator()

    def source(sim):
        while True:
            yield sim.timeout(1.0)
            print("tick at", sim.now)

    sim.process(source(sim))
    sim.run(until=10.0)

The engine is single-threaded and re-entrant-free by design: model code
runs only inside :meth:`step`, so no locking is ever needed — the usual
discipline for process-oriented simulation kernels (CSIM, SimPy).
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Optional

from .calendar import EventList, HeapEventList
from .errors import EmptySchedule, SchedulingError, StopSimulation
from .events import AllOf, AnyOf, Callback, Event, Timeout
from .process import Process, ProcessGenerator

__all__ = ["Simulator", "Infinity"]

#: Convenience alias used for "run forever".
Infinity = float("inf")

#: Priority rank for urgent (engine-internal) events.
_URGENT = 0
#: Priority rank for normal events.
_NORMAL = 1


class Simulator:
    """Discrete-event simulation kernel.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (default 0).
    event_list:
        Pending-event structure; defaults to a binary heap.  Pass a
        :class:`~repro.sim.calendar.CalendarQueue` for very large event
        populations.

    Attributes
    ----------
    now:
        Current simulation time.  Only the engine advances it.
    """

    def __init__(self, initial_time: float = 0.0,
                 event_list: Optional[EventList] = None) -> None:
        self._now = float(initial_time)
        self._queue: EventList = (
            event_list if event_list is not None else HeapEventList()
        )
        self._eid = 0
        self._active_process: Optional[Process] = None
        #: Monotone counter of processed events (for diagnostics/benchmarks).
        self.events_processed = 0

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_scheduled(self) -> int:
        """Events placed on the calendar so far (heap pushes).

        Together with :attr:`events_processed` (heap pops) this gives
        the engine's event-list traffic for diagnostics; the counter is
        the scheduling sequence number, so it costs nothing extra.
        """
        return self._eid

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_process

    # -- event factories -------------------------------------------------

    def event(self) -> Event:
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator,
                name: Optional[str] = None) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Condition event: fires when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Condition event: fires when all of ``events`` have fired."""
        return AllOf(self, events)

    # -- calendar ----------------------------------------------------------

    def schedule(self, event: Event, *, delay: float = 0.0,
                 priority: bool = False) -> None:
        """Place a triggered event on the calendar ``delay`` from now.

        ``priority`` marks engine-internal urgent events which are
        processed before normal events scheduled at the same time.
        """
        if delay < 0:
            raise SchedulingError(f"cannot schedule into the past ({delay!r})")
        self._eid += 1
        rank = _URGENT if priority else _NORMAL
        self._queue.push((self._now + delay, rank, self._eid, event))

    def defer(self, delay: float,
              callbacks: "tuple[Callable[[Callback], None], ...]",
              value: object = None, *, priority: bool = False) -> None:
        """Schedule a lightweight :class:`Callback` ``delay`` from now.

        The fast path for hot loops that fire a known, fixed set of
        callbacks (job departures, arrival ticks): one calendar push,
        no per-occurrence callback-list or event-state allocation.
        Callers share a single ``callbacks`` tuple across all their
        occurrences.  Consumes exactly one scheduling sequence number,
        so event ordering and the :attr:`events_scheduled` counter are
        identical to scheduling a triggered :class:`Event`.
        """
        if delay < 0:
            raise SchedulingError(f"cannot schedule into the past ({delay!r})")
        self._eid += 1
        rank = _URGENT if priority else _NORMAL
        self._queue.push(
            (self._now + delay, rank, self._eid, Callback(callbacks, value))
        )

    def call_at(self, time: float, fn: Callable[[], None]) -> Event:
        """Invoke ``fn()`` at absolute simulation time ``time``.

        Returns the underlying event so callers can cancel interest by
        ignoring it; ``fn`` runs as an ordinary event callback.
        """
        if time < self._now:
            raise SchedulingError(
                f"call_at({time!r}) is in the past (now={self._now!r})"
            )
        ev = Timeout(self, time - self._now)
        ev.callbacks.append(lambda _ev: fn())  # type: ignore[union-attr]
        return ev

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        t = self._queue.peek_time()
        return t if t is not None else Infinity

    # -- execution ---------------------------------------------------------

    def step(self) -> None:
        """Process exactly one event.

        Raises :class:`EmptySchedule` if the calendar is empty, and
        re-raises unhandled failed events (model bugs must not pass
        silently).
        """
        try:
            self._now, _, _, event = self._queue.pop()
        except IndexError:
            raise EmptySchedule("no more events scheduled") from None

        callbacks = event.callbacks
        event.callbacks = None  # mark processed
        self.events_processed += 1
        for callback in callbacks:  # type: ignore[union-attr]
            callback(event)

        if event._ok is False and not event._defused:
            # Nobody handled the failure: crash loudly.
            raise event._value  # type: ignore[misc]

    def run_while(self, predicate: Callable[[], bool]) -> bool:
        """Process events while ``predicate()`` holds and events remain.

        The fused drive loop for count-based stop conditions: instead of
        the per-event ``while pred() and sim.peek() != inf: sim.step()``
        pattern — two method calls and a float comparison of bookkeeping
        per event — the engine checks the predicate and pops the next
        entry in one flat loop.  For the default :class:`HeapEventList`
        the heap pop is inlined, skipping the virtual ``EventList.pop``
        dispatch; any other event list falls back to :meth:`step`.

        ``predicate`` is evaluated *before* each event, exactly like the
        classic guarded loop, so the processed-event sequence is
        identical.  Returns ``True`` if the loop stopped because the
        predicate went false, ``False`` if the calendar drained first.
        Failed events propagate exactly as from :meth:`step`.
        """
        queue = self._queue
        if type(queue) is HeapEventList:
            heap = queue._heap
            pop = heapq.heappop
            while heap:
                if not predicate():
                    return True
                self._now, _, _, event = pop(heap)
                callbacks = event.callbacks
                event.callbacks = None  # mark processed
                self.events_processed += 1
                for callback in callbacks:  # type: ignore[union-attr]
                    callback(event)
                if event._ok is False and not event._defused:
                    raise event._value  # type: ignore[misc]
            return False
        while len(queue):
            if not predicate():
                return True
            self.step()
        return False

    def run(self, until: "float | Event | None" = None) -> object:
        """Run the simulation.

        Parameters
        ----------
        until:
            * ``None`` — run until the calendar empties.
            * a number — run until the clock reaches that time (the clock
              is set exactly to it on return).
            * an :class:`Event` — run until that event is processed and
              return its value (raising if the event failed).
        """
        stop: Optional[Event] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop = until
            if stop.callbacks is None:
                # Already processed.
                if stop._ok:
                    return stop._value
                raise stop._value  # type: ignore[misc]
            stop.callbacks.append(self._stop_callback)
        else:
            horizon = float(until)
            if horizon < self._now:
                raise SchedulingError(
                    f"run(until={horizon!r}) is in the past (now={self._now!r})"
                )
            stop = Event(self)
            stop._ok = True
            stop._value = None
            stop.callbacks.append(self._stop_callback)
            self.schedule(stop, delay=horizon - self._now, priority=True)

        try:
            queue = self._queue
            if type(queue) is HeapEventList:
                # Same fused loop as run_while: inline the heap pop and
                # the step() body for the default event list.
                heap = queue._heap
                pop = heapq.heappop
                while True:
                    if not heap:
                        raise EmptySchedule("no more events scheduled")
                    self._now, _, _, event = pop(heap)
                    callbacks = event.callbacks
                    event.callbacks = None  # mark processed
                    self.events_processed += 1
                    for callback in callbacks:  # type: ignore[union-attr]
                        callback(event)
                    if event._ok is False and not event._defused:
                        raise event._value  # type: ignore[misc]
            else:
                while True:
                    self.step()
        except StopSimulation as signal:
            return signal.value
        except EmptySchedule:
            if stop is not None and stop.callbacks is not None:
                if isinstance(until, Event):
                    raise SchedulingError(
                        "run(until=event): calendar emptied before the event "
                        "triggered"
                    ) from None
            return None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        if event._ok:
            raise StopSimulation(event._value)
        raise event._value  # type: ignore[misc]

    def __repr__(self) -> str:
        return (
            f"<Simulator t={self._now:.6g} pending={len(self._queue)} "
            f"processed={self.events_processed}>"
        )
