"""Process abstraction: generator coroutines driven by the event calendar.

A *process* is a Python generator that yields :class:`~repro.sim.events.Event`
objects.  Each yield suspends the process until the yielded event is
processed; the event's value is sent back into the generator (or its
exception thrown in, for failed events).  When the generator returns, the
process event itself triggers with the return value, so processes can wait
for each other::

    def child(sim):
        yield sim.timeout(5)
        return "done"

    def parent(sim):
        result = yield sim.process(child(sim))
        assert result == "done"

Processes can be interrupted (:meth:`Process.interrupt`), which throws
:class:`~repro.sim.errors.Interrupt` into the generator at its current
suspension point; the process may catch it and keep running.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from .errors import Interrupt, SchedulingError
from .events import Event, PENDING

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Simulator

__all__ = ["Process", "ProcessGenerator"]

#: Type alias for the generators accepted by :class:`Process`.
ProcessGenerator = Generator[Event, object, object]


class _Initialize(Event):
    """Internal event that starts a newly created process."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process") -> None:
        super().__init__(sim)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)  # type: ignore[union-attr]
        sim.schedule(self, priority=True)


class Process(Event):
    """A running model process; also an event that fires on termination.

    Parameters
    ----------
    sim:
        The owning simulator.
    generator:
        A generator yielding events.

    Notes
    -----
    * :attr:`target` is the event the process is currently waiting on
      (``None`` while the process is being stepped or after it ended).
    * The process, being an event, triggers when the generator terminates:
      with the generator's return value on normal exit, or as *failed*
      with the exception if the generator raised.  An unhandled failure
      (no one waiting on the process, not defused) is re-raised by the
      engine and crashes the simulation, which is the desired behaviour
      for model bugs.
    """

    __slots__ = ("generator", "target", "name")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator,
                 name: Optional[str] = None) -> None:
        if not hasattr(generator, "throw"):
            raise SchedulingError(
                f"{generator!r} is not a generator; did you forget to call "
                "the process function?"
            )
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.target: Optional[Event] = _Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not terminated."""
        return self._value is PENDING

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at its next resumption.

        Interrupting a dead process or a process waiting on itself is an
        error.  The event the process was waiting on stays subscribed but
        its eventual firing is ignored (the process has moved on).
        """
        if not self.is_alive:
            raise SchedulingError(f"{self!r} has terminated; cannot interrupt")
        if self.target is None:
            raise SchedulingError(f"{self!r} cannot interrupt itself mid-step")
        interrupt_event = Event(self.sim)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks = [self._resume]
        self.sim.schedule(interrupt_event, priority=True)

    # -- engine plumbing ---------------------------------------------------

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        if not self.is_alive:
            # A stale wakeup (e.g. the original target of an interrupted
            # process firing later). Ignore.
            return
        self.sim._active_process = self
        # Detach from the previous target so stale events are recognised.
        previous = self.target
        self.target = None
        try:
            if event._ok:
                next_target = self.generator.send(event._value)
            else:
                # Mark the failure as handled: it is being delivered.
                event._defused = True
                next_target = self.generator.throw(event._value)  # type: ignore[arg-type]
        except StopIteration as stop:
            self.sim._active_process = None
            self._terminate_ok(stop.value)
            return
        except BaseException as exc:
            self.sim._active_process = None
            self._terminate_fail(exc)
            return
        self.sim._active_process = None

        if not isinstance(next_target, Event):
            err = SchedulingError(
                f"process {self.name!r} yielded non-event {next_target!r}"
            )
            self.generator.throw(err)
            raise err
        if next_target.sim is not self.sim:
            raise SchedulingError(
                f"process {self.name!r} yielded an event from another simulator"
            )
        # Subscribe to the new target; if it is already processed, resume
        # immediately via a zero-delay priority wakeup to preserve ordering.
        self.target = next_target
        if next_target.callbacks is not None:
            next_target.callbacks.append(self._resume)
        else:
            wake = Event(self.sim)
            wake._ok = next_target._ok
            wake._value = next_target._value
            if not next_target._ok:
                wake._defused = True
            wake.callbacks = [self._resume]
            self.sim.schedule(wake, priority=True)
        # Keep a reference so interrupt() can reason about state.
        del previous

    def _terminate_ok(self, value: object) -> None:
        self._ok = True
        self._value = value
        self.sim.schedule(self, priority=True)

    def _terminate_fail(self, exc: BaseException) -> None:
        self._ok = False
        self._value = exc
        self.sim.schedule(self, priority=True)

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "dead"
        return f"<Process {self.name} {state}>"
