"""Per-user fairness metrics.

A policy can have a fine mean response time while a few users absorb
all the queueing pain (large co-allocated jobs starving behind small
local ones, or vice versa).  :class:`FairnessTracker` aggregates
responses (or bounded slowdowns) per user and per job-size class and
reports

* **Jain's fairness index** J = (Σx)² / (n·Σx²) over per-group means —
  1 for perfect equality, 1/n for total concentration;
* the max/min ratio between group means (the "worst user pays X× more"
  headline number).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.sim.stats import Tally

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.jobs import Job

__all__ = ["FairnessTracker", "jain_index"]


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index of a vector of nonnegative values."""
    xs = [float(v) for v in values if not math.isnan(v)]
    if not xs:
        raise ValueError("no values")
    if any(x < 0 for x in xs):
        raise ValueError("values must be nonnegative")
    total = sum(xs)
    squares = sum(x * x for x in xs)
    if squares == 0:
        return 1.0
    return total * total / (len(xs) * squares)


#: Job-size classes used for the by-size breakdown.
SIZE_CLASSES = (
    ("tiny (1-4)", 1, 4),
    ("small (5-16)", 5, 16),
    ("medium (17-32)", 17, 32),
    ("large (33-64)", 33, 64),
    ("huge (65-128)", 65, 128),
)


class FairnessTracker:
    """Aggregates a per-job metric by user and by size class."""

    def __init__(self, metric: str = "bounded_slowdown",
                 threshold: float = 10.0):
        if metric not in ("response", "bounded_slowdown"):
            raise ValueError(f"unknown metric {metric!r}")
        self.metric = metric
        self.threshold = threshold
        self.by_user: dict[int, Tally] = {}
        self.by_class: dict[str, Tally] = {
            name: Tally(name) for name, _, _ in SIZE_CLASSES
        }

    def _value(self, job: "Job") -> float:
        if self.metric == "response":
            return job.response_time
        response = job.response_time
        service = job.gross_service_time
        return (max(response, self.threshold)
                / max(service, self.threshold))

    def record_job(self, job: "Job") -> None:
        """Record one finished job."""
        value = self._value(job)
        user = job.spec.user
        if user not in self.by_user:
            self.by_user[user] = Tally(f"user-{user}")
        self.by_user[user].record(value)
        for name, lo, hi in SIZE_CLASSES:
            if lo <= job.size <= hi:
                self.by_class[name].record(value)
                break

    # -- summaries ---------------------------------------------------------

    def user_means(self) -> Mapping[int, float]:
        """Mean metric per user."""
        return {u: t.mean for u, t in sorted(self.by_user.items())}

    def class_means(self) -> Mapping[str, float]:
        """Mean metric per size class (classes with data)."""
        return {
            name: t.mean for name, t in self.by_class.items()
            if t.count > 0
        }

    def user_fairness(self) -> float:
        """Jain's index over the per-user means."""
        return jain_index(list(self.user_means().values()))

    def class_fairness(self) -> float:
        """Jain's index over the per-size-class means."""
        return jain_index(list(self.class_means().values()))

    def worst_best_ratio(self) -> float:
        """Max/min ratio of per-class means (how much the worst size
        class pays relative to the best)."""
        means = [m for m in self.class_means().values() if m > 0]
        if not means:
            return math.nan
        return max(means) / min(means)

    def __repr__(self) -> str:
        return (
            f"<FairnessTracker metric={self.metric} "
            f"users={len(self.by_user)}>"
        )
