"""``repro.metrics`` — run-level metric collection and saturation analysis."""

from .recorder import MetricsRecorder, UtilizationReport
from .saturation import MaximalUtilization, estimate_maximal_utilization
from .fairness import FairnessTracker, jain_index
from .slowdown import SlowdownTracker, bounded_slowdown
from .timeseries import TimeSeriesProbe, TrajectoryRecorder

__all__ = [
    "TimeSeriesProbe",
    "TrajectoryRecorder",
    "FairnessTracker",
    "jain_index",
    "MetricsRecorder",
    "UtilizationReport",
    "MaximalUtilization",
    "estimate_maximal_utilization",
    "SlowdownTracker",
    "bounded_slowdown",
]
