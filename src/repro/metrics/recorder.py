"""Per-run metric collection: response times and utilizations.

:class:`MetricsRecorder` hooks the three lifecycle callbacks of the
multicluster system (arrival, start, finish) and maintains:

* response-time statistics — overall, and separately for jobs submitted
  to local queues vs. the global queue (the breakdown of the paper's
  Figure 4), with batch means for confidence intervals;
* exact gross utilization — the time integral of busy processors;
* exact net utilization — the time integral of the *useful* processing
  rate: a running job occupies ``size`` processors but does useful work
  at rate ``size / extension_factor`` (its net demand spread over its
  extended wall time), so integrating that rate yields net processor-
  seconds exactly, including partially-complete jobs;
* queue-population statistics (jobs in system, jobs waiting).

Measurement windows: :meth:`reset` discards everything collected so far
(warmup deletion) while preserving levels, so utilizations are exact over
the measurement window.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.sim.quantiles import QuantileSet
from repro.sim.stats import BatchMeans, Tally, TimeWeighted

from .slowdown import SlowdownTracker

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.jobs import Job

__all__ = ["MetricsRecorder", "UtilizationReport"]


class UtilizationReport:
    """Measured utilizations and response times over a window."""

    __slots__ = (
        "elapsed", "gross_utilization", "net_utilization",
        "mean_response", "response_ci_half_width",
        "mean_response_local", "mean_response_global",
        "response_p50", "response_p95",
        "mean_bounded_slowdown",
        "mean_jobs_in_system", "mean_jobs_waiting",
        "completed_jobs",
    )

    def __init__(self, **kwargs: float):
        for name in self.__slots__:
            try:
                setattr(self, name, kwargs.pop(name))
            except KeyError:
                raise TypeError(f"missing field {name!r}") from None
        if kwargs:
            raise TypeError(f"unexpected fields {sorted(kwargs)!r}")

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view (for tables and serialisation)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        return (
            f"<UtilizationReport gross={self.gross_utilization:.3f} "
            f"net={self.net_utilization:.3f} "
            f"resp={self.mean_response:.1f}±{self.response_ci_half_width:.1f}>"
        )


class MetricsRecorder:
    """Collects metrics for one simulation run.

    Parameters
    ----------
    capacity:
        Total processors in the system (utilization denominator).
    batch_size:
        Batch size for response-time confidence intervals.
    """

    def __init__(self, capacity: int, batch_size: int = 500):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        self.batch_size = batch_size
        self._origin = 0.0
        self.busy_gross = TimeWeighted(name="busy.gross")
        self.busy_net_rate = TimeWeighted(name="busy.net-rate")
        self.in_system = TimeWeighted(name="jobs.in-system")
        self.waiting = TimeWeighted(name="jobs.waiting")
        self.response = BatchMeans(batch_size, name="response")
        self.response_local = Tally("response.local")
        self.response_global = Tally("response.global")
        self.response_quantiles = QuantileSet()
        self.slowdowns = SlowdownTracker()
        self.wait = Tally("wait")
        self.arrivals = 0
        self.completions = 0

    # -- lifecycle hooks ------------------------------------------------------

    def on_arrival(self, job: "Job", time: float) -> None:
        """A job entered the system (queued)."""
        self.arrivals += 1
        self.in_system.add(time, 1.0)
        self.waiting.add(time, 1.0)

    def on_start(self, job: "Job", time: float) -> None:
        """A job began execution."""
        self.waiting.add(time, -1.0)
        self.busy_gross.add(time, job.size)
        self.busy_net_rate.add(time, job.size / job.extension_factor)

    def on_finish(self, job: "Job", time: float, *,
                  global_queue: bool = False) -> None:
        """A job departed; ``global_queue`` marks jobs scheduled from a
        global queue (the LP breakdown of Figure 4)."""
        self.completions += 1
        self.in_system.add(time, -1.0)
        self.busy_gross.add(time, -job.size)
        self.busy_net_rate.add(time, -job.size / job.extension_factor)
        self.response.record(job.response_time)
        self.response_quantiles.record(job.response_time)
        self.slowdowns.record_job(job)
        self.wait.record(job.wait_time)
        if global_queue:
            self.response_global.record(job.response_time)
        else:
            self.response_local.record(job.response_time)

    # -- windows ----------------------------------------------------------------

    def reset(self, time: float) -> None:
        """Discard the warmup transient; measurement restarts at ``time``."""
        self._origin = time
        self.busy_gross.reset(time)
        self.busy_net_rate.reset(time)
        self.in_system.reset(time)
        self.waiting.reset(time)
        self.response = BatchMeans(self.batch_size, name="response")
        self.response_local = Tally("response.local")
        self.response_global = Tally("response.global")
        self.response_quantiles = QuantileSet()
        self.slowdowns.reset()
        self.wait = Tally("wait")
        self.arrivals = 0
        self.completions = 0

    def report(self, time: float,
               confidence: float = 0.95) -> UtilizationReport:
        """Summarise the window from the last reset to ``time``."""
        elapsed = time - self._origin
        if elapsed <= 0:
            raise ValueError("empty measurement window")
        ci = self.response.confidence_interval(confidence)
        denom = self.capacity * elapsed
        return UtilizationReport(
            elapsed=elapsed,
            gross_utilization=self.busy_gross.integral(time) / denom,
            net_utilization=self.busy_net_rate.integral(time) / denom,
            mean_response=self.response.mean,
            response_ci_half_width=ci.half_width,
            mean_response_local=(
                self.response_local.mean if self.response_local.count
                else math.nan
            ),
            mean_response_global=(
                self.response_global.mean if self.response_global.count
                else math.nan
            ),
            response_p50=self.response_quantiles[0.5],
            response_p95=self.response_quantiles[0.95],
            mean_bounded_slowdown=self.slowdowns.mean_bounded_slowdown,
            mean_jobs_in_system=self.in_system.mean(time),
            mean_jobs_waiting=self.waiting.mean(time),
            completed_jobs=self.completions,
        )

    def gross_utilization(self, time: float) -> float:
        """Gross utilization of the current window (shortcut)."""
        elapsed = time - self._origin
        if elapsed <= 0:
            return math.nan
        return self.busy_gross.integral(time) / (self.capacity * elapsed)

    def net_utilization(self, time: float) -> float:
        """Net utilization of the current window (shortcut)."""
        elapsed = time - self._origin
        if elapsed <= 0:
            return math.nan
        return self.busy_net_rate.integral(time) / (self.capacity * elapsed)

    def __repr__(self) -> str:
        return (
            f"<MetricsRecorder arrivals={self.arrivals} "
            f"completions={self.completions}>"
        )
