"""Time-series collection: sampled trajectories of system signals.

For diagnosing *why* a policy saturates (which queue grows, which
cluster idles) the aggregate report is not enough — you need the
trajectory.  :class:`TimeSeriesProbe` samples arbitrary signals from a
running simulation at a fixed period (a simulation process, so sampling
costs one event per period), and :class:`TrajectoryRecorder` wires the
standard multicluster signals (per-queue lengths, per-cluster busy
counts, total backlog) to one probe.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Mapping

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import MulticlusterSimulation

__all__ = ["TimeSeriesProbe", "TrajectoryRecorder"]


class TimeSeriesProbe:
    """Samples named signals periodically inside a simulation.

    Parameters
    ----------
    sim:
        The simulator to sample in.
    signals:
        Mapping of name → zero-argument callable returning a number.
    period:
        Sampling period in simulation time.
    """

    def __init__(self, sim, signals: Mapping[str, Callable[[], float]],
                 period: float):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        if not signals:
            raise ValueError("need at least one signal")
        self.sim = sim
        self.period = float(period)
        self.signals = dict(signals)
        self.times: list[float] = []
        self.samples: dict[str, list[float]] = {
            name: [] for name in signals
        }
        self._running = True
        sim.process(self._sampler(), name="timeseries-probe")

    def _sampler(self):
        while self._running:
            yield self.sim.timeout(self.period)
            if not self._running:
                return
            self.times.append(self.sim.now)
            for name, fn in self.signals.items():
                self.samples[name].append(float(fn()))

    def stop(self) -> None:
        """Stop sampling (takes effect at the next period boundary)."""
        self._running = False

    def series(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """(times, values) arrays for one signal."""
        return (np.asarray(self.times),
                np.asarray(self.samples[name]))

    def last(self, name: str) -> float:
        """Most recent sample of a signal (nan if none)."""
        values = self.samples[name]
        return values[-1] if values else float("nan")

    def __len__(self) -> int:
        return len(self.times)

    def __repr__(self) -> str:
        return (
            f"<TimeSeriesProbe signals={sorted(self.signals)} "
            f"samples={len(self.times)}>"
        )


class TrajectoryRecorder:
    """Standard multicluster trajectory: queues, clusters, backlog.

    Signals recorded per sample:

    * ``queue:<name>`` — length of each policy queue;
    * ``cluster:<i>.busy`` — busy processors per cluster;
    * ``backlog`` — total jobs waiting;
    * ``busy`` — total busy processors.
    """

    def __init__(self, system: "MulticlusterSimulation", period: float):
        signals: dict[str, Callable[[], float]] = {}
        for queue in system.policy.queues():
            signals[f"queue:{queue.name}"] = (
                lambda q=queue: float(len(q))
            )
        for cluster in system.multicluster:
            signals[f"cluster:{cluster.index}.busy"] = (
                lambda c=cluster: float(c.busy)
            )
        signals["backlog"] = (
            lambda: float(system.policy.pending_jobs())
        )
        signals["busy"] = (
            lambda: float(system.multicluster.total_busy)
        )
        self.system = system
        self.probe = TimeSeriesProbe(system.sim, signals, period)

    def queue_series(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """Trajectory of one queue's length."""
        return self.probe.series(f"queue:{name}")

    def busiest_queue(self) -> str:
        """Queue with the largest final length (the saturation culprit)."""
        finals = {
            key.split(":", 1)[1]: self.probe.last(key)
            for key in self.probe.signals if key.startswith("queue:")
        }
        return max(finals, key=finals.get)

    def mean_busy(self) -> float:
        """Average of the sampled total-busy signal."""
        _, values = self.probe.series("busy")
        return float(values.mean()) if values.size else float("nan")

    def __repr__(self) -> str:
        return f"<TrajectoryRecorder {self.probe!r}>"
