"""Slowdown metrics — the job-scheduling literature's fairness lens.

The paper evaluates mean response time; the surrounding literature
(Feitelson et al.) prefers *slowdown* — response time relative to
service time — because it exposes how disproportionately short jobs
suffer from queueing.  Two standard variants:

* slowdown:           ``response / service``
* bounded slowdown:   ``max(response, τ) / max(service, τ)`` with the
  customary threshold τ = 10 s, which stops sub-second jobs from
  dominating the average.

:class:`SlowdownTracker` aggregates both (means via Welford tallies,
percentiles via P²), with the *gross* service time as denominator so a
multi-component job is not charged for its own wide-area extension.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.quantiles import QuantileSet
from repro.sim.stats import Tally

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.jobs import Job

__all__ = ["SlowdownTracker", "bounded_slowdown"]

#: The customary bounded-slowdown threshold (seconds).
DEFAULT_THRESHOLD = 10.0


def bounded_slowdown(response: float, service: float,
                     threshold: float = DEFAULT_THRESHOLD) -> float:
    """Bounded slowdown of one job."""
    if response < 0 or service < 0:
        raise ValueError("times must be nonnegative")
    return max(response, threshold) / max(service, threshold)


class SlowdownTracker:
    """Aggregates (bounded) slowdowns over completed jobs."""

    def __init__(self, threshold: float = DEFAULT_THRESHOLD):
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold!r}")
        self.threshold = float(threshold)
        self.slowdown = Tally("slowdown")
        self.bounded = Tally("bounded-slowdown")
        self.bounded_quantiles = QuantileSet()

    def record_job(self, job: "Job") -> None:
        """Record one finished job."""
        response = job.response_time
        service = job.gross_service_time
        self.slowdown.record(response / max(service, 1e-12))
        b = bounded_slowdown(response, service, self.threshold)
        self.bounded.record(b)
        self.bounded_quantiles.record(b)

    def record(self, response: float, service: float) -> None:
        """Record one (response, service) pair directly."""
        self.slowdown.record(response / max(service, 1e-12))
        b = bounded_slowdown(response, service, self.threshold)
        self.bounded.record(b)
        self.bounded_quantiles.record(b)

    @property
    def mean_slowdown(self) -> float:
        """Mean raw slowdown."""
        return self.slowdown.mean

    @property
    def mean_bounded_slowdown(self) -> float:
        """Mean bounded slowdown."""
        return self.bounded.mean

    def percentile(self, p: float) -> float:
        """Bounded-slowdown percentile from the P² ladder."""
        return self.bounded_quantiles[p]

    def reset(self) -> None:
        """Forget everything (warmup deletion)."""
        self.slowdown.reset()
        self.bounded.reset()
        self.bounded_quantiles = QuantileSet()

    def __repr__(self) -> str:
        return (
            f"<SlowdownTracker n={self.bounded.count} "
            f"mean={self.mean_bounded_slowdown:.4g}>"
        )
