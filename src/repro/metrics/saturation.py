"""Maximal-utilization estimation (paper §4, Table 3).

The maximal utilization of a policy — the offered load beyond which the
system is unstable — is measured with a constant-backlog simulation: the
queue never drains, and the long-run time-average fraction of busy
processors is the maximal *gross* utilization.  The maximal *net*
utilization follows by dividing by the (policy-independent) gross/net
ratio of the workload.

The paper notes the method applies to policies with a single global
queue (GS and SC); for multi-queue policies the notion of "constant
backlog" is routing-dependent, so we keep backlog constant per local
queue, which the ablation benches use for LS/LP with that caveat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - avoid import cycle with repro.core
    from repro.core.system import SimulationConfig

__all__ = ["MaximalUtilization", "estimate_maximal_utilization"]


@dataclass(frozen=True)
class MaximalUtilization:
    """Maximal utilizations of one configuration."""

    config: "SimulationConfig"
    gross: float
    net: float
    gross_net_ratio: float

    def as_row(self) -> tuple[str, float, float]:
        """(label, gross, net) — a Table 3 row."""
        label = f"{self.config.policy} L={self.config.component_limit}"
        return (label, self.gross, self.net)


def estimate_maximal_utilization(config: "SimulationConfig",
                                 size_distribution, service_distribution,
                                 gross_net_ratio: float, *,
                                 backlog: int = 50,
                                 warmup_jobs: int = 2_000,
                                 measured_jobs: int = 10_000
                                 ) -> MaximalUtilization:
    """Estimate the maximal gross and net utilization of ``config``.

    ``gross_net_ratio`` is the workload's gross/net utilization ratio
    (see :meth:`repro.workload.JobFactory.gross_net_ratio` and
    :func:`repro.analysis.theory.gross_net_ratio`).
    """
    from repro.core.system import run_constant_backlog

    report = run_constant_backlog(
        config, size_distribution, service_distribution,
        backlog=backlog, warmup_jobs=warmup_jobs,
        measured_jobs=measured_jobs,
    )
    gross = report.gross_utilization
    return MaximalUtilization(
        config=config,
        gross=gross,
        net=gross / gross_net_ratio,
        gross_net_ratio=gross_net_ratio,
    )
