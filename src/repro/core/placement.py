"""Placement of unordered requests onto distinct clusters.

The paper (§2.3): *"To determine whether an unordered request fits, we try
to schedule its components in decreasing order of their sizes on distinct
clusters.  We use Worst Fit (WF) to place the components on clusters."*

Worst Fit assigns each component (largest first) to the cluster with the
most idle processors among the clusters not yet used by this job; the
request fits iff every component finds a cluster.  For the *fit decision*
this greedy rule is optimal (sorted components against sorted free counts
is exactly Hall's condition here — the test suite verifies this by brute
force), but the *choice* of clusters still shapes future fragmentation,
which is why First Fit and Best Fit behave differently over time.

First Fit and Best Fit are provided for the placement ablation study.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

__all__ = [
    "worst_fit",
    "first_fit",
    "best_fit",
    "place_components",
    "PLACEMENT_RULES",
]

#: A placement rule maps (component sizes, free processors per cluster)
#: to a tuple of (cluster index, processors) pairs, or None if no fit.
PlacementRule = Callable[
    [Sequence[int], Sequence[int]], Optional[tuple[tuple[int, int], ...]]
]


def _greedy(components: Sequence[int], free: Sequence[int],
            choose: Callable[[list[tuple[int, int]]], tuple[int, int]],
            ) -> Optional[tuple[tuple[int, int], ...]]:
    """Greedy placement: components in decreasing size order, each on a
    distinct cluster selected by ``choose`` from the feasible candidates."""
    if len(components) > len(free):
        return None
    ordered = sorted(components, reverse=True)
    remaining = list(enumerate(free))
    assignment: list[tuple[int, int]] = []
    for comp in ordered:
        candidates = [(idx, f) for idx, f in remaining if f >= comp]
        if not candidates:
            return None
        idx, _ = choose(candidates)
        assignment.append((idx, comp))
        remaining = [(i, f) for i, f in remaining if i != idx]
    return tuple(assignment)


def worst_fit(components: Sequence[int], free: Sequence[int]
              ) -> Optional[tuple[tuple[int, int], ...]]:
    """Worst Fit: each component goes to the emptiest feasible cluster.

    Ties break toward the lowest cluster index (deterministic).
    """
    return _greedy(
        components, free,
        choose=lambda cands: max(cands, key=lambda c: (c[1], -c[0])),
    )


def first_fit(components: Sequence[int], free: Sequence[int]
              ) -> Optional[tuple[tuple[int, int], ...]]:
    """First Fit: each component goes to the lowest-indexed feasible
    cluster (ablation alternative)."""
    return _greedy(
        components, free,
        choose=lambda cands: min(cands, key=lambda c: c[0]),
    )


def best_fit(components: Sequence[int], free: Sequence[int]
             ) -> Optional[tuple[tuple[int, int], ...]]:
    """Best Fit: each component goes to the feasible cluster with the
    least free space (ablation alternative).  Ties break toward the
    lowest index."""
    return _greedy(
        components, free,
        choose=lambda cands: min(cands, key=lambda c: (c[1], c[0])),
    )


#: Registry used by configuration and the ablation benchmark.
PLACEMENT_RULES: dict[str, PlacementRule] = {
    "worst-fit": worst_fit,
    "first-fit": first_fit,
    "best-fit": best_fit,
}


def place_components(components: Sequence[int], free: Sequence[int],
                     rule: "str | PlacementRule" = "worst-fit",
                     ) -> Optional[tuple[tuple[int, int], ...]]:
    """Place ``components`` on clusters with ``free`` idle processors.

    ``rule`` is a registry name or a placement callable.  Returns the
    (cluster, processors) assignment or ``None`` if the request does not
    fit under the rule.
    """
    fn = PLACEMENT_RULES[rule] if isinstance(rule, str) else rule
    return fn(components, free)
