"""Placement of unordered requests onto distinct clusters.

The paper (§2.3): *"To determine whether an unordered request fits, we try
to schedule its components in decreasing order of their sizes on distinct
clusters.  We use Worst Fit (WF) to place the components on clusters."*

Worst Fit assigns each component (largest first) to the cluster with the
most idle processors among the clusters not yet used by this job; the
request fits iff every component finds a cluster.  For the *fit decision*
this greedy rule is optimal (sorted components against sorted free counts
is exactly Hall's condition here — the test suite verifies this by brute
force), but the *choice* of clusters still shapes future fragmentation,
which is why First Fit and Best Fit behave differently over time.

First Fit and Best Fit are provided for the placement ablation study.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

__all__ = [
    "worst_fit",
    "first_fit",
    "best_fit",
    "place_components",
    "PLACEMENT_RULES",
]

#: A placement rule maps (component sizes, free processors per cluster)
#: to a tuple of (cluster index, processors) pairs, or None if no fit.
PlacementRule = Callable[
    [Sequence[int], Sequence[int]], Optional[tuple[tuple[int, int], ...]]
]


def _greedy_reference(
        components: Sequence[int], free: Sequence[int],
        choose: Callable[[list[tuple[int, int]]], tuple[int, int]],
        ) -> Optional[tuple[tuple[int, int], ...]]:
    """Reference greedy placement, kept as the oracle for the fast kernels.

    Components in decreasing size order, each on a distinct cluster
    selected by ``choose`` from the feasible candidates.  This is the
    original (allocating) implementation; the exported rules below are
    equivalence-tested against it and the hot-path benchmark uses it as
    the A/B baseline.
    """
    if len(components) > len(free):
        return None
    ordered = sorted(components, reverse=True)
    remaining = list(enumerate(free))
    assignment: list[tuple[int, int]] = []
    for comp in ordered:
        candidates = [(idx, f) for idx, f in remaining if f >= comp]
        if not candidates:
            return None
        idx, _ = choose(candidates)
        assignment.append((idx, comp))
        remaining = [(i, f) for i, f in remaining if i != idx]
    return tuple(assignment)


def _worst_fit_reference(components: Sequence[int], free: Sequence[int]
                         ) -> Optional[tuple[tuple[int, int], ...]]:
    return _greedy_reference(
        components, free,
        choose=lambda cands: max(cands, key=lambda c: (c[1], -c[0])),
    )


def _first_fit_reference(components: Sequence[int], free: Sequence[int]
                         ) -> Optional[tuple[tuple[int, int], ...]]:
    return _greedy_reference(
        components, free,
        choose=lambda cands: min(cands, key=lambda c: c[0]),
    )


def _best_fit_reference(components: Sequence[int], free: Sequence[int]
                        ) -> Optional[tuple[tuple[int, int], ...]]:
    return _greedy_reference(
        components, free,
        choose=lambda cands: min(cands, key=lambda c: (c[1], c[0])),
    )


#: Reference (oracle) implementations by rule name — tests and the
#: hot-path benchmark compare the fast kernels against these.
REFERENCE_RULES: dict[str, PlacementRule] = {
    "worst-fit": _worst_fit_reference,
    "first-fit": _first_fit_reference,
    "best-fit": _best_fit_reference,
}


def _ordered(components: Sequence[int]) -> Sequence[int]:
    """``components`` in non-increasing order, without copying when the
    input is already sorted (``JobSpec.components`` always is)."""
    for i in range(len(components) - 1):
        if components[i] < components[i + 1]:
            return sorted(components, reverse=True)
    return components


#: Shared scratch for the multi-component kernels (grown on demand).
#: Placement never re-enters itself and the simulator is single-threaded,
#: so one module-level buffer removes the per-attempt list allocations of
#: the reference implementation.
_scratch: list[int] = []


def _fill_scratch(free: Sequence[int], n: int) -> list[int]:
    # The module-level buffer is deliberate (see _scratch above): its
    # contents are fully overwritten on every call before any read, so
    # per-process copies can never diverge observably — only the
    # capacity (an allocation detail) differs between processes.
    scratch = _scratch
    if len(scratch) < n:
        scratch.extend(0 for _ in range(n - len(scratch)))  # simlint: disable=SIM008 -- capacity growth only; values rewritten below before use
    for idx in range(n):
        scratch[idx] = free[idx]  # simlint: disable=SIM008 -- scratch fully overwritten per call; no cross-call or cross-process state is read
    return scratch


def worst_fit(components: Sequence[int], free: Sequence[int]
              ) -> Optional[tuple[tuple[int, int], ...]]:
    """Worst Fit: each component goes to the emptiest feasible cluster.

    Ties break toward the lowest cluster index (deterministic).
    """
    n = len(free)
    k = len(components)
    if k > n:
        return None
    if k == 1:
        # The dominant case (single-component jobs): one linear scan,
        # no scratch.  ``f > comp - 1`` folds feasibility (f >= comp)
        # into the running-maximum test; strict ``>`` keeps the lowest
        # index on ties, matching max(key=(free, -index)).
        comp = components[0]
        best_idx = -1
        best = comp - 1
        for idx in range(n):
            f = free[idx]
            if f > best:
                best = f
                best_idx = idx
        if best_idx < 0:
            return None
        return ((best_idx, comp),)
    scratch = _fill_scratch(free, n)
    assignment: list[tuple[int, int]] = []
    for comp in _ordered(components):
        best_idx = -1
        best = comp - 1
        for idx in range(n):
            f = scratch[idx]
            if f > best:
                best = f
                best_idx = idx
        if best_idx < 0:
            return None
        scratch[best_idx] = -1  # distinct clusters: mark used
        assignment.append((best_idx, comp))
    return tuple(assignment)


def first_fit(components: Sequence[int], free: Sequence[int]
              ) -> Optional[tuple[tuple[int, int], ...]]:
    """First Fit: each component goes to the lowest-indexed feasible
    cluster (ablation alternative)."""
    n = len(free)
    k = len(components)
    if k > n:
        return None
    if k == 1:
        comp = components[0]
        for idx in range(n):
            if free[idx] >= comp:
                return ((idx, comp),)
        return None
    scratch = _fill_scratch(free, n)
    assignment: list[tuple[int, int]] = []
    for comp in _ordered(components):
        for idx in range(n):
            if scratch[idx] >= comp:
                scratch[idx] = -1  # distinct clusters: mark used
                assignment.append((idx, comp))
                break
        else:
            return None
    return tuple(assignment)


def best_fit(components: Sequence[int], free: Sequence[int]
             ) -> Optional[tuple[tuple[int, int], ...]]:
    """Best Fit: each component goes to the feasible cluster with the
    least free space (ablation alternative).  Ties break toward the
    lowest index."""
    n = len(free)
    k = len(components)
    if k > n:
        return None
    if k == 1:
        comp = components[0]
        best_idx = -1
        best = -1
        for idx in range(n):
            f = free[idx]
            # Strict ``<`` keeps the lowest index on ties, matching
            # min(key=(free, index)).
            if f >= comp and (best_idx < 0 or f < best):
                best = f
                best_idx = idx
        if best_idx < 0:
            return None
        return ((best_idx, comp),)
    scratch = _fill_scratch(free, n)
    assignment: list[tuple[int, int]] = []
    for comp in _ordered(components):
        best_idx = -1
        best = -1
        for idx in range(n):
            f = scratch[idx]
            if f >= comp and (best_idx < 0 or f < best):
                best = f
                best_idx = idx
        if best_idx < 0:
            return None
        scratch[best_idx] = -1  # distinct clusters: mark used
        assignment.append((best_idx, comp))
    return tuple(assignment)


#: Registry used by configuration and the ablation benchmark.
PLACEMENT_RULES: dict[str, PlacementRule] = {
    "worst-fit": worst_fit,
    "first-fit": first_fit,
    "best-fit": best_fit,
}


def place_components(components: Sequence[int], free: Sequence[int],
                     rule: "str | PlacementRule" = "worst-fit",
                     ) -> Optional[tuple[tuple[int, int], ...]]:
    """Place ``components`` on clusters with ``free`` idle processors.

    ``rule`` is a registry name or a placement callable.  Returns the
    (cluster, processors) assignment or ``None`` if the request does not
    fit under the rule.
    """
    fn = PLACEMENT_RULES[rule] if isinstance(rule, str) else rule
    return fn(components, free)
