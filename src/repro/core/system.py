"""The runnable simulation: engine + clusters + policy + metrics.

:class:`MulticlusterSimulation` wires a :class:`~repro.sim.Simulator`, a
:class:`~repro.core.cluster.Multicluster`, one scheduling policy and a
:class:`~repro.metrics.recorder.MetricsRecorder` into the system the
paper simulates.  Two high-level drivers cover the paper's two
methodologies:

* :func:`run_open_system` — exponential arrivals at a given rate, warmup
  deletion, measurement over a fixed number of completions (the
  response-time-vs-utilization curves of Figures 3, 5, 6, 7);
* :func:`run_constant_backlog` — the queue is never allowed to drain
  below a fixed backlog, so the measured busy fraction is the *maximal*
  utilization (Table 3; paper §4, "we maintain a constant backlog and
  observe the time-average fraction of processors being busy").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.metrics.recorder import MetricsRecorder, UtilizationReport
from repro.sim.distributions import Distribution
from repro.sim.engine import Simulator
from repro.sim.rng import StreamFactory
from repro.sim.trace import NullTracer, Tracer
from repro.workload import stats_model
from repro.workload.generator import ArrivalProcess, JobFactory, JobSpec

from .cluster import Multicluster
from .jobs import Job
from .placement import PLACEMENT_RULES, PlacementRule
from .policies import Policy, make_policy

__all__ = [
    "MulticlusterSimulation",
    "SimulationConfig",
    "OpenSystemResult",
    "run_open_system",
    "run_constant_backlog",
]


class MulticlusterSimulation:
    """A multicluster with one scheduling policy attached.

    Parameters
    ----------
    policy:
        Registry name ("GS", "LS", "LP", "SC") or a policy factory
        taking the system.
    capacities:
        Cluster sizes; defaults to the paper's 4×32 (use ``[128]``
        for SC).
    extension_factor:
        Wide-area slowdown for multi-component jobs.
    placement:
        Placement-rule name or callable (default Worst Fit).
    tracer:
        Optional event tracer for debugging/tests.
    direct_departures:
        When True (default) departures are scheduled as lightweight
        :meth:`~repro.sim.engine.Simulator.defer` callbacks; False uses
        the original per-job ``Timeout`` event.  Both paths are
        event-sequence identical — the flag exists so the equivalence
        tests and the hot-path benchmark can compare them.
    """

    def __init__(self,
                 policy: "str | Callable[[MulticlusterSimulation], Policy]",
                 capacities: Optional[Sequence[int]] = None,
                 extension_factor: float = stats_model.EXTENSION_FACTOR,
                 placement: "str | PlacementRule" = "worst-fit",
                 batch_size: int = 500,
                 tracer: Optional[Tracer] = None,
                 sim: Optional[Simulator] = None,
                 direct_departures: bool = True) -> None:
        if capacities is None:
            capacities = [stats_model.CLUSTER_SIZE] * stats_model.NUM_CLUSTERS
        self.sim = sim if sim is not None else Simulator()
        self.multicluster = Multicluster(capacities)
        self.extension_factor = float(extension_factor)
        self.placement_rule: PlacementRule = (
            PLACEMENT_RULES[placement] if isinstance(placement, str)
            else placement
        )
        self.metrics = MetricsRecorder(self.multicluster.total_capacity,
                                       batch_size=batch_size)
        self.tracer = tracer if tracer is not None else NullTracer()
        self.policy: Policy = (
            make_policy(policy, self) if isinstance(policy, str)
            else policy(self)
        )
        #: Called after each departure (drives constant-backlog runs).
        self.on_departure_hook: Optional[Callable[[Job], None]] = None
        self.jobs_started = 0
        self.jobs_finished = 0
        self._direct_departures = direct_departures
        # One tuple shared by every deferred departure (see start_job).
        self._departure_callbacks = (self._departure_callback,)

    # -- job flow ---------------------------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        """A job arrives now; the policy queues (and maybe starts) it."""
        now = self.sim.now
        job = Job(spec, now, self.extension_factor)
        self.metrics.on_arrival(job, now)
        if self.tracer.enabled:
            self.tracer.emit_row({"t": now, "kind": "arrival",
                                  "job": spec.index, "size": spec.size,
                                  "queue": spec.queue})
        self.policy.submit(job)
        return job

    def start_job(self, job: Job, assignment: Sequence[tuple[int, int]],
                  *, from_global_queue: bool = False) -> None:
        """Begin executing ``job`` on ``assignment`` (policy callback)."""
        job.from_global_queue = from_global_queue
        self.multicluster.allocate(assignment)
        now = self.sim.now
        job.start(now, assignment)
        self.metrics.on_start(job, now)
        self.jobs_started += 1
        if self.tracer.enabled:
            self.tracer.emit_row({"t": now, "kind": "start",
                                  "job": job.spec.index,
                                  "assignment": job.placement})
        if self._direct_departures:
            # Fast path: one calendar push carrying the job, no Timeout
            # object or per-job callback list.  Same scheduling sequence
            # number and rank as the Timeout below, so event order and
            # the events_scheduled counter are unchanged.
            self.sim.defer(job.gross_service_time,
                           self._departure_callbacks, job)
        else:
            departure = self.sim.timeout(job.gross_service_time, value=job)
            departure.callbacks.append(self._departure_callback)

    def _departure_callback(self, event) -> None:
        job: Job = event.value
        self.multicluster.release(job.placement)
        now = self.sim.now
        job.finish(now)
        self.metrics.on_finish(job, now,
                               global_queue=job.from_global_queue)
        self.jobs_finished += 1
        if self.tracer.enabled:
            self.tracer.emit_row({"t": now, "kind": "departure",
                                  "job": job.spec.index})
        if self.on_departure_hook is not None:
            self.on_departure_hook(job)
        self.policy.on_departure(job)

    # -- diagnostics -------------------------------------------------------------

    def invariants_ok(self) -> bool:
        """Cheap structural invariants (used by tests)."""
        mc = self.multicluster
        return (
            0 <= mc.total_free <= mc.total_capacity
            and all(0 <= c.free <= c.capacity for c in mc)
            and self.jobs_finished <= self.jobs_started
        )

    def __repr__(self) -> str:
        return (
            f"<MulticlusterSimulation {self.policy.name} t={self.sim.now:.6g} "
            f"started={self.jobs_started} finished={self.jobs_finished}>"
        )


@dataclass(frozen=True)
class SimulationConfig:
    """Everything defining one open-system run.

    The defaults reproduce the paper's base case: 4×32 multicluster,
    extension factor 1.25, balanced local queues.
    """

    policy: str = "GS"
    capacities: tuple[int, ...] = (
        (stats_model.CLUSTER_SIZE,) * stats_model.NUM_CLUSTERS
    )
    component_limit: Optional[int] = 16
    extension_factor: float = stats_model.EXTENSION_FACTOR
    routing_weights: tuple[float, ...] = stats_model.BALANCED_WEIGHTS
    placement: str = "worst-fit"
    seed: int = 1
    warmup_jobs: int = 2_000
    measured_jobs: int = 10_000
    batch_size: int = 500

    @property
    def capacity(self) -> int:
        """Total processors."""
        return sum(self.capacities)

    @classmethod
    def single_cluster(cls, **overrides: Any) -> "SimulationConfig":
        """The paper's SC reference configuration."""
        defaults: dict[str, Any] = dict(
            policy="SC",
            capacities=(stats_model.SINGLE_CLUSTER_SIZE,),
            component_limit=None,
        )
        defaults.update(overrides)
        return cls(**defaults)


@dataclass(frozen=True)
class OpenSystemResult:
    """Outcome of one open-system run at one arrival rate."""

    config: SimulationConfig
    arrival_rate: float
    offered_gross_utilization: float
    offered_net_utilization: float
    report: UtilizationReport
    saturated: bool
    end_time: float
    extras: dict = field(default_factory=dict)

    @property
    def mean_response(self) -> float:
        """Measured mean response time."""
        return self.report.mean_response

    @property
    def gross_utilization(self) -> float:
        """Measured gross utilization."""
        return self.report.gross_utilization

    @property
    def net_utilization(self) -> float:
        """Measured net utilization."""
        return self.report.net_utilization


def _build(config: SimulationConfig, size_distribution: Distribution,
           service_distribution: Distribution,
           tracer: Optional[Tracer] = None
           ) -> tuple[MulticlusterSimulation, JobFactory]:
    system = MulticlusterSimulation(
        policy=config.policy,
        capacities=config.capacities,
        extension_factor=config.extension_factor,
        placement=config.placement,
        batch_size=config.batch_size,
        tracer=tracer,
    )
    factory = JobFactory(
        size_distribution=size_distribution,
        service_distribution=service_distribution,
        component_limit=config.component_limit,
        clusters=len(config.capacities),
        extension_factor=config.extension_factor,
        routing_weights=config.routing_weights,
        streams=StreamFactory(config.seed),
    )
    return system, factory


def run_open_system(config: SimulationConfig, size_distribution: Distribution,
                    service_distribution: Distribution, arrival_rate: float,
                    tracer: Optional[Tracer] = None) -> OpenSystemResult:
    """One open-system run: warmup, then measure a fixed job count.

    The run is considered *saturated* when the backlog at the end of the
    measurement window exceeds a fixed multiple of its starting level —
    with FCFS queues an unstable system grows its queue without bound
    (paper §3.1.3), so response-time numbers past that point are
    reported but flagged.
    """
    system, factory = _build(config, size_distribution,
                             service_distribution, tracer)
    sim = system.sim
    # No arrival limit: the source keeps producing until the completion
    # target is reached.  (A capped source would let the queue drain at
    # the end of every run, contaminating the measurement with a
    # closed-system tail — especially at high loads.)
    ArrivalProcess(
        sim, factory, arrival_rate, system.submit,
        limit=None,
        rng=StreamFactory(config.seed).get("arrivals.iat"),
    )

    # Warmup: run until `warmup_jobs` completions, then reset statistics.
    # run_while fuses the predicate check and the heap pop into one
    # loop (and stops cleanly if the calendar ever drains), replacing
    # the per-event peek()-against-inf guard.
    warmup_target = config.warmup_jobs
    sim.run_while(lambda: system.jobs_finished < warmup_target)
    system.metrics.reset(sim.now)
    backlog_at_reset = system.policy.pending_jobs()

    total_target = config.warmup_jobs + config.measured_jobs
    sim.run_while(lambda: system.jobs_finished < total_target)

    backlog_at_end = system.policy.pending_jobs()
    saturated = backlog_at_end > max(50, 3 * backlog_at_reset + 20)
    report = system.metrics.report(sim.now)
    return OpenSystemResult(
        config=config,
        arrival_rate=arrival_rate,
        offered_gross_utilization=factory.offered_gross_utilization(
            arrival_rate, config.capacity
        ),
        offered_net_utilization=factory.offered_net_utilization(
            arrival_rate, config.capacity
        ),
        report=report,
        saturated=saturated,
        end_time=sim.now,
        extras={"backlog_end": backlog_at_end,
                "backlog_reset": backlog_at_reset,
                # Deterministic run counters for the observability
                # side-band (manifests, metrics snapshots).  They are
                # maintained unconditionally — plain integer adds — so
                # results are identical with observability on or off.
                "events_processed": sim.events_processed,
                "events_scheduled": sim.events_scheduled,
                "jobs_started": system.jobs_started,
                "jobs_finished": system.jobs_finished,
                "placement_attempts": system.policy.placement_attempts,
                "placement_failures": system.policy.placement_failures,
                "queue_disables": {
                    q.name: q.times_disabled
                    for q in system.policy.queues()
                }},
    )


def run_constant_backlog(config: SimulationConfig,
                         size_distribution: Distribution,
                         service_distribution: Distribution, *,
                         backlog: int = 50,
                         warmup_jobs: int = 2_000,
                         measured_jobs: int = 10_000) -> UtilizationReport:
    """Constant-backlog run measuring the maximal utilization (Table 3).

    The queue is kept at a constant backlog: ``backlog`` jobs are
    submitted at time 0 and every departure triggers one new submission,
    so the scheduler never starves.  The time-average busy fraction over
    the measurement window is the maximal gross utilization of the
    policy (paper §4).
    """
    system, factory = _build(config, size_distribution,
                             service_distribution)
    sim = system.sim

    def refill(_job) -> None:
        system.submit(factory.next_job())

    system.on_departure_hook = refill
    for _ in range(backlog):
        system.submit(factory.next_job())

    # run_while stops cleanly when the calendar drains, so a model bug
    # (refill failing to keep the schedule populated) ends the run with
    # a truncated report instead of an EmptySchedule crash mid-loop.
    sim.run_while(lambda: system.jobs_finished < warmup_jobs)
    system.metrics.reset(sim.now)
    target = warmup_jobs + measured_jobs
    sim.run_while(lambda: system.jobs_finished < target)
    return system.metrics.report(sim.now)
