"""``repro.core`` — processor co-allocation in multiclusters.

The paper's primary contribution: the multicluster model, unordered
request placement (Worst Fit over distinct clusters), the GS / LS / LP
co-allocation policies with the queue enable/disable protocol, the SC
single-cluster reference, and the open-system / constant-backlog run
drivers.
"""

from .cluster import AllocationError, Cluster, Multicluster
from .jobs import Job, JobState
from .placement import (
    PLACEMENT_RULES,
    best_fit,
    first_fit,
    place_components,
    worst_fit,
)
from .policies import (
    POLICIES,
    GSPolicy,
    LPPolicy,
    LSPolicy,
    Policy,
    SCPolicy,
    make_policy,
)
from .queues import JobQueue, QueueRing
from .requests import RequestType, try_place
from .system import (
    MulticlusterSimulation,
    OpenSystemResult,
    SimulationConfig,
    run_constant_backlog,
    run_open_system,
)

__all__ = [
    # clusters
    "Cluster", "Multicluster", "AllocationError",
    # jobs
    "Job", "JobState",
    # placement & requests
    "worst_fit", "first_fit", "best_fit", "place_components",
    "PLACEMENT_RULES", "RequestType", "try_place",
    # queues
    "JobQueue", "QueueRing",
    # policies
    "Policy", "GSPolicy", "LSPolicy", "LPPolicy", "SCPolicy",
    "POLICIES", "make_policy",
    # system
    "MulticlusterSimulation", "SimulationConfig", "OpenSystemResult",
    "run_open_system", "run_constant_backlog",
]
