"""Job lifecycle objects for the multicluster model.

A :class:`Job` is created at submission from a workload
:class:`~repro.workload.generator.JobSpec` and carries its timing and
placement through the simulation.  Service-time extension (paper §2.4):
multi-component jobs run for ``extension_factor × service_time`` wall
time to account for slow wide-area communication; their *net* (useful)
demand stays ``service_time``.
"""

from __future__ import annotations

import enum
import math
from typing import Optional, Sequence

from repro.workload.generator import JobSpec

__all__ = ["Job", "JobState"]


class JobState(enum.Enum):
    """Lifecycle states of a job."""

    QUEUED = "queued"
    RUNNING = "running"
    FINISHED = "finished"


class Job:
    """A rigid parallel job inside a simulation run.

    Parameters
    ----------
    spec:
        The workload-layer description (size, components, base service
        time, submission queue).
    arrival_time:
        Simulation time of submission.
    extension_factor:
        Wide-area slowdown applied if the job has multiple components.
    """

    __slots__ = (
        "spec", "arrival_time", "extension_factor",
        "start_time", "finish_time", "placement", "state",
        "from_global_queue",
    )

    def __init__(self, spec: JobSpec, arrival_time: float,
                 extension_factor: float = 1.25) -> None:
        self.spec = spec
        self.arrival_time = float(arrival_time)
        self.extension_factor = (
            float(extension_factor) if spec.is_multi_component else 1.0
        )
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        self.placement: Optional[tuple[tuple[int, int], ...]] = None
        self.state = JobState.QUEUED
        #: Whether the job was started from a global queue (LP/GS
        #: breakdown in the paper's Figure 4).
        self.from_global_queue = False

    # -- static properties ---------------------------------------------------

    @property
    def size(self) -> int:
        """Total processors required."""
        return self.spec.size

    @property
    def components(self) -> tuple[int, ...]:
        """Component sizes (non-increasing)."""
        return self.spec.components

    @property
    def is_multi_component(self) -> bool:
        """Whether the job is co-allocated over several clusters."""
        return self.spec.is_multi_component

    @property
    def origin_queue(self) -> int:
        """Local queue the job was submitted to."""
        return self.spec.queue

    @property
    def net_service_time(self) -> float:
        """Useful service demand (computation + local communication)."""
        return self.spec.service_time

    @property
    def gross_service_time(self) -> float:
        """Wall-clock occupation: net demand times the extension factor."""
        return self.spec.service_time * self.extension_factor

    @property
    def net_work(self) -> float:
        """Net processor-seconds: size × net service time."""
        return self.size * self.net_service_time

    @property
    def gross_work(self) -> float:
        """Gross processor-seconds: size × gross service time."""
        return self.size * self.gross_service_time

    # -- lifecycle ------------------------------------------------------------

    def start(self, time: float,
              placement: Sequence[tuple[int, int]]) -> None:
        """Record the start of execution with a placement.

        ``placement`` pairs (cluster index, processors) must conserve
        the job's total size on distinct clusters.  (For unordered and
        ordered requests the placement mirrors the components exactly;
        flexible requests may split differently, so only conservation
        is enforced here.)
        """
        if self.state is not JobState.QUEUED:
            raise RuntimeError(f"cannot start a {self.state.value} job")
        placed = tuple(placement)
        if sum(p for _, p in placed) != self.size:
            raise ValueError(
                f"placement {placed!r} does not conserve job size "
                f"{self.size!r}"
            )
        clusters = [c for c, _ in placed]
        if len(set(clusters)) != len(clusters):
            raise ValueError(
                f"placement {placed!r} reuses a cluster"
            )
        self.start_time = float(time)
        self.placement = placed
        self.state = JobState.RUNNING

    def finish(self, time: float) -> None:
        """Record completion."""
        if self.state is not JobState.RUNNING:
            raise RuntimeError(f"cannot finish a {self.state.value} job")
        self.finish_time = float(time)
        self.state = JobState.FINISHED

    # -- derived times ----------------------------------------------------------

    @property
    def wait_time(self) -> float:
        """Queueing delay (nan while queued)."""
        if self.start_time is None:
            return math.nan
        return self.start_time - self.arrival_time

    @property
    def response_time(self) -> float:
        """Departure minus arrival (nan until finished)."""
        if self.finish_time is None:
            return math.nan
        return self.finish_time - self.arrival_time

    def __repr__(self) -> str:
        return (
            f"<Job #{self.spec.index} size={self.size} "
            f"components={self.components} {self.state.value}>"
        )
