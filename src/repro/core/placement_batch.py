"""Vectorized Worst-Fit placement for the batch-replication backend.

One call places the head-of-queue job of *many* replications at once:
``components`` holds one row per replication lane (component sizes in
non-increasing order, zero-padded to the cluster count) and ``free``
the corresponding idle-processor counts.  The kernel reproduces
:func:`repro.core.placement.worst_fit` decision-for-decision:

* components are consumed column by column — i.e. in non-increasing
  size order, exactly like the scalar loop;
* each component goes to the feasible cluster with the most idle
  processors, ties broken toward the lowest cluster index
  (``np.argmax`` returns the first occurrence, which is precisely the
  scalar kernel's strict ``>`` running-maximum scan);
* clusters already used by the same job are masked out (distinct
  clusters), and a lane fits only if *every* component finds a cluster.

Single-component rows double as the single-cluster ``TOTAL`` request
(:func:`repro.core.requests._place_total` is Worst Fit over one
component), so the batch backend needs exactly one placement kernel
for all four policies.
"""

from __future__ import annotations

import numpy as np

__all__ = ["worst_fit_batch"]


def worst_fit_batch(
    components: "np.ndarray", free: "np.ndarray"
) -> "tuple[np.ndarray, np.ndarray]":
    """Place one job per lane with Worst Fit over distinct clusters.

    Parameters
    ----------
    components:
        ``(k, C)`` int64 array; row ``i`` holds the component sizes of
        lane ``i``'s job in non-increasing order, zero-padded.
    free:
        ``(k, C)`` int64 array of idle processors per cluster; not
        modified.

    Returns
    -------
    fit:
        ``(k,)`` bool array — whether every component of the lane's job
        found a distinct feasible cluster.
    alloc:
        ``(k, C)`` int64 array of processors taken per cluster; all
        zeros for lanes that do not fit.
    """
    k, n_clusters = free.shape
    scratch = free.copy()
    alloc = np.zeros_like(free)
    fit = np.ones(k, dtype=bool)
    for col in range(components.shape[1]):
        comp = components[:, col]
        live = fit & (comp > 0)
        if not live.any():
            break
        # Feasibility folded into the maximum: infeasible (or already
        # used, scratch == -1) clusters become -1, so a lane's best
        # cluster is the emptiest feasible one and ``best < 0`` means
        # no fit.  argmax takes the first occurrence — lowest index on
        # ties, matching the scalar kernel.
        feasible = np.where(scratch >= comp[:, None], scratch, -1)
        best = feasible.max(axis=1)
        best_idx = feasible.argmax(axis=1)
        placed = live & (best >= 0)
        fit &= placed | ~live
        rows = np.nonzero(placed)[0]
        scratch[rows, best_idx[rows]] = -1  # distinct clusters
        alloc[rows, best_idx[rows]] = comp[rows]
    alloc[~fit] = 0
    return fit, alloc
