"""The scheduling policies: GS, LS, LP and the single-cluster SC.

All four policies are FCFS per queue — only the job at the head of a
queue may start — and differ in how many queues exist, which jobs they
receive and which clusters each queue may use (paper §2.5):

* :class:`GSPolicy` — one global queue for all jobs; the scheduler picks
  clusters for every job (Worst Fit over distinct clusters).
* :class:`LSPolicy` — one local queue per cluster, each receiving both
  single- and multi-component jobs; single-component jobs may only run on
  their local cluster, multi-component jobs are co-allocated anywhere.
* :class:`LPPolicy` — local queues receive the single-component jobs, a
  global queue receives all multi-component jobs; local queues have
  priority: the global queue may start jobs only while at least one local
  queue is empty.
* :class:`SCPolicy` — the single-cluster reference: total requests in one
  cluster, FCFS.

Queue mechanics (disable on head-does-not-fit, re-enable at departures in
disablement order, at most one start per queue per visiting round) follow
§2.5 verbatim; see :class:`repro.core.queues.QueueRing`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from .placement import PlacementRule, place_components
from .queues import JobQueue, QueueRing
from .requests import RequestType, try_place

if TYPE_CHECKING:  # pragma: no cover
    from .jobs import Job
    from .system import MulticlusterSimulation

__all__ = ["Policy", "GSPolicy", "LSPolicy", "LPPolicy", "SCPolicy",
           "POLICIES", "make_policy"]

#: Trace-event kind per :class:`~repro.core.queues.QueueRing` observer
#: action (precomputed — the observer fires on every state change).
_QUEUE_KINDS = {"disable": "queue_disable", "enable": "queue_enable",
                "reenable": "queue_reenable"}


class Policy:
    """Base class wiring a policy to its system.

    Subclasses implement :meth:`submit` (a job arrived) and
    :meth:`on_departure` (a job left; re-enable queues and try to start
    more work).  They call ``self.system.start_job(job, assignment)`` to
    begin execution.
    """

    #: Registry name, set by subclasses.
    name: str = "?"

    def __init__(self, system: "MulticlusterSimulation") -> None:
        self.system = system
        #: Placement decisions taken (head-of-queue fit checks).
        self.placement_attempts = 0
        #: Placement decisions where the head did not fit anywhere.
        self.placement_failures = 0

    # -- interface -------------------------------------------------------------

    def submit(self, job: "Job") -> None:
        """Handle a job arrival."""
        raise NotImplementedError

    def on_departure(self, job: "Job") -> None:
        """Handle a job departure."""
        raise NotImplementedError

    def queues(self) -> Sequence[JobQueue]:
        """All queues of this policy (diagnostics)."""
        raise NotImplementedError

    def pending_jobs(self) -> int:
        """Jobs currently waiting in queues."""
        return sum(len(q) for q in self.queues())

    # -- helpers ---------------------------------------------------------------

    @property
    def _free(self) -> list[int]:
        # The live, incrementally maintained idle-count array — NOT a
        # snapshot.  Placement rules only read it; anything that wants
        # to mutate must copy (see Multicluster.free_view).
        return self.system.multicluster.free_view

    @property
    def _placement_rule(self) -> PlacementRule:
        return self.system.placement_rule

    def _queue_event(self, action: str, queue: JobQueue,
                     order: int) -> None:
        """QueueRing observer: stream disable/enable decisions."""
        tracer = self.system.tracer
        if tracer.enabled:
            tracer.emit_row({"t": self.system.sim.now,
                             "kind": _QUEUE_KINDS[action],
                             "queue": queue.name, "order": order})

    def _note_placement(self, job: "Job", queue: JobQueue,
                        assignment: "Optional[tuple[tuple[int, int], ...]]"
                        ) -> None:
        """Count one placement decision and stream it as an event.

        For a fit the assignment *is* the Worst Fit cluster choice; for
        a no-fit the event names the queue that will be disabled.
        """
        self.placement_attempts += 1
        if assignment is None:
            self.placement_failures += 1
        tracer = self.system.tracer
        if tracer.enabled:
            if assignment is None:
                tracer.emit_row({"t": self.system.sim.now,
                                 "kind": "placement_no_fit",
                                 "job": job.spec.index,
                                 "queue": queue.name})
            else:
                tracer.emit_row({"t": self.system.sim.now,
                                 "kind": "placement_fit",
                                 "job": job.spec.index,
                                 "queue": queue.name,
                                 "assignment": tuple(assignment)})

    def __repr__(self) -> str:
        return f"<{type(self).__name__} pending={self.pending_jobs()}>"


class _SingleQueuePolicy(Policy):
    """Shared machinery for GS and SC: one FCFS queue, drain while the
    head fits."""

    request_type: RequestType = RequestType.UNORDERED

    def __init__(self, system: "MulticlusterSimulation") -> None:
        super().__init__(system)
        self.queue = JobQueue("global", is_global=True)

    def queues(self) -> Sequence[JobQueue]:
        return (self.queue,)

    def submit(self, job: "Job") -> None:
        self.queue.push(job)
        self._drain()

    def on_departure(self, job: "Job") -> None:
        self._drain()

    def _drain(self) -> None:
        while self.queue:
            head = self.queue.head
            assignment = try_place(
                self.request_type, head.components, self._free,
                rule=self._placement_rule,
            )
            self._note_placement(head, self.queue, assignment)
            if assignment is None:
                return
            self.queue.pop()
            self.system.start_job(head, assignment,
                                  from_global_queue=True)


class GSPolicy(_SingleQueuePolicy):
    """[GS] One global scheduler with one global queue for all jobs.

    The scheduler knows the idle counts of every cluster and chooses the
    clusters for each job — including the cluster of single-component
    jobs — with Worst Fit.
    """

    name = "GS"
    request_type = RequestType.UNORDERED


class SCPolicy(_SingleQueuePolicy):
    """[SC] The single-cluster reference: total requests under FCFS.

    Runs on a system whose multicluster has a single cluster of the
    combined size; a job fits iff its *total* size fits in one cluster.
    """

    name = "SC"
    request_type = RequestType.TOTAL


class LSPolicy(Policy):
    """[LS] One local queue per cluster; all queues receive both job
    types; single-component jobs run only on the local cluster.

    Scheduling visits all enabled queues round-robin, starting at most
    one job per queue per round; a queue whose head does not fit is
    disabled until the next departure; departures re-enable the disabled
    queues in disablement order.  The multi-queue structure gives LS a
    backfilling-like window equal to the number of clusters (§3.1.1).
    """

    name = "LS"

    def __init__(self, system: "MulticlusterSimulation") -> None:
        super().__init__(system)
        n = len(system.multicluster)
        self.local_queues = [JobQueue(f"local-{i}", index=i)
                             for i in range(n)]
        self.ring = QueueRing(self.local_queues,
                              observer=self._queue_event)

    def queues(self) -> Sequence[JobQueue]:
        return tuple(self.local_queues)

    def submit(self, job: "Job") -> None:
        queue = self.local_queues[job.origin_queue % len(self.local_queues)]
        queue.push(job)
        if queue.enabled:
            self._rounds()

    def on_departure(self, job: "Job") -> None:
        self.ring.enable_all()
        self._rounds()

    def _try_fit(self, queue_index: int, job: "Job"
                 ) -> Optional[tuple[tuple[int, int], ...]]:
        if job.is_multi_component:
            return place_components(job.components, self._free,
                                    self._placement_rule)
        size = job.size
        if self.system.multicluster[queue_index].free >= size:
            return ((queue_index, size),)
        return None

    def _rounds(self) -> None:
        progress = True
        while progress:
            progress = False
            for queue in self.ring.visit():
                if not queue.enabled or not queue:
                    continue
                head = queue.head
                assignment = self._try_fit(queue.index, head)
                self._note_placement(head, queue, assignment)
                if assignment is None:
                    self.ring.disable(queue)
                else:
                    queue.pop()
                    self.system.start_job(head, assignment)
                    progress = True


class LPPolicy(Policy):
    """[LP] Local queues for single-component jobs with priority; a
    global queue for all multi-component jobs.

    The global scheduler may start jobs only while at least one local
    queue is empty.  At departures: if one or more local queues are
    empty, the global queue and the local queues are all enabled,
    starting with the global queue; otherwise only the local queues are
    enabled, and the global queue joins the visit list as soon as a local
    queue empties.
    """

    name = "LP"

    def __init__(self, system: "MulticlusterSimulation") -> None:
        super().__init__(system)
        n = len(system.multicluster)
        self.local_queues = [JobQueue(f"local-{i}", index=i)
                             for i in range(n)]
        self.global_queue = JobQueue("global", is_global=True)
        self.ring = QueueRing([self.global_queue] + self.local_queues,
                              observer=self._queue_event)

    def queues(self) -> Sequence[JobQueue]:
        return (self.global_queue, *self.local_queues)

    # -- eligibility --------------------------------------------------------

    def _some_local_empty(self) -> bool:
        return any(not q for q in self.local_queues)

    # -- events ------------------------------------------------------------------

    def submit(self, job: "Job") -> None:
        if job.is_multi_component:
            self.global_queue.push(job)
        else:
            queue = self.local_queues[
                job.origin_queue % len(self.local_queues)
            ]
            queue.push(job)
        self._rounds()

    def on_departure(self, job: "Job") -> None:
        if self._some_local_empty():
            self.ring.enable_all(global_first=True)
        else:
            self.ring.enable_all(skip_global=True)
        self._rounds()

    # -- scheduling -------------------------------------------------------------

    def _try_fit(self, queue: JobQueue, job: "Job"
                 ) -> Optional[tuple[tuple[int, int], ...]]:
        if queue.is_global:
            return place_components(job.components, self._free,
                                    self._placement_rule)
        index = queue.index
        if self.system.multicluster[index].free >= job.size:
            return ((index, job.size),)
        return None

    def _rounds(self) -> None:
        progress = True
        while progress:
            progress = False
            for queue in self.ring.visit():
                if not queue.enabled or not queue:
                    continue
                if queue.is_global and not self._some_local_empty():
                    # Local queues have priority: the global queue only
                    # schedules while some local queue is empty.
                    continue
                head = queue.head
                assignment = self._try_fit(queue, head)
                self._note_placement(head, queue, assignment)
                if assignment is None:
                    self.ring.disable(queue)
                    continue
                queue.pop()
                self.system.start_job(
                    head, assignment, from_global_queue=queue.is_global
                )
                progress = True
                if (not queue.is_global and not queue
                        and not self.global_queue.enabled):
                    # A local queue just emptied: the global queue joins
                    # the visit list (§2.5, LP rule).
                    self.ring.reenable(self.global_queue)


#: Policy registry by paper name.
POLICIES = {
    "GS": GSPolicy,
    "LS": LSPolicy,
    "LP": LPPolicy,
    "SC": SCPolicy,
}


def make_policy(name: str, system: "MulticlusterSimulation") -> Policy:
    """Instantiate a policy from its registry name."""
    try:
        cls = POLICIES[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; choose from {sorted(POLICIES)}"
        ) from None
    return cls(system)
