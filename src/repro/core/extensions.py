"""Policy extensions beyond the paper's §2.5 set.

These variants feed the ablation studies DESIGN.md calls out:

* :class:`OrderedGSPolicy` / :class:`FlexibleGSPolicy` — the GS policy
  scheduling *ordered* and *flexible* requests instead of unordered
  ones, completing the request-type taxonomy of the authors' earlier
  work [6, 7].  Ordered requests pin component *i* to cluster *i*
  (modelling applications with data staged at specific sites); flexible
  requests let the scheduler split the total size arbitrarily
  (components lose their meaning, giving an upper bound on what any
  splitting rule could achieve).
* :class:`BackfillGSPolicy` — GS with aggressive backfilling over a
  bounded window: when the head of the queue does not fit, up to
  ``window - 1`` later jobs are examined and started if they fit.  The
  paper observes that LS's multiple queues act as "a form of
  backfilling with a window equal to the number of clusters" (§3.1.1);
  this policy isolates that mechanism inside a single global queue.

Extension-factor and placement-rule ablations need no new policy: both
are constructor knobs on :class:`~repro.core.system.MulticlusterSimulation`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Sequence

from .policies import Policy, _SingleQueuePolicy
from .queues import JobQueue
from .requests import RequestType, try_place

if TYPE_CHECKING:  # pragma: no cover
    from .jobs import Job
    from .system import MulticlusterSimulation

__all__ = [
    "OrderedGSPolicy",
    "FlexibleGSPolicy",
    "BackfillGSPolicy",
    "EasyBackfillGSPolicy",
    "EXTENSION_POLICIES",
    "register_extension_policies",
]


class OrderedGSPolicy(_SingleQueuePolicy):
    """GS scheduling *ordered* requests: component i → cluster i."""

    name = "GS-ORDERED"
    request_type = RequestType.ORDERED


class FlexibleGSPolicy(_SingleQueuePolicy):
    """GS scheduling *flexible* requests: any split over the clusters."""

    name = "GS-FLEX"
    request_type = RequestType.FLEXIBLE


class BackfillGSPolicy(Policy):
    """GS with aggressive backfilling over a bounded window.

    FCFS order is preferred but not enforced: if the head does not fit,
    the next ``window - 1`` queued jobs are tried in order and started
    when they fit.  (Aggressive, i.e. without a head reservation — the
    same flavour the paper attributes to LS's multi-queue effect; large
    jobs can therefore starve under sustained load, exactly like the
    whole-system jobs starve under LS.)
    """

    name = "GS-BF"
    request_type = RequestType.UNORDERED

    def __init__(self, system: "MulticlusterSimulation",
                 window: Optional[int] = None) -> None:
        super().__init__(system)
        self.queue = JobQueue("global", is_global=True)
        self.window = window if window is not None else len(
            system.multicluster
        )
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window!r}")

    def queues(self) -> Sequence[JobQueue]:
        return (self.queue,)

    def submit(self, job: "Job") -> None:
        self.queue.push(job)
        self._drain()

    def on_departure(self, job: "Job") -> None:
        self._drain()

    def _drain(self) -> None:
        started = True
        while started:
            started = False
            candidates = list(self.queue)[: self.window]
            for job in candidates:
                assignment = try_place(
                    self.request_type, job.components, self._free,
                    rule=self._placement_rule,
                )
                if assignment is None:
                    continue
                self.queue._jobs.remove(job)
                self.system.start_job(job, assignment,
                                      from_global_queue=True)
                started = True
                break  # re-snapshot the window after every start


class EasyBackfillGSPolicy(Policy):
    """GS with EASY (conservative, reservation-based) backfilling.

    The head of the queue receives a *reservation*: the earliest future
    time at which enough processors will be free on distinct clusters,
    computed from the (estimated) completion times of running jobs.
    Later jobs may start out of order only if they are estimated to
    finish by the reservation — so, unlike the aggressive
    :class:`BackfillGSPolicy`, the head can never starve.

    Parameters
    ----------
    estimator:
        Maps a job to its *estimated* gross runtime.  ``None`` uses the
        exact runtime (perfect estimates — the idealised upper bound).
        Real schedulers see user estimates, typically overestimates;
        pass e.g. ``lambda job: 3.0 * job.gross_service_time`` to study
        the cost of inaccuracy (the estimate-accuracy ablation).
        Underestimates are clamped so a reservation never predates the
        jobs' actual remaining occupancy being *believed* over: the
        reservation simply turns out wrong and is recomputed at the
        next scheduling event, as in real EASY.
    """

    name = "GS-EASY"
    request_type = RequestType.UNORDERED

    def __init__(self, system: "MulticlusterSimulation",
                 estimator: Optional[Callable[["Job"], float]] = None) -> None:
        super().__init__(system)
        self.queue = JobQueue("global", is_global=True)
        self.estimator = estimator
        #: (estimated finish, placement) of running jobs.
        self._running: dict[int, tuple[float, tuple[tuple[int, int], ...]]] = {}
        self.backfills = 0

    def queues(self) -> Sequence[JobQueue]:
        return (self.queue,)

    def submit(self, job: "Job") -> None:
        self.queue.push(job)
        self._drain()

    def on_departure(self, job: "Job") -> None:
        self._running.pop(id(job), None)
        self._drain()

    def _estimate(self, job: "Job") -> float:
        if self.estimator is None:
            return job.gross_service_time
        est = float(self.estimator(job))
        if est <= 0:
            raise ValueError(f"estimate must be positive, got {est!r}")
        return est

    def _start(self, job: "Job",
               assignment: tuple[tuple[int, int], ...]) -> None:
        finish = self.system.sim.now + self._estimate(job)
        self.system.start_job(job, assignment, from_global_queue=True)
        self._running[id(job)] = (finish, tuple(assignment))

    def _head_reservation(self, head: "Job") -> Optional[float]:
        """Earliest time the head fits, replaying future departures."""
        free = list(self._free)
        events = sorted(self._running.values())
        now = self.system.sim.now
        if try_place(self.request_type, head.components, free,
                     rule=self._placement_rule) is not None:
            return now
        for finish, placement in events:
            for cluster, procs in placement:
                free[cluster] += procs
            if try_place(self.request_type, head.components, free,
                         rule=self._placement_rule) is not None:
                return finish
        return None  # cannot ever fit (should not happen: job <= system)

    def _drain(self) -> None:
        # Phase 1: start in FCFS order while heads fit.
        while self.queue:
            head = self.queue.head
            assignment = try_place(self.request_type, head.components,
                                   self._free,
                                   rule=self._placement_rule)
            if assignment is None:
                break
            self.queue.pop()
            self._start(head, assignment)
        if not self.queue:
            return
        # Phase 2: reserve for the head, backfill jobs that fit now and
        # finish before the reservation.
        head = self.queue.head
        reservation = self._head_reservation(head)
        if reservation is None:
            return
        now = self.system.sim.now
        candidates = list(self.queue)[1:]
        for job in candidates:
            if now + self._estimate(job) > reservation + 1e-12:
                continue
            assignment = try_place(self.request_type, job.components,
                                   self._free,
                                   rule=self._placement_rule)
            if assignment is None:
                continue
            # Starting this job must not push the reservation back:
            # it finishes before the reservation, so the processors it
            # takes are returned in time.  (This is the EASY guarantee
            # with exact runtimes.)
            self.queue._jobs.remove(job)
            self._start(job, assignment)
            self.backfills += 1


def make_backfill_policy(
    window: int,
) -> Callable[["MulticlusterSimulation"], BackfillGSPolicy]:
    """A policy factory for :class:`BackfillGSPolicy` with a window."""

    def factory(system: "MulticlusterSimulation") -> BackfillGSPolicy:
        return BackfillGSPolicy(system, window=window)

    return factory


#: Extension-policy registry (name → class), kept separate from the
#: paper's POLICIES so the core registry stays exactly the §2.5 set.
EXTENSION_POLICIES = {
    "GS-ORDERED": OrderedGSPolicy,
    "GS-FLEX": FlexibleGSPolicy,
    "GS-BF": BackfillGSPolicy,
    "GS-EASY": EasyBackfillGSPolicy,
}


def register_extension_policies() -> None:
    """Add the extension policies to the main registry (idempotent)."""
    from .policies import POLICIES

    POLICIES.update(EXTENSION_POLICIES)
