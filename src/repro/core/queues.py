"""FCFS job queues with the paper's enable/disable protocol.

All schedulers in the paper are FCFS per queue: only the job at the head
of a queue may start.  Policies with several queues (LS, LP) visit the
*enabled* queues round-robin, starting at most one job from each queue per
round; a queue whose head does not fit is *disabled* until the next job
departs from the system, and at each departure the disabled queues are
re-enabled in the order in which they were disabled (§2.5).

:class:`JobQueue` is the single FIFO queue; :class:`QueueRing` implements
the visiting/disable/re-enable machinery shared by LS and LP.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from .jobs import Job

__all__ = ["JobQueue", "QueueRing"]


class JobQueue:
    """A FIFO queue of jobs with an enabled flag.

    Attributes
    ----------
    name:
        Display name ("local-0", "global", ...).
    is_global:
        Marks the global queue of the LP policy (affects eligibility and
        metric attribution).
    index:
        Position of this queue in its policy's local-queue list (0 for
        global/standalone queues).  Precomputed so the scheduling hot
        path never scans ``local_queues.index(queue)``.
    """

    __slots__ = ("name", "is_global", "index", "enabled", "_jobs",
                 "total_enqueued", "times_disabled")

    def __init__(self, name: str, *, is_global: bool = False,
                 index: int = 0) -> None:
        self.name = name
        self.is_global = is_global
        self.index = index
        self.enabled = True
        self._jobs: deque["Job"] = deque()
        self.total_enqueued = 0
        #: How often this queue was disabled (head did not fit).
        self.times_disabled = 0

    def push(self, job: "Job") -> None:
        """Append a job to the tail."""
        self._jobs.append(job)
        self.total_enqueued += 1

    @property
    def head(self) -> Optional["Job"]:
        """The job eligible to start next (None when empty)."""
        return self._jobs[0] if self._jobs else None

    def pop(self) -> "Job":
        """Remove and return the head job."""
        return self._jobs.popleft()

    def __len__(self) -> int:
        return len(self._jobs)

    def __bool__(self) -> bool:  # truthiness = has jobs
        return bool(self._jobs)

    def __iter__(self) -> Iterator["Job"]:
        return iter(self._jobs)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"<JobQueue {self.name} len={len(self)} {state}>"


class QueueRing:
    """The enable/disable visiting protocol over a set of queues.

    The ring keeps two ordered lists: the *visit list* of enabled queues
    (in enablement order) and the *disabled list* (in disablement order).
    ``visit()`` yields enabled queues for one round; ``disable()`` moves a
    queue out of rotation; ``enable_all()`` — called at every departure —
    moves the disabled queues back, preserving their disablement order,
    optionally putting the global queue first (the LP rule: *"they are
    always enabled starting with the global queue"*).
    """

    def __init__(self, queues: list[JobQueue],
                 observer: Optional[Callable[[str, JobQueue, int], None]]
                 = None) -> None:
        if not queues:
            raise ValueError("need at least one queue")
        self.queues = list(queues)
        self._visit: list[JobQueue] = list(queues)
        self._disabled: list[JobQueue] = []
        #: Optional ``(action, queue, order)`` callback fired on every
        #: state change: ``("disable", q, position-in-disabled-list)``,
        #: ``("enable", q, position-in-re-enable-sequence)`` and
        #: ``("reenable", q, 0)`` for LP's out-of-order re-enable.  The
        #: observability layer streams these as decision events.
        self.observer = observer

    # -- state ---------------------------------------------------------------

    @property
    def enabled_queues(self) -> tuple[JobQueue, ...]:
        """Enabled queues in visit order."""
        return tuple(self._visit)

    @property
    def disabled_queues(self) -> tuple[JobQueue, ...]:
        """Disabled queues in disablement order."""
        return tuple(self._disabled)

    # -- protocol ---------------------------------------------------------------

    def visit(self) -> tuple[JobQueue, ...]:
        """Snapshot of enabled queues for one visiting round.

        A snapshot (not a live view) so that disabling during the round
        does not skip queues unpredictably.
        """
        return tuple(self._visit)

    def disable(self, queue: JobQueue) -> None:
        """Take ``queue`` out of rotation until the next departure."""
        if not queue.enabled:
            return
        queue.enabled = False
        self._visit.remove(queue)
        self._disabled.append(queue)
        queue.times_disabled += 1
        if self.observer is not None:
            self.observer("disable", queue, len(self._disabled) - 1)

    def enable_all(self, *, global_first: bool = False,
                   skip_global: bool = False) -> None:
        """Re-enable disabled queues in disablement order.

        With ``global_first`` the global queue (if disabled) re-enters
        the visit list before the local queues — the LP departure rule
        when a local queue is empty.  With ``skip_global`` the global
        queue stays disabled — the LP rule when no local queue is empty.
        """
        disabled, self._disabled = self._disabled, []
        if global_first:
            disabled.sort(key=lambda q: not q.is_global)
        order = 0
        for queue in disabled:
            if skip_global and queue.is_global:
                self._disabled.append(queue)
                continue
            queue.enabled = True
            self._visit.append(queue)
            if self.observer is not None:
                self.observer("enable", queue, order)
            order += 1

    def reenable(self, queue: JobQueue) -> None:
        """Re-enable one specific queue out of departure order.

        Used by LP when a local queue empties mid-round: the global
        queue immediately joins the visit list.
        """
        if queue.enabled:
            return
        self._disabled.remove(queue)
        queue.enabled = True
        self._visit.append(queue)
        if self.observer is not None:
            self.observer("reenable", queue, 0)

    def total_jobs(self) -> int:
        """Jobs waiting across all queues."""
        return sum(len(q) for q in self.queues)

    def __repr__(self) -> str:
        return (
            f"<QueueRing enabled={len(self._visit)} "
            f"disabled={len(self._disabled)} jobs={self.total_jobs()}>"
        )
