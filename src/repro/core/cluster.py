"""Cluster and multicluster processor state.

A :class:`Cluster` is a bank of identical processors allocated by count
(space sharing: a job holds its processors exclusively until completion).
A :class:`Multicluster` is an ordered collection of clusters — the paper's
system is four clusters of 32 processors; the single-cluster reference is
a multicluster with one 128-processor cluster.

Allocation here is pure bookkeeping: *which* clusters a job's components
go to is decided by the placement module and the scheduling policies.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

__all__ = ["Cluster", "Multicluster", "AllocationError"]


class AllocationError(RuntimeError):
    """Raised on impossible allocate/release operations (model bugs)."""


class Cluster:
    """A bank of ``capacity`` identical processors.

    Attributes
    ----------
    index:
        Position of this cluster in its multicluster.
    capacity:
        Total processors.
    free:
        Currently idle processors.
    """

    __slots__ = ("index", "capacity", "free", "_view")

    def __init__(self, index: int, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.index = index
        self.capacity = capacity
        self.free = capacity
        #: Back-reference to the owning multicluster's live free array
        #: (kept in sync by allocate/release); None for a standalone
        #: cluster.
        self._view: Optional[list[int]] = None

    @property
    def busy(self) -> int:
        """Processors currently allocated."""
        return self.capacity - self.free

    def fits(self, procs: int) -> bool:
        """Whether ``procs`` processors are currently available."""
        return procs <= self.free

    def allocate(self, procs: int) -> None:
        """Take ``procs`` processors; raises if not available."""
        if procs < 1:
            raise AllocationError(f"allocation must be >= 1, got {procs!r}")
        if procs > self.free:
            raise AllocationError(
                f"cluster {self.index}: requested {procs}, free {self.free}"
            )
        self.free -= procs
        if self._view is not None:
            self._view[self.index] = self.free

    def release(self, procs: int) -> None:
        """Return ``procs`` processors; raises on over-release."""
        if procs < 1:
            raise AllocationError(f"release must be >= 1, got {procs!r}")
        if self.free + procs > self.capacity:
            raise AllocationError(
                f"cluster {self.index}: releasing {procs} would exceed "
                f"capacity ({self.free} free of {self.capacity})"
            )
        self.free += procs
        if self._view is not None:
            self._view[self.index] = self.free

    def __repr__(self) -> str:
        return f"<Cluster {self.index}: {self.busy}/{self.capacity} busy>"


class Multicluster:
    """An ordered collection of clusters with aggregate accounting."""

    def __init__(self, capacities: Sequence[int]) -> None:
        if not capacities:
            raise ValueError("need at least one cluster")
        self.clusters = tuple(
            Cluster(i, c) for i, c in enumerate(capacities)
        )
        self.total_capacity = sum(c.capacity for c in self.clusters)
        # Incrementally maintained idle counts: every allocate/release
        # updates one slot, so placement never rebuilds a free list.
        self._free_view = [c.free for c in self.clusters]
        for cluster in self.clusters:
            cluster._view = self._free_view

    @classmethod
    def homogeneous(cls, num_clusters: int, cluster_size: int
                    ) -> "Multicluster":
        """The paper's homogeneous system: C clusters of equal size."""
        return cls([cluster_size] * num_clusters)

    def __len__(self) -> int:
        return len(self.clusters)

    def __getitem__(self, index: int) -> Cluster:
        return self.clusters[index]

    def __iter__(self) -> Iterator[Cluster]:
        return iter(self.clusters)

    @property
    def total_free(self) -> int:
        """Idle processors across all clusters."""
        return sum(self._free_view)

    @property
    def total_busy(self) -> int:
        """Allocated processors across all clusters."""
        return self.total_capacity - self.total_free

    @property
    def free_view(self) -> list[int]:
        """Live per-cluster idle counts (the placement hot-path input).

        Maintained incrementally by :meth:`Cluster.allocate` /
        :meth:`Cluster.release`.  **Read-only by contract**: callers that
        want to mutate (e.g. backfilling what-if scans) must copy via
        :meth:`free_list`.
        """
        return self._free_view

    def free_list(self) -> list[int]:
        """Idle processor counts per cluster (a placement-input snapshot)."""
        return list(self._free_view)

    def allocate(self, assignment: Iterable[tuple[int, int]]) -> None:
        """Allocate an (cluster index, processors) assignment atomically.

        If any component does not fit, nothing is allocated and
        :class:`AllocationError` is raised.
        """
        assignment = list(assignment)
        seen: set[int] = set()
        for idx, procs in assignment:
            if idx in seen:
                raise AllocationError(
                    f"assignment uses cluster {idx} twice "
                    "(components must go to distinct clusters)"
                )
            seen.add(idx)
            if not self.clusters[idx].fits(procs):
                raise AllocationError(
                    f"cluster {idx}: {procs} requested, "
                    f"{self.clusters[idx].free} free"
                )
        for idx, procs in assignment:
            self.clusters[idx].allocate(procs)

    def release(self, assignment: Iterable[tuple[int, int]]) -> None:
        """Release a previously allocated assignment."""
        for idx, procs in assignment:
            self.clusters[idx].release(procs)

    def __repr__(self) -> str:
        caps = "+".join(str(c.capacity) for c in self.clusters)
        return f"<Multicluster {caps} ({self.total_busy} busy)>"
