"""Runtime invariant monitoring and failure injection.

:class:`InvariantMonitor` attaches to a running simulation and checks
the model's conservation laws after every departure (and on demand):

* processor conservation per cluster (0 ≤ free ≤ capacity);
* ledger consistency: the processors held by running jobs exactly
  account for every cluster's busy count;
* FCFS discipline per queue: jobs in a queue are in arrival order;
* lifecycle sanity: started ≥ finished, timestamps monotone per job.

Violations raise :class:`InvariantViolation` at the moment the state
corrupts — vastly easier to debug than a wrong mean response three
million events later.  The failure-injection tests corrupt the state on
purpose and assert the monitor catches each class of bug.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .jobs import JobState

if TYPE_CHECKING:  # pragma: no cover
    from .system import MulticlusterSimulation

__all__ = ["InvariantMonitor", "InvariantViolation"]


class InvariantViolation(AssertionError):
    """A model invariant failed during simulation."""


class InvariantMonitor:
    """Continuous conservation checking for a multicluster simulation.

    Parameters
    ----------
    system:
        The simulation to watch.  The monitor chains onto the system's
        departure hook (preserving any existing hook) and keeps its own
        ledger of running jobs.
    """

    def __init__(self, system: "MulticlusterSimulation") -> None:
        self.system = system
        self.running: dict[int, object] = {}
        self.checks = 0
        self._wrap_hooks()

    def _wrap_hooks(self) -> None:
        previous_hook = self.system.on_departure_hook
        original_start = self.system.start_job

        def start_job(job, assignment, **kwargs):
            original_start(job, assignment, **kwargs)
            self.running[id(job)] = job

        def on_departure(job):
            self.running.pop(id(job), None)
            self.check()
            if previous_hook is not None:
                previous_hook(job)

        self.system.start_job = start_job  # type: ignore[method-assign]
        self.system.on_departure_hook = on_departure

    # -- checks -----------------------------------------------------------

    def check(self) -> None:
        """Run every invariant check against the current state."""
        self.checks += 1
        self._check_cluster_bounds()
        self._check_ledger()
        self._check_queues()
        self._check_lifecycle_counts()

    def _check_cluster_bounds(self) -> None:
        for cluster in self.system.multicluster:
            if not 0 <= cluster.free <= cluster.capacity:
                raise InvariantViolation(
                    f"cluster {cluster.index}: free={cluster.free} "
                    f"outside [0, {cluster.capacity}]"
                )

    def _check_ledger(self) -> None:
        held = [0] * len(self.system.multicluster)
        for job in self.running.values():
            if job.state is not JobState.RUNNING:
                raise InvariantViolation(
                    f"{job!r} in the running ledger but "
                    f"state={job.state.value}"
                )
            for cluster_index, procs in job.placement:
                held[cluster_index] += procs
        for cluster in self.system.multicluster:
            if held[cluster.index] != cluster.busy:
                raise InvariantViolation(
                    f"cluster {cluster.index}: busy={cluster.busy} but "
                    f"running jobs hold {held[cluster.index]}"
                )

    def _check_queues(self) -> None:
        for queue in self.system.policy.queues():
            previous = None
            for job in queue:
                if job.state is not JobState.QUEUED:
                    raise InvariantViolation(
                        f"{job!r} queued in {queue.name} but "
                        f"state={job.state.value}"
                    )
                if (previous is not None
                        and job.arrival_time < previous - 1e-12):
                    raise InvariantViolation(
                        f"queue {queue.name} out of FCFS order"
                    )
                previous = job.arrival_time

    def _check_lifecycle_counts(self) -> None:
        system = self.system
        if system.jobs_finished > system.jobs_started:
            raise InvariantViolation(
                f"finished ({system.jobs_finished}) exceeds started "
                f"({system.jobs_started})"
            )
        running = system.jobs_started - system.jobs_finished
        if running != len(self.running):
            raise InvariantViolation(
                f"counter says {running} running, ledger has "
                f"{len(self.running)}"
            )

    def __repr__(self) -> str:
        return (
            f"<InvariantMonitor running={len(self.running)} "
            f"checks={self.checks}>"
        )
