"""Request types from the co-allocation taxonomy.

The paper's focus is the **unordered** request (component sizes given, the
scheduler picks the clusters) compared against the **total** request
(single number of processors in a single cluster).  The authors' earlier
work [6, 7] also studies **ordered** requests (component *i* must go to
cluster *i*) and **flexible** requests (only the total matters; the
scheduler may split it arbitrarily over clusters).  All four are
implemented; ordered and flexible feed the request-type ablation bench.

Each request type answers one question: given the per-cluster free
processor counts, where would this job run?  (``None`` = does not fit.)
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence

from .placement import PlacementRule, place_components

__all__ = ["RequestType", "try_place"]


class RequestType(enum.Enum):
    """How a job expresses its processor needs."""

    #: Component sizes given; scheduler chooses distinct clusters.
    UNORDERED = "unordered"
    #: Component *i* must be allocated in cluster *i*.
    ORDERED = "ordered"
    #: One number; scheduler may split arbitrarily over clusters.
    FLEXIBLE = "flexible"
    #: One number; must fit inside a single cluster.
    TOTAL = "total"


def _place_ordered(components: Sequence[int], free: Sequence[int]
                   ) -> Optional[tuple[tuple[int, int], ...]]:
    if len(components) > len(free):
        return None
    assignment = []
    for idx, comp in enumerate(components):
        if comp == 0:
            continue
        if free[idx] < comp:
            return None
        assignment.append((idx, comp))
    return tuple(assignment)


def _place_flexible(total: int, free: Sequence[int]
                    ) -> Optional[tuple[tuple[int, int], ...]]:
    if sum(free) < total:
        return None
    # Fill emptiest-first (Worst-Fit flavoured) to keep load spread.
    order = sorted(range(len(free)), key=lambda i: (-free[i], i))
    need = total
    assignment = []
    for idx in order:
        take = min(free[idx], need)
        if take > 0:
            assignment.append((idx, take))
            need -= take
        if need == 0:
            return tuple(assignment)
    return None  # pragma: no cover - unreachable (sum(free) >= total)


def _place_total(total: int, free: Sequence[int]
                 ) -> Optional[tuple[tuple[int, int], ...]]:
    # Worst Fit among single clusters: one scan, feasibility folded into
    # the running maximum (f > total - 1 == f >= total); strict ``>``
    # keeps the lowest index on ties, matching max(key=(free, -index)).
    best_idx = -1
    best = total - 1
    for idx in range(len(free)):
        f = free[idx]
        if f > best:
            best = f
            best_idx = idx
    if best_idx < 0:
        return None
    return ((best_idx, total),)


def try_place(request_type: RequestType, components: Sequence[int],
              free: Sequence[int],
              rule: "str | PlacementRule" = "worst-fit",
              ) -> Optional[tuple[tuple[int, int], ...]]:
    """Attempt to place a request; returns the assignment or ``None``.

    ``components`` is the component-size tuple for unordered/ordered
    requests; for flexible and total requests its *sum* is what matters.
    """
    if request_type is RequestType.UNORDERED:
        return place_components(components, free, rule)
    if request_type is RequestType.ORDERED:
        return _place_ordered(components, free)
    if request_type is RequestType.FLEXIBLE:
        return _place_flexible(sum(components), free)
    if request_type is RequestType.TOTAL:
        return _place_total(sum(components), free)
    raise ValueError(f"unknown request type {request_type!r}")
