"""Live sweep progress: per-task heartbeats rendered on one line.

The runner (:func:`repro.runner.execute`) emits a heartbeat for every
task it touches — ``hit`` (served from cache), ``start`` (submitted to
a worker or begun in-process), ``retry`` (resubmitted after a failed
attempt), ``attempt-failed`` (one attempt's failure cause),
``finish`` (result collected) and ``fail`` — and the campaign layer
(:mod:`repro.runner.campaign`) adds ``campaign-begin`` /
``campaign-finish``, all through process-global hooks installed with
:func:`activate` (the primary display) or :func:`subscribe` (any
number of side listeners, e.g. the span recorder and the live
dashboard).  The hook indirection keeps the runner's signature stable
while letting the CLI (``--progress``) and tests observe every
execution backend, including sweeps reached deep inside the experiment
suite.

:class:`ProgressDisplay` is the standard consumer: a ``\\r``-updating
status line on stderr, safe for dumb terminals (falls back to one line
per re-render when the stream is not a TTY is unnecessary — the line is
short and self-contained).
"""

from __future__ import annotations

import sys
import threading
from typing import Callable, Optional, TextIO

from .timing import wall_clock

__all__ = ["HeartbeatRouter", "ProgressDisplay", "activate",
           "deactivate", "notify", "active_hook", "subscribe",
           "unsubscribe"]

#: ``(kind, key, description)`` heartbeat callback type.
ProgressHook = Callable[[str, str, str], None]

#: Task-level heartbeat kinds that count toward progress totals;
#: campaign markers and attempt diagnostics flow past the display.
TASK_KINDS = frozenset({"hit", "start", "finish", "fail", "retry"})

_active: Optional[ProgressHook] = None
_subscribers: list[ProgressHook] = []


def activate(hook: ProgressHook) -> None:
    """Install ``hook`` as the primary process-wide consumer."""
    global _active
    _active = hook


def deactivate() -> None:
    """Remove the primary heartbeat consumer."""
    global _active
    _active = None


def subscribe(hook: ProgressHook) -> ProgressHook:
    """Add a side listener receiving every heartbeat.

    Unlike :func:`activate`, any number of subscribers can coexist
    (span recorders, dashboards, test probes).  Returns ``hook`` so
    the caller can pass it straight to :func:`unsubscribe`.
    """
    _subscribers.append(hook)
    return hook


def unsubscribe(hook: ProgressHook) -> None:
    """Remove a side listener (no-op when not subscribed)."""
    try:
        _subscribers.remove(hook)
    except ValueError:
        pass


def active_hook() -> Optional[ProgressHook]:
    """The installed primary consumer, if any."""
    return _active


def notify(kind: str, key: str, description: str) -> None:
    """Deliver one heartbeat to the primary consumer and subscribers."""
    hook = _active
    if hook is not None:
        hook(kind, key, description)
    if _subscribers:
        for sub in tuple(_subscribers):
            sub(kind, key, description)


class HeartbeatRouter:
    """Thread-safe fan-in of heartbeats, routed by task key.

    The sweep service multiplexes many concurrent campaigns over one
    worker fleet, and the runner's heartbeats arrive on whichever
    thread is executing a task — but each connected client must only
    see the heartbeats of *its* campaign's keys.  The router is one
    process-wide subscriber (installed with :meth:`start`) that fans
    every heartbeat out to the watches whose key set contains it.

    Watch hooks are called on the emitting thread; consumers that need
    loop affinity (the asyncio server) bounce through
    ``loop.call_soon_threadsafe`` themselves.  Registering and removing
    watches is safe from any thread.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._watches: dict[int, tuple[frozenset[str], ProgressHook]] = {}
        self._next_token = 0
        self._installed: Optional[ProgressHook] = None

    def start(self) -> None:
        """Subscribe the router to the process-wide heartbeat stream."""
        with self._lock:
            if self._installed is None:
                self._installed = subscribe(self._route)

    def stop(self) -> None:
        """Unsubscribe and drop every watch."""
        with self._lock:
            if self._installed is not None:
                unsubscribe(self._installed)
                self._installed = None
            self._watches.clear()

    def watch(self, keys: "frozenset[str] | set[str]",
              hook: ProgressHook) -> int:
        """Route heartbeats for any of ``keys`` to ``hook``.

        Returns a token for :meth:`unwatch`.  Key sets of concurrent
        watches may overlap (two clients attached to one campaign both
        see its heartbeats).
        """
        with self._lock:
            token = self._next_token
            self._next_token += 1
            self._watches[token] = (frozenset(keys), hook)
            return token

    def unwatch(self, token: int) -> None:
        """Remove a watch (no-op when already removed)."""
        with self._lock:
            self._watches.pop(token, None)

    def _route(self, kind: str, key: str, description: str) -> None:
        with self._lock:
            hooks = [hook for keys, hook in self._watches.values()
                     if key in keys]
        for hook in hooks:
            hook(kind, key, description)


class ProgressDisplay:
    """A line-updating task progress renderer.

    Parameters
    ----------
    total:
        Expected number of tasks, when known (sweeps pass the grid
        size); shown as ``[done/total]``, else ``[done]``.
    stream:
        Output stream (default ``sys.stderr``).
    label:
        Prefix naming the operation ("sweep GS L=16", ...).

    The instance is itself a valid heartbeat hook::

        display = ProgressDisplay(total=len(grid), label="sweep")
        progress.activate(display.on_task_event)
        try: ...
        finally:
            progress.deactivate()
            display.close()
    """

    def __init__(self, total: Optional[int] = None,
                 stream: Optional[TextIO] = None,
                 label: str = "") -> None:
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.label = label
        self.hits = 0
        self.computed = 0
        self.failed = 0
        self.running = 0
        self._rendered = False
        self._t0 = wall_clock()

    @property
    def done(self) -> int:
        """Tasks resolved so far (cache hits + computed + failed)."""
        return self.hits + self.computed + self.failed

    def on_task_event(self, kind: str, key: str,
                      description: str) -> None:
        """Heartbeat consumer: update counters and re-render.

        Non-task heartbeats (campaign markers, per-attempt failure
        causes) don't move the counters or touch the line — the
        display tracks tasks, side listeners track everything.
        """
        if kind not in TASK_KINDS:
            return
        if kind == "hit":
            self.hits += 1
        elif kind == "start":
            self.running += 1
        elif kind == "finish":
            self.running = max(0, self.running - 1)
            self.computed += 1
        elif kind == "fail":
            self.running = max(0, self.running - 1)
            self.failed += 1
        self.render(description)

    def render(self, description: str = "") -> None:
        """Redraw the status line."""
        elapsed = wall_clock() - self._t0
        progress = (f"{self.done}/{self.total}" if self.total
                    else f"{self.done}")
        parts = [f"[{progress}]",
                 f"computed {self.computed}",
                 f"cached {self.hits}"]
        if self.running:
            parts.append(f"running {self.running}")
        if self.failed:
            parts.append(f"failed {self.failed}")
        parts.append(f"{elapsed:.1f}s")
        if description:
            parts.append(description)
        line = " ".join(parts)
        if self.label:
            line = f"{self.label}: {line}"
        # Pad so a shorter redraw fully overwrites the previous line.
        self.stream.write("\r" + line.ljust(78)[:118])
        self.stream.flush()
        self._rendered = True

    def close(self) -> None:
        """Terminate the status line (newline) if anything was drawn."""
        if self._rendered:
            self.stream.write("\n")
            self.stream.flush()
            self._rendered = False

    def __repr__(self) -> str:
        return (f"<ProgressDisplay done={self.done} "
                f"total={self.total} running={self.running}>")
